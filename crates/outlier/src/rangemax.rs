//! Static range-maximum structure over the (position-sorted) outlier
//! magnitudes.
//!
//! LIS significance tests ask "does any outlier inside this index range
//! have magnitude above `thrd`?". Magnitudes of not-yet-significant points
//! never change, so a static sparse table answers each query in O(1) after
//! O(n log n) construction.

/// Sparse table for range-maximum queries over `f64` magnitudes.
#[derive(Debug)]
pub(crate) struct SparseMax {
    /// `rows[k][i]` = max over `[i, i + 2^k)`.
    rows: Vec<Vec<f64>>,
}

impl SparseMax {
    pub fn build(values: &[f64]) -> Self {
        let n = values.len();
        let mut rows = vec![values.to_vec()];
        let mut width = 1usize;
        while width * 2 <= n {
            let prev = rows.last().unwrap();
            let next: Vec<f64> = (0..=n - width * 2)
                .map(|i| prev[i].max(prev[i + width]))
                .collect();
            rows.push(next);
            width *= 2;
        }
        SparseMax { rows }
    }

    /// Maximum over the half-open index range `[lo, hi)`; `lo < hi`.
    pub fn query(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo < hi && hi <= self.rows[0].len());
        let len = hi - lo;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize; // floor(log2 len)
        let w = 1usize << k;
        self.rows[k][lo].max(self.rows[k][hi - w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_brute_force() {
        let values: Vec<f64> = (0..100)
            .map(|i| ((i * 2654435761u64 as usize) % 1009) as f64 * 0.37)
            .collect();
        let st = SparseMax::build(&values);
        for lo in 0..100 {
            for hi in lo + 1..=100 {
                let brute = values[lo..hi].iter().copied().fold(f64::MIN, f64::max);
                assert_eq!(st.query(lo, hi), brute, "[{lo},{hi})");
            }
        }
    }

    #[test]
    fn single_element() {
        let st = SparseMax::build(&[3.25]);
        assert_eq!(st.query(0, 1), 3.25);
    }
}
