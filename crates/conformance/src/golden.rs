//! Golden streams: committed compressed artifacts pinned against encoder
//! drift.
//!
//! The matrix is `corpus_inputs() × CodecId::ALL × golden_bounds()` —
//! every codec, every mode it supports, over 1D/2D/3D inputs with odd,
//! prime and power-of-two extents. For each cell the repository commits
//! the exact bytes the encoder produced (`golden/<case>.bin`) plus a
//! manifest line recording the stream's CRC, a digest of the decoded
//! values, and the achieved max error. The tier-2 suite then asserts
//! both directions:
//!
//! * **byte-for-byte**: re-encoding the (deterministic) corpus input
//!   today produces exactly the committed bytes;
//! * **value-for-value**: decoding the committed bytes produces exactly
//!   the values digested at regen time, and they still satisfy the
//!   codec's documented error budget.
//!
//! Regenerate with `cargo run -p sperr-conformance -- regen` after an
//! *intentional* bitstream change, and bump [`GOLDEN_VERSION`] in the
//! same commit — `scripts/ci.sh` rejects golden-file changes that do not
//! touch the version. See DESIGN.md §9 for when a golden change is
//! legitimate.

use crate::corpus::{
    bound_tag, check_budget, corpus_inputs, documented_budget, f32_budget, golden_bounds,
    CodecId, CorpusInput,
};
use crate::oracle::CheckFailure;
use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{crc32, Sperr, SperrConfig};
use std::path::{Path, PathBuf};

/// Version of the committed golden set. Bump this (and regenerate) when
/// an intentional encoder change invalidates the committed bytes; CI
/// fails if golden files change while this constant does not.
///
/// v2: the container grew a v3 chunk index; the 64 matrix streams stay
/// pinned at container v2 bytes, and the set gained the indexed
/// `fixture-v3.bin` plus its index CRC in the manifest.
///
/// v3: the set gained the f32-native streams (`f32_entry` manifest
/// lines) — the 3D corpus inputs narrowed to single precision and
/// encoded through `compress_f32` (precision tag 2, current indexed
/// container). The 64 matrix streams and both fixtures are unchanged
/// byte-for-byte from v2.
pub const GOLDEN_VERSION: u32 = 3;

/// Container version the 64 matrix goldens are written in. Pinned at 2
/// even though the default writer now emits v3: the committed bytes
/// predate the chunk index and must not churn. The v3 format is pinned
/// by its own dedicated fixture instead.
pub const GOLDEN_CONTAINER_VERSION: u8 = 2;

/// Manifest file name inside the golden directory.
pub const MANIFEST_NAME: &str = "MANIFEST.txt";

/// File name of the committed legacy (container v1) fixture, produced by
/// [`Sperr::downgrade_to_v1`] from one of the SPERR goldens. Decoding it
/// proves the v1 read path stays alive even though the writer emits v3.
pub const V1_FIXTURE_NAME: &str = "fixture-v1.bin";

/// File name of the committed container-v3 fixture: the first SPERR PWE
/// corpus case re-encoded with the chunk index on. Pins the v3 byte
/// layout (including the index block) the same way the matrix pins v2.
pub const V3_FIXTURE_NAME: &str = "fixture-v3.bin";

/// The committed golden directory (source-relative, so tests and the
/// regen binary agree regardless of working directory).
pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// One golden cell: identity, committed bytes, and regen-time
/// measurements.
#[derive(Debug, Clone)]
pub struct GoldenEntry {
    /// `<input>-<codec>-<mode>`, unique across the matrix.
    pub case_id: String,
    /// Corpus input id (first component of `case_id`).
    pub input_id: String,
    /// Which codec produced the stream.
    pub codec: CodecId,
    /// The bound the stream was encoded under.
    pub bound: Bound,
    /// Committed stream length in bytes.
    pub stream_len: usize,
    /// CRC-32 of the committed stream bytes.
    pub stream_crc: u32,
    /// CRC-32 over the decoded values' little-endian f64 bytes.
    pub values_crc: u32,
    /// Max point-wise error achieved at regen time (bit-exact f64).
    pub max_err: f64,
}

impl GoldenEntry {
    /// File name of the committed stream.
    pub fn file_name(&self) -> String {
        format!("{}.bin", self.case_id)
    }
}

/// One f32-native golden cell: a 3D corpus input narrowed to single
/// precision and encoded through `Sperr::compress_f32` with the current
/// (indexed) container. Pins the f32 wire format — precision tag 2,
/// f32-quantized SPECK planes, f32 outlier corrections — the same way
/// the matrix pins the f64 encoding.
#[derive(Debug, Clone)]
pub struct F32GoldenEntry {
    /// `<input>-f32-sperr-pwe`, unique across the f32 set.
    pub case_id: String,
    /// Corpus input id (first component of `case_id`).
    pub input_id: String,
    /// The PWE tolerance the stream was encoded under (bit-exact f64).
    pub tolerance: f64,
    /// Committed stream length in bytes.
    pub stream_len: usize,
    /// CRC-32 of the committed stream bytes.
    pub stream_crc: u32,
    /// CRC-32 over the decoded values' little-endian **f32** bytes.
    pub values_crc: u32,
    /// Max point-wise error vs the f32 input at regen time (bit-exact
    /// f64 of f32-widened differences).
    pub max_err: f64,
}

impl F32GoldenEntry {
    /// File name of the committed stream.
    pub fn file_name(&self) -> String {
        format!("{}.bin", self.case_id)
    }
}

/// Parsed manifest: format header plus entries.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// [`GOLDEN_VERSION`] at regen time.
    pub golden_version: u32,
    /// Container format the SPERR goldens were written in.
    pub container_version: u8,
    /// [`sperr_speck::BITSTREAM_FORMAT`] at regen time.
    pub speck_format: u32,
    /// [`sperr_outlier::BITSTREAM_FORMAT`] at regen time.
    pub outlier_format: u32,
    /// One entry per golden stream.
    pub entries: Vec<GoldenEntry>,
    /// One entry per f32-native golden stream (empty on pre-v3 sets).
    pub f32_entries: Vec<F32GoldenEntry>,
    /// `(len, crc32)` of the committed v1 fixture.
    pub v1_fixture: (usize, u32),
    /// `(len, crc32, index_crc32)` of the committed v3 fixture, where
    /// `index_crc32` digests the serialized chunk-index entries.
    pub v3_fixture: (usize, u32, u32),
}

fn digest_values(values: &[f64]) -> u32 {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

fn digest_values_f32(values: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

/// The SPERR instance whose container layout the goldens pin (16³
/// chunks, single thread, container v2 — matches [`CodecId::build`] for
/// SPERR).
fn golden_sperr() -> Sperr {
    Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        num_threads: 1,
        container_version: GOLDEN_CONTAINER_VERSION,
        ..SperrConfig::default()
    })
}

/// Same configuration but writing the current (indexed) container —
/// produces the v3 fixture.
fn golden_sperr_v3() -> Sperr {
    Sperr::new(SperrConfig { chunk_dims: [16, 16, 16], num_threads: 1, ..SperrConfig::default() })
}

/// CRC-32 over the serialized chunk-index entries of an indexed stream.
/// Pins the index block itself, not just the container bytes: an index
/// that drifted while payloads stayed put would change this digest.
pub fn index_crc(stream: &[u8]) -> Result<u32, String> {
    let info = golden_sperr_v3()
        .inspect(stream)
        .map_err(|e| format!("v3 fixture does not inspect: {e}"))?;
    let index = info.chunk_index.ok_or("v3 fixture carries no chunk index")?;
    let mut bytes = Vec::new();
    for e in &index {
        bytes.extend_from_slice(&e.to_bytes());
    }
    Ok(crc32(&bytes))
}

/// Encodes the full golden matrix in memory. Returns `(entry, stream)`
/// pairs plus the v1 and v3 fixture bytes. Panics if any codec fails to
/// encode or violates its documented budget — a golden set must never
/// pin a broken stream.
pub fn generate() -> (Vec<(GoldenEntry, Vec<u8>)>, Vec<u8>, Vec<u8>) {
    let mut out = Vec::new();
    let mut first_sperr_pwe: Option<Vec<u8>> = None;
    let mut v3_fixture: Option<Vec<u8>> = None;
    for input in corpus_inputs() {
        let field = input.generate();
        for codec in CodecId::ALL {
            let compressor = codec.build();
            for bound in golden_bounds(codec, &field) {
                let case_id = format!("{}-{}-{}", input.id, codec.tag(), bound_tag(bound));
                let stream = compressor
                    .compress(&field, bound)
                    .unwrap_or_else(|e| panic!("golden {case_id}: compress failed: {e}"));
                let recon = compressor
                    .decompress(&stream)
                    .unwrap_or_else(|e| panic!("golden {case_id}: decompress failed: {e}"));
                let budget = documented_budget(codec, bound, field.dims);
                if let Err((observed, allowed)) = check_budget(&field.data, &recon.data, budget) {
                    panic!(
                        "golden {case_id}: budget violated at regen time: \
                         observed {observed:e}, allowed {allowed:e}"
                    );
                }
                let max_err = sperr_metrics::max_pwe(&field.data, &recon.data);
                if matches!((codec, bound), (CodecId::Sperr, Bound::Pwe(_)))
                    && first_sperr_pwe.is_none()
                {
                    first_sperr_pwe = Some(stream.clone());
                    // The v3 fixture is the same case re-encoded with the
                    // chunk index on — its decode must match the v2 twin
                    // and its downgrade must reproduce the v2 bytes.
                    v3_fixture = Some(
                        golden_sperr_v3()
                            .compress(&field, bound)
                            .unwrap_or_else(|e| panic!("v3 fixture ({case_id}): {e}")),
                    );
                }
                let entry = GoldenEntry {
                    case_id,
                    input_id: input.id.to_string(),
                    codec,
                    bound,
                    stream_len: stream.len(),
                    stream_crc: crc32(&stream),
                    values_crc: digest_values(&recon.data),
                    max_err,
                };
                out.push((entry, stream));
            }
        }
    }
    let v2 = first_sperr_pwe.expect("matrix contains at least one SPERR PWE golden");
    let v1 = golden_sperr()
        .downgrade_to_v1(&v2)
        .expect("downgrading a fresh SPERR golden to container v1");
    let v3 = v3_fixture.expect("matrix contains at least one SPERR PWE golden");
    (out, v1, v3)
}

/// The corpus inputs that get an f32-native golden: the 3D shapes (one
/// single-chunk, one multi-chunk) of both generators — the cells where
/// the f32 chunk pipeline, not just narrowing, is under test.
pub fn f32_inputs() -> Vec<CorpusInput> {
    corpus_inputs().into_iter().filter(|i| i.dims[2] > 1).collect()
}

/// Encodes the f32-native golden set in memory: each [`f32_inputs`]
/// field narrowed to single precision and compressed through
/// `compress_f32` at the corpus-standard PWE tolerance, with the same
/// chunking/threading as the rest of the goldens and the current
/// (indexed) container. Panics if a stream fails to round-trip, is not
/// marked f32-native, or misses the f32-adjusted PWE budget.
pub fn generate_f32() -> Vec<(F32GoldenEntry, Vec<u8>)> {
    let sperr = golden_sperr_v3();
    let mut out = Vec::new();
    for input in f32_inputs() {
        let field = input.generate_f32();
        let t = field.tolerance_for_idx(15);
        let case_id = format!("{}-f32-sperr-pwe", input.id);
        let stream = sperr
            .compress_f32(&field, Bound::Pwe(t))
            .unwrap_or_else(|e| panic!("f32 golden {case_id}: compress failed: {e}"));
        let info = sperr
            .inspect(&stream)
            .unwrap_or_else(|e| panic!("f32 golden {case_id}: inspect failed: {e}"));
        assert!(info.native_f32, "f32 golden {case_id}: stream not marked f32-native");
        let recon = sperr
            .decompress_f32(&stream)
            .unwrap_or_else(|e| panic!("f32 golden {case_id}: decompress failed: {e}"));
        let max_err = field
            .data
            .iter()
            .zip(&recon.data)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .fold(0.0, f64::max);
        let allowed = f32_budget(t, field.range());
        assert!(
            max_err <= allowed,
            "f32 golden {case_id}: budget violated at regen time: \
             observed {max_err:e}, allowed {allowed:e}"
        );
        let entry = F32GoldenEntry {
            case_id,
            input_id: input.id.to_string(),
            tolerance: t,
            stream_len: stream.len(),
            stream_crc: crc32(&stream),
            values_crc: digest_values_f32(&recon.data),
            max_err,
        };
        out.push((entry, stream));
    }
    out
}

fn bound_value(bound: Bound) -> f64 {
    match bound {
        Bound::Pwe(v) | Bound::Bpp(v) | Bound::Psnr(v) => v,
    }
}

fn bound_from(tag: &str, value: f64) -> Option<Bound> {
    match tag {
        "pwe" => Some(Bound::Pwe(value)),
        "bpp" => Some(Bound::Bpp(value)),
        "psnr" => Some(Bound::Psnr(value)),
        _ => None,
    }
}

/// Renders the manifest text for a generated set.
pub fn render_manifest(
    entries: &[(GoldenEntry, Vec<u8>)],
    f32_entries: &[(F32GoldenEntry, Vec<u8>)],
    v1_fixture: &[u8],
    v3_fixture: &[u8],
    v3_index_crc: u32,
) -> String {
    let mut s = String::new();
    s.push_str("# SPERR conformance golden manifest. Regenerate with\n");
    s.push_str("#   cargo run -p sperr-conformance -- regen\n");
    s.push_str("# and bump GOLDEN_VERSION in crates/conformance/src/golden.rs.\n");
    s.push_str(&format!("golden_version {GOLDEN_VERSION}\n"));
    s.push_str(&format!("container_version {GOLDEN_CONTAINER_VERSION}\n"));
    s.push_str(&format!("speck_format {}\n", sperr_speck::BITSTREAM_FORMAT));
    s.push_str(&format!("outlier_format {}\n", sperr_outlier::BITSTREAM_FORMAT));
    s.push_str(&format!("v1_fixture {} {} {:08x}\n", V1_FIXTURE_NAME, v1_fixture.len(), crc32(v1_fixture)));
    s.push_str(&format!(
        "v3_fixture {} {} {:08x} {:08x}\n",
        V3_FIXTURE_NAME,
        v3_fixture.len(),
        crc32(v3_fixture),
        v3_index_crc,
    ));
    for (e, _) in entries {
        s.push_str(&format!(
            "entry {} {} {} {:016x} {} {:08x} {:08x} {:016x}\n",
            e.case_id,
            e.codec.tag(),
            bound_tag(e.bound),
            bound_value(e.bound).to_bits(),
            e.stream_len,
            e.stream_crc,
            e.values_crc,
            e.max_err.to_bits(),
        ));
    }
    for (e, _) in f32_entries {
        s.push_str(&format!(
            "f32_entry {} {:016x} {} {:08x} {:08x} {:016x}\n",
            e.case_id,
            e.tolerance.to_bits(),
            e.stream_len,
            e.stream_crc,
            e.values_crc,
            e.max_err.to_bits(),
        ));
    }
    s
}

/// Parses [`render_manifest`] output.
pub fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let mut golden_version = None;
    let mut container_version = None;
    let mut speck_format = None;
    let mut outlier_format = None;
    let mut v1_fixture = None;
    let mut v3_fixture = None;
    let mut entries = Vec::new();
    let mut f32_entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().unwrap();
        let rest: Vec<&str> = parts.collect();
        let bad = |what: &str| format!("manifest line {}: {what}: {line}", lineno + 1);
        match key {
            "golden_version" => {
                golden_version =
                    Some(rest[0].parse().map_err(|_| bad("unparseable golden_version"))?)
            }
            "container_version" => {
                container_version =
                    Some(rest[0].parse().map_err(|_| bad("unparseable container_version"))?)
            }
            "speck_format" => {
                speck_format = Some(rest[0].parse().map_err(|_| bad("unparseable speck_format"))?)
            }
            "outlier_format" => {
                outlier_format =
                    Some(rest[0].parse().map_err(|_| bad("unparseable outlier_format"))?)
            }
            "v1_fixture" => {
                if rest.len() != 3 || rest[0] != V1_FIXTURE_NAME {
                    return Err(bad("malformed v1_fixture line"));
                }
                let len = rest[1].parse().map_err(|_| bad("unparseable fixture length"))?;
                let crc = u32::from_str_radix(rest[2], 16)
                    .map_err(|_| bad("unparseable fixture crc"))?;
                v1_fixture = Some((len, crc));
            }
            "v3_fixture" => {
                if rest.len() != 4 || rest[0] != V3_FIXTURE_NAME {
                    return Err(bad("malformed v3_fixture line"));
                }
                let len = rest[1].parse().map_err(|_| bad("unparseable fixture length"))?;
                let crc = u32::from_str_radix(rest[2], 16)
                    .map_err(|_| bad("unparseable fixture crc"))?;
                let icrc = u32::from_str_radix(rest[3], 16)
                    .map_err(|_| bad("unparseable index crc"))?;
                v3_fixture = Some((len, crc, icrc));
            }
            "entry" => {
                if rest.len() != 8 {
                    return Err(bad("entry needs 8 fields"));
                }
                let codec =
                    CodecId::from_tag(rest[1]).ok_or_else(|| bad("unknown codec tag"))?;
                let bval = f64::from_bits(
                    u64::from_str_radix(rest[3], 16).map_err(|_| bad("unparseable bound bits"))?,
                );
                let bound = bound_from(rest[2], bval).ok_or_else(|| bad("unknown mode tag"))?;
                let input_id = rest[0]
                    .strip_suffix(&format!("-{}-{}", rest[1], rest[2]))
                    .ok_or_else(|| bad("case id does not end in codec-mode"))?;
                entries.push(GoldenEntry {
                    case_id: rest[0].to_string(),
                    input_id: input_id.to_string(),
                    codec,
                    bound,
                    stream_len: rest[4].parse().map_err(|_| bad("unparseable length"))?,
                    stream_crc: u32::from_str_radix(rest[5], 16)
                        .map_err(|_| bad("unparseable stream crc"))?,
                    values_crc: u32::from_str_radix(rest[6], 16)
                        .map_err(|_| bad("unparseable values crc"))?,
                    max_err: f64::from_bits(
                        u64::from_str_radix(rest[7], 16)
                            .map_err(|_| bad("unparseable max_err bits"))?,
                    ),
                });
            }
            "f32_entry" => {
                if rest.len() != 6 {
                    return Err(bad("f32_entry needs 6 fields"));
                }
                let input_id = rest[0]
                    .strip_suffix("-f32-sperr-pwe")
                    .ok_or_else(|| bad("f32 case id does not end in -f32-sperr-pwe"))?;
                f32_entries.push(F32GoldenEntry {
                    case_id: rest[0].to_string(),
                    input_id: input_id.to_string(),
                    tolerance: f64::from_bits(
                        u64::from_str_radix(rest[1], 16)
                            .map_err(|_| bad("unparseable tolerance bits"))?,
                    ),
                    stream_len: rest[2].parse().map_err(|_| bad("unparseable length"))?,
                    stream_crc: u32::from_str_radix(rest[3], 16)
                        .map_err(|_| bad("unparseable stream crc"))?,
                    values_crc: u32::from_str_radix(rest[4], 16)
                        .map_err(|_| bad("unparseable values crc"))?,
                    max_err: f64::from_bits(
                        u64::from_str_radix(rest[5], 16)
                            .map_err(|_| bad("unparseable max_err bits"))?,
                    ),
                });
            }
            other => return Err(format!("manifest line {}: unknown key {other}", lineno + 1)),
        }
    }
    Ok(Manifest {
        golden_version: golden_version.ok_or("manifest missing golden_version")?,
        container_version: container_version.ok_or("manifest missing container_version")?,
        speck_format: speck_format.ok_or("manifest missing speck_format")?,
        outlier_format: outlier_format.ok_or("manifest missing outlier_format")?,
        v1_fixture: v1_fixture.ok_or("manifest missing v1_fixture")?,
        v3_fixture: v3_fixture.ok_or("manifest missing v3_fixture")?,
        entries,
        f32_entries,
    })
}

/// Regenerates the golden directory on disk: every stream file, the v1
/// and v3 fixtures, and the manifest. Stale `.bin` files from a previous
/// matrix are removed. Returns the number of streams written.
pub fn regenerate(dir: &Path) -> std::io::Result<usize> {
    let (entries, v1, v3) = generate();
    let f32_entries = generate_f32();
    let v3_index_crc = index_crc(&v3)
        .map_err(|e| std::io::Error::other(format!("generated v3 fixture is unusable: {e}")))?;
    std::fs::create_dir_all(dir)?;
    for old in std::fs::read_dir(dir)? {
        let path = old?.path();
        if path.extension().is_some_and(|e| e == "bin") {
            std::fs::remove_file(path)?;
        }
    }
    for (e, stream) in &entries {
        std::fs::write(dir.join(e.file_name()), stream)?;
    }
    for (e, stream) in &f32_entries {
        std::fs::write(dir.join(e.file_name()), stream)?;
    }
    std::fs::write(dir.join(V1_FIXTURE_NAME), &v1)?;
    std::fs::write(dir.join(V3_FIXTURE_NAME), &v3)?;
    std::fs::write(
        dir.join(MANIFEST_NAME),
        render_manifest(&entries, &f32_entries, &v1, &v3, v3_index_crc),
    )?;
    Ok(entries.len() + f32_entries.len())
}

/// Loads the committed manifest from `dir`.
pub fn load_manifest(dir: &Path) -> Result<Manifest, String> {
    let path = dir.join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e} (run `regen` first?)", path.display()))?;
    parse_manifest(&text)
}

/// Full conformance check of the committed golden set against the
/// current encoders and decoders. Returns every divergence (empty =
/// conformant).
pub fn check(dir: &Path) -> Vec<CheckFailure> {
    let fail = |detail: String| CheckFailure { check: "golden-streams", detail };
    let manifest = match load_manifest(dir) {
        Ok(m) => m,
        Err(e) => return vec![fail(e)],
    };
    let mut failures = Vec::new();

    // Format-version pins: the committed set must have been cut against
    // the formats the code currently implements.
    if manifest.golden_version != GOLDEN_VERSION {
        failures.push(fail(format!(
            "manifest golden_version {} != code GOLDEN_VERSION {GOLDEN_VERSION}",
            manifest.golden_version
        )));
    }
    if manifest.container_version != GOLDEN_CONTAINER_VERSION {
        failures.push(fail(format!(
            "manifest container_version {} != pinned GOLDEN_CONTAINER_VERSION \
             {GOLDEN_CONTAINER_VERSION}",
            manifest.container_version
        )));
    }
    if manifest.speck_format != sperr_speck::BITSTREAM_FORMAT {
        failures.push(fail(format!(
            "manifest speck_format {} != code {}",
            manifest.speck_format,
            sperr_speck::BITSTREAM_FORMAT
        )));
    }
    if manifest.outlier_format != sperr_outlier::BITSTREAM_FORMAT {
        failures.push(fail(format!(
            "manifest outlier_format {} != code {}",
            manifest.outlier_format,
            sperr_outlier::BITSTREAM_FORMAT
        )));
    }

    // The matrix must be complete: every (input, codec, mode) cell the
    // current code would generate has a committed entry, and vice versa.
    let mut expected: Vec<String> = Vec::new();
    let inputs = corpus_inputs();
    for input in &inputs {
        let field = input.generate();
        for codec in CodecId::ALL {
            for bound in golden_bounds(codec, &field) {
                expected.push(format!("{}-{}-{}", input.id, codec.tag(), bound_tag(bound)));
            }
        }
    }
    let committed: Vec<&str> = manifest.entries.iter().map(|e| e.case_id.as_str()).collect();
    for id in &expected {
        if !committed.contains(&id.as_str()) {
            failures.push(fail(format!("matrix cell {id} missing from committed manifest")));
        }
    }
    for id in &committed {
        if !expected.iter().any(|e| e == id) {
            failures.push(fail(format!("committed entry {id} is no longer in the matrix")));
        }
    }

    for entry in &manifest.entries {
        let Some(input) = inputs.iter().find(|i| i.id == entry.input_id) else {
            continue; // already reported as a stale cell
        };
        let field = input.generate();
        let compressor = entry.codec.build();

        // Byte-for-byte: today's encoder must reproduce the committed
        // stream exactly.
        let committed_bytes = match std::fs::read(dir.join(entry.file_name())) {
            Ok(b) => b,
            Err(e) => {
                failures.push(fail(format!("{}: cannot read stream file: {e}", entry.case_id)));
                continue;
            }
        };
        if crc32(&committed_bytes) != entry.stream_crc || committed_bytes.len() != entry.stream_len
        {
            failures.push(fail(format!(
                "{}: committed file does not match its manifest digest (file corrupt or \
                 manifest stale)",
                entry.case_id
            )));
            continue;
        }
        match compressor.compress(&field, entry.bound) {
            Ok(stream) => {
                if stream != committed_bytes {
                    failures.push(fail(format!(
                        "{}: re-encoded stream differs from committed bytes ({} vs {} bytes, \
                         crc {:08x} vs {:08x}) — encoder drift",
                        entry.case_id,
                        stream.len(),
                        committed_bytes.len(),
                        crc32(&stream),
                        entry.stream_crc,
                    )));
                }
            }
            Err(e) => {
                failures.push(fail(format!("{}: re-encode failed: {e}", entry.case_id)));
            }
        }

        // Value-for-value: decoding the committed bytes must reproduce
        // the regen-time values exactly and still honor the budget.
        match compressor.decompress(&committed_bytes) {
            Ok(recon) => {
                if digest_values(&recon.data) != entry.values_crc {
                    failures.push(fail(format!(
                        "{}: decoded values differ from regen-time digest — decoder drift",
                        entry.case_id
                    )));
                }
                let budget = documented_budget(entry.codec, entry.bound, field.dims);
                if let Err((observed, allowed)) = check_budget(&field.data, &recon.data, budget) {
                    failures.push(fail(format!(
                        "{}: documented budget violated: observed {observed:e} allowed \
                         {allowed:e}",
                        entry.case_id
                    )));
                }
            }
            Err(e) => {
                failures.push(fail(format!("{}: decode failed: {e}", entry.case_id)));
            }
        }
    }

    // The f32-native set: complete, byte-for-byte reproducible through
    // compress_f32, value-for-value through decompress_f32, and still
    // within the f32-adjusted PWE budget.
    check_f32_entries(dir, &manifest, &mut failures, &fail);

    // The v1 fixture must still decode through the legacy read path and
    // match the v2 golden it was downgraded from.
    match std::fs::read(dir.join(V1_FIXTURE_NAME)) {
        Ok(v1) => {
            if v1.len() != manifest.v1_fixture.0 || crc32(&v1) != manifest.v1_fixture.1 {
                failures.push(fail("v1 fixture does not match its manifest digest".into()));
            } else if let Err(e) = golden_sperr().decompress(&v1) {
                failures.push(fail(format!("v1 fixture no longer decodes: {e}")));
            }
        }
        Err(e) => failures.push(fail(format!("cannot read v1 fixture: {e}"))),
    }

    // The v3 fixture pins the indexed container layout: bytes and index
    // CRC must match the manifest, its decode must equal the committed
    // v2 twin's decode bit-for-bit, and downgrading it back to v2 must
    // reproduce the twin's exact bytes.
    check_v3_fixture(dir, &manifest, &inputs, &mut failures, &fail);

    failures
}

fn check_f32_entries(
    dir: &Path,
    manifest: &Manifest,
    failures: &mut Vec<CheckFailure>,
    fail: &dyn Fn(String) -> CheckFailure,
) {
    let inputs = f32_inputs();
    let expected: Vec<String> =
        inputs.iter().map(|i| format!("{}-f32-sperr-pwe", i.id)).collect();
    let committed: Vec<&str> =
        manifest.f32_entries.iter().map(|e| e.case_id.as_str()).collect();
    for id in &expected {
        if !committed.contains(&id.as_str()) {
            failures.push(fail(format!("f32 cell {id} missing from committed manifest")));
        }
    }
    for id in &committed {
        if !expected.iter().any(|e| e == id) {
            failures.push(fail(format!("committed f32 entry {id} is no longer in the set")));
        }
    }

    let sperr = golden_sperr_v3();
    for entry in &manifest.f32_entries {
        let Some(input) = inputs.iter().find(|i| i.id == entry.input_id) else {
            continue; // already reported as a stale cell
        };
        let field = input.generate_f32();
        let t = field.tolerance_for_idx(15);
        if t.to_bits() != entry.tolerance.to_bits() {
            failures.push(fail(format!(
                "{}: manifest tolerance {:e} != corpus-standard {t:e}",
                entry.case_id, entry.tolerance
            )));
        }

        let committed_bytes = match std::fs::read(dir.join(entry.file_name())) {
            Ok(b) => b,
            Err(e) => {
                failures.push(fail(format!("{}: cannot read stream file: {e}", entry.case_id)));
                continue;
            }
        };
        if crc32(&committed_bytes) != entry.stream_crc || committed_bytes.len() != entry.stream_len
        {
            failures.push(fail(format!(
                "{}: committed file does not match its manifest digest (file corrupt or \
                 manifest stale)",
                entry.case_id
            )));
            continue;
        }
        match sperr.compress_f32(&field, Bound::Pwe(entry.tolerance)) {
            Ok(stream) => {
                if stream != committed_bytes {
                    failures.push(fail(format!(
                        "{}: re-encoded f32 stream differs from committed bytes ({} vs {} \
                         bytes, crc {:08x} vs {:08x}) — f32 encoder drift",
                        entry.case_id,
                        stream.len(),
                        committed_bytes.len(),
                        crc32(&stream),
                        entry.stream_crc,
                    )));
                }
            }
            Err(e) => {
                failures.push(fail(format!("{}: f32 re-encode failed: {e}", entry.case_id)));
            }
        }
        match sperr.inspect(&committed_bytes) {
            Ok(info) if !info.native_f32 => failures.push(fail(format!(
                "{}: committed stream is not marked f32-native",
                entry.case_id
            ))),
            Ok(_) => {}
            Err(e) => failures.push(fail(format!("{}: inspect failed: {e}", entry.case_id))),
        }
        match sperr.decompress_f32(&committed_bytes) {
            Ok(recon) => {
                if digest_values_f32(&recon.data) != entry.values_crc {
                    failures.push(fail(format!(
                        "{}: decoded f32 values differ from regen-time digest — decoder drift",
                        entry.case_id
                    )));
                }
                let observed = field
                    .data
                    .iter()
                    .zip(&recon.data)
                    .map(|(&a, &b)| (a as f64 - b as f64).abs())
                    .fold(0.0, f64::max);
                let allowed = f32_budget(entry.tolerance, field.range());
                if observed > allowed {
                    failures.push(fail(format!(
                        "{}: f32 PWE budget violated: observed {observed:e} allowed {allowed:e}",
                        entry.case_id
                    )));
                }
            }
            Err(e) => {
                failures.push(fail(format!("{}: f32 decode failed: {e}", entry.case_id)));
            }
        }
    }
}

/// The committed v2 golden the v3 fixture is a re-encode of: the first
/// SPERR PWE cell in matrix order (mirrors [`generate`]).
fn v3_twin_case_id(inputs: &[crate::corpus::CorpusInput]) -> Option<String> {
    for input in inputs {
        let field = input.generate();
        for bound in golden_bounds(CodecId::Sperr, &field) {
            if matches!(bound, Bound::Pwe(_)) {
                return Some(format!("{}-sperr-pwe", input.id));
            }
        }
    }
    None
}

fn check_v3_fixture(
    dir: &Path,
    manifest: &Manifest,
    inputs: &[crate::corpus::CorpusInput],
    failures: &mut Vec<CheckFailure>,
    fail: &dyn Fn(String) -> CheckFailure,
) {
    let v3 = match std::fs::read(dir.join(V3_FIXTURE_NAME)) {
        Ok(v3) => v3,
        Err(e) => {
            failures.push(fail(format!("cannot read v3 fixture: {e}")));
            return;
        }
    };
    let (len, crc, want_index_crc) = manifest.v3_fixture;
    if v3.len() != len || crc32(&v3) != crc {
        failures.push(fail("v3 fixture does not match its manifest digest".into()));
        return;
    }
    match index_crc(&v3) {
        Ok(got) => {
            if got != want_index_crc {
                failures.push(fail(format!(
                    "v3 fixture chunk-index CRC {got:08x} != manifest {want_index_crc:08x}"
                )));
            }
        }
        Err(e) => failures.push(fail(format!("v3 fixture index: {e}"))),
    }
    let Some(twin_id) = v3_twin_case_id(inputs) else {
        failures.push(fail("matrix has no SPERR PWE cell to twin the v3 fixture".into()));
        return;
    };
    let twin_bytes = match std::fs::read(dir.join(format!("{twin_id}.bin"))) {
        Ok(b) => b,
        Err(e) => {
            failures.push(fail(format!("cannot read v3 twin {twin_id}: {e}")));
            return;
        }
    };
    let sperr = golden_sperr_v3();
    match (sperr.decompress(&v3), sperr.decompress(&twin_bytes)) {
        (Ok(from_v3), Ok(from_v2)) => {
            let same = from_v3.data.len() == from_v2.data.len()
                && from_v3
                    .data
                    .iter()
                    .zip(&from_v2.data)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                failures.push(fail(format!(
                    "v3 fixture decode differs from its v2 twin {twin_id} — the index \
                     changed decoded values"
                )));
            }
        }
        (Err(e), _) => failures.push(fail(format!("v3 fixture no longer decodes: {e}"))),
        (_, Err(e)) => failures.push(fail(format!("v3 twin {twin_id} no longer decodes: {e}"))),
    }
    match sperr.downgrade_to_v2(&v3) {
        Ok(down) => {
            if down != twin_bytes {
                failures.push(fail(format!(
                    "downgrade_to_v2(v3 fixture) does not reproduce the committed {twin_id} \
                     bytes — v2 writer or index layout drift"
                )));
            }
        }
        Err(e) => failures.push(fail(format!("downgrade_to_v2 on the v3 fixture failed: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let entries = vec![(
            GoldenEntry {
                case_id: "press-3d16-sperr-pwe".into(),
                input_id: "press-3d16".into(),
                codec: CodecId::Sperr,
                bound: Bound::Pwe(1.25e-3),
                stream_len: 420,
                stream_crc: 0xdead_beef,
                values_crc: 0x0bad_f00d,
                max_err: 9.5e-4,
            },
            vec![],
        )];
        let f32_entries = vec![(
            F32GoldenEntry {
                case_id: "press-3d16-f32-sperr-pwe".into(),
                input_id: "press-3d16".into(),
                tolerance: 1.25e-3,
                stream_len: 390,
                stream_crc: 0xfeed_cafe,
                values_crc: 0x1234_5678,
                max_err: 1.1e-3,
            },
            vec![],
        )];
        let v1 = vec![1u8, 2, 3];
        let v3 = vec![4u8, 5, 6, 7];
        let text = render_manifest(&entries, &f32_entries, &v1, &v3, 0xabcd_1234);
        let m = parse_manifest(&text).unwrap();
        assert_eq!(m.golden_version, GOLDEN_VERSION);
        assert_eq!(m.container_version, GOLDEN_CONTAINER_VERSION);
        assert_eq!(m.v1_fixture, (3, crc32(&v1)));
        assert_eq!(m.v3_fixture, (4, crc32(&v3), 0xabcd_1234));
        assert_eq!(m.entries.len(), 1);
        let e = &m.entries[0];
        assert_eq!(e.case_id, "press-3d16-sperr-pwe");
        assert_eq!(e.input_id, "press-3d16");
        assert_eq!(e.codec, CodecId::Sperr);
        assert_eq!(e.bound, Bound::Pwe(1.25e-3));
        assert_eq!(e.stream_crc, 0xdead_beef);
        assert_eq!(e.max_err.to_bits(), 9.5e-4f64.to_bits());
        assert_eq!(m.f32_entries.len(), 1);
        let fe = &m.f32_entries[0];
        assert_eq!(fe.case_id, "press-3d16-f32-sperr-pwe");
        assert_eq!(fe.input_id, "press-3d16");
        assert_eq!(fe.tolerance.to_bits(), 1.25e-3f64.to_bits());
        assert_eq!(fe.stream_len, 390);
        assert_eq!(fe.stream_crc, 0xfeed_cafe);
        assert_eq!(fe.values_crc, 0x1234_5678);
        assert_eq!(fe.max_err.to_bits(), 1.1e-3f64.to_bits());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_manifest("nonsense 1").is_err());
        assert!(parse_manifest("golden_version x").is_err());
        assert!(parse_manifest("entry only-three fields here").is_err());
        assert!(parse_manifest("f32_entry too-few 1 2").is_err());
        assert!(parse_manifest("f32_entry bad-suffix 0 1 2 3 4").is_err());
        // Missing required header keys.
        assert!(parse_manifest("golden_version 1").is_err());
    }

    #[test]
    fn f32_set_covers_both_generators_times_3d_shapes() {
        let ids: Vec<&str> = f32_inputs().iter().map(|i| i.id).collect();
        assert_eq!(ids, vec!["press-3d16", "press-3d21x10x11", "nyx-3d16", "nyx-3d21x10x11"]);
    }
}
