//! Minimal JSON writer + validator for the tracked `BENCH_*.json`
//! artifacts. Hand-rolled (the build environment has no serde); supports
//! the subset the bench harness emits — objects, arrays, strings, finite
//! numbers, booleans, null — and a strict parser so CI can fail on a
//! malformed or truncated artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order on write; the parser
/// returns them sorted (BTreeMap) — order is irrelevant for validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    ///
    /// # Panics
    ///
    /// On non-finite numbers — the harness must not emit NaN/inf (JSON
    /// has no encoding for them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON cannot represent {n}");
                // Integers render without a fraction; everything else via
                // the shortest roundtrip representation Rust prints.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses `text` as a single JSON value followed only by whitespace.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            let mut seen = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(format!("duplicate key {key:?}"));
                }
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                // Surrogates unsupported — the writer never
                                // emits them.
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "invalid \\u codepoint".to_string())?,
                                );
                                *pos += 4;
                            }
                            _ => return Err("bad escape".into()),
                        }
                        *pos += 1;
                    }
                    Some(&b) if b < 0x20 => return Err("raw control char in string".into()),
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is valid UTF-8:
                        // it came from &str).
                        let start = *pos;
                        *pos += 1;
                        while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                            *pos += 1;
                        }
                        s.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if start == *pos {
                return Err(format!("unexpected character at byte {start}"));
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?}"))
        }
    }
}

/// The PR number in a `sperr-bench-prN/vM` schema tag, used to decide
/// which generation of requirements an artifact must satisfy (older
/// committed baselines stay valid under their original schema). Public
/// so the `hotpath trend` report can order artifacts by generation.
pub fn schema_pr(tag: &str) -> Option<u32> {
    let rest = tag.strip_prefix("sperr-bench-pr")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Schema check for a tracked `BENCH_*.json` artifact: well-formed JSON
/// with the tracked structure (schema tag, host info, a non-empty
/// workload list where every entry has a name and an MB/s figure, and
/// the derived ratios the acceptance criteria reference). Requirements
/// grow with the schema generation: pr4 added the SPECK stage ratios,
/// pr5 the host-metadata keys (`effective_workers`, `chunk_count`).
/// Returns a description of the first problem found.
pub fn validate_bench_artifact(text: &str) -> Result<(), String> {
    let root = parse(text)?;
    let pr = match root.get("schema") {
        Some(Json::Str(s)) if s.starts_with("sperr-bench") => schema_pr(s),
        other => return Err(format!("missing/invalid \"schema\": {other:?}")),
    };
    // Loadgen artifacts (PR 10) carry per-class latency distributions
    // instead of the throughput-workload/derived-ratio structure — a
    // different requirement set entirely.
    if matches!(root.get("kind"), Some(Json::Str(k)) if k == "loadgen") {
        return validate_loadgen(&root, pr);
    }
    let mut host_keys = vec!["host_threads", "points"];
    if pr.is_some_and(|n| n >= 5) {
        host_keys.extend(["effective_workers", "chunk_count"]);
    }
    for key in host_keys {
        match root.get(key).and_then(Json::as_num) {
            Some(n) if n >= 1.0 => {}
            other => return Err(format!("missing/invalid \"{key}\": {other:?}")),
        }
    }
    let dims = root.get("dims").and_then(Json::as_arr).ok_or("missing \"dims\"")?;
    if dims.len() != 3 || dims.iter().any(|d| d.as_num().is_none_or(|n| n < 1.0)) {
        return Err("\"dims\" must be three positive numbers".into());
    }
    let workloads =
        root.get("workloads").and_then(Json::as_arr).ok_or("missing \"workloads\"")?;
    if workloads.is_empty() {
        return Err("\"workloads\" is empty".into());
    }
    for (i, w) in workloads.iter().enumerate() {
        match w.get("name") {
            Some(Json::Str(_)) => {}
            other => return Err(format!("workload {i}: missing \"name\": {other:?}")),
        }
        match w.get("mb_per_s").and_then(Json::as_num) {
            Some(n) if n > 0.0 => {}
            other => return Err(format!("workload {i}: missing/invalid \"mb_per_s\": {other:?}")),
        }
    }
    let derived = root.get("derived").ok_or("missing \"derived\"")?;
    let mut required = vec!["zaxis_blocked_vs_per_line", "pwe_8t_vs_pre_pr_1t"];
    // PR 4 artifacts additionally pin the SPECK-stage speedup ratios the
    // acceptance criteria reference; PR 2 artifacts predate them and stay
    // valid without (the committed BENCH_pr2.json is the baseline the
    // ratios divide by).
    if pr.is_some_and(|n| n >= 4) {
        required.extend(["speck_encode_vs_pr2", "speck_decode_vs_pr2"]);
    }
    // PR 7 artifacts additionally pin the SPECK ratios against the PR 4
    // baseline (the SIMD overhaul's acceptance target) and the per-kernel
    // blocked-vs-scalar ratios.
    if pr.is_some_and(|n| n >= 7) {
        required.extend([
            "speck_encode_vs_pr4",
            "speck_decode_vs_pr4",
            "kernel_split_vs_scalar",
            "kernel_scan_vs_scalar",
            "kernel_lift_vs_scalar",
            "kernel_refine_vs_scalar",
        ]);
    }
    // PR 8 artifacts additionally pin the random-access speedups (the
    // chunk-index tentpole's acceptance numbers).
    if pr.is_some_and(|n| n >= 8) {
        required.extend([
            "region_1pct_speedup_vs_full",
            "region_eighth_speedup_vs_full",
            "region_full_vs_decompress",
        ]);
    }
    // PR 9 artifacts additionally pin the f32-native ratios: the twins
    // against the f64 pipeline (the ≥1 floor keys) and against the
    // widened path (the 1.5× end-to-end acceptance target).
    if pr.is_some_and(|n| n >= 9) {
        required.extend([
            "zaxis_f32_vs_f64",
            "speck_encode_f32_vs_f64",
            "speck_decode_f32_vs_f64",
            "kernel_split_f32_vs_f64",
            "kernel_lift_f32_vs_f64",
            "pwe_f32_vs_f64_1t",
            "pwe_f32_vs_f64_8t",
            "pwe_f32_vs_widened_8t",
            "pwe_f32_decompress_vs_f64_8t",
            "pwe_f32_decompress_vs_widened_8t",
            "pwe_coarse_f32_vs_f64_8t",
            "pwe_coarse_f32_vs_widened_8t",
            "bpp_f32_vs_f64_8t",
            "bpp_f32_vs_widened_8t",
        ]);
    }
    for key in required {
        match derived.get(key).and_then(Json::as_num) {
            Some(n) if n > 0.0 => {}
            other => return Err(format!("derived.{key} missing/invalid: {other:?}")),
        }
    }
    Ok(())
}

/// Requirement set for a `"kind": "loadgen"` artifact (PR 10): schema
/// generation ≥ 10, host metadata, and at least four traffic classes,
/// each carrying an op count, positive p50/p99 latencies in
/// milliseconds with `p99 >= p50`, and a positive MB/s figure — the
/// fields the acceptance criteria and the `trend` report read.
fn validate_loadgen(root: &Json, pr: Option<u32>) -> Result<(), String> {
    if !pr.is_some_and(|n| n >= 10) {
        return Err("\"kind\": \"loadgen\" requires schema sperr-bench-pr10 or later".into());
    }
    for key in ["host_threads", "points", "effective_workers", "chunk_count", "rounds"] {
        match root.get(key).and_then(Json::as_num) {
            Some(n) if n >= 1.0 => {}
            other => return Err(format!("missing/invalid \"{key}\": {other:?}")),
        }
    }
    let dims = root.get("dims").and_then(Json::as_arr).ok_or("missing \"dims\"")?;
    if dims.len() != 3 || dims.iter().any(|d| d.as_num().is_none_or(|n| n < 1.0)) {
        return Err("\"dims\" must be three positive numbers".into());
    }
    let classes = root.get("classes").and_then(Json::as_arr).ok_or("missing \"classes\"")?;
    if classes.len() < 4 {
        return Err(format!(
            "loadgen artifact has {} traffic class(es); the mixed-traffic contract needs >= 4",
            classes.len()
        ));
    }
    for (i, c) in classes.iter().enumerate() {
        let name = match c.get("name") {
            Some(Json::Str(s)) => s.clone(),
            other => return Err(format!("class {i}: missing \"name\": {other:?}")),
        };
        match c.get("ops").and_then(Json::as_num) {
            Some(n) if n >= 1.0 => {}
            other => return Err(format!("class {name}: missing/invalid \"ops\": {other:?}")),
        }
        let p50 = match c.get("p50_ms").and_then(Json::as_num) {
            Some(n) if n > 0.0 => n,
            other => return Err(format!("class {name}: missing/invalid \"p50_ms\": {other:?}")),
        };
        match c.get("p99_ms").and_then(Json::as_num) {
            Some(n) if n >= p50 => {}
            other => {
                return Err(format!(
                    "class {name}: \"p99_ms\" must be a number >= p50_ms ({p50}): {other:?}"
                ))
            }
        }
        match c.get("mb_per_s").and_then(Json::as_num) {
            Some(n) if n > 0.0 => {}
            other => {
                return Err(format!("class {name}: missing/invalid \"mb_per_s\": {other:?}"))
            }
        }
    }
    Ok(())
}

/// Schema check for a Chrome trace-event JSON file as emitted by the
/// telemetry exporter (`--trace`): a `traceEvents` array whose entries
/// are structurally valid `X` (complete span), `M` (metadata) or `C`
/// (counter) events, with at least one span, at least one named thread
/// track, and — when `required_names` is non-empty — an `X` event for
/// every required name. Returns the first problem found.
pub fn validate_trace_artifact(text: &str, required_names: &[&str]) -> Result<(), String> {
    let root = parse(text)?;
    let events =
        root.get("traceEvents").and_then(Json::as_arr).ok_or("missing \"traceEvents\"")?;
    if events.is_empty() {
        return Err("\"traceEvents\" is empty".into());
    }
    let mut span_names: Vec<String> = Vec::new();
    let mut thread_tracks = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            other => return Err(format!("event {i}: missing/invalid \"ph\": {other:?}")),
        };
        let name = match ev.get("name") {
            Some(Json::Str(s)) => s.clone(),
            other => return Err(format!("event {i}: missing/invalid \"name\": {other:?}")),
        };
        match ph {
            "X" => {
                for key in ["ts", "dur", "pid", "tid"] {
                    if ev.get(key).and_then(Json::as_num).is_none() {
                        return Err(format!("event {i} ({name}): missing numeric \"{key}\""));
                    }
                }
                span_names.push(name);
            }
            "M" => {
                if !matches!(
                    name.as_str(),
                    "process_name" | "thread_name" | "thread_sort_index"
                ) {
                    return Err(format!("event {i}: unknown metadata record {name:?}"));
                }
                if ev.get("args").is_none() {
                    return Err(format!("event {i} ({name}): metadata without \"args\""));
                }
                if name == "thread_name" {
                    thread_tracks += 1;
                }
            }
            "C" => {
                if ev.get("ts").and_then(Json::as_num).is_none() {
                    return Err(format!("event {i} ({name}): counter without numeric \"ts\""));
                }
                if ev.get("args").is_none() {
                    return Err(format!("event {i} ({name}): counter without \"args\""));
                }
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    if span_names.is_empty() {
        return Err("trace has no complete (\"X\") span events".into());
    }
    if thread_tracks == 0 {
        return Err("trace has no thread_name metadata (no timeline tracks)".into());
    }
    for required in required_names {
        if !span_names.iter().any(|n| n == required) {
            return Err(format!("trace has no span named {required:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Json::obj(vec![
            ("a", Json::Num(1.5)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x\"y".into())])),
            ("c", Json::obj(vec![("n", Json::Num(-3.0))])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\":1}x").is_err());
        assert!(parse("{\"a\":1, \"a\":2}").is_err());
    }

    #[test]
    fn validator_demands_schema_fields() {
        assert!(validate_bench_artifact("{}").is_err());
        let good = Json::obj(vec![
            ("schema", Json::Str("sperr-bench-pr2/v1".into())),
            ("host_threads", Json::Num(8.0)),
            ("points", Json::Num(64.0)),
            ("dims", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0), Json::Num(4.0)])),
            (
                "workloads",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::Str("x".into())),
                    ("mb_per_s", Json::Num(10.0)),
                ])]),
            ),
            (
                "derived",
                Json::obj(vec![
                    ("zaxis_blocked_vs_per_line", Json::Num(1.4)),
                    ("pwe_8t_vs_pre_pr_1t", Json::Num(2.5)),
                ]),
            ),
        ]);
        validate_bench_artifact(&good.render()).unwrap();
    }

    #[test]
    fn trace_validator_checks_structure_and_names() {
        let good = r#"{
          "displayTimeUnit": "ms",
          "traceEvents": [
            {"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"sperr"}},
            {"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"worker 0"}},
            {"ph":"X","pid":0,"tid":0,"name":"stage.speck.encode","cat":"sperr","ts":1.5,"dur":10},
            {"ph":"C","pid":0,"tid":0,"name":"speck.zero_runs","ts":2,"args":{"value":7}}
          ]
        }"#;
        validate_trace_artifact(good, &[]).unwrap();
        validate_trace_artifact(good, &["stage.speck.encode"]).unwrap();
        assert!(validate_trace_artifact(good, &["stage.wavelet.forward"])
            .unwrap_err()
            .contains("stage.wavelet.forward"));
        // Structural failures.
        assert!(validate_trace_artifact("{}", &[]).is_err());
        assert!(validate_trace_artifact(r#"{"traceEvents": []}"#, &[]).is_err());
        // Span missing "dur".
        let bad = r#"{"traceEvents": [
            {"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{}},
            {"ph":"X","pid":0,"tid":0,"name":"x","ts":1}
        ]}"#;
        assert!(validate_trace_artifact(bad, &[]).unwrap_err().contains("dur"));
        // No thread track.
        let no_track = r#"{"traceEvents": [
            {"ph":"X","pid":0,"tid":0,"name":"x","ts":1,"dur":2}
        ]}"#;
        assert!(validate_trace_artifact(no_track, &[]).unwrap_err().contains("thread_name"));
        // Unknown phase.
        let bad_ph = r#"{"traceEvents": [{"ph":"B","name":"x","ts":1}]}"#;
        assert!(validate_trace_artifact(bad_ph, &[]).is_err());
    }

    #[test]
    fn pr5_schema_demands_host_metadata() {
        let build = |schema: &str, extra: Vec<(&str, Json)>| {
            let mut pairs = vec![
                ("schema", Json::Str(schema.into())),
                ("host_threads", Json::Num(8.0)),
                ("points", Json::Num(64.0)),
                ("dims", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0), Json::Num(4.0)])),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("name", Json::Str("x".into())),
                        ("mb_per_s", Json::Num(10.0)),
                    ])]),
                ),
                (
                    "derived",
                    Json::obj(vec![
                        ("zaxis_blocked_vs_per_line", Json::Num(1.4)),
                        ("pwe_8t_vs_pre_pr_1t", Json::Num(2.5)),
                        ("speck_encode_vs_pr2", Json::Num(3.5)),
                        ("speck_decode_vs_pr2", Json::Num(2.2)),
                    ]),
                ),
            ];
            pairs.extend(extra);
            Json::obj(pairs).render()
        };
        // pr4 does not need the metadata; pr5 does.
        assert!(validate_bench_artifact(&build("sperr-bench-pr4/v1", vec![])).is_ok());
        assert!(validate_bench_artifact(&build("sperr-bench-pr5/v1", vec![]))
            .unwrap_err()
            .contains("effective_workers"));
        assert!(validate_bench_artifact(&build(
            "sperr-bench-pr5/v1",
            vec![("effective_workers", Json::Num(8.0)), ("chunk_count", Json::Num(1.0))],
        ))
        .is_ok());
    }

    #[test]
    fn pr7_schema_demands_kernel_and_pr4_ratios() {
        let build = |schema: &str, extra_derived: Vec<(&str, Json)>| {
            let mut derived = vec![
                ("zaxis_blocked_vs_per_line", Json::Num(1.4)),
                ("pwe_8t_vs_pre_pr_1t", Json::Num(2.5)),
                ("speck_encode_vs_pr2", Json::Num(3.5)),
                ("speck_decode_vs_pr2", Json::Num(2.2)),
            ];
            derived.extend(extra_derived);
            Json::obj(vec![
                ("schema", Json::Str(schema.into())),
                ("host_threads", Json::Num(8.0)),
                ("effective_workers", Json::Num(8.0)),
                ("chunk_count", Json::Num(1.0)),
                ("points", Json::Num(64.0)),
                ("dims", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0), Json::Num(4.0)])),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("name", Json::Str("x".into())),
                        ("mb_per_s", Json::Num(10.0)),
                    ])]),
                ),
                ("derived", Json::obj(derived)),
            ])
            .render()
        };
        // The pr5 requirement set is not enough under the pr7 tag.
        assert!(validate_bench_artifact(&build("sperr-bench-pr5/v1", vec![])).is_ok());
        assert!(validate_bench_artifact(&build("sperr-bench-pr7/v1", vec![]))
            .unwrap_err()
            .contains("speck_encode_vs_pr4"));
        assert!(validate_bench_artifact(&build(
            "sperr-bench-pr7/v1",
            vec![
                ("speck_encode_vs_pr4", Json::Num(2.0)),
                ("speck_decode_vs_pr4", Json::Num(1.0)),
                ("kernel_split_vs_scalar", Json::Num(1.5)),
                ("kernel_scan_vs_scalar", Json::Num(3.0)),
                ("kernel_lift_vs_scalar", Json::Num(1.1)),
                ("kernel_refine_vs_scalar", Json::Num(2.0)),
            ],
        ))
        .is_ok());
    }

    #[test]
    fn pr8_schema_demands_region_ratios() {
        let build = |schema: &str, extra_derived: Vec<(&str, Json)>| {
            let mut derived = vec![
                ("zaxis_blocked_vs_per_line", Json::Num(1.4)),
                ("pwe_8t_vs_pre_pr_1t", Json::Num(2.5)),
                ("speck_encode_vs_pr2", Json::Num(3.5)),
                ("speck_decode_vs_pr2", Json::Num(2.2)),
                ("speck_encode_vs_pr4", Json::Num(2.0)),
                ("speck_decode_vs_pr4", Json::Num(1.0)),
                ("kernel_split_vs_scalar", Json::Num(1.5)),
                ("kernel_scan_vs_scalar", Json::Num(3.0)),
                ("kernel_lift_vs_scalar", Json::Num(1.1)),
                ("kernel_refine_vs_scalar", Json::Num(2.0)),
            ];
            derived.extend(extra_derived);
            Json::obj(vec![
                ("schema", Json::Str(schema.into())),
                ("host_threads", Json::Num(8.0)),
                ("effective_workers", Json::Num(8.0)),
                ("chunk_count", Json::Num(8.0)),
                ("points", Json::Num(64.0)),
                ("dims", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0), Json::Num(4.0)])),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("name", Json::Str("x".into())),
                        ("mb_per_s", Json::Num(10.0)),
                    ])]),
                ),
                ("derived", Json::obj(derived)),
            ])
            .render()
        };
        // The pr7 requirement set is not enough under the pr8 tag.
        assert!(validate_bench_artifact(&build("sperr-bench-pr7/v1", vec![])).is_ok());
        assert!(validate_bench_artifact(&build("sperr-bench-pr8/v1", vec![]))
            .unwrap_err()
            .contains("region_1pct_speedup_vs_full"));
        assert!(validate_bench_artifact(&build(
            "sperr-bench-pr8/v1",
            vec![
                ("region_1pct_speedup_vs_full", Json::Num(6.0)),
                ("region_eighth_speedup_vs_full", Json::Num(5.5)),
                ("region_full_vs_decompress", Json::Num(1.0)),
            ],
        ))
        .is_ok());
    }

    #[test]
    fn pr9_schema_demands_f32_ratios() {
        // The pr8 requirement set is not enough under the pr9 tag: the
        // f32-native twin ratios must all be present and positive.
        let region = vec![
            ("region_1pct_speedup_vs_full", Json::Num(6.0)),
            ("region_eighth_speedup_vs_full", Json::Num(5.5)),
            ("region_full_vs_decompress", Json::Num(1.0)),
        ];
        let f32_keys = vec![
            ("zaxis_f32_vs_f64", Json::Num(1.6)),
            ("speck_encode_f32_vs_f64", Json::Num(1.1)),
            ("speck_decode_f32_vs_f64", Json::Num(1.1)),
            ("kernel_split_f32_vs_f64", Json::Num(1.8)),
            ("kernel_lift_f32_vs_f64", Json::Num(1.9)),
            ("pwe_f32_vs_f64_1t", Json::Num(1.2)),
            ("pwe_f32_vs_f64_8t", Json::Num(1.2)),
            ("pwe_f32_vs_widened_8t", Json::Num(1.6)),
            ("pwe_f32_decompress_vs_f64_8t", Json::Num(1.2)),
            ("pwe_f32_decompress_vs_widened_8t", Json::Num(1.5)),
            ("pwe_coarse_f32_vs_f64_8t", Json::Num(1.5)),
            ("pwe_coarse_f32_vs_widened_8t", Json::Num(1.7)),
            ("bpp_f32_vs_f64_8t", Json::Num(1.6)),
            ("bpp_f32_vs_widened_8t", Json::Num(1.8)),
        ];
        let build = |schema: &str, extra_derived: Vec<(&str, Json)>| {
            let mut derived = vec![
                ("zaxis_blocked_vs_per_line", Json::Num(1.4)),
                ("pwe_8t_vs_pre_pr_1t", Json::Num(2.5)),
                ("speck_encode_vs_pr2", Json::Num(3.5)),
                ("speck_decode_vs_pr2", Json::Num(2.2)),
                ("speck_encode_vs_pr4", Json::Num(2.0)),
                ("speck_decode_vs_pr4", Json::Num(1.0)),
                ("kernel_split_vs_scalar", Json::Num(1.5)),
                ("kernel_scan_vs_scalar", Json::Num(3.0)),
                ("kernel_lift_vs_scalar", Json::Num(1.1)),
                ("kernel_refine_vs_scalar", Json::Num(2.0)),
            ];
            derived.extend(extra_derived);
            Json::obj(vec![
                ("schema", Json::Str(schema.into())),
                ("host_threads", Json::Num(8.0)),
                ("effective_workers", Json::Num(8.0)),
                ("chunk_count", Json::Num(1.0)),
                ("points", Json::Num(64.0)),
                ("dims", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0), Json::Num(4.0)])),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("name", Json::Str("x".into())),
                        ("mb_per_s", Json::Num(10.0)),
                    ])]),
                ),
                ("derived", Json::obj(derived)),
            ])
            .render()
        };
        assert!(validate_bench_artifact(&build("sperr-bench-pr8/v1", region.clone())).is_ok());
        assert!(validate_bench_artifact(&build("sperr-bench-pr9/v1", region.clone()))
            .unwrap_err()
            .contains("f32_vs_f64"));
        let mut full = region;
        full.extend(f32_keys);
        assert!(validate_bench_artifact(&build("sperr-bench-pr9/v1", full)).is_ok());
    }

    #[test]
    fn loadgen_schema_demands_classes_with_quantiles() {
        let class = |name: &str, p50: f64, p99: f64| {
            Json::obj(vec![
                ("name", Json::Str(name.into())),
                ("ops", Json::Num(12.0)),
                ("p50_ms", Json::Num(p50)),
                ("p99_ms", Json::Num(p99)),
                ("mean_ms", Json::Num(p50 * 1.1)),
                ("mb_per_s", Json::Num(80.0)),
            ])
        };
        let build = |schema: &str, classes: Vec<Json>| {
            Json::obj(vec![
                ("schema", Json::Str(schema.into())),
                ("kind", Json::Str("loadgen".into())),
                ("smoke", Json::Bool(false)),
                ("host_threads", Json::Num(8.0)),
                ("effective_workers", Json::Num(8.0)),
                ("chunk_count", Json::Num(8.0)),
                ("dims", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0), Json::Num(4.0)])),
                ("points", Json::Num(64.0)),
                ("rounds", Json::Num(6.0)),
                ("classes", Json::Arr(classes)),
            ])
            .render()
        };
        let four = || {
            vec![
                class("compress_bulk_f64", 300.0, 340.0),
                class("decompress_bulk_f64", 200.0, 230.0),
                class("decode_region_small", 5.0, 9.0),
                class("decode_at_bpp_preview", 120.0, 150.0),
            ]
        };
        validate_bench_artifact(&build("sperr-bench-pr10/v1", four())).unwrap();
        // The loadgen kind is not valid under an older schema generation.
        assert!(validate_bench_artifact(&build("sperr-bench-pr9/v1", four()))
            .unwrap_err()
            .contains("pr10"));
        // Fewer than four traffic classes breaks the mixed-traffic contract.
        assert!(validate_bench_artifact(&build("sperr-bench-pr10/v1", four()[..3].to_vec()))
            .unwrap_err()
            .contains(">= 4"));
        // An inverted quantile pair (p99 < p50) is a broken histogram.
        let mut bad = four();
        bad[2] = class("decode_region_small", 9.0, 5.0);
        assert!(validate_bench_artifact(&build("sperr-bench-pr10/v1", bad))
            .unwrap_err()
            .contains("p99_ms"));
        // A loadgen artifact is exempt from the derived-ratio requirements.
        // (No "derived"/"workloads" keys above, and it still validated.)
    }

    #[test]
    fn pr4_schema_demands_speck_ratios() {
        // The same derived set that satisfies a pr2 artifact must fail
        // under the pr4 schema tag until the SPECK stage ratios appear.
        let build = |schema: &str, derived: Json| {
            Json::obj(vec![
                ("schema", Json::Str(schema.into())),
                ("host_threads", Json::Num(8.0)),
                ("points", Json::Num(64.0)),
                ("dims", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0), Json::Num(4.0)])),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("name", Json::Str("x".into())),
                        ("mb_per_s", Json::Num(10.0)),
                    ])]),
                ),
                ("derived", derived),
            ])
            .render()
        };
        let pr2_derived = || {
            vec![
                ("zaxis_blocked_vs_per_line", Json::Num(1.4)),
                ("pwe_8t_vs_pre_pr_1t", Json::Num(2.5)),
            ]
        };
        assert!(validate_bench_artifact(&build("sperr-bench-pr2/v1", Json::obj(pr2_derived())))
            .is_ok());
        assert!(validate_bench_artifact(&build("sperr-bench-pr4/v1", Json::obj(pr2_derived())))
            .is_err());
        let mut full = pr2_derived();
        full.push(("speck_encode_vs_pr2", Json::Num(3.5)));
        full.push(("speck_decode_vs_pr2", Json::Num(2.2)));
        assert!(
            validate_bench_artifact(&build("sperr-bench-pr4/v1", Json::obj(full))).is_ok()
        );
    }
}
