//! From-scratch CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) used
//! by the v2 container format for header and per-chunk payload integrity
//! checks. A table-driven byte-at-a-time implementation: the 256-entry
//! table is built once at first use.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *e = crc;
        }
        t
    })
}

/// CRC-32 of `data` (initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF — the
/// standard zlib/PNG convention). Public because it is the repo's one
/// checksum: the container uses it for integrity, and external integrity
/// tooling (the conformance golden-stream manifest) uses it for digests.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
