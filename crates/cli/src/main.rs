//! `sperr` — command-line front end for the SPERR reproduction.
//!
//! ```text
//! sperr compress   --input x.raw --output x.sperr --dims 384,384,256 --type f64 \
//!                  (--pwe T | --idx N | --bpp R | --psnr P) \
//!                  [--chunk 256,256,256] [--threads N] [--q-factor 1.5] [--no-lossless]
//! sperr decompress --input x.sperr --output y.raw --type f64 [--level L]
//! sperr info       --input x.sperr
//! sperr gen        --field miranda-pressure --dims 64,64,64 --output x.raw --type f64 [--seed S]
//! sperr eval       --original a.raw --reconstructed b.raw --dims 64,64,64 --type f64
//! ```

mod args;
mod rawio;

use args::{parse_type, Args, ScalarType};
use sperr_compress_api::{Bound, CompressError, Precision};
use sperr_core::{Sperr, SperrConfig, SperrError};
use sperr_datagen::SyntheticField;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::process::ExitCode;

/// CLI failure, carrying enough structure for a meaningful exit code.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command, malformed or missing options.
    Usage(String),
    /// Filesystem-level failure reading or writing a file.
    Io(String),
    /// A typed failure from the compression library.
    Compress(CompressError),
    /// A typed failure from the streaming pipeline: carries the stage,
    /// chunk and failure class (I/O, codec, or captured worker panic).
    Stream(SperrError),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<CompressError> for CliError {
    fn from(e: CompressError) -> Self {
        CliError::Compress(e)
    }
}

impl From<SperrError> for CliError {
    fn from(e: SperrError) -> Self {
        CliError::Stream(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Io(msg) => write!(f, "{msg}"),
            CliError::Compress(e) => write!(f, "{e}"),
            CliError::Stream(e) => write!(f, "{e}"),
        }
    }
}

/// Exit code for each codec failure class (shared by the in-memory and
/// streaming paths).
fn compress_error_code(c: &CompressError) -> u8 {
    match c {
        CompressError::Invalid(_) => 3,
        CompressError::Unsupported(_) => 4,
        CompressError::Corrupt(_) => 5,
        CompressError::Truncated(_) => 6,
        CompressError::LimitExceeded(_) => 7,
    }
}

/// Distinct exit codes per failure class, so scripts can react without
/// parsing stderr: 0 success, 1 I/O, 2 usage, one code per
/// `CompressError` variant, 8 for an internal error (captured worker
/// panic). Streaming errors map to the same classes as their in-memory
/// counterparts — a broken pipe or ENOSPC on stdout is exit 1, not a
/// panic backtrace.
fn exit_code(e: &CliError) -> u8 {
    match e {
        CliError::Io(_) => 1,
        CliError::Usage(_) => 2,
        CliError::Compress(c) => compress_error_code(c),
        CliError::Stream(s) => match s {
            SperrError::Io { .. } => 1,
            SperrError::Codec { source, .. } => compress_error_code(source),
            SperrError::Panic { .. } => 8,
        },
    }
}

const USAGE: &str = "\
sperr — lossy scientific data compression (SPERR reproduction)

USAGE:
  sperr compress   --input RAW --output SPERR --dims NX,NY[,NZ] [--dtype f32|f64]
                   (--pwe T | --idx N | --bpp R | --psnr P)
                   [--chunk CX,CY,CZ] [--threads N] [--q-factor F] [--no-lossless]
                   [--stream] [--in-flight N] [--verbose] [--stats] [--trace FILE]
                   [--metrics FILE]
  sperr decompress --input SPERR --output RAW [--dtype f32|f64] [--level L]
                   [--region X0:X1,Y0:Y1,Z0:Z1] [--preview-bpp R]
                   [--stream] [--in-flight N] [--resilient]
                   [--threads N] [--verbose] [--stats] [--trace FILE]
                   [--metrics FILE]
  sperr info       --input SPERR [--verify] [--verbose]
  sperr metrics    --input SPERR [--json] [--threads N]
  sperr gen        --field NAME --dims NX,NY[,NZ] --output RAW [--dtype f32|f64] [--seed S]
  sperr eval       --original RAW --reconstructed RAW --dims NX,NY[,NZ] [--dtype f32|f64]

Bounds: --pwe is an absolute point-wise error tolerance; --idx N sets it to
range/2^N (paper Table I); --bpp targets a size in bits per point (no error
guarantee); --psnr targets an average error in dB.

Precision: --dtype names the raw file's scalar width (--type is the legacy
spelling); when omitted it is inferred from a .f32/.f64 file extension.
f32 inputs compress through the native single-precision pipeline (streams
decode back to f32, half the memory traffic); f64 inputs through the
double-precision one. Decompression defaults its output width to the
stream's recorded precision, and refuses to narrow f64 data to f32 output
unless --dtype f32 is given explicitly.

Random access: --region decodes only the chunks intersecting the given
half-open voxel box (axes left out default to 0:1) and writes just that
sub-volume; container v3 streams seek via the chunk index, older streams
fall back to a chunk-table walk. --preview-bpp decodes a coarse preview
by truncating each chunk's embedded SPECK stream at the given bitrate
(no error guarantee; outlier corrections are skipped). Both need random
access and are rejected in --stream mode; --region, --preview-bpp and
--level are mutually exclusive.

--verify checks the stream's integrity checksums (container v2+) without
decompressing; corrupt chunks are listed and reflected in the exit code.
--verbose adds per-stage wall times (wavelet / SPECK / outlier detection
and coding / container / lossless); for info it runs a timed decode to
produce them.
--stats prints a telemetry summary (per-span CPU vs wall time, counters,
per-worker utilization); --trace FILE writes Chrome trace-event JSON
loadable in Perfetto (ui.perfetto.dev) or chrome://tracing; --metrics FILE
exports latency/size histograms with p50/p90/p99/p999 quantiles and memory
high-water marks as Prometheus text exposition (JSON when FILE ends in
.json). `sperr metrics --input S` runs a recorded decode and prints the
exposition to stdout. All need a build with the `telemetry` cargo feature;
without it a warning is printed and nothing is recorded. In --stream mode
with data on stdout the summaries move to stderr.

Streaming: --stream (implied when --input or --output is \"-\") drives a
bounded-memory pipeline instead of loading the whole volume; \"-\" means
stdin/stdout, and the summary moves to stderr when data goes to stdout.
--in-flight N caps raw chunk buffers in flight (0 = 2x threads; never
below one chunk layer). Streaming compress takes --pwe or --bpp (--idx
and --psnr need full-volume statistics); streaming decompress rejects
--level, and --resilient zero-fills corrupt chunks and keeps going
instead of failing.

Exit codes: 0 ok, 1 I/O, 2 usage, 3 invalid input, 4 unsupported,
5 corrupt stream, 6 truncated stream, 7 resource limit exceeded,
8 internal error (captured worker panic).

Fields for gen: miranda-pressure miranda-viscosity miranda-vx miranda-density
s3d-ch4 s3d-temp s3d-vx nyx-dm nyx-vx qmcpack image2d";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exit_code(&e))
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(rest)?;
    if args.flag("help") {
        println!("{USAGE}");
        return Ok(());
    }
    if !args.positional().is_empty() {
        return Err(CliError::Usage(format!("unexpected argument: {}", args.positional()[0])));
    }
    match cmd.as_str() {
        "compress" => cmd_compress(&args),
        "decompress" => cmd_decompress(&args),
        "info" => cmd_info(&args),
        "metrics" => cmd_metrics(&args),
        "gen" => cmd_gen(&args),
        "eval" => cmd_eval(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other}; run `sperr help`"))),
    }
}

/// Per-stage timing table for `--verbose`. Times are summed across chunks
/// (serial CPU time, not wall time when threads overlap); MB/s is computed
/// over the full volume's f64 footprint. Writes to `out` so streaming
/// mode can keep stdout clean for data.
fn print_stage_times_to(out: &mut dyn Write, stages: &sperr_core::StageTimes, num_points: usize) {
    let mb = (num_points * 8) as f64 / 1e6;
    fn row(out: &mut dyn Write, mb: f64, name: &str, d: std::time::Duration) {
        let s = d.as_secs_f64();
        if s > 0.0 {
            writeln!(out, "  {name:<16} {s:>9.4} s  {:>9.1} MB/s", mb / s).ok();
        } else {
            // Stage skipped in this mode (e.g. outlier pass in BPP decode).
            writeln!(out, "  {name:<16} {s:>9.4} s          -").ok();
        }
    }
    writeln!(out, "stage times (per-stage CPU, summed over chunks):").ok();
    row(out, mb, "wavelet", stages.wavelet);
    row(out, mb, "speck", stages.speck);
    row(out, mb, "locate-outliers", stages.locate_outliers);
    row(out, mb, "outlier-coding", stages.outlier_coding);
    row(out, mb, "container", stages.container);
    row(out, mb, "lossless", stages.lossless);
    row(out, mb, "total", stages.total());
}

fn print_stage_times(stages: &sperr_core::StageTimes, num_points: usize) {
    print_stage_times_to(&mut std::io::stdout(), stages, num_points);
}

/// Opens a streaming input endpoint: `-` is stdin, anything else a file
/// (buffered).
fn open_reader(path: &str) -> Result<Box<dyn Read>, CliError> {
    if path == "-" {
        Ok(Box::new(std::io::stdin().lock()))
    } else {
        let f = std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        Ok(Box::new(BufReader::new(f)))
    }
}

/// Opens a streaming output endpoint: `-` is stdout, anything else a file
/// (buffered).
fn open_writer(path: &str) -> Result<Box<dyn Write>, CliError> {
    if path == "-" {
        Ok(Box::new(std::io::stdout().lock()))
    } else {
        let f = std::fs::File::create(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        Ok(Box::new(BufWriter::new(f)))
    }
}

/// Human-readable run summary for streaming mode; routed to stderr when
/// the data stream owns stdout.
fn stream_say(output: &str, quiet: bool, msg: String) {
    if quiet {
        return;
    }
    if output == "-" {
        eprintln!("{msg}");
    } else {
        println!("{msg}");
    }
}

/// Telemetry capture around one CLI operation: `--stats` prints an
/// aggregate summary after the run, `--trace FILE` writes Chrome
/// trace-event JSON, `--metrics FILE` exports the histogram snapshot
/// (Prometheus text exposition, or JSON for a `.json` path). All are
/// inert (with a warning) when the binary was built without the
/// `telemetry` feature.
struct TelemetryScope {
    stats: bool,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    /// Route the human-readable summaries to stderr (streaming mode with
    /// data on stdout).
    to_stderr: bool,
}

impl TelemetryScope {
    /// Reads the flags and, when any is present, opens a recording
    /// session (or warns that the build cannot record).
    fn begin(args: &Args) -> TelemetryScope {
        Self::begin_routed(args, false)
    }

    /// [`TelemetryScope::begin`] for streaming commands: when the data
    /// stream owns stdout, summaries move to stderr so `--stats` and
    /// `--stream -` compose.
    fn begin_stream(args: &Args, output: &str) -> TelemetryScope {
        Self::begin_routed(args, output == "-")
    }

    fn begin_routed(args: &Args, to_stderr: bool) -> TelemetryScope {
        let scope = TelemetryScope {
            stats: args.flag("stats"),
            trace: args.opt("trace").map(|p| Path::new(p).to_path_buf()),
            metrics: args.opt("metrics").map(|p| Path::new(p).to_path_buf()),
            to_stderr,
        };
        if scope.wanted() {
            if sperr_telemetry::is_enabled() {
                sperr_telemetry::start();
            } else {
                eprintln!(
                    "warning: this build has no `telemetry` feature; \
                     --stats/--trace/--metrics will record nothing"
                );
            }
        }
        scope
    }

    fn wanted(&self) -> bool {
        self.stats || self.trace.is_some() || self.metrics.is_some()
    }

    /// Stops the session and emits whatever was requested.
    fn finish(self) -> Result<(), CliError> {
        if !self.wanted() || !sperr_telemetry::is_enabled() {
            return Ok(());
        }
        let report = sperr_telemetry::stop();
        let (mut err_out, mut std_out);
        let out: &mut dyn Write = if self.to_stderr {
            err_out = std::io::stderr();
            &mut err_out
        } else {
            std_out = std::io::stdout();
            &mut std_out
        };
        if let Some(path) = &self.trace {
            std::fs::write(path, report.chrome_trace())
                .map_err(|e| CliError::Io(e.to_string()))?;
            writeln!(out, "trace:       {} events -> {}", report.event_count(), path.display())
                .ok();
        }
        if let Some(path) = &self.metrics {
            let snap = sperr_telemetry::MetricsRegistry::global().snapshot();
            let text = if path.extension().is_some_and(|e| e == "json") {
                snap.render_json()
            } else {
                snap.render_prometheus()
            };
            std::fs::write(path, text).map_err(|e| CliError::Io(e.to_string()))?;
            writeln!(out, "metrics:     {} series -> {}", snap.entries.len(), path.display())
                .ok();
        }
        if self.stats {
            print_telemetry_stats_to(out, &report);
        }
        Ok(())
    }
}

/// The `--stats` report: per-span CPU (summed across workers) vs wall
/// (interval union) time, counter totals and per-worker utilization.
fn print_telemetry_stats_to(out: &mut dyn Write, report: &sperr_telemetry::Report) {
    if report.is_empty() {
        writeln!(out, "telemetry:   nothing recorded").ok();
        return;
    }
    let session_ns = report.wall_ns();
    writeln!(
        out,
        "telemetry:   session {:.3} ms wall, {} events",
        session_ns as f64 / 1e6,
        report.event_count()
    )
    .ok();
    writeln!(out, "  {:<28} {:>7} {:>11} {:>11} {:>6}", "span", "count", "cpu ms", "wall ms", "par")
        .ok();
    for s in report.span_summary() {
        let cpu = s.cpu_ns as f64 / 1e6;
        let wall = s.wall_ns as f64 / 1e6;
        let par = if s.wall_ns > 0 { s.cpu_ns as f64 / s.wall_ns as f64 } else { 0.0 };
        writeln!(
            out,
            "  {:<28} {:>7} {:>11.3} {:>11.3} {:>5.2}x",
            s.label, s.count, cpu, wall, par
        )
        .ok();
    }
    let counters = report.counter_totals();
    if !counters.is_empty() {
        writeln!(out, "  counters:").ok();
        for (label, total) in counters {
            writeln!(out, "    {label:<30} {total}").ok();
        }
    }
    writeln!(out, "  workers:").ok();
    for (name, busy_ns) in report.track_busy_ns() {
        let pct =
            if session_ns > 0 { 100.0 * busy_ns as f64 / session_ns as f64 } else { 0.0 };
        writeln!(
            out,
            "    {name:<12} busy {:>9.3} ms  ({pct:>5.1}% of session)",
            busy_ns as f64 / 1e6
        )
        .ok();
    }
    if report.dropped > 0 {
        writeln!(out, "  dropped events: {} (ring buffers filled)", report.dropped).ok();
    }
}

/// Infers the raw-file scalar type from a `.f32` / `.f64` file extension.
fn infer_dtype(path: &str) -> Option<ScalarType> {
    match Path::new(path).extension()?.to_str()? {
        "f32" => Some(ScalarType::F32),
        "f64" => Some(ScalarType::F64),
        _ => None,
    }
}

/// Resolves the raw-file scalar type: an explicit `--dtype` (or the legacy
/// `--type` spelling) wins, else the extension of `path` decides. Returns
/// the type and whether it was explicit — lossy narrowing on output is
/// only allowed when it was.
fn resolve_dtype(args: &Args, path: &str) -> Result<Option<(ScalarType, bool)>, String> {
    if let Some(s) = args.opt("dtype").or_else(|| args.opt("type")) {
        return Ok(Some((parse_type(s)?, true)));
    }
    Ok(infer_dtype(path).map(|t| (t, false)))
}

/// Like [`resolve_dtype`] but required: errors when neither flag nor
/// extension names a type.
fn require_dtype(args: &Args, path: &str) -> Result<(ScalarType, bool), CliError> {
    resolve_dtype(args, path)?.ok_or_else(|| {
        CliError::Usage(format!(
            "cannot tell f32 from f64 for {path}: pass --dtype f32|f64 \
             (or use a .f32/.f64 file extension)"
        ))
    })
}

/// Parses the bound options; `tol_for_idx` supplies the Table I
/// range/2^idx translation when `--idx` is given (it needs the data).
fn parse_bound(
    args: &Args,
    tol_for_idx: impl FnOnce(u32) -> f64,
) -> Result<Bound, CliError> {
    match (
        args.opt_f64("pwe")?,
        args.opt_usize("idx")?,
        args.opt_f64("bpp")?,
        args.opt_f64("psnr")?,
    ) {
        (Some(t), None, None, None) => Ok(Bound::Pwe(t)),
        (None, Some(idx), None, None) => Ok(Bound::Pwe(tol_for_idx(idx as u32))),
        (None, None, Some(r), None) => Ok(Bound::Bpp(r)),
        (None, None, None, Some(p)) => Ok(Bound::Psnr(p)),
        _ => Err(CliError::Usage(
            "give exactly one of --pwe, --idx, --bpp, --psnr".into(),
        )),
    }
}

fn build_sperr(args: &Args) -> Result<Sperr, String> {
    let mut cfg = SperrConfig::default();
    if let Some(chunk) = args.opt_dims("chunk")? {
        cfg.chunk_dims = chunk;
    }
    if let Some(threads) = args.opt_usize("threads")? {
        cfg.num_threads = threads;
    }
    if let Some(qf) = args.opt_f64("q-factor")? {
        if qf <= 0.0 {
            return Err("--q-factor must be positive".into());
        }
        cfg.q_factor = qf;
    }
    if args.flag("no-lossless") {
        cfg.lossless = false;
    }
    if let Some(n) = args.opt_usize("in-flight")? {
        cfg.in_flight_chunks = n;
    }
    Ok(Sperr::new(cfg))
}

fn cmd_compress(args: &Args) -> Result<(), CliError> {
    let input_arg = args.req("input")?.to_string();
    let output_arg = args.req("output")?.to_string();
    if args.flag("stream") || input_arg == "-" || output_arg == "-" {
        return cmd_compress_stream(args, &input_arg, &output_arg);
    }
    let input = Path::new(&input_arg).to_path_buf();
    let output = Path::new(&output_arg).to_path_buf();
    let dims = args.req_dims("dims")?;
    let (ty, _) = require_dtype(args, &input_arg)?;
    let n: usize = dims.iter().product();

    let sperr = build_sperr(args)?;
    let scope = TelemetryScope::begin(args);
    // f32 inputs run the native-width pipeline (tag-2 streams that decode
    // back to f32); f64 inputs run the double-precision path.
    let (stream, stats) = match ty {
        ScalarType::F32 => {
            let field = rawio::read_field_f32(&input, dims)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let bound = parse_bound(args, |idx| field.tolerance_for_idx(idx))?;
            sperr.compress_f32_with_stats(&field, bound)?
        }
        ScalarType::F64 => {
            let field = rawio::read_field(&input, dims, ty)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let bound = parse_bound(args, |idx| field.tolerance_for_idx(idx))?;
            sperr.compress_with_stats(&field, bound)?
        }
    };
    scope.finish()?;
    std::fs::write(&output, &stream).map_err(|e| CliError::Io(e.to_string()))?;
    if !args.flag("quiet") {
        let raw = n * match ty { ScalarType::F32 => 4, ScalarType::F64 => 8 };
        println!(
            "{} -> {}: {} -> {} bytes ({:.2}x, {:.3} bpp; speck {:.3} bpp, outliers {:.3} bpp / {})",
            input.display(),
            output.display(),
            raw,
            stream.len(),
            raw as f64 / stream.len() as f64,
            stats.bpp(),
            stats.speck_bpp(),
            stats.outlier_bpp(),
            stats.num_outliers,
        );
        if args.flag("verbose") {
            print_stage_times(&stats.stage_times, n);
        }
    }
    Ok(())
}

/// Streaming compression: raw scalars in from a file or stdin, SPERR
/// stream out to a file or stdout, bounded raw-chunk memory throughout.
fn cmd_compress_stream(args: &Args, input: &str, output: &str) -> Result<(), CliError> {
    let dims = args.req_dims("dims")?;
    let (ty, _) = require_dtype(args, input)?;
    let bound = match (
        args.opt_f64("pwe")?,
        args.opt_usize("idx")?,
        args.opt_f64("bpp")?,
        args.opt_f64("psnr")?,
    ) {
        (Some(t), None, None, None) => Bound::Pwe(t),
        (None, None, Some(r), None) => Bound::Bpp(r),
        (None, Some(_), None, None) => {
            return Err(CliError::Usage(
                "--idx derives the tolerance from the full volume's range; \
                 streaming mode needs an absolute --pwe (or --bpp)"
                    .into(),
            ))
        }
        (None, None, None, Some(_)) => {
            return Err(CliError::Usage(
                "--psnr needs full-volume statistics; streaming mode supports --pwe and --bpp"
                    .into(),
            ))
        }
        _ => {
            return Err(CliError::Usage(
                "give exactly one of --pwe, --bpp in streaming mode".into(),
            ))
        }
    };
    let sperr = build_sperr(args)?;
    let scope = TelemetryScope::begin_stream(args, output);
    let reader = open_reader(input)?;
    let writer = open_writer(output)?;
    // f32 wires stream through the native-width pipeline (tag-2 output,
    // byte-identical to the in-memory compress_f32); f64 through the
    // double-precision one.
    let report = match ty {
        ScalarType::F32 => sperr.compress_stream_f32(reader, writer, dims, bound)?,
        ScalarType::F64 => {
            sperr.compress_stream(reader, writer, dims, Precision::Double, bound)?
        }
    };
    scope.finish()?;
    stream_say(
        output,
        args.flag("quiet"),
        format!(
            "{input} -> {output}: {} -> {} bytes ({:.2}x, {:.3} bpp; {} chunks, \
             in-flight peak {}/{})",
            report.bytes_in,
            report.bytes_out,
            report.bytes_in as f64 / report.bytes_out as f64,
            report.stats.bpp(),
            report.n_chunks,
            report.peak_in_flight,
            report.in_flight_budget,
        ),
    );
    if args.flag("verbose") && !args.flag("quiet") {
        let n: usize = dims.iter().product();
        if output == "-" {
            print_stage_times_to(&mut std::io::stderr(), &report.stats.stage_times, n);
        } else {
            print_stage_times(&report.stats.stage_times, n);
        }
    }
    Ok(())
}

/// Streaming decompression: SPERR stream in, raw scalars out, decoded
/// chunks bounded by the in-flight budget. `--resilient` zero-fills
/// corrupt chunks and keeps the stream going instead of failing.
fn cmd_decompress_stream(args: &Args, input: &str, output: &str) -> Result<(), CliError> {
    // Wire precision: explicit --dtype/--type or the output extension;
    // when neither is given the stream's own precision decides.
    let precision = resolve_dtype(args, output)?.map(|(ty, _)| match ty {
        ScalarType::F32 => Precision::Single,
        ScalarType::F64 => Precision::Double,
    });
    if args.opt_usize("level")?.unwrap_or(0) > 0 {
        return Err(CliError::Usage(
            "--level (multiresolution) needs random access; not available in streaming mode"
                .into(),
        ));
    }
    if args.opt("region").is_some() || args.opt("preview-bpp").is_some() {
        return Err(CliError::Usage(
            "--region/--preview-bpp need random access into the container; \
             not available in streaming mode"
                .into(),
        ));
    }
    let sperr = build_sperr(args)?;
    let scope = TelemetryScope::begin_stream(args, output);
    let reader = open_reader(input)?;
    let writer = open_writer(output)?;
    let quiet = args.flag("quiet");
    let report = if args.flag("resilient") {
        let res = sperr.decompress_stream_resilient(reader, writer, precision)?;
        let bad: Vec<usize> = res
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, sperr_core::ChunkStatus::Ok))
            .map(|(i, _)| i)
            .collect();
        if !bad.is_empty() {
            eprintln!(
                "warning: {} of {} chunks corrupt, zero-filled: {bad:?}",
                bad.len(),
                res.report.n_chunks
            );
        }
        res.report
    } else {
        sperr.decompress_stream(reader, writer, precision)?
    };
    scope.finish()?;
    stream_say(
        output,
        quiet,
        format!(
            "{input} -> {output}: {} -> {} bytes ({} chunks, in-flight peak {}/{})",
            report.bytes_in,
            report.bytes_out,
            report.n_chunks,
            report.peak_in_flight,
            report.in_flight_budget,
        ),
    );
    Ok(())
}

fn cmd_decompress(args: &Args) -> Result<(), CliError> {
    let input_arg = args.req("input")?.to_string();
    let output_arg = args.req("output")?.to_string();
    if args.flag("stream") || input_arg == "-" || output_arg == "-" {
        return cmd_decompress_stream(args, &input_arg, &output_arg);
    }
    if args.flag("resilient") {
        return Err(CliError::Usage(
            "--resilient is a streaming-mode option; add --stream".into(),
        ));
    }
    let input = Path::new(&input_arg).to_path_buf();
    let output = Path::new(&output_arg).to_path_buf();
    let dtype = resolve_dtype(args, &output_arg)?;
    let level = args.opt_usize("level")?.unwrap_or(0);
    let region = args.opt_region("region")?;
    let preview_bpp = args.opt_f64("preview-bpp")?;
    let exclusive = (level > 0) as u8 + region.is_some() as u8 + preview_bpp.is_some() as u8;
    if exclusive > 1 {
        return Err(CliError::Usage(
            "--region, --preview-bpp and --level are mutually exclusive".into(),
        ));
    }
    let stream = std::fs::read(&input).map_err(|e| CliError::Io(e.to_string()))?;
    let sperr = build_sperr(args)?;
    let info = sperr.inspect(&stream)?;
    // Output type defaults to the stream's own precision.
    let (ty, explicit) = dtype.unwrap_or((
        match info.precision {
            Precision::Single => ScalarType::F32,
            Precision::Double => ScalarType::F64,
        },
        false,
    ));
    // Per-stage times only exist for the full-resolution path; multires,
    // region and preview decodes skip stages, so their timings would not
    // be comparable.
    let verbose = args.flag("verbose") && exclusive == 0;

    // f32-native streams headed to f32 output decode at native width —
    // the samples never materialize as f64.
    if info.native_f32 && ty == ScalarType::F32 && exclusive == 0 {
        let scope = TelemetryScope::begin(args);
        let (field, stats) = sperr.decompress_f32_with_stats(&stream)?;
        scope.finish()?;
        rawio::write_field_f32(&output, &field).map_err(|e| CliError::Io(e.to_string()))?;
        if !args.flag("quiet") {
            println!(
                "{} -> {}: {}x{}x{} F32 (native)",
                input.display(),
                output.display(),
                field.dims[0],
                field.dims[1],
                field.dims[2],
            );
            if verbose {
                print_stage_times(&stats.stage_times, field.len());
            }
        }
        return Ok(());
    }

    let scope = TelemetryScope::begin(args);
    let mut note = String::new();
    let (field, stats) = if let Some((lo, hi)) = region {
        let (field, report) = sperr.decode_region(&stream, lo, hi)?;
        if !report.all_ok() {
            let bad: Vec<usize> = report
                .chunk_ids
                .iter()
                .zip(&report.statuses)
                .filter(|(_, s)| !matches!(s, sperr_core::ChunkStatus::Ok))
                .map(|(&id, _)| id)
                .collect();
            return Err(CliError::Compress(CompressError::Corrupt(format!(
                "region decode hit damaged chunks {bad:?}"
            ))));
        }
        note = format!(
            " (region {}:{},{}:{},{}:{} — {} chunk(s) via {})",
            lo[0], hi[0], lo[1], hi[1], lo[2], hi[2],
            report.chunk_ids.len(),
            if report.used_index { "index seek" } else { "chunk-table scan" },
        );
        (field, None)
    } else if let Some(bpp) = preview_bpp {
        note = format!(" (preview at {bpp} bpp)");
        (sperr.decode_at_bpp(&stream, bpp)?, None)
    } else if verbose {
        let (field, stats) = sperr.decompress_with_stats(&stream)?;
        (field, Some(stats))
    } else {
        (sperr.decompress_multires(&stream, level)?, None)
    };
    scope.finish()?;
    rawio::write_field(&output, &field, ty, explicit).map_err(|e| CliError::Io(e.to_string()))?;
    if !args.flag("quiet") {
        if level > 0 {
            note = format!(" (resolution level {level})");
        }
        println!(
            "{} -> {}: {}x{}x{} {:?}{note}",
            input.display(),
            output.display(),
            field.dims[0],
            field.dims[1],
            field.dims[2],
            ty,
        );
        if let Some(stats) = &stats {
            print_stage_times(&stats.stage_times, field.len());
        }
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let input = Path::new(args.req("input")?).to_path_buf();
    let stream = std::fs::read(&input).map_err(|e| CliError::Io(e.to_string()))?;
    let sperr = Sperr::new(SperrConfig::default());
    let info = sperr.inspect(&stream)?;
    println!("file:        {}", input.display());
    println!("format:      container v{}", info.version);
    println!("stream:      {} bytes (lossless pass: {})", stream.len(), info.lossless);
    println!("dims:        {}x{}x{}", info.dims[0], info.dims[1], info.dims[2]);
    let prec = if info.native_f32 {
        "f32 (native payload)"
    } else {
        match info.precision {
            sperr_compress_api::Precision::Single => "f32 source (legacy f64 payload)",
            sperr_compress_api::Precision::Double => "f64",
        }
    };
    println!("precision:   {prec}");
    println!("chunks:      {} of {}x{}x{}", info.n_chunks, info.chunk_dims[0], info.chunk_dims[1], info.chunk_dims[2]);
    let (mode, unit) = match info.mode {
        sperr_core::Mode::Pwe => ("PWE-bounded", "tolerance"),
        sperr_core::Mode::Bpp => ("size-bounded", "bits per point"),
        sperr_core::Mode::Rmse => ("average-error", "PSNR dB"),
    };
    println!("mode:        {mode} ({unit} = {:.6e})", info.bound_value);
    println!("payloads:    speck {} B, outliers {} B", info.speck_bytes, info.outlier_bytes);
    let n: usize = info.dims.iter().product();
    println!("bitrate:     {:.4} bpp", stream.len() as f64 * 8.0 / n as f64);
    // Instrumentation is byte-transparent by contract (DESIGN.md §16):
    // streams from instrumented and plain builds are identical, so
    // provenance is reported for *this* binary, not read from the bytes.
    println!(
        "telemetry:   {}",
        if sperr_telemetry::is_enabled() {
            "this build is instrumented (recording never alters stream bytes)"
        } else {
            "this build is not instrumented (`telemetry` feature off)"
        }
    );
    match &info.chunk_index {
        Some(index) => {
            println!("index:       {} entries (random access: indexed seek)", index.len());
            println!("  {:>5}  {:<12} {:>10}  {:>9}  {:>12}", "chunk", "coords", "offset", "bytes", "max err");
            let shown = if args.flag("verbose") { index.len() } else { index.len().min(8) };
            for (i, e) in index.iter().take(shown).enumerate() {
                let err = if e.max_err.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.3e}", e.max_err)
                };
                println!(
                    "  {i:>5}  {:<12} {:>10}  {:>9}  {err:>12}",
                    format!("{},{},{}", e.coords[0], e.coords[1], e.coords[2]),
                    e.offset,
                    e.len,
                );
            }
            if shown < index.len() {
                println!("  ... {} more (use --verbose for all)", index.len() - shown);
            }
        }
        None => {
            println!(
                "index:       none (container v{} predates the chunk index; \
                 random access falls back to a chunk-table scan)",
                info.version
            );
        }
    }
    if args.flag("verbose") {
        // A timed full decode, to report where decompression time goes.
        let t0 = std::time::Instant::now();
        let (field, stats) = sperr.decompress_with_stats(&stream)?;
        let wall = t0.elapsed();
        println!("decode:      {:.4} s wall", wall.as_secs_f64());
        print_stage_times(&stats.stage_times, field.len());
    }
    if args.flag("verify") {
        let report = sperr.verify(&stream)?;
        if !report.checksummed {
            println!("verify:      no checksums (v1 stream) — nothing to check");
        } else if report.is_ok() {
            println!("verify:      all {} chunk checksums OK", report.n_chunks);
        } else {
            println!(
                "verify:      {}/{} chunk checksums FAILED (chunks {:?})",
                report.corrupt_chunks.len(),
                report.n_chunks,
                report.corrupt_chunks
            );
            return Err(CliError::Compress(CompressError::Corrupt(format!(
                "{} of {} chunk payloads failed checksum verification",
                report.corrupt_chunks.len(),
                report.n_chunks
            ))));
        }
    }
    Ok(())
}

/// `sperr metrics`: runs a recorded decode of the input stream and
/// prints the resulting histogram snapshot — Prometheus text exposition
/// by default, JSON with `--json`. This is the scrape-style surface of
/// the metrics layer: one command, machine-readable output on stdout.
fn cmd_metrics(args: &Args) -> Result<(), CliError> {
    let input = Path::new(args.req("input")?).to_path_buf();
    let stream = std::fs::read(&input).map_err(|e| CliError::Io(e.to_string()))?;
    if !sperr_telemetry::is_enabled() {
        eprintln!(
            "warning: this build has no `telemetry` feature; \
             the snapshot below is empty"
        );
    }
    let sperr = build_sperr(args)?;
    sperr_telemetry::start();
    let decode = sperr.decompress_with_stats(&stream);
    let _ = sperr_telemetry::stop();
    decode?;
    // Snapshots survive stop(); shards are cleared by the next start().
    let snap = sperr_telemetry::MetricsRegistry::global().snapshot();
    let text =
        if args.flag("json") { snap.render_json() } else { snap.render_prometheus() };
    print!("{text}");
    Ok(())
}

fn field_by_name(name: &str) -> Result<SyntheticField, String> {
    Ok(match name {
        "miranda-pressure" => SyntheticField::MirandaPressure,
        "miranda-viscosity" => SyntheticField::MirandaViscosity,
        "miranda-vx" => SyntheticField::MirandaVelocityX,
        "miranda-density" => SyntheticField::MirandaDensity,
        "s3d-ch4" => SyntheticField::S3dCh4,
        "s3d-temp" => SyntheticField::S3dTemperature,
        "s3d-vx" => SyntheticField::S3dVelocityX,
        "nyx-dm" => SyntheticField::NyxDarkMatterDensity,
        "nyx-vx" => SyntheticField::NyxVelocityX,
        "qmcpack" => SyntheticField::Qmcpack,
        "image2d" => SyntheticField::Image2d,
        _ => return Err(format!("unknown field {name}; run `sperr help`")),
    })
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let name = args.req("field")?;
    let dims = args.req_dims("dims")?;
    let output_arg = args.req("output")?.to_string();
    let output = Path::new(&output_arg).to_path_buf();
    let (ty, _) = require_dtype(args, &output_arg)?;
    let seed = args.opt_usize("seed")?.unwrap_or(42) as u64;
    let field = field_by_name(name)?.generate(dims, seed);
    // Generating raw test data at a requested width is a sanctioned
    // narrowing — there is no "original" being degraded.
    rawio::write_field(&output, &field, ty, true).map_err(|e| CliError::Io(e.to_string()))?;
    if !args.flag("quiet") {
        let msg = format!(
            "generated {name} {}x{}x{} (range {:.4e}) -> {}",
            dims[0],
            dims[1],
            dims[2],
            field.range(),
            output.display()
        );
        // The raw volume owns stdout when writing to `-`.
        if output.as_os_str() == "-" {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), CliError> {
    let dims = args.req_dims("dims")?;
    let (ty, _) = require_dtype(args, args.req("original")?)?;
    let a = rawio::read_field(Path::new(args.req("original")?), dims, ty)
        .map_err(|e| CliError::Io(e.to_string()))?;
    let b = rawio::read_field(Path::new(args.req("reconstructed")?), dims, ty)
        .map_err(|e| CliError::Io(e.to_string()))?;
    println!("points:        {}", a.len());
    println!("range:         {:.6e}", a.range());
    println!("rmse:          {:.6e}", sperr_metrics::rmse(&a.data, &b.data));
    println!("max pwe:       {:.6e}", sperr_metrics::max_pwe(&a.data, &b.data));
    println!("psnr:          {:.3} dB", sperr_metrics::psnr(&a.data, &b.data));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_cli_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("sperr_cli_main_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let restored = dir.join("y.raw");

        run(&w(&["gen", "--field", "s3d-temp", "--dims", "24,24,16", "--output",
                 raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "24,24,16", "--type", "f64",
                 "--idx", "15", "--quiet"]))
            .unwrap();
        run(&w(&["info", "--input", packed.to_str().unwrap()])).unwrap();
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 restored.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();

        let a = rawio::read_field(&raw, [24, 24, 16], ScalarType::F64).unwrap();
        let b = rawio::read_field(&restored, [24, 24, 16], ScalarType::F64).unwrap();
        let t = a.range() / f64::exp2(15.0);
        assert!(sperr_metrics::max_pwe(&a.data, &b.data) <= t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verbose_stage_times_paths_succeed() {
        let dir = std::env::temp_dir().join("sperr_cli_verbose_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let restored = dir.join("y.raw");
        run(&w(&["gen", "--field", "qmcpack", "--dims", "16,16,16", "--output",
                 raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "16,16,16", "--type", "f64",
                 "--idx", "12", "--threads", "2", "--verbose"]))
            .unwrap();
        run(&w(&["info", "--input", packed.to_str().unwrap(), "--verbose"])).unwrap();
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 restored.to_str().unwrap(), "--type", "f64", "--threads", "2",
                 "--verbose"]))
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_and_trace_flags_are_accepted() {
        // Without the `telemetry` feature these flags warn and record
        // nothing; with it, the trace file must be valid Chrome trace JSON
        // naming the pipeline stages.
        let dir = std::env::temp_dir().join("sperr_cli_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let trace = dir.join("trace.json");
        run(&w(&["gen", "--field", "miranda-pressure", "--dims", "16,16,16",
                 "--output", raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "16,16,16", "--type", "f64",
                 "--idx", "12", "--stats", "--trace", trace.to_str().unwrap(),
                 "--quiet"]))
            .unwrap();
        if sperr_telemetry::is_enabled() {
            let json = std::fs::read_to_string(&trace).unwrap();
            assert!(json.contains("\"traceEvents\""));
            assert!(json.contains("stage.speck.encode"));
            assert!(json.contains("stage.lossless.compress"));
        } else {
            assert!(!trace.exists(), "trace written by a telemetry-less build");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_flag_and_subcommand_export_snapshots() {
        let dir = std::env::temp_dir().join("sperr_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let prom = dir.join("metrics.prom");
        let json = dir.join("metrics.json");
        run(&w(&["gen", "--field", "miranda-density", "--dims", "24,24,16",
                 "--output", raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "24,24,16", "--type", "f64",
                 "--pwe", "1e-3", "--metrics", prom.to_str().unwrap(), "--quiet"]))
            .unwrap();
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 dir.join("y.raw").to_str().unwrap(), "--type", "f64",
                 "--metrics", json.to_str().unwrap(), "--quiet"]))
            .unwrap();
        if sperr_telemetry::is_enabled() {
            let text = std::fs::read_to_string(&prom).unwrap();
            assert!(text.contains("# TYPE sperr_op_compress_f64_seconds summary"));
            assert!(text.contains("quantile=\"0.99\""));
            assert!(text.contains("sperr_stage_speck_encode_seconds_count"));
            assert!(text.contains("sperr_mem_arena_f64_bytes_max"));
            let j = std::fs::read_to_string(&json).unwrap();
            assert!(j.contains("sperr-metrics/v1"));
            assert!(j.contains("op.decompress.f64"));
        } else {
            assert!(!prom.exists(), "metrics written by a telemetry-less build");
        }
        // The subcommand prints the exposition for a recorded decode.
        run(&w(&["metrics", "--input", packed.to_str().unwrap()])).unwrap();
        run(&w(&["metrics", "--input", packed.to_str().unwrap(), "--json"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compress_requires_exactly_one_bound() {
        let dir = std::env::temp_dir().join("sperr_cli_bound_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        run(&w(&["gen", "--field", "nyx-vx", "--dims", "8,8,8", "--output",
                 raw.to_str().unwrap(), "--type", "f32", "--quiet"]))
            .unwrap();
        let base = [
            "compress", "--input", raw.to_str().unwrap(), "--output",
            "/dev/null", "--dims", "8,8,8", "--type", "f32",
        ];
        // none
        assert!(run(&w(&base)).is_err());
        // two
        let mut two = base.to_vec();
        two.extend_from_slice(&["--pwe", "0.1", "--bpp", "2"]);
        assert!(run(&w(&two)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_field_errors() {
        assert!(run(&w(&["frobnicate"])).is_err());
        assert!(run(&w(&["gen", "--field", "nope", "--dims", "4,4,4",
                         "--output", "/dev/null", "--type", "f32"]))
            .is_err());
    }

    #[test]
    fn help_paths_succeed() {
        run(&w(&[])).unwrap();
        run(&w(&["help"])).unwrap();
        run(&w(&["compress", "--help"])).unwrap();
    }

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(exit_code(&CliError::Io("gone".into())), 1);
        assert_eq!(exit_code(&CliError::Usage("bad flag".into())), 2);
        let c = |e| exit_code(&CliError::Compress(e));
        assert_eq!(c(CompressError::Invalid("x".into())), 3);
        assert_eq!(c(CompressError::Unsupported("x")), 4);
        assert_eq!(c(CompressError::Corrupt("x".into())), 5);
        assert_eq!(c(CompressError::Truncated("x".into())), 6);
        assert_eq!(c(CompressError::LimitExceeded("x".into())), 7);
    }

    #[test]
    fn failures_map_to_their_class() {
        // Missing file -> Io; unknown command / bad options -> Usage;
        // garbage stream -> Compress.
        assert!(matches!(
            run(&w(&["info", "--input", "/nonexistent/x.sperr"])),
            Err(CliError::Io(_))
        ));
        assert!(matches!(run(&w(&["frobnicate"])), Err(CliError::Usage(_))));
        let dir = std::env::temp_dir().join("sperr_cli_class_test");
        std::fs::create_dir_all(&dir).unwrap();
        let junk = dir.join("junk.sperr");
        std::fs::write(&junk, [0u8, 1, 2, 3]).unwrap();
        assert!(matches!(
            run(&w(&["info", "--input", junk.to_str().unwrap()])),
            Err(CliError::Compress(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_compress_matches_in_memory_and_roundtrips() {
        let dir = std::env::temp_dir().join("sperr_cli_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let packed_stream = dir.join("x_stream.sperr");
        let restored = dir.join("y.raw");

        run(&w(&["gen", "--field", "miranda-density", "--dims", "40,28,20",
                 "--output", raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "40,28,20", "--type", "f64",
                 "--pwe", "1e-3", "--chunk", "16,16,16", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed_stream.to_str().unwrap(), "--dims", "40,28,20", "--type",
                 "f64", "--pwe", "1e-3", "--chunk", "16,16,16", "--threads", "4",
                 "--in-flight", "6", "--stream", "--quiet"]))
            .unwrap();
        assert_eq!(
            std::fs::read(&packed).unwrap(),
            std::fs::read(&packed_stream).unwrap(),
            "streaming output must be byte-identical to the in-memory path"
        );
        run(&w(&["decompress", "--input", packed_stream.to_str().unwrap(),
                 "--output", restored.to_str().unwrap(), "--type", "f64",
                 "--threads", "4", "--stream", "--quiet"]))
            .unwrap();
        let a = rawio::read_field(&raw, [40, 28, 20], ScalarType::F64).unwrap();
        let b = rawio::read_field(&restored, [40, 28, 20], ScalarType::F64).unwrap();
        assert!(sperr_metrics::max_pwe(&a.data, &b.data) <= 1e-3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_rejects_full_volume_options() {
        let base = |extra: &[&str]| {
            let mut v = vec![
                "compress", "--input", "/dev/null", "--output", "/dev/null",
                "--dims", "8,8,8", "--type", "f64", "--stream",
            ];
            v.extend_from_slice(extra);
            run(&w(&v))
        };
        assert!(matches!(base(&["--idx", "12"]), Err(CliError::Usage(_))));
        assert!(matches!(base(&["--psnr", "60"]), Err(CliError::Usage(_))));
        assert!(matches!(base(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&w(&["decompress", "--input", "/dev/null", "--output", "/dev/null",
                     "--type", "f64", "--stream", "--level", "1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&w(&["decompress", "--input", "/dev/null", "--output", "/dev/null",
                     "--type", "f64", "--resilient"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn streaming_io_failures_exit_with_io_code_not_panic() {
        // Truncated input: typed I/O error, exit code 1.
        let dir = std::env::temp_dir().join("sperr_cli_stream_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let short = dir.join("short.raw");
        std::fs::write(&short, vec![0u8; 128]).unwrap();
        let err = run(&w(&["compress", "--input", short.to_str().unwrap(),
                           "--output", dir.join("o.sperr").to_str().unwrap(),
                           "--dims", "16,16,16", "--type", "f64", "--pwe", "1e-3",
                           "--stream", "--quiet"]))
            .unwrap_err();
        assert!(matches!(&err, CliError::Stream(SperrError::Io { .. })), "{err:?}");
        assert_eq!(exit_code(&err), 1);

        // ENOSPC on the output (only meaningful where /dev/full exists).
        if std::path::Path::new("/dev/full").exists() {
            let raw = dir.join("x.raw");
            run(&w(&["gen", "--field", "qmcpack", "--dims", "16,16,16", "--output",
                     raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
                .unwrap();
            let err = run(&w(&["compress", "--input", raw.to_str().unwrap(),
                               "--output", "/dev/full", "--dims", "16,16,16",
                               "--type", "f64", "--pwe", "1e-3", "--stream",
                               "--quiet"]))
                .unwrap_err();
            assert!(matches!(&err, CliError::Stream(SperrError::Io { .. })), "{err:?}");
            assert_eq!(exit_code(&err), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_error_classes_map_to_exit_codes() {
        let s = |e| exit_code(&CliError::Stream(e));
        assert_eq!(
            s(SperrError::Io {
                stage: sperr_core::STAGE_EMIT,
                chunk: None,
                kind: std::io::ErrorKind::BrokenPipe,
                message: "broken pipe".into(),
            }),
            1
        );
        assert_eq!(
            s(SperrError::Codec {
                stage: sperr_core::STAGE_CONTAINER,
                chunk: None,
                source: CompressError::Truncated("x".into()),
            }),
            6
        );
        assert_eq!(
            s(SperrError::Panic {
                stage: "stage.speck.encode",
                chunk: Some(3),
                message: "boom".into(),
            }),
            8
        );
    }

    #[test]
    fn verify_flag_detects_payload_corruption() {
        let dir = std::env::temp_dir().join("sperr_cli_verify_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        run(&w(&["gen", "--field", "s3d-temp", "--dims", "16,16,16", "--output",
                 raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        // No lossless outer wrapper so payload bytes are addressable.
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "16,16,16", "--type", "f64",
                 "--idx", "12", "--no-lossless", "--quiet"]))
            .unwrap();
        // Pristine stream verifies clean.
        run(&w(&["info", "--input", packed.to_str().unwrap(), "--verify"])).unwrap();
        // Flip the stream's last byte (tail of the last chunk payload).
        let mut bytes = std::fs::read(&packed).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&packed, &bytes).unwrap();
        let err = run(&w(&["info", "--input", packed.to_str().unwrap(), "--verify"]))
            .unwrap_err();
        assert!(matches!(&err, CliError::Compress(CompressError::Corrupt(_))), "{err:?}");
        assert_eq!(exit_code(&err), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn region_decode_matches_full_decode_slice() {
        let dir = std::env::temp_dir().join("sperr_cli_region_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let full = dir.join("full.raw");
        let region = dir.join("region.raw");
        let dims = [40, 28, 20];
        run(&w(&["gen", "--field", "miranda-pressure", "--dims", "40,28,20",
                 "--output", raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "40,28,20", "--type", "f64",
                 "--pwe", "1e-3", "--chunk", "16,16,16", "--quiet"]))
            .unwrap();
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 full.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        // A chunk-straddling bbox: crosses the 16-boundary on every axis.
        let (lo, hi) = ([5, 12, 3], [23, 20, 18]);
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 region.to_str().unwrap(), "--type", "f64", "--region",
                 "5:23,12:20,3:18", "--quiet"]))
            .unwrap();
        let rdims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        let f = rawio::read_field(&full, dims, ScalarType::F64).unwrap();
        let r = rawio::read_field(&region, rdims, ScalarType::F64).unwrap();
        for z in 0..rdims[2] {
            for y in 0..rdims[1] {
                for x in 0..rdims[0] {
                    let got = r.data[(z * rdims[1] + y) * rdims[0] + x];
                    let want = f.data
                        [((z + lo[2]) * dims[1] + y + lo[1]) * dims[0] + x + lo[0]];
                    assert_eq!(got.to_bits(), want.to_bits(), "voxel ({x},{y},{z})");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preview_bpp_decodes_full_dims_from_partial_budget() {
        let dir = std::env::temp_dir().join("sperr_cli_preview_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let preview = dir.join("preview.raw");
        run(&w(&["gen", "--field", "s3d-ch4", "--dims", "24,24,16", "--output",
                 raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "24,24,16", "--type", "f64",
                 "--bpp", "8", "--chunk", "16,16,16", "--quiet"]))
            .unwrap();
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 preview.to_str().unwrap(), "--type", "f64", "--preview-bpp",
                 "1.5", "--quiet"]))
            .unwrap();
        // The preview is a valid full-dims field; coarse, but finite everywhere.
        let p = rawio::read_field(&preview, [24, 24, 16], ScalarType::F64).unwrap();
        assert_eq!(p.data.len(), 24 * 24 * 16);
        assert!(p.data.iter().all(|v| v.is_finite()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn region_preview_and_level_are_mutually_exclusive() {
        let combos: &[&[&str]] = &[
            &["--region", "0:4,0:4,0:4", "--level", "1"],
            &["--region", "0:4,0:4,0:4", "--preview-bpp", "1"],
            &["--preview-bpp", "1", "--level", "1"],
        ];
        for extra in combos {
            let mut v = vec![
                "decompress", "--input", "/dev/null", "--output", "/dev/null",
                "--type", "f64",
            ];
            v.extend_from_slice(extra);
            assert!(matches!(run(&w(&v)), Err(CliError::Usage(_))), "{extra:?}");
        }
        // Streaming decompress supports neither random-access option.
        for extra in [&["--region", "0:4,0:4,0:4"][..], &["--preview-bpp", "1"][..]] {
            let mut v = vec![
                "decompress", "--input", "/dev/null", "--output", "/dev/null",
                "--type", "f64", "--stream",
            ];
            v.extend_from_slice(extra);
            assert!(matches!(run(&w(&v)), Err(CliError::Usage(_))), "{extra:?}");
        }
    }

    #[test]
    fn f32_extension_routes_native_path_and_roundtrips() {
        // .f32 in/out with no --dtype: the type is inferred, the stream is
        // f32-native (tag 2), and the restored samples come back through
        // the native decoder with the PWE guarantee intact.
        let dir = std::env::temp_dir().join("sperr_cli_f32_native_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.f32");
        let packed = dir.join("x.sperr");
        let restored = dir.join("y.f32");
        run(&w(&["gen", "--field", "miranda-pressure", "--dims", "24,24,16",
                 "--output", raw.to_str().unwrap(), "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "24,24,16",
                 "--pwe", "1e-2", "--chunk", "16,16,16", "--quiet"]))
            .unwrap();
        let info = Sperr::new(SperrConfig::default())
            .inspect(&std::fs::read(&packed).unwrap())
            .unwrap();
        assert!(info.native_f32, "f32 input must produce a tag-2 stream");
        run(&w(&["info", "--input", packed.to_str().unwrap()])).unwrap();
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 restored.to_str().unwrap(), "--quiet"]))
            .unwrap();
        let a = rawio::read_field_f32(&raw, [24, 24, 16]).unwrap();
        let b = rawio::read_field_f32(&restored, [24, 24, 16]).unwrap();
        let worst = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(worst as f64 <= 1e-2 * 1.001, "PWE violated: {worst}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_f32_matches_in_memory_native_path() {
        let dir = std::env::temp_dir().join("sperr_cli_f32_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.f32");
        let packed = dir.join("mem.sperr");
        let packed_stream = dir.join("stream.sperr");
        run(&w(&["gen", "--field", "s3d-ch4", "--dims", "40,28,20", "--output",
                 raw.to_str().unwrap(), "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "40,28,20",
                 "--pwe", "1e-3", "--chunk", "16,16,16", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed_stream.to_str().unwrap(), "--dims", "40,28,20",
                 "--pwe", "1e-3", "--chunk", "16,16,16", "--threads", "4",
                 "--stream", "--quiet"]))
            .unwrap();
        assert_eq!(
            std::fs::read(&packed).unwrap(),
            std::fs::read(&packed_stream).unwrap(),
            "streaming f32 output must match the in-memory native path"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_narrowing_to_f32_requires_explicit_dtype() {
        let dir = std::env::temp_dir().join("sperr_cli_narrow_guard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.f64");
        let packed = dir.join("x.sperr");
        run(&w(&["gen", "--field", "qmcpack", "--dims", "16,16,16", "--output",
                 raw.to_str().unwrap(), "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "16,16,16",
                 "--idx", "12", "--quiet"]))
            .unwrap();
        // Inferred f32 output from a .f32 extension on an f64 stream: refused.
        let err = run(&w(&["decompress", "--input", packed.to_str().unwrap(),
                           "--output", dir.join("y.f32").to_str().unwrap(),
                           "--quiet"]))
            .unwrap_err();
        assert!(matches!(&err, CliError::Io(_)), "{err:?}");
        // Explicit --dtype f32 overrides.
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 dir.join("y.f32").to_str().unwrap(), "--dtype", "f32",
                 "--quiet"]))
            .unwrap();
        // No dtype, no extension: defaults to the stream precision (f64).
        let plain = dir.join("y.raw");
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 plain.to_str().unwrap(), "--quiet"]))
            .unwrap();
        assert_eq!(
            std::fs::metadata(&plain).unwrap().len(),
            16 * 16 * 16 * 8,
            "default output width must be the stream's f64"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dtype_unresolvable_is_usage_error() {
        let err = run(&w(&["compress", "--input", "/dev/null", "--output",
                           "/dev/null", "--dims", "8,8,8", "--pwe", "0.1"]))
            .unwrap_err();
        assert!(matches!(&err, CliError::Usage(_)), "{err:?}");
        assert_eq!(exit_code(&err), 2);
    }

    #[test]
    fn region_out_of_bounds_is_invalid() {
        let dir = std::env::temp_dir().join("sperr_cli_region_oob_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        run(&w(&["gen", "--field", "image2d", "--dims", "16,16,1", "--output",
                 raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "16,16,1", "--type", "f64",
                 "--idx", "12", "--quiet"]))
            .unwrap();
        let err = run(&w(&["decompress", "--input", packed.to_str().unwrap(),
                           "--output", "/dev/null", "--type", "f64", "--region",
                           "0:32,0:16,0:1", "--quiet"]))
            .unwrap_err();
        assert!(matches!(&err, CliError::Compress(CompressError::Invalid(_))), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
