#!/usr/bin/env sh
# CI gauntlet: build everything, run the full test suite (which includes the
# decoder panic audit, the corruption campaign and all property tests), then
# re-run the panic audit by name so a violation is called out explicitly.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> decoder panic audit"
cargo test --quiet --test panic_audit

echo "==> force-scalar matrix: build + full test suite on the scalar twins"
# The sperr-simd force-scalar feature routes every kernel entry point to
# its scalar twin — the portability escape hatch for targets where the
# blocked loops don't pay off. The whole workspace must build and pass
# (including the conformance goldens, which prove the scalar path is
# bit-identical to the blocked one end-to-end, and the width-generic
# kernel proptests, which run at both f32 and f64 so the scalar twins
# cover the f32-native path too).
cargo build --workspace --release --features sperr-simd/force-scalar
cargo test --workspace --quiet --features sperr-simd/force-scalar

echo "==> cross-target check: aarch64 (NEON lane widths)"
# Type-check the workspace for a 128-bit-SIMD target so a portability
# break (x86-only assumption, pointer-width slip) is caught even though
# this host can't run the result. The width-generic kernels monomorphize
# at both f32 and f64 here, so a NEON-lane-count assumption in either
# instantiation fails this check. Needs the target's rustc component
# only (no linking: cargo check); installs are forbidden in CI, so skip
# gracefully — loudly — when the target stdlib is absent.
if rustc --target aarch64-unknown-linux-gnu --print sysroot >/dev/null 2>&1 \
    && [ -d "$(rustc --print sysroot)/lib/rustlib/aarch64-unknown-linux-gnu" ]; then
    cargo check --workspace --quiet --target aarch64-unknown-linux-gnu
else
    echo "aarch64 check: SKIPPED (target stdlib not installed; install is"
    echo "      forbidden in this environment — run locally with"
    echo "      'rustup target add aarch64-unknown-linux-gnu')"
fi

echo "==> conformance: golden streams + differential oracles + PWE campaign"
# Tier-2 gate. `check` regenerates the whole golden matrix in memory and
# diffs it byte-for-byte against the committed artifacts (so stale or
# hand-edited goldens fail even before the governance check below);
# `oracles` runs the differential equivalence checks over the corpus;
# `campaign 200` is the randomized PWE-guarantee sweep.
target/release/sperr-conformance check
target/release/sperr-conformance oracles
target/release/sperr-conformance campaign 200

echo "==> conformance: streaming fault-injection campaign"
# Adversarial I/O endpoints and scripted worker panics against the
# streaming API: typed errors only, no escaping panics, no hangs
# (watchdog-enforced), no partial container that verifies, bounded
# in-flight memory, byte-identity with the in-memory path on success.
target/release/sperr-conformance faults 12

echo "==> conformance: random-access region oracle"
# Every corpus field, 50 randomized bboxes each (degenerate, full-volume,
# chunk-straddling, prime-offset shapes), decoded at 1/2/4/8 threads:
# decode_region must be bit-identical to the same slice of a full
# decompress, via the v3 index AND via the downgraded-to-v2 legacy scan.
target/release/sperr-conformance regions 50

echo "==> conformance: progressive-refinement campaign"
# Randomized budget ladders against BPP-mode streams: max error monotone
# non-increasing as the budget grows, full budget bit-identical to the
# untruncated decode; violations shrink to a committed reproducer.
target/release/sperr-conformance refine 60

echo "==> golden-stream governance"
# A change to the committed golden artifacts is only legitimate when the
# same commit bumps GOLDEN_VERSION (see DESIGN.md §9). Skipped gracefully
# when history is unavailable (fresh clone with depth 1, or pre-first
# commit).
if git rev-parse --verify HEAD~1 >/dev/null 2>&1; then
    if [ -n "$(git diff --name-only HEAD~1 HEAD -- crates/conformance/golden/)" ]; then
        if git diff HEAD~1 HEAD -- crates/conformance/src/golden.rs | grep -q "GOLDEN_VERSION"; then
            echo "golden streams changed together with a GOLDEN_VERSION edit: OK"
        else
            echo "ERROR: crates/conformance/golden/ changed without a GOLDEN_VERSION bump" >&2
            echo "       (bump it in crates/conformance/src/golden.rs in the same commit)" >&2
            exit 1
        fi
    else
        echo "no golden-stream changes in HEAD"
    fi
else
    echo "no parent commit available; skipping"
fi

echo "==> bench smoke (release)"
# Tiny-dims run so the harness itself cannot rot; writes
# target/bench_smoke.json and self-validates it. Invoked via its own
# shebang (bash): running it under plain `sh` breaks on bash-isms.
scripts/bench.sh --smoke

echo "==> tracked bench artifacts are well-formed"
# The committed baselines must parse and carry their expected schemas.
target/release/hotpath --check BENCH_pr2.json
target/release/hotpath --check BENCH_pr4.json
target/release/hotpath --check BENCH_pr5.json
target/release/hotpath --check BENCH_pr7.json
target/release/hotpath --check BENCH_pr8.json
target/release/hotpath --check BENCH_pr9.json
target/release/hotpath --check BENCH_pr10.json

echo "==> loadgen smoke: mixed-traffic artifact generates and validates"
# Tiny-dims mixed-traffic run (PR 10): five classes through one shared
# pool; the binary self-validates the artifact before writing, and the
# explicit --check re-reads it from disk.
target/release/hotpath loadgen --smoke --out target/loadgen_smoke.json
target/release/hotpath --check target/loadgen_smoke.json

echo "==> trend gate: cross-PR perf trajectory (hard on SPECK ratios)"
# Reads every committed artifact, prints each derived ratio's trajectory
# and the loadgen class tables, and fails when the latest full-size
# occurrence of a hard-gated SPECK ratio is >20% below the best value
# that ratio ever reached across the history. Deterministic: compares
# tracked files only.
target/release/hotpath trend BENCH_pr2.json BENCH_pr4.json BENCH_pr5.json \
    BENCH_pr7.json BENCH_pr8.json BENCH_pr9.json BENCH_pr10.json

echo "==> perf gate: committed BENCH_pr9.json vs PR 2..8 baselines (hard)"
# The committed full-size artifact must not record a >20% regression on
# the SPECK stage ratios relative to the best committed baseline — this
# is the deterministic hard gate (it compares tracked files, so it never
# flakes on host noise; it fails exactly when someone commits a slower
# artifact). Satellite of the PR 7 overhaul: the PR 5 episode showed a
# soft warning on these ratios is too easy to scroll past. The PR 9
# artifact additionally carries the f32-native end-to-end ratios, which
# the gate binary enforces as an absolute ≥1.0 floor on full-size
# artifacts: committing an artifact where the f32 path is slower than
# the f64 path on any end-to-end workload fails CI.
target/release/hotpath --perf-gate BENCH_pr9.json \
    BENCH_pr2.json BENCH_pr4.json BENCH_pr5.json BENCH_pr7.json BENCH_pr8.json

echo "==> perf gate: fresh smoke run vs baselines (soft)"
# Compare the smoke run's derived speedup ratios against the BEST value
# each ratio ever reached across all committed full-size baselines, so a
# slow PR cannot quietly lower the bar for the next one. The per-ratio
# delta table prints even when everything is green; a >20% regression
# adds a loud warning but does not fail CI: smoke dims and shared-host
# noise make a hard gate flaky (the gate binary downgrades the hard keys
# for --smoke artifacts), and the goal is that a real performance cliff
# cannot land silently.
# Note the coder-path *correctness* gate is NOT this: byte-for-byte
# stream stability of the overhauled SPECK/outlier coders is enforced
# hard by `sperr-conformance check` + the golden governance step above
# (the goldens exercise every coder path and fail on any byte change).
target/release/hotpath --perf-gate target/bench_smoke.json \
    BENCH_pr2.json BENCH_pr4.json BENCH_pr5.json BENCH_pr7.json BENCH_pr8.json \
    BENCH_pr9.json

echo "==> telemetry matrix: rebuild with the feature compiled in"
# Everything above ran with telemetry compiled OUT (the default, and the
# configuration whose perf numbers we track). Now flip the feature on and
# prove observability changes nothing except what it reports.
# (The feature-off workspace build is the first step of this script.)
cargo build --workspace --release --features telemetry

echo "==> telemetry on: goldens stay byte-identical"
# The telemetry-enabled decoder/encoder must produce the exact committed
# golden streams — instrumenting the pipeline may not perturb output.
target/release/sperr-conformance check

echo "==> telemetry on: identity, overhead and trace-coverage tests"
cargo test --quiet --features telemetry --test telemetry

echo "==> telemetry on: streaming worker timelines overlap"
# The staged streaming pipeline must actually fan out: at least two pool
# workers with concurrent spans during a streaming compression.
cargo test --quiet --features telemetry --test streaming

echo "==> telemetry on: --stats/--trace smoke on a 128^3 PWE run"
# End-to-end acceptance: a traced CLI compression emits Chrome trace JSON
# with a span for every compress stage and per-worker timeline tracks.
target/release/sperr gen --field miranda-density --dims 128,128,128 \
    --output /tmp/ci_trace_input.f64 --type f64 --quiet
target/release/sperr compress --input /tmp/ci_trace_input.f64 \
    --output /tmp/ci_trace_out.sperr --dims 128,128,128 --type f64 \
    --idx 13 --chunk 64,64,64 --threads 8 \
    --stats --trace /tmp/ci_trace.json --quiet
target/release/hotpath --check-trace /tmp/ci_trace.json \
    stage.wavelet.forward stage.speck.encode stage.outlier.locate \
    stage.outlier.encode stage.container.write stage.lossless.compress

echo "==> telemetry on: --metrics exports + metrics subcommand"
# The PR 10 metrics layer end-to-end: a compress run exports Prometheus
# text exposition (op summary with quantile series, memory _max gauge),
# a decompress run exports the JSON schema, and the `metrics` subcommand
# profiles an existing stream directly.
target/release/sperr compress --input /tmp/ci_trace_input.f64 \
    --output /tmp/ci_trace_out.sperr --dims 128,128,128 --type f64 \
    --idx 13 --chunk 64,64,64 --threads 8 \
    --metrics /tmp/ci_metrics.prom --quiet
grep -q '# TYPE sperr_op_compress_f64_seconds summary' /tmp/ci_metrics.prom
grep -q 'sperr_op_compress_f64_seconds{quantile="0.99"} ' /tmp/ci_metrics.prom
grep -q 'sperr_mem_arena_f64_bytes_max ' /tmp/ci_metrics.prom
grep -q 'sperr_stage_speck_encode_seconds_count ' /tmp/ci_metrics.prom
target/release/sperr decompress --input /tmp/ci_trace_out.sperr \
    --output /tmp/ci_metrics_rt.f64 --metrics /tmp/ci_metrics.json --quiet
grep -q '"sperr-metrics/v1"' /tmp/ci_metrics.json
grep -q '"op.decompress.f64"' /tmp/ci_metrics.json
target/release/sperr metrics --input /tmp/ci_trace_out.sperr \
    | grep -q 'sperr_op_decompress_f64_seconds_count '
rm -f /tmp/ci_trace_input.f64 /tmp/ci_trace_out.sperr /tmp/ci_trace.json \
    /tmp/ci_metrics.prom /tmp/ci_metrics.json /tmp/ci_metrics_rt.f64

echo "==> telemetry + force-scalar matrix: goldens stay byte-identical"
# The third cell of the feature matrix (PR 10 satellite): metrics
# recording layered over the scalar kernel twins must still reproduce
# the committed golden streams byte-for-byte.
cargo build --workspace --release --features telemetry,sperr-simd/force-scalar
target/release/sperr-conformance check

echo "==> ThreadSanitizer: pool + streaming pipeline tests"
# The streaming pipeline is the one place the codebase hand-rolls
# cross-thread synchronization (condvar back-pressure, ordered decode
# tokens, cancellation broadcast), so run its tests and the worker-pool
# tests under TSan. Needs nightly with the rust-src component
# (-Zbuild-std rebuilds std with the sanitizer); CI must never install
# toolchain pieces, so skip gracefully — loudly — when absent.
if command -v rustup >/dev/null 2>&1 \
    && rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "rust-src (installed)"; then
    TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
    echo "tsan: nightly + rust-src present, target ${TSAN_TARGET}"
    RUSTFLAGS="-Zsanitizer=thread" RUST_TEST_THREADS=1 \
        cargo +nightly test -Zbuild-std --target "${TSAN_TARGET}" \
        -p sperr-core --quiet pool:: stream::
else
    echo "tsan: SKIPPED (nightly toolchain with rust-src not installed;"
    echo "      install is forbidden in this environment — run locally with"
    echo "      'rustup component add rust-src --toolchain nightly')"
fi

echo "CI OK"
