//! ZFP-like baseline: a from-scratch Rust implementation of the algorithm
//! in Lindstrom, *Fixed-Rate Compressed Floating-Point Arrays* (TVCG 2014)
//! — the transform-based compressor the paper benchmarks as "ZFP" (§VI).
//!
//! Pipeline per 4×4×4 block: common-exponent block-floating-point →
//! lifted integer decorrelating transform (a DCT-like basis) →
//! total-sequency coefficient ordering → negabinary mapping → embedded
//! group-tested bitplane coding. Two termination modes:
//!
//! * **fixed accuracy** (`Bound::Pwe`): bitplanes below the tolerance
//!   (with ZFP's guard band) are dropped;
//! * **fixed rate** (`Bound::Bpp`): every block gets the same bit budget,
//!   preserving ZFP's random-access property.
//!
//! Fidelity notes vs. real ZFP are in DESIGN.md §5 (no 4D mode, no
//! execution policies beyond slab threading).

mod block;
mod codec;
mod compressor;

pub use compressor::ZfpLike;

#[cfg(test)]
mod tests {
    use super::*;
    use sperr_compress_api::{Bound, Field, LossyCompressor};

    fn smooth_field(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.21).sin() * 30.0 + (y as f64 * 0.13).cos() * 20.0 + z as f64 * 0.4
        })
    }

    fn max_err(a: &Field, b: &Field) -> f64 {
        a.data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn accuracy_mode_bounds_error() {
        let field = smooth_field([17, 13, 9]); // partial blocks included
        let zfp = ZfpLike::default();
        for tol in [1.0, 1e-2, 1e-5, 1e-9] {
            let stream = zfp.compress(&field, Bound::Pwe(tol)).unwrap();
            let rec = zfp.decompress(&stream).unwrap();
            let e = max_err(&field, &rec);
            assert!(e <= tol, "tol={tol}: max err {e}");
        }
    }

    #[test]
    fn rate_mode_hits_size() {
        let field = smooth_field([32, 32, 32]);
        let zfp = ZfpLike::default();
        for rate in [1.0f64, 4.0, 8.0] {
            let stream = zfp.compress(&field, Bound::Bpp(rate)).unwrap();
            let bpp = stream.len() as f64 * 8.0 / field.len() as f64;
            // fixed-rate blocks + small header
            assert!(bpp <= rate * 1.05 + 0.1, "rate {rate} -> {bpp}");
            assert!(bpp >= rate * 0.9, "rate {rate} -> {bpp} (suspiciously small)");
            let rec = zfp.decompress(&stream).unwrap();
            assert_eq!(rec.dims, field.dims);
        }
    }

    #[test]
    fn rate_mode_quality_improves_with_rate() {
        let field = smooth_field([32, 32, 32]);
        let zfp = ZfpLike::default();
        let rmse = |rate: f64| {
            let stream = zfp.compress(&field, Bound::Bpp(rate)).unwrap();
            let rec = zfp.decompress(&stream).unwrap();
            sperr_metrics::rmse(&field.data, &rec.data)
        };
        let lo = rmse(1.0);
        let hi = rmse(8.0);
        assert!(hi < lo / 10.0, "8bpp rmse {hi} vs 1bpp {lo}");
    }

    #[test]
    fn compression_actually_compresses_smooth_data() {
        let field = smooth_field([32, 32, 32]);
        let zfp = ZfpLike::default();
        let stream = zfp.compress(&field, Bound::Pwe(field.range() / 1024.0)).unwrap();
        let raw = field.len() * 8;
        assert!(
            stream.len() < raw / 8,
            "only {} vs raw {raw}",
            stream.len()
        );
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let field = smooth_field([24, 24, 24]);
        let one = ZfpLike { num_threads: 1 };
        let four = ZfpLike { num_threads: 4 };
        let t = 1e-4;
        let a = one.compress(&field, Bound::Pwe(t)).unwrap();
        let b = four.compress(&field, Bound::Pwe(t)).unwrap();
        // Streams may differ in slab structure; decoded output must agree.
        assert_eq!(
            one.decompress(&a).unwrap().data,
            four.decompress(&b).unwrap().data
        );
    }

    #[test]
    fn zero_field_is_tiny() {
        let field = Field::new([16, 16, 16], vec![0.0; 4096]);
        let zfp = ZfpLike::default();
        let stream = zfp.compress(&field, Bound::Pwe(1e-6)).unwrap();
        assert!(stream.len() < 100);
        let rec = zfp.decompress(&stream).unwrap();
        assert_eq!(rec.data, field.data);
    }

    #[test]
    fn corrupt_stream_rejected() {
        let field = smooth_field([8, 8, 8]);
        let zfp = ZfpLike::default();
        let stream = zfp.compress(&field, Bound::Pwe(0.01)).unwrap();
        for cut in [0usize, 3, 10] {
            assert!(zfp.decompress(&stream[..cut]).is_err());
        }
        let mut bad = stream.clone();
        bad[0] = b'!';
        assert!(zfp.decompress(&bad).is_err());
    }

    #[test]
    fn psnr_bound_unsupported() {
        let zfp = ZfpLike::default();
        assert!(!zfp.supports(&Bound::Psnr(100.0)));
        let field = smooth_field([8, 8, 8]);
        assert!(zfp.compress(&field, Bound::Psnr(100.0)).is_err());
    }

    #[test]
    fn fixed_precision_mode() {
        // ZFP's third mode: more retained bitplanes -> smaller error;
        // streams decode through the ordinary path.
        let field = smooth_field([20, 20, 12]);
        let zfp = ZfpLike::default();
        let mut last_rmse = f64::INFINITY;
        for bits in [8u32, 16, 32, 52] {
            let stream = zfp.compress_fixed_precision(&field, bits).unwrap();
            let rec = zfp.decompress(&stream).unwrap();
            let rmse = sperr_metrics::rmse(&field.data, &rec.data);
            assert!(
                rmse <= last_rmse * (1.0 + 1e-12),
                "precision {bits}: rmse {rmse} > previous {last_rmse}"
            );
            last_rmse = rmse;
        }
        assert!(last_rmse < field.range() * 1e-12, "52-bit precision still lossy: {last_rmse}");
        assert!(zfp.compress_fixed_precision(&field, 0).is_err());
        assert!(zfp.compress_fixed_precision(&field, 65).is_err());
    }

    #[test]
    fn rough_data_error_still_bounded() {
        let field = Field::from_fn([20, 12, 8], |x, y, z| {
            (((x * 7919 + y * 104729 + z * 1299709) % 1000) as f64) - 500.0
        });
        let zfp = ZfpLike::default();
        let tol = 0.5;
        let stream = zfp.compress(&field, Bound::Pwe(tol)).unwrap();
        let rec = zfp.decompress(&stream).unwrap();
        assert!(max_err(&field, &rec) <= tol);
    }
}
