//! Elementwise sign/magnitude quantization kernels — the split of a
//! coefficient array into quantized magnitudes plus the packed per-pixel
//! `meta = planes_of(k) << 1 | sign` byte array, and the mid-riser
//! reconstruction. These own SPERR's dead-zone semantics; the SPECK
//! reference and production encoders both call [`quantize_magnitude`] so
//! the paths cannot drift.
//!
//! All kernels are generic over [`Float`]: the `f64` instantiation is
//! bit-identical to the historical scalar-typed code (same expression,
//! same operand order), the `f32` instantiation packs twice the lanes
//! into each blocked window.

use crate::float::Float;

/// Saturated magnitude: quantized values cap at `2^62` so downstream
/// shifts cannot overflow (`2^62` is exactly representable at both
/// float widths — see [`Float::CAP`]).
const SAT: u64 = 1u64 << 62;

/// Quantizes one coefficient: `floor(|c| / q)`, saturating at `2^62`.
/// NaNs quantize to 0 (dead zone) via the saturating cast.
#[inline]
pub fn quantize_magnitude<T: Float>(c: T, inv_q: T) -> u64 {
    let r = c.abs() * inv_q;
    if r >= T::CAP {
        SAT
    } else {
        r.to_u64_saturating() // truncation == floor for r >= 0
    }
}

/// `64 - k.leading_zeros()`: number of significant bitplanes of a
/// magnitude. At most 63 because magnitudes saturate at `2^62`.
#[inline]
fn planes_of(k: u64) -> u8 {
    (64 - k.leading_zeros()) as u8
}

/// Quantizes every coefficient into its packed meta byte
/// `planes_of(k) << 1 | (c < 0)` where `k = quantize_magnitude(c)`. The
/// magnitudes themselves are *not* materialized — the SPECK coder
/// requantizes the few it needs (at LSP admission) straight from the
/// coefficient array, which beats writing and then randomly gathering a
/// full-size `u64` magnitude plane. Slices must be equal length. Scalar
/// twin: [`scalar_quantize_meta_into`].
pub fn quantize_meta_into<T: Float>(coeffs: &[T], inv_q: T, meta: &mut [u8]) {
    assert_eq!(coeffs.len(), meta.len());
    #[cfg(feature = "force-scalar")]
    return scalar_quantize_meta_into(coeffs, inv_q, meta);
    #[cfg(not(feature = "force-scalar"))]
    {
        // 16 lanes per window: two 256-bit-class vectors of f64, one of
        // f32 pairs — the per-lane expressions are independent, so the
        // window width never affects results, only unrolling.
        const W: usize = 16;
        let mut c_it = coeffs.chunks_exact(W);
        let mut m_it = meta.chunks_exact_mut(W);
        for (cb, mb) in c_it.by_ref().zip(m_it.by_ref()) {
            // Block 1: the float -> magnitude cast, one independent
            // expression per lane (select between the saturated constant
            // and the truncating cast — no cross-lane state).
            let mut kw = [0u64; W];
            for (kv, &c) in kw.iter_mut().zip(cb) {
                let r = c.abs() * inv_q;
                *kv = if r >= T::CAP {
                    SAT
                } else {
                    r.to_u64_saturating()
                };
            }
            // Block 2: integer-only meta packing (lzcnt + shift + or).
            let mut mw = [0u8; W];
            for ((mv, &kv), &c) in mw.iter_mut().zip(&kw).zip(cb) {
                *mv = (planes_of(kv) << 1) | (c < T::ZERO) as u8;
            }
            mb.copy_from_slice(&mw);
        }
        for (&c, mv) in c_it.remainder().iter().zip(m_it.into_remainder()) {
            let q = quantize_magnitude(c, inv_q);
            *mv = (planes_of(q) << 1) | (c < T::ZERO) as u8;
        }
    }
}

/// Scalar reference for [`quantize_meta_into`].
pub fn scalar_quantize_meta_into<T: Float>(coeffs: &[T], inv_q: T, meta: &mut [u8]) {
    assert_eq!(coeffs.len(), meta.len());
    for (&c, mv) in coeffs.iter().zip(meta.iter_mut()) {
        let q = quantize_magnitude(c, inv_q);
        *mv = (planes_of(q) << 1) | (c < T::ZERO) as u8;
    }
}

/// Mid-riser reconstruction of a complete quality-mode stream, computed
/// directly from the input: quantize each coefficient, then place it at
/// the centre of its quantization cell (`(k + 0.5) * q`, signed), with
/// dead-zone values (`k == 0`) reconstructing to exactly 0. Scalar twin:
/// [`scalar_reconstruct_mid_riser_into`].
pub fn reconstruct_mid_riser_into<T: Float>(coeffs: &[T], q: T, inv_q: T, out: &mut [T]) {
    assert_eq!(coeffs.len(), out.len());
    #[cfg(feature = "force-scalar")]
    return scalar_reconstruct_mid_riser_into(coeffs, q, inv_q, out);
    #[cfg(not(feature = "force-scalar"))]
    {
        const W: usize = 8;
        let mut c_it = coeffs.chunks_exact(W);
        let mut o_it = out.chunks_exact_mut(W);
        for (cb, ob) in c_it.by_ref().zip(o_it.by_ref()) {
            for (o, &c) in ob.iter_mut().zip(cb) {
                let k = quantize_magnitude(c, inv_q);
                *o = if k == 0 {
                    T::ZERO
                } else {
                    let mag = (T::from_u64_lossy(k) + T::HALF) * q;
                    if c < T::ZERO {
                        -mag
                    } else {
                        mag
                    }
                };
            }
        }
        for (o, &c) in o_it.into_remainder().iter_mut().zip(c_it.remainder()) {
            let k = quantize_magnitude(c, inv_q);
            *o = if k == 0 {
                T::ZERO
            } else {
                let mag = (T::from_u64_lossy(k) + T::HALF) * q;
                if c < T::ZERO {
                    -mag
                } else {
                    mag
                }
            };
        }
    }
}

/// Scalar reference for [`reconstruct_mid_riser_into`].
pub fn scalar_reconstruct_mid_riser_into<T: Float>(coeffs: &[T], q: T, inv_q: T, out: &mut [T]) {
    assert_eq!(coeffs.len(), out.len());
    for (o, &c) in out.iter_mut().zip(coeffs) {
        let k = quantize_magnitude(c, inv_q);
        *o = if k == 0 {
            T::ZERO
        } else {
            let mag = (T::from_u64_lossy(k) + T::HALF) * q;
            if c < T::ZERO {
                -mag
            } else {
                mag
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_edge_cases() {
        assert_eq!(quantize_magnitude(f64::NAN, 1.0), 0);
        assert_eq!(quantize_magnitude(0.0, 1.0), 0);
        assert_eq!(quantize_magnitude(-0.0, 1.0), 0);
        assert_eq!(quantize_magnitude(f64::INFINITY, 1.0), SAT);
        assert_eq!(quantize_magnitude(1e300, 1.0), SAT);
        assert_eq!(quantize_magnitude(-2.75, 2.0), 5);
        // f32 instantiation: same dead-zone and saturation semantics.
        assert_eq!(quantize_magnitude(f32::NAN, 1.0f32), 0);
        assert_eq!(quantize_magnitude(f32::INFINITY, 1.0f32), SAT);
        assert_eq!(quantize_magnitude(1e38f32, 1.0f32), SAT);
        assert_eq!(quantize_magnitude(-2.75f32, 2.0f32), 5);
    }

    #[test]
    fn meta_matches_scalar() {
        let coeffs: Vec<f64> = (0..41)
            .map(|i| ((i * 37 % 19) as f64 - 9.0) * 0.3)
            .chain([f64::NAN, -0.0, 1e300, -1e300])
            .collect();
        let n = coeffs.len();
        let (mut m1, mut m2) = (vec![0u8; n], vec![0u8; n]);
        quantize_meta_into(&coeffs, 2.0, &mut m1);
        scalar_quantize_meta_into(&coeffs, 2.0, &mut m2);
        assert_eq!(m1, m2);
        let (mut r1, mut r2) = (vec![0.0f64; n], vec![0.0f64; n]);
        reconstruct_mid_riser_into(&coeffs, 0.5, 2.0, &mut r1);
        scalar_reconstruct_mid_riser_into(&coeffs, 0.5, 2.0, &mut r2);
        assert_eq!(
            r1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn meta_matches_scalar_f32() {
        let coeffs: Vec<f32> = (0..53)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.3)
            .chain([f32::NAN, -0.0, 1e38, -1e38])
            .collect();
        let n = coeffs.len();
        let (mut m1, mut m2) = (vec![0u8; n], vec![0u8; n]);
        quantize_meta_into(&coeffs, 2.0f32, &mut m1);
        scalar_quantize_meta_into(&coeffs, 2.0f32, &mut m2);
        assert_eq!(m1, m2);
        let (mut r1, mut r2) = (vec![0.0f32; n], vec![0.0f32; n]);
        reconstruct_mid_riser_into(&coeffs, 0.5f32, 2.0f32, &mut r1);
        scalar_reconstruct_mid_riser_into(&coeffs, 0.5f32, 2.0f32, &mut r2);
        assert_eq!(
            r1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
