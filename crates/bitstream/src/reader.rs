use crate::{Error, Result};

/// A cursor over a packed bitstream, reading LSB-first within each byte.
///
/// Mirrors [`crate::BitWriter`]. Reads past the end return
/// [`Error::UnexpectedEof`] without consuming anything, which lets the SPECK
/// decoder stop cleanly on a truncated (embedded) prefix.
///
/// Internally the reader keeps a 64-bit refill register mirroring the
/// writer's accumulator: `get_bit` costs a shift and a decrement on the
/// hot path, refilling eight bytes at a time, instead of a bounds check
/// plus byte indexing per bit.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte to load into `acc`.
    next: usize,
    /// Not-yet-consumed bits, LSB-first (matching the writer's packing).
    acc: u64,
    /// Number of valid bits in `acc` (0..=64).
    acc_len: u32,
}

/// Shift helpers that tolerate a full-width (64) shift, which Rust's `>>`
/// and `<<` on `u64` do not.
#[inline]
fn shr(v: u64, s: u32) -> u64 {
    if s >= 64 {
        0
    } else {
        v >> s
    }
}

#[inline]
fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, next: 0, acc: 0, acc_len: 0 }
    }

    /// Loads up to 8 further bytes into the (empty) register.
    #[inline]
    fn refill(&mut self) {
        let rest = &self.bytes[self.next..];
        if let Some(word) = rest.first_chunk::<8>() {
            self.acc = u64::from_le_bytes(*word);
            self.acc_len = 64;
            self.next += 8;
        } else {
            let mut acc = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                acc |= (b as u64) << (8 * i);
            }
            self.acc = acc;
            self.acc_len = (rest.len() * 8) as u32;
            self.next += rest.len();
        }
    }

    /// Reads one bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool> {
        if self.acc_len == 0 {
            self.refill();
            if self.acc_len == 0 {
                return Err(Error::UnexpectedEof);
            }
        }
        let bit = self.acc & 1 == 1;
        self.acc >>= 1;
        self.acc_len -= 1;
        Ok(bit)
    }

    /// Reads `n` bits (`n <= 64`) into the low bits of the result, LSB
    /// first. Widths above 64 are a caller error surfaced as a clean
    /// [`Error::Corrupt`] so that widths read from untrusted headers can be
    /// passed through without pre-validation.
    pub fn get_bits(&mut self, n: u32) -> Result<u64> {
        if n > 64 {
            return Err(Error::Corrupt("bit width exceeds 64"));
        }
        if n == 0 {
            return Ok(0);
        }
        if self.remaining_bits() < n as usize {
            return Err(Error::UnexpectedEof);
        }
        let take = n.min(self.acc_len);
        let mut out = self.acc & low_mask(take);
        self.acc = shr(self.acc, take);
        self.acc_len -= take;
        if take < n {
            // Cross the refill boundary: the length check above guarantees
            // one refill supplies the remaining `n - take` bits.
            self.refill();
            let more = n - take;
            out |= (self.acc & low_mask(more)) << take;
            self.acc = shr(self.acc, more);
            self.acc_len -= more;
        }
        Ok(out)
    }

    /// Consumes and counts a run of consecutive 0 bits, stopping before
    /// the first 1 bit, after `max` zeros, or at end of stream —
    /// whichever comes first. The read-side mirror of
    /// [`crate::BitWriter::put_zeros`]: a SPECK-style decoder retains a
    /// whole run of insignificant sets per call instead of paying one
    /// `get_bit` per set.
    ///
    /// Returns the number of zeros consumed. The caller distinguishes
    /// "stopped at a 1" from "stopped at EOF" by the next `get_bit`,
    /// which preserves the exact truncation semantics of a bit-at-a-time
    /// loop.
    pub fn count_zero_run(&mut self, max: usize) -> usize {
        let mut total = 0usize;
        while total < max {
            if self.acc_len == 0 {
                self.refill();
                if self.acc_len == 0 {
                    break; // end of stream mid-run
                }
            }
            let window = (self.acc_len as usize).min(max - total);
            // trailing_zeros() is 64 for an all-zero register; the min
            // keeps the count inside this call's window either way.
            let tz = (self.acc.trailing_zeros() as usize).min(window);
            self.acc = shr(self.acc, tz as u32);
            self.acc_len -= tz as u32;
            total += tz;
            if tz < window {
                break; // the next bit is a 1
            }
        }
        total
    }

    /// Skips forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        // position_bits ≡ -acc_len (mod 8), so the distance to the next
        // byte boundary is acc_len % 8 — always available in the register.
        let skip = self.acc_len % 8;
        self.acc >>= skip;
        self.acc_len -= skip;
    }

    /// Bits consumed so far.
    #[inline]
    pub fn position_bits(&self) -> usize {
        self.next * 8 - self.acc_len as usize
    }

    /// Bits still available.
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        (self.bytes.len() - self.next) * 8 + self.acc_len as usize
    }
}
