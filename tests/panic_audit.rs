//! Static panic audit of the decoder-side code paths.
//!
//! The corruption-resilience contract is that decoding untrusted bytes
//! never panics: every failure surfaces as a typed error. The decode
//! paths are deliberately isolated in dedicated source files so this test
//! can enforce the contract mechanically — if a `unwrap`/`expect`/
//! `panic!`/`assert` sneaks into any of them, CI fails with a pointer to
//! the offending line.

use std::path::{Path, PathBuf};

/// Decoder-side files that must stay free of panicking constructs. Paths
/// are relative to the workspace root (= this package's manifest dir).
const AUDITED_FILES: &[&str] = &[
    "crates/bitstream/src/reader.rs",
    "crates/bitstream/src/byteio.rs",
    "crates/speck/src/decoder.rs",
    "crates/outlier/src/decoder.rs",
    "crates/lossless/src/decode.rs",
];

/// Tokens that can panic at runtime. `assert!(` also catches
/// `debug_assert!(` and friends as a substring.
const FORBIDDEN: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

/// Strips `//` line comments and `/* */` block comments (handles nesting,
/// which Rust allows) so tokens mentioned in prose don't trip the audit.
/// String literals are left in place — decoder error messages must simply
/// avoid the forbidden spellings, which is fine for this codebase.
fn strip_comments(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let mut block_depth = 0usize;
    while i < bytes.len() {
        if block_depth > 0 {
            if bytes[i..].starts_with(b"*/") {
                block_depth -= 1;
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                block_depth += 1;
                i += 2;
            } else {
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
        } else if bytes[i..].starts_with(b"//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i..].starts_with(b"/*") {
            block_depth += 1;
            i += 2;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

#[test]
fn decoder_files_contain_no_panicking_constructs() {
    let root = workspace_root();
    let mut violations = Vec::new();
    for rel in AUDITED_FILES {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("audited file {rel} unreadable: {e}"));
        let code = strip_comments(&source);
        for (lineno, line) in code.lines().enumerate() {
            for token in FORBIDDEN {
                if line.contains(token) {
                    violations.push(format!("{rel}:{}: contains `{token}`", lineno + 1));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "panicking constructs in decoder-side code (decode paths must return \
         typed errors on untrusted input):\n{}",
        violations.join("\n")
    );
}

#[test]
fn audit_catches_violations_and_ignores_comments() {
    // Self-test of the scanner: live tokens are caught...
    let live = strip_comments("let x = y.unwrap();\nassert!(cond);\n");
    assert!(FORBIDDEN.iter().any(|t| live.contains(t)));
    // ...commented tokens are not.
    let commented = strip_comments(
        "// never .unwrap() here\n/* assert!(x) is banned\n/* nested */ panic!( too */\nlet a = 1;\n",
    );
    assert!(
        !FORBIDDEN.iter().any(|t| commented.contains(t)),
        "comment stripping failed: {commented:?}"
    );
    // debug_assert! is caught by the assert! substring.
    assert!(strip_comments("debug_assert!(x > 0);").contains("assert!("));
}
