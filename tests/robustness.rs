//! Failure-injection and robustness tests: hostile inputs must produce
//! clean errors (or valid decodes), never panics, across every
//! compressor; plus the paper's QMCPACK chunk-alignment scenario.

use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::{qmcpack_stack, SyntheticField};

/// Deterministic xorshift for fuzz positions.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn bit_flip_fuzzing_never_panics() {
    let field = SyntheticField::S3dCh4.generate([16, 16, 16], 3);
    let t = field.tolerance_for_idx(12);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let mgard = sperr_mgard_like::MgardLike;
    let tthresh = sperr_tthresh_like::TthreshLike;

    let cases: Vec<(&dyn LossyCompressor, Bound)> = vec![
        (&sperr, Bound::Pwe(t)),
        (&sz, Bound::Pwe(t)),
        (&zfp, Bound::Pwe(t)),
        (&mgard, Bound::Pwe(t)),
        (&tthresh, Bound::Psnr(60.0)),
    ];
    let mut rng = Rng(0x5eed_cafe);
    for (comp, bound) in cases {
        let stream = comp.compress(&field, bound).unwrap();
        for _ in 0..40 {
            let mut bad = stream.clone();
            let pos = (rng.next() as usize) % bad.len();
            let bit = (rng.next() % 8) as u8;
            bad[pos] ^= 1 << bit;
            // Any Result is acceptable; a panic is a bug.
            let _ = comp.decompress(&bad);
        }
        // Truncations at random points, too.
        for _ in 0..20 {
            let cut = (rng.next() as usize) % (stream.len() + 1);
            let _ = comp.decompress(&stream[..cut]);
        }
    }
}

#[test]
fn decompress_random_garbage_never_panics() {
    let mut rng = Rng(42);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let mgard = sperr_mgard_like::MgardLike;
    let tthresh = sperr_tthresh_like::TthreshLike;
    let comps: Vec<&dyn LossyCompressor> = vec![&sperr, &sz, &zfp, &mgard, &tthresh];
    for len in [0usize, 1, 7, 64, 1000] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        for comp in &comps {
            let _ = comp.decompress(&garbage);
        }
    }
}

#[test]
fn qmcpack_stack_chunked_per_orbital() {
    // §VI-B: the stack is best compressed as individual volumes, which
    // SPERR achieves by setting the chunk size to one orbital (69²×115).
    let field = qmcpack_stack(3, 8);
    let t = field.tolerance_for_idx(18);
    let per_orbital = Sperr::new(SperrConfig {
        chunk_dims: [69, 69, 115],
        ..SperrConfig::default()
    });
    let (stream, stats) = per_orbital.compress_with_stats(&field, Bound::Pwe(t)).unwrap();
    assert_eq!(stats.num_chunks, 3, "one chunk per orbital");
    let rec = per_orbital.decompress(&stream).unwrap();
    assert!(sperr_metrics::max_pwe(&field.data, &rec.data) <= t);

    // The "less than ideal" monolithic layout still honours the bound.
    let mono = Sperr::new(SperrConfig {
        chunk_dims: [69, 69, 115 * 3],
        ..SperrConfig::default()
    });
    let (mono_stream, mono_stats) = mono.compress_with_stats(&field, Bound::Pwe(t)).unwrap();
    assert_eq!(mono_stats.num_chunks, 1);
    let mono_rec = mono.decompress(&mono_stream).unwrap();
    assert!(sperr_metrics::max_pwe(&field.data, &mono_rec.data) <= t);
    // Orbital-aligned chunking should not cost more than a few percent —
    // the orbitals are statistically independent, so nothing is lost by
    // cutting there (and parallelism is gained).
    assert!(
        (stream.len() as f64) < mono_stream.len() as f64 * 1.05,
        "per-orbital {} vs monolithic {}",
        stream.len(),
        mono_stream.len()
    );
}

#[test]
fn two_d_slices_through_all_pwe_compressors() {
    // nz == 1 must work everywhere (the paper compresses 2D slices too).
    let field = SyntheticField::Image2d.generate([64, 48, 1], 4);
    let t = field.tolerance_for_idx(10);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let mgard = sperr_mgard_like::MgardLike;
    for comp in [&sperr as &dyn LossyCompressor, &sz, &zfp, &mgard] {
        let stream = comp.compress(&field, Bound::Pwe(t)).unwrap();
        let rec = comp.decompress(&stream).unwrap();
        let e = sperr_metrics::max_pwe(&field.data, &rec.data);
        let bound = if comp.name() == "MGARD-like" {
            sperr_mgard_like::MgardLike::hard_error_bound(field.dims, t)
        } else {
            t
        };
        assert!(e <= bound, "{}: {e} > {bound}", comp.name());
    }
}

#[test]
fn extreme_values_handled() {
    // Huge magnitudes, tiny magnitudes, mixed signs.
    let mut data = vec![0.0f64; 512];
    for (i, v) in data.iter_mut().enumerate() {
        *v = match i % 4 {
            0 => 1e30,
            1 => -1e30,
            2 => 1e-30,
            _ => 0.0,
        };
    }
    let field = Field::new([8, 8, 8], data);
    let t = field.range() / 1e6;
    let sperr = Sperr::new(SperrConfig::default());
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let rec = sperr.decompress(&stream).unwrap();
    assert!(sperr_metrics::max_pwe(&field.data, &rec.data) <= t);
}

#[test]
fn nan_free_output_for_finite_input() {
    let field = SyntheticField::NyxDarkMatterDensity.generate([12, 12, 12], 6);
    let sperr = Sperr::new(SperrConfig::default());
    for bound in [
        Bound::Pwe(field.tolerance_for_idx(15)),
        Bound::Bpp(1.0),
        Bound::Psnr(60.0),
    ] {
        let stream = sperr.compress(&field, bound).unwrap();
        let rec = sperr.decompress(&stream).unwrap();
        assert!(rec.data.iter().all(|v| v.is_finite()), "{bound:?}");
    }
}
