//! Fig. 2: total coding cost as a function of the quantization step `q`
//! (in units of the tolerance `t`), broken into wavelet-coefficient cost
//! and outlier cost, on the Miranda Pressure field at a very tight
//! tolerance. The curves form a U: small q spends bits in SPECK, large q
//! spends bits correcting outliers; the sweet spot sits between.

use sperr_compress_api::Bound;
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn main() {
    sperr_bench::banner(
        "Fig. 2 — coefficient/outlier cost balance vs quantization step",
        "Figure 2 (Miranda Pressure, tight tolerance)",
    );
    let field = sperr_bench::bench_field(SyntheticField::MirandaPressure);
    // The paper uses t = 3.64e-11 on the real field; the equivalent scale-
    // free setting is a deep idx on our stand-in.
    let idx = 40;
    let t = field.tolerance_for_idx(idx);
    println!("# field: {}, idx = {idx}, t = {t:.4e}", SyntheticField::MirandaPressure.name());
    println!("q_over_t,total_bpp,coeff_bpp,outlier_bpp,outlier_pct_of_cost,num_outliers");
    let mut q = 1.0f64;
    while q <= 3.001 {
        let sperr = Sperr::new(SperrConfig { q_factor: q, ..SperrConfig::default() });
        let (_, stats) = sperr
            .compress_with_stats(&field, Bound::Pwe(t))
            .expect("compress");
        let coeff = stats.speck_bpp();
        let outl = stats.outlier_bpp();
        println!(
            "{q:.2},{:.4},{coeff:.4},{outl:.4},{:.1},{}",
            coeff + outl,
            100.0 * outl / (coeff + outl),
            stats.num_outliers
        );
        q += 0.2;
    }
}
