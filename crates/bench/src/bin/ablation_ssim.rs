//! Ablation following §VI-C's closing note: "Evaluations using more
//! domain-specific metrics (e.g., SSIM) are likely necessary to determine
//! SPERR's applicability in a particular use case." Compares the PWE
//! compressors on mean 3-D SSIM (and bitrate) at matched tolerances.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn main() {
    sperr_bench::banner(
        "Ablation — structural similarity (SSIM) at matched PWE tolerances",
        "§VI-C's domain-metric remark",
    );
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();

    println!("case,compressor,bpp,ssim,psnr_db");
    for f in [
        SyntheticField::MirandaPressure,
        SyntheticField::S3dTemperature,
        SyntheticField::NyxDarkMatterDensity,
        SyntheticField::Qmcpack,
    ] {
        let field = sperr_bench::bench_field(f);
        for idx in [8u32, 14, 20] {
            let t = field.tolerance_for_idx(idx);
            for (name, comp) in [
                ("SPERR", &sperr as &dyn LossyCompressor),
                ("SZ-like", &sz),
                ("ZFP-like", &zfp),
            ] {
                let stream = comp.compress(&field, Bound::Pwe(t)).expect("compress");
                let rec = comp.decompress(&stream).expect("decompress");
                println!(
                    "{},{name},{:.4},{:.6},{:.2}",
                    f.abbrev(idx),
                    stream.len() as f64 * 8.0 / field.len() as f64,
                    sperr_metrics::ssim_3d(&field.data, &rec.data, field.dims),
                    sperr_metrics::psnr(&field.data, &rec.data),
                );
            }
        }
    }
}
