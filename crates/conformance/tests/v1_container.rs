//! Tier-2 (satellite): the legacy container-v1 read path. The writer
//! emits v2 (checksummed) containers, but v1 streams from older builds
//! must keep decoding. Coverage is two-sided: a committed v1 fixture
//! (frozen bytes) and fresh downgrades produced on the fly.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_conformance::corpus::corpus_inputs;
use sperr_conformance::golden;
use sperr_core::{crc32, Sperr, SperrConfig};

fn conformance_sperr() -> Sperr {
    Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        num_threads: 1,
        ..SperrConfig::default()
    })
}

#[test]
fn committed_v1_fixture_decodes_and_matches_its_v2_source() {
    let dir = golden::golden_dir();
    let manifest = golden::load_manifest(&dir).expect("manifest loads");
    let v1 = std::fs::read(dir.join(golden::V1_FIXTURE_NAME)).expect("fixture readable");
    assert_eq!(
        (v1.len(), crc32(&v1)),
        manifest.v1_fixture,
        "fixture bytes do not match manifest digest"
    );

    // The fixture was downgraded from the first SPERR PWE golden; both
    // paths must reconstruct the identical field.
    let sperr = conformance_sperr();
    let from_v1 = sperr.decompress(&v1).expect("v1 fixture decodes");
    let source = manifest
        .entries
        .iter()
        .find(|e| {
            e.codec == sperr_conformance::CodecId::Sperr && matches!(e.bound, Bound::Pwe(_))
        })
        .expect("matrix contains a SPERR PWE golden");
    let v2 = std::fs::read(dir.join(source.file_name())).expect("source golden readable");
    let from_v2 = sperr.decompress(&v2).expect("v2 golden decodes");
    assert_eq!(from_v1.dims, from_v2.dims);
    assert_eq!(from_v1.data, from_v2.data, "v1 and v2 reconstructions diverge");
}

#[test]
fn fresh_downgrades_round_trip_for_every_corpus_input() {
    let sperr = conformance_sperr();
    for input in corpus_inputs() {
        let field = input.generate();
        let t = field.tolerance_for_idx(15);
        let v2 = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let v1 = sperr.downgrade_to_v1(&v2).unwrap();
        assert_ne!(v1, v2, "{}: downgrade left the container untouched", input.id);
        let a = sperr.decompress(&v2).unwrap();
        let b = sperr.decompress(&v1).unwrap();
        assert_eq!(a.data, b.data, "{}: v1 decode diverges from v2", input.id);
        let max_err = a
            .data
            .iter()
            .zip(&field.data)
            .map(|(r, o)| (r - o).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= t, "{}: PWE bound violated via v1 path", input.id);
    }
}

#[test]
fn downgraded_streams_lose_checksum_protection_but_not_data() {
    // v1 has no payload checksums: flipping a payload byte must decode
    // (possibly to garbage) on v1 while v2 refuses or flags it — this is
    // exactly the guarantee difference the version bump bought.
    let sperr = conformance_sperr();
    let field = corpus_inputs()[2].generate(); // press-3d16
    let t = field.tolerance_for_idx(15);
    let v2 = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let v1 = sperr.downgrade_to_v1(&v2).unwrap();
    let (clean, report) = sperr.decompress_resilient(&v1).unwrap();
    assert!(report.all_ok());
    assert_eq!(clean.data, sperr.decompress(&v2).unwrap().data);
}
