//! Recording side of the metrics layer (behind the `enabled` feature):
//! per-thread shards of atomic histograms, merged into a
//! [`MetricsSnapshot`] on demand.
//!
//! Discipline mirrors the event rings in [`crate::runtime`]: each shard
//! has exactly one *writing* thread; new (label → histogram) entries are
//! published by bumping `len` with `Release` after the slot is fully
//! written, and readers only touch slots below an `Acquire`-loaded
//! `len`. Unlike ring events, histogram cells mutate after publication,
//! so the cells themselves are relaxed `AtomicU64`s — uncontended on the
//! hot path (single writer per shard), safe to read concurrently at
//! snapshot time. A snapshot taken mid-record can see a bucket increment
//! before the sidecar `count` (or vice versa); that skew is at most the
//! handful of in-flight samples and the CLI only snapshots after the
//! operation completes. Recording is gated on the same session flag as
//! the rings: an instrumented build without an active session pays one
//! relaxed load per sample site.

use std::cell::{Cell, OnceCell, UnsafeCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::metrics::{bucket_index, Histogram, MetricEntry, MetricsSnapshot, Unit, NUM_BUCKETS};

/// Histograms per thread shard. The pipeline records a few dozen labels
/// (stages × directions, ops × widths, memory gauges); overflow beyond
/// this is counted, not silently lost.
const MAX_HISTS: usize = 64;

/// One label's histogram, all cells relaxed atomics (single writer,
/// concurrent snapshot readers).
struct AtomicHist {
    label: &'static str,
    unit: Unit,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    counts: Box<[AtomicU64]>,
}

impl AtomicHist {
    fn new(label: &'static str, unit: Unit) -> AtomicHist {
        AtomicHist {
            label,
            unit,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A plain-histogram copy of the current cells.
    fn drain(&self) -> Histogram {
        let mut h = Histogram::new();
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                h.add_bucket_count(i, n);
            }
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

struct Shard {
    /// Published entry count; see module docs for the ordering protocol.
    len: AtomicUsize,
    slots: Box<[UnsafeCell<Option<Box<AtomicHist>>>]>,
    /// Samples discarded because all slots were taken.
    dropped: AtomicUsize,
}

// SAFETY: slots are written only by the owning thread and read by
// snapshots strictly below the Acquire-loaded `len`; the histograms
// behind the published boxes are all-atomic.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

impl Shard {
    fn new() -> Shard {
        let slots: Vec<UnsafeCell<Option<Box<AtomicHist>>>> =
            (0..MAX_HISTS).map(|_| UnsafeCell::new(None)).collect();
        Shard {
            len: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Owner-only: find or create the histogram for `label`. Labels are
    /// compared by pointer first (they are interned `&'static str`s from
    /// instrumentation sites), then by content as a fallback.
    fn hist(&self, label: &'static str, unit: Unit) -> Option<&AtomicHist> {
        let n = self.len.load(Ordering::Relaxed);
        for i in 0..n {
            // SAFETY: slots below `len` are published and never rewritten.
            let slot = unsafe { &*self.slots[i].get() };
            if let Some(h) = slot {
                if std::ptr::eq(h.label.as_ptr(), label.as_ptr()) || h.label == label {
                    return Some(h);
                }
            }
        }
        if n >= MAX_HISTS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: we are the single writer; slot `n` is unpublished.
        unsafe { *self.slots[n].get() = Some(Box::new(AtomicHist::new(label, unit))) };
        self.len.store(n + 1, Ordering::Release);
        // SAFETY: just published above.
        unsafe { &*self.slots[n].get() }.as_deref()
    }

    fn reset(&self) {
        let n = self.len.load(Ordering::Acquire);
        for i in 0..n {
            // SAFETY: slots below `len` are published.
            if let Some(h) = unsafe { &*self.slots[i].get() } {
                h.reset();
            }
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

static SHARDS: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

fn lock_shards() -> MutexGuard<'static, Vec<Arc<Shard>>> {
    SHARDS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    static SHARD: OnceCell<Arc<Shard>> = const { OnceCell::new() };
    /// Owner-side one-entry lookup cache: most call sites record the same
    /// label repeatedly (per chunk / per op), so remembering the last
    /// (label ptr → histogram ptr) pair skips the slot scan.
    static LAST: Cell<(*const u8, *const ())> =
        const { Cell::new((std::ptr::null(), std::ptr::null())) };
}

fn register_shard() -> Arc<Shard> {
    let shard = Arc::new(Shard::new());
    lock_shards().push(Arc::clone(&shard));
    shard
}

/// Records one sample into the calling thread's shard. Gated on the
/// session flag shared with the event rings.
#[inline]
pub(crate) fn record(label: &'static str, unit: Unit, value: u64) {
    if !crate::runtime::is_recording() {
        return;
    }
    let cached = LAST.with(Cell::get);
    if std::ptr::eq(cached.0, label.as_ptr()) && !cached.1.is_null() {
        // SAFETY: the cached pointer targets a published AtomicHist in
        // this thread's shard; the shard is kept alive by the registry
        // (its Arc in SHARDS is only pruned after the thread exits, which
        // also destroys this thread-local cache).
        unsafe { &*(cached.1 as *const AtomicHist) }.record(value);
        return;
    }
    SHARD.with(|cell| {
        if let Some(h) = cell.get_or_init(register_shard).hist(label, unit) {
            LAST.with(|c| c.set((label.as_ptr(), h as *const AtomicHist as *const ())));
            h.record(value);
        }
    });
}

/// Resets every shard (session start): zero the histograms but keep the
/// label slots, so registration cost is paid once per thread.
pub(crate) fn reset() {
    let mut shards = lock_shards();
    // Prune shards whose threads exited, like the event-ring registry.
    shards.retain(|s| Arc::strong_count(s) > 1);
    for shard in shards.iter() {
        shard.reset();
    }
}

/// Merges every thread's shard into one snapshot, sorted by label.
pub(crate) fn snapshot() -> MetricsSnapshot {
    let shards = lock_shards();
    let mut merged: std::collections::BTreeMap<&'static str, (Unit, Histogram)> =
        std::collections::BTreeMap::new();
    let mut dropped = 0u64;
    for shard in shards.iter() {
        dropped += shard.dropped.load(Ordering::Relaxed) as u64;
        let n = shard.len.load(Ordering::Acquire);
        for i in 0..n {
            // SAFETY: slots below the Acquire-loaded len are published.
            let Some(h) = (unsafe { &*shard.slots[i].get() }) else { continue };
            let drained = h.drain();
            // Slots persist across session resets (registration is paid
            // once per thread); a label nothing recorded under THIS
            // session would export as all-zero noise — skip it.
            if drained.count == 0 {
                continue;
            }
            let entry = merged.entry(h.label).or_insert_with(|| (h.unit, Histogram::new()));
            entry.1.merge_from(&drained);
        }
    }
    MetricsSnapshot {
        entries: merged
            .into_iter()
            .map(|(name, (unit, hist))| MetricEntry { name: name.to_string(), unit, hist })
            .collect(),
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_record_and_merge_across_threads() {
        let _serial = crate::runtime::tests_session_lock();
        crate::start();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for v in [1_000u64, 2_000, 4_000] {
                        record("test.latency", Unit::Nanos, v);
                    }
                });
            }
        });
        record("test.latency", Unit::Nanos, 8_000);
        let snap = snapshot();
        crate::stop();
        let e = snap.get("test.latency").expect("metric recorded");
        assert_eq!(e.hist.count, 10);
        assert_eq!(e.hist.min, 1_000);
        assert_eq!(e.hist.max, 8_000);
        assert_eq!(e.unit, Unit::Nanos);
    }

    #[test]
    fn sessions_reset_histograms() {
        let _serial = crate::runtime::tests_session_lock();
        crate::start();
        record("test.reset", Unit::Bytes, 42);
        assert_eq!(snapshot().get("test.reset").unwrap().hist.count, 1);
        crate::stop();
        crate::start();
        let fresh = snapshot();
        assert!(fresh.get("test.reset").is_none_or(|e| e.hist.count == 0));
        crate::stop();
    }

    #[test]
    fn nothing_recorded_outside_sessions() {
        let _serial = crate::runtime::tests_session_lock();
        let _ = crate::stop();
        record("test.gated", Unit::Units, 5);
        crate::start();
        let snap = snapshot();
        crate::stop();
        assert!(snap.get("test.gated").is_none_or(|e| e.hist.count == 0));
    }
}
