//! Per-block machinery: block-floating-point conversion, the lifted
//! decorrelating transform, sequency reordering and negabinary mapping —
//! the algorithm of Lindstrom, "Fixed-Rate Compressed Floating-Point
//! Arrays" (2014), which the paper benchmarks as ZFP.

/// Block edge length (4) and volume (64).
pub const BLOCK_EDGE: usize = 4;
pub const BLOCK_SIZE: usize = BLOCK_EDGE * BLOCK_EDGE * BLOCK_EDGE;

/// Two's-complement → negabinary mask.
const NBMASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;

/// Exponent of the largest magnitude in the block: the smallest `e` with
/// `max|v| < 2^e`. Returns `None` for an all-zero (or non-finite-free
/// zero) block.
pub fn block_exponent(values: &[f64; BLOCK_SIZE]) -> Option<i32> {
    let max = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return None;
    }
    // frexp-style: max = f * 2^e with f in [0.5, 1) -> max < 2^e.
    let mut e = max.log2().floor() as i32 + 1;
    // log2 rounding guards.
    while f64::exp2(f64::from(e)) <= max {
        e += 1;
    }
    while e > i32::MIN + 1 && f64::exp2(f64::from(e - 1)) > max {
        e -= 1;
    }
    Some(e)
}

/// Converts the block to integers with a common scale `2^(60 - emax)`
/// (block-floating-point): |ints| < 2^60, leaving two bits of headroom for
/// transform growth plus one for the negabinary mapping.
pub fn to_ints(values: &[f64; BLOCK_SIZE], emax: i32) -> [i64; BLOCK_SIZE] {
    let scale = f64::exp2(f64::from(62 - 2 - emax));
    let mut out = [0i64; BLOCK_SIZE];
    for (o, &v) in out.iter_mut().zip(values.iter()) {
        *o = (v * scale) as i64;
    }
    out
}

/// Inverse of [`to_ints`].
pub fn from_ints(ints: &[i64; BLOCK_SIZE], emax: i32) -> [f64; BLOCK_SIZE] {
    let inv_scale = f64::exp2(f64::from(emax - 60));
    let mut out = [0.0f64; BLOCK_SIZE];
    for (o, &i) in out.iter_mut().zip(ints.iter()) {
        *o = i as f64 * inv_scale;
    }
    out
}

/// ZFP's forward lifted transform on a stride-`s` 4-vector. Wrapping
/// arithmetic matches the C original and keeps hostile (corrupted-stream)
/// values from aborting debug builds; honest inputs never wrap thanks to
/// the block-floating-point headroom.
#[inline]
fn fwd_lift(p: &mut [i64; BLOCK_SIZE], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) =
        (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    // Non-orthogonal transform ~ 1/16 * [4 4 4 4; 5 1 -1 -5; -4 4 4 -4; -2 6 -6 2]
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// ZFP's inverse lifted transform on a stride-`s` 4-vector.
#[inline]
fn inv_lift(p: &mut [i64; BLOCK_SIZE], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) =
        (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w = w.wrapping_shl(1);
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z = z.wrapping_shl(1);
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(w);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Forward 3D transform: lift along x, then y, then z.
pub fn forward_transform(block: &mut [i64; BLOCK_SIZE]) {
    for z in 0..4 {
        for y in 0..4 {
            fwd_lift(block, 4 * (y + 4 * z), 1);
        }
    }
    for z in 0..4 {
        for x in 0..4 {
            fwd_lift(block, x + 16 * z, 4);
        }
    }
    for y in 0..4 {
        for x in 0..4 {
            fwd_lift(block, x + 4 * y, 16);
        }
    }
}

/// Inverse 3D transform (reverse axis order).
pub fn inverse_transform(block: &mut [i64; BLOCK_SIZE]) {
    for y in 0..4 {
        for x in 0..4 {
            inv_lift(block, x + 4 * y, 16);
        }
    }
    for z in 0..4 {
        for x in 0..4 {
            inv_lift(block, x + 16 * z, 4);
        }
    }
    for z in 0..4 {
        for y in 0..4 {
            inv_lift(block, 4 * (y + 4 * z), 1);
        }
    }
}

/// Total-sequency permutation: coefficient (i,j,k) sorted by i+j+k (then
/// i, j, k for a fixed deterministic order). `PERM[n]` is the linear index
/// of the n-th coefficient in coding order.
pub fn sequency_permutation() -> [usize; BLOCK_SIZE] {
    let mut order: Vec<usize> = (0..BLOCK_SIZE).collect();
    let key = |idx: usize| {
        let i = idx % 4;
        let j = (idx / 4) % 4;
        let k = idx / 16;
        (i + j + k, k, j, i)
    };
    order.sort_by_key(|&idx| key(idx));
    let mut out = [0usize; BLOCK_SIZE];
    out.copy_from_slice(&order);
    out
}

/// Two's complement → negabinary (sign embedded in the bit pattern so
/// magnitude ordering survives bitplane truncation).
#[inline]
pub fn int_to_negabinary(i: i64) -> u64 {
    ((i as u64).wrapping_add(NBMASK)) ^ NBMASK
}

/// Negabinary → two's complement.
#[inline]
pub fn negabinary_to_int(u: u64) -> i64 {
    ((u ^ NBMASK).wrapping_sub(NBMASK)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_bounds_magnitude() {
        let mut v = [0.0f64; BLOCK_SIZE];
        v[7] = 3.0;
        v[12] = -5.5;
        let e = block_exponent(&v).unwrap();
        assert!(5.5 < f64::exp2(f64::from(e)));
        assert!(5.5 >= f64::exp2(f64::from(e - 1)));
        assert_eq!(block_exponent(&[0.0; BLOCK_SIZE]), None);
    }

    #[test]
    fn negabinary_roundtrip() {
        for i in [0i64, 1, -1, 42, -42, i64::MAX / 4, i64::MIN / 4] {
            assert_eq!(negabinary_to_int(int_to_negabinary(i)), i);
        }
    }

    #[test]
    fn negabinary_small_values_have_low_bits() {
        // Magnitude ordering: small ints use only low negabinary bits.
        for i in -8i64..=8 {
            let u = int_to_negabinary(i);
            assert!(u < 64, "i={i} -> u={u:#x}");
        }
    }

    #[test]
    fn transform_roundtrip_error_bounded() {
        // The lifted transform is not bit-exact (right shifts drop low
        // bits) but must invert to within a few ULPs of the int domain.
        let mut rng: u64 = 0x12345678;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 8) as i64 - (1 << 55)
        };
        let orig: [i64; BLOCK_SIZE] = std::array::from_fn(|_| next());
        let mut block = orig;
        forward_transform(&mut block);
        inverse_transform(&mut block);
        for (a, b) in orig.iter().zip(&block) {
            assert!((a - b).abs() <= 64, "drift {}", a - b);
        }
    }

    #[test]
    fn transform_compacts_constant_block() {
        let mut block = [1 << 40; BLOCK_SIZE];
        forward_transform(&mut block);
        // DC coefficient holds the mean; all others must vanish.
        assert_eq!(block[0], 1 << 40);
        assert!(block[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn transform_compacts_linear_ramp() {
        let mut block = [0i64; BLOCK_SIZE];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    block[x + 4 * (y + 4 * z)] =
                        ((x as i64) + (y as i64) + (z as i64)) << 40;
                }
            }
        }
        forward_transform(&mut block);
        let energy: f64 = block.iter().map(|&c| (c as f64) * (c as f64)).sum();
        let low: f64 = sequency_permutation()[..8]
            .iter()
            .map(|&i| (block[i] as f64) * (block[i] as f64))
            .sum();
        assert!(low / energy > 0.99, "ramp energy not compacted: {}", low / energy);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let perm = sequency_permutation();
        let mut seen = [false; BLOCK_SIZE];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert_eq!(perm[0], 0, "DC comes first");
    }

    #[test]
    fn float_int_roundtrip_precision() {
        let vals: [f64; BLOCK_SIZE] = std::array::from_fn(|i| ((i as f64) - 31.5) * 0.125);
        let e = block_exponent(&vals).unwrap();
        let ints = to_ints(&vals, e);
        let back = from_ints(&ints, e);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
