//! Whole-field ZFP-like compressor: block iteration, slab parallelism and
//! the container format, driving the per-block codec in either
//! fixed-accuracy or fixed-rate mode.

use crate::block::{
    block_exponent, forward_transform, from_ints, int_to_negabinary, inverse_transform,
    negabinary_to_int, sequency_permutation, to_ints, BLOCK_EDGE, BLOCK_SIZE,
};
use crate::codec::{decode_ints, encode_ints};
use sperr_bitstream::{BitReader, BitWriter, ByteReader, ByteWriter};
use sperr_compress_api::{Bound, CompressError, Field, LossyCompressor, Precision};

const MAGIC: &[u8; 4] = b"ZFPL";
/// Bias applied to the per-block exponent when stored in 14 bits.
const EMAX_BIAS: i32 = 8191;
/// Per-block side information: 1 zero-flag bit + 14 exponent bits.
const HEADER_BITS: usize = 15;

/// The ZFP-like baseline compressor (see DESIGN.md §5 for fidelity notes).
#[derive(Debug, Clone)]
pub struct ZfpLike {
    /// Worker threads for slab-parallel coding; 0 = one per core.
    pub num_threads: usize,
}

impl Default for ZfpLike {
    fn default() -> Self {
        ZfpLike { num_threads: 0 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Fixed accuracy: absolute error tolerance.
    Accuracy(f64),
    /// Fixed rate: bits per value.
    Rate(f64),
    /// Fixed precision: keep this many most-significant bitplanes per
    /// block (ZFP's third mode; relative-error flavoured).
    Precision(u32),
}

/// `kmin` for accuracy mode: keep bitplanes whose float weight stays above
/// ~tolerance/64 (ZFP's `2(d+1)`-plane guard band for 3D).
fn kmin_for(emax: i32, tolerance: f64) -> u32 {
    let minexp = tolerance.log2().floor() as i32;
    (54 - emax + minexp).clamp(0, 64) as u32
}

fn block_grid(dims: [usize; 3]) -> [usize; 3] {
    [
        dims[0].div_ceil(BLOCK_EDGE),
        dims[1].div_ceil(BLOCK_EDGE),
        dims[2].div_ceil(BLOCK_EDGE),
    ]
}

/// Gathers a 4³ block at block coordinates `(bx, by, bz)`, replicating
/// edge samples for partial boundary blocks (as ZFP does).
fn gather(data: &[f64], dims: [usize; 3], bx: usize, by: usize, bz: usize) -> [f64; BLOCK_SIZE] {
    let mut out = [0.0; BLOCK_SIZE];
    for lz in 0..BLOCK_EDGE {
        let z = (bz * BLOCK_EDGE + lz).min(dims[2] - 1);
        for ly in 0..BLOCK_EDGE {
            let y = (by * BLOCK_EDGE + ly).min(dims[1] - 1);
            for lx in 0..BLOCK_EDGE {
                let x = (bx * BLOCK_EDGE + lx).min(dims[0] - 1);
                out[lx + BLOCK_EDGE * (ly + BLOCK_EDGE * lz)] =
                    data[x + dims[0] * (y + dims[1] * z)];
            }
        }
    }
    out
}

/// Scatters a block back, skipping padded samples.
fn scatter(
    data: &mut [f64],
    dims: [usize; 3],
    bx: usize,
    by: usize,
    bz: usize,
    block: &[f64; BLOCK_SIZE],
) {
    for lz in 0..BLOCK_EDGE {
        let z = bz * BLOCK_EDGE + lz;
        if z >= dims[2] {
            break;
        }
        for ly in 0..BLOCK_EDGE {
            let y = by * BLOCK_EDGE + ly;
            if y >= dims[1] {
                break;
            }
            for lx in 0..BLOCK_EDGE {
                let x = bx * BLOCK_EDGE + lx;
                if x >= dims[0] {
                    break;
                }
                data[x + dims[0] * (y + dims[1] * z)] =
                    block[lx + BLOCK_EDGE * (ly + BLOCK_EDGE * lz)];
            }
        }
    }
}

fn encode_block(values: &[f64; BLOCK_SIZE], mode: Mode, perm: &[usize; BLOCK_SIZE], out: &mut BitWriter) {
    let block_start = out.len_bits();
    let max_bits = match mode {
        Mode::Accuracy(_) | Mode::Precision(_) => usize::MAX / 2,
        Mode::Rate(bpp) => ((bpp * BLOCK_SIZE as f64) as usize).max(HEADER_BITS),
    };
    match block_exponent(values) {
        None => {
            out.put_bit(false); // all-zero block
        }
        Some(emax) => {
            out.put_bit(true);
            out.put_bits((emax + EMAX_BIAS) as u64, 14);
            let mut ints = to_ints(values, emax);
            forward_transform(&mut ints);
            let mut nega = [0u64; BLOCK_SIZE];
            for (slot, &p) in nega.iter_mut().zip(perm.iter()) {
                *slot = int_to_negabinary(ints[p]);
            }
            let kmin = match mode {
                Mode::Accuracy(tol) => kmin_for(emax, tol),
                Mode::Rate(_) => 0,
                Mode::Precision(p) => 64u32.saturating_sub(p),
            };
            encode_ints(&nega, out, max_bits - HEADER_BITS, kmin);
        }
    }
    if let Mode::Rate(_) = mode {
        // Pad to the fixed per-block size (random-access property).
        while out.len_bits() - block_start < max_bits {
            out.put_bit(false);
        }
    }
}

fn decode_block(
    input: &mut BitReader<'_>,
    mode: Mode,
    perm: &[usize; BLOCK_SIZE],
) -> Result<[f64; BLOCK_SIZE], CompressError> {
    let block_start = input.position_bits();
    let max_bits = match mode {
        Mode::Accuracy(_) | Mode::Precision(_) => usize::MAX / 2,
        Mode::Rate(bpp) => ((bpp * BLOCK_SIZE as f64) as usize).max(HEADER_BITS),
    };
    let nonzero = input.get_bit()?;
    let mut values = [0.0f64; BLOCK_SIZE];
    if nonzero {
        let emax = input.get_bits(14)? as i32 - EMAX_BIAS;
        if !(-2000..=2000).contains(&emax) {
            return Err(CompressError::Corrupt("implausible block exponent".into()));
        }
        let kmin = match mode {
            Mode::Accuracy(tol) => kmin_for(emax, tol),
            Mode::Rate(_) => 0,
            Mode::Precision(p) => 64u32.saturating_sub(p),
        };
        let nega = decode_ints(input, max_bits - HEADER_BITS, kmin)?;
        let mut ints = [0i64; BLOCK_SIZE];
        for (i, &p) in perm.iter().enumerate() {
            ints[p] = negabinary_to_int(nega[i]);
        }
        inverse_transform(&mut ints);
        values = from_ints(&ints, emax);
    }
    if let Mode::Rate(_) = mode {
        while input.position_bits() - block_start < max_bits {
            input.get_bit()?;
        }
    }
    Ok(values)
}

impl ZfpLike {
    fn threads(&self, work_items: usize) -> usize {
        let t = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        t.min(work_items).max(1)
    }
}

impl ZfpLike {
    /// ZFP's fixed-precision mode: keep `bits` (1..=64) most-significant
    /// bitplanes of every block — a relative-error-flavoured control not
    /// expressible through [`Bound`]. Decode with the ordinary
    /// [`LossyCompressor::decompress`].
    pub fn compress_fixed_precision(
        &self,
        field: &Field,
        bits: u32,
    ) -> Result<Vec<u8>, CompressError> {
        if !(1..=64).contains(&bits) {
            return Err(CompressError::Invalid(format!("precision {bits} out of 1..=64")));
        }
        self.compress_mode(field, Mode::Precision(bits))
    }

    fn compress_mode(&self, field: &Field, mode: Mode) -> Result<Vec<u8>, CompressError> {
        if field.is_empty() {
            return Err(CompressError::Invalid("empty field".into()));
        }
        let grid = block_grid(field.dims);
        let perm = sequency_permutation();

        // Slab-parallel: split the z block rows across workers, each
        // producing an independent bitstream.
        let threads = self.threads(grid[2]);
        let slab_bounds: Vec<(usize, usize)> = split_ranges(grid[2], threads);
        let dims = field.dims;
        let data = &field.data;
        let slabs: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> = slab_bounds
                .iter()
                .map(|&(z0, z1)| {
                    scope.spawn(move || {
                        // Size hint: exact for fixed-rate; a mid-range
                        // per-block guess otherwise (grows if exceeded).
                        let blocks = (z1 - z0) * grid[1] * grid[0];
                        let per_block = match mode {
                            Mode::Rate(bpp) => {
                                ((bpp * BLOCK_SIZE as f64) as usize).max(HEADER_BITS)
                            }
                            _ => HEADER_BITS + BLOCK_SIZE * 8,
                        };
                        let mut w = BitWriter::with_capacity_bits(blocks * per_block);
                        for bz in z0..z1 {
                            for by in 0..grid[1] {
                                for bx in 0..grid[0] {
                                    let block = gather(data, dims, bx, by, bz);
                                    encode_block(&block, mode, &perm, &mut w);
                                }
                            }
                        }
                        w.into_bytes()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("slab worker panicked")).collect()
        });

        let mut out = ByteWriter::new();
        out.put_bytes(MAGIC);
        out.put_u8(match mode {
            Mode::Accuracy(_) => 0,
            Mode::Rate(_) => 1,
            Mode::Precision(_) => 2,
        });
        out.put_u8(match field.precision {
            Precision::Double => 0,
            Precision::Single => 1,
        });
        out.put_f64(match mode {
            Mode::Accuracy(t) => t,
            Mode::Rate(r) => r,
            Mode::Precision(p) => f64::from(p),
        });
        out.put_u32(field.dims[0] as u32);
        out.put_u32(field.dims[1] as u32);
        out.put_u32(field.dims[2] as u32);
        out.put_u32(slabs.len() as u32);
        for s in &slabs {
            out.put_u32(s.len() as u32);
        }
        for s in &slabs {
            out.put_bytes(s);
        }
        Ok(out.into_bytes())
    }
}

impl LossyCompressor for ZfpLike {
    fn name(&self) -> &'static str {
        "ZFP-like"
    }

    fn supports(&self, bound: &Bound) -> bool {
        matches!(bound, Bound::Pwe(_) | Bound::Bpp(_))
    }

    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError> {
        let mode = match bound {
            Bound::Pwe(t) if t > 0.0 && t.is_finite() => Mode::Accuracy(t),
            Bound::Bpp(r) if r > 0.0 && r.is_finite() => Mode::Rate(r),
            Bound::Psnr(_) => {
                return Err(CompressError::Unsupported("ZFP-like has no PSNR mode"))
            }
            _ => return Err(CompressError::Invalid("invalid bound value".into())),
        };
        self.compress_mode(field, mode)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError> {
        let mut r = ByteReader::new(stream);
        if r.get_bytes(4)? != MAGIC {
            return Err(CompressError::Corrupt("bad ZFPL magic".into()));
        }
        let mode_tag = r.get_u8()?;
        let precision = match r.get_u8()? {
            0 => Precision::Double,
            1 => Precision::Single,
            p => return Err(CompressError::Corrupt(format!("bad precision {p}"))),
        };
        let param = r.get_f64()?;
        let mode = match mode_tag {
            0 if param > 0.0 => Mode::Accuracy(param),
            1 if param > 0.0 => Mode::Rate(param),
            2 if (1.0..=64.0).contains(&param) => Mode::Precision(param as u32),
            _ => return Err(CompressError::Corrupt("bad mode/param".into())),
        };
        let dims = [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
        if dims.iter().any(|&d| d == 0) {
            return Err(CompressError::Corrupt("zero dimension".into()));
        }
        // Untrusted header: cap the declared volume before sizing any
        // allocation by it (u32-index domain, like the SPERR container).
        if dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
            .map_or(true, |n| n > u32::MAX as u64)
        {
            return Err(CompressError::LimitExceeded("declared volume too large".into()));
        }
        let n_slabs = r.get_u32()? as usize;
        let grid = block_grid(dims);
        if n_slabs == 0 || n_slabs > grid[2] {
            return Err(CompressError::Corrupt("bad slab count".into()));
        }
        // The slab-length table must physically fit the remaining stream
        // before reserving for it.
        if n_slabs.saturating_mul(4) > r.remaining() {
            return Err(CompressError::Truncated("slab table extends past end of stream".into()));
        }
        let mut slab_lens = Vec::with_capacity(n_slabs);
        for _ in 0..n_slabs {
            slab_lens.push(r.get_u32()? as usize);
        }
        let mut slab_data = Vec::with_capacity(n_slabs);
        for &len in &slab_lens {
            slab_data.push(r.get_bytes(len)?);
        }
        let slab_bounds = split_ranges(grid[2], n_slabs);
        let perm = sequency_permutation();

        let results: Vec<Result<(usize, usize, Vec<f64>), CompressError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = slab_bounds
                    .iter()
                    .zip(&slab_data)
                    .map(|(&(z0, z1), bytes)| {
                        scope.spawn(move || {
                            // Decode into a slab-local buffer covering
                            // z rows [z0*4, min(z1*4, nz)).
                            let z_lo = z0 * BLOCK_EDGE;
                            let z_hi = (z1 * BLOCK_EDGE).min(dims[2]);
                            let slab_dims = [dims[0], dims[1], z_hi - z_lo];
                            let mut slab = vec![0.0f64; slab_dims.iter().product()];
                            let mut input = BitReader::new(bytes);
                            for bz in z0..z1 {
                                for by in 0..grid[1] {
                                    for bx in 0..grid[0] {
                                        let block = decode_block(&mut input, mode, &perm)?;
                                        scatter(
                                            &mut slab,
                                            slab_dims,
                                            bx,
                                            by,
                                            bz - z0,
                                            &block,
                                        );
                                    }
                                }
                            }
                            Ok((z_lo, z_hi, slab))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("slab worker panicked")).collect()
            });

        let mut out = vec![0.0f64; dims.iter().product()];
        let plane = dims[0] * dims[1];
        for res in results {
            let (z_lo, z_hi, slab) = res?;
            out[z_lo * plane..z_hi * plane].copy_from_slice(&slab);
        }
        Ok(Field::new(dims, out).with_precision(precision))
    }
}

/// Splits `n` items into `parts` contiguous near-equal ranges.
fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover() {
        assert_eq!(split_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(split_ranges(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(split_ranges(1, 1), vec![(0, 1)]);
    }

    #[test]
    fn kmin_scales_with_tolerance() {
        // Tighter tolerance -> lower kmin (more planes).
        assert!(kmin_for(0, 1e-6) < kmin_for(0, 1e-2));
        // Bigger data -> higher emax -> lower kmin for same tolerance.
        assert!(kmin_for(10, 1e-3) < kmin_for(0, 1e-3));
    }
}
