//! Histogram-correctness properties for the metrics layer (PR 10).
//! The histogram data model compiles with or without the `telemetry`
//! feature, so these run in the default tier-1 suite:
//!
//! 1. Merge is commutative and associative (bucket-wise addition plus
//!    exact count/sum/min/max sidecars), so per-thread shards can be
//!    combined in any order at snapshot time.
//! 2. A merged histogram is indistinguishable from recording every
//!    sample into one histogram.
//! 3. Quantile estimates bound the true sample quantile from above,
//!    within the documented log-linear bucket error
//!    ([`sperr_telemetry::metrics::QUANTILE_REL_ERROR`], plus ±1
//!    absolute in the exact sub-2^SUB_BITS range).

use proptest::prelude::*;
use sperr_telemetry::metrics::QUANTILE_REL_ERROR;
use sperr_telemetry::Histogram;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn assert_hist_eq(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count, b.count);
    assert_eq!(a.sum, b.sum);
    assert_eq!(a.min, b.min);
    assert_eq!(a.max, b.max);
    assert_eq!(a.bucket_counts()[..], b.bucket_counts()[..]);
}

/// The true q-quantile under the rank convention the histogram uses:
/// the ceil(q·n)-th smallest sample (1-based), clamped into range.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sample values spanning the interesting ranges: the exact sub-16
/// buckets, mid-range latencies, and large magnitudes near the top
/// octaves.
fn sample_value() -> BoxedStrategy<u64> {
    prop_oneof![
        0u64..16,
        16u64..1_000,
        1_000u64..10_000_000,
        (u64::MAX / 4)..u64::MAX,
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(sample_value(), 0..40),
        ys in proptest::collection::vec(sample_value(), 0..40),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_hist_eq(&ab, &ba);
    }

    #[test]
    fn merge_is_associative_and_matches_combined_recording(
        xs in proptest::collection::vec(sample_value(), 0..30),
        ys in proptest::collection::vec(sample_value(), 0..30),
        zs in proptest::collection::vec(sample_value(), 0..30),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        assert_hist_eq(&left, &right);
        // Either grouping equals one histogram fed every sample.
        let mut all: Vec<u64> = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        assert_hist_eq(&left, &hist_of(&all));
    }

    #[test]
    fn quantiles_bound_true_sample_quantiles(
        mut samples in proptest::collection::vec(sample_value(), 1..120),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..6),
    ) {
        let h = hist_of(&samples);
        samples.sort_unstable();
        for &q in &qs {
            let est = h.quantile(q);
            let truth = true_quantile(&samples, q);
            // Upper bound: the estimate never understates the sample.
            prop_assert!(
                est >= truth,
                "q={q}: estimate {est} below true quantile {truth}"
            );
            // …and overstates it by at most the documented bucket error
            // (bucket upper edge, clamped to the observed max).
            let limit = truth as f64 * (1.0 + QUANTILE_REL_ERROR) + 1.0;
            prop_assert!(
                est as f64 <= limit.min(h.max as f64),
                "q={q}: estimate {est} above error bound {limit} (true {truth})"
            );
        }
    }
}

/// The tracked quantile set is monotone in q — p50 ≤ p90 ≤ p99 ≤ p999 —
/// for any recorded distribution (a plain consequence of the cumulative
/// walk, pinned here because the exporters print them side by side).
#[test]
fn tracked_quantiles_are_monotone() {
    let mut h = Histogram::new();
    for i in 0..10_000u64 {
        h.record(i.wrapping_mul(2654435761) % 5_000_000);
    }
    let (p50, p90, p99, p999) =
        (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99), h.quantile(0.999));
    assert!(p50 <= p90 && p90 <= p99 && p99 <= p999, "{p50} {p90} {p99} {p999}");
    assert!(p999 <= h.max);
}
