//! Shared worker pool for chunk- and line-level parallelism.
//!
//! Replaces the old per-call `parallel_map` (which spawned fresh OS
//! threads on every invocation) with one set of workers per compression
//! call, used at *two* levels: chunks in the outer loop, and wavelet
//! line-panels / elementwise sweeps inside a chunk when too few chunks
//! exist to keep the workers busy.
//!
//! # Nesting and oversubscription
//!
//! There is exactly one pool per [`scoped`] region and `threads` worker
//! slots (the caller thread is slot 0; spawned workers are 1..threads).
//! A [`WorkerPool::run`] issued *from inside a pool job* executes its
//! jobs inline on the calling worker — nested parallelism never spawns
//! or wakes anything, so the thread count is bounded by `threads` no
//! matter how deeply batches nest (regression-tested). A top-level `run`
//! with a single job also executes inline, but *without* entering job
//! context, so parallelism engaged deeper in the call tree (e.g. the
//! wavelet passes of a single-chunk volume) still fans out.
//!
//! # Determinism
//!
//! Jobs race only for *which worker runs them*; each job's inputs and
//! outputs are independent of scheduling, so results are identical for
//! any thread count — the compressed-stream determinism tests rely on
//! this.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

thread_local! {
    /// Worker slot of the pool job currently executing on this thread,
    /// if any. `Some` means "inline any nested batch".
    static CURRENT_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Every mutex in this module protects state whose invariants hold at
/// every await point (plain counters / Option slots mutated atomically
/// under the lock), so a poisoned lock carries no torn data — treating
/// poison as fatal would turn one caught job panic into a cascade that
/// wedges every later compression on the same pool.
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Extracts a human-readable message from a caught panic payload.
/// `panic!("...")` yields `&'static str`; `panic!("{x}")` yields
/// `String`; anything else gets a placeholder.
pub(crate) fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A worker job panicked during [`WorkerPool::try_run`] /
/// [`WorkerPool::run_with_producer`]. Carries the first captured panic
/// message so callers can surface *what* failed instead of a generic
/// marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Message of the first panic observed in the batch.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker-pool job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Per-batch counters. Heap-allocated and kept alive by `Arc` strong
/// references — `run`'s own plus one per worker holding a copy of the
/// batch — so a straggler that grabs the batch from the shared slot just
/// before the caller retires it still touches live memory: it finds the
/// job counter drained, breaks out, and drops its reference. (These used
/// to live on `run`'s stack frame, which a late claimant could touch
/// after `run` returned — a use-after-free.)
struct BatchState {
    n: usize,
    next: AtomicUsize,
    finished: AtomicUsize,
    panicked: AtomicBool,
    /// First panic message captured by [`execute_batch`] (first writer
    /// wins; later panics in the same batch are dropped).
    panic_msg: Mutex<Option<String>>,
}

/// One in-flight batch of jobs, published to the workers. Only the job
/// closure pointer references the caller's stack; it is dereferenced
/// solely after claiming a job index `< n`, which can happen only while
/// `run` is still blocked on that job — see SAFETY in [`execute_batch`].
#[derive(Clone)]
struct Batch {
    f: *const (dyn Fn(usize, usize) + Sync),
    state: Arc<BatchState>,
}
unsafe impl Send for Batch {}

#[derive(Default)]
struct State {
    batch: Option<Batch>,
    generation: u64,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    state: Mutex<State>,
    /// Signals workers: new batch available or shutdown.
    work: Condvar,
    /// Signals callers: batch finished (or batch slot freed).
    done: Condvar,
}

/// Scoped worker pool; see the module docs. Construct via
/// [`WorkerPool::scoped`] (spawns workers) or [`WorkerPool::inline`]
/// (zero workers, every batch runs on the caller — the serial executor
/// used by the compatibility wrappers).
pub struct WorkerPool {
    threads: usize,
    shared: Shared,
}

impl WorkerPool {
    /// A pool with no spawned workers: all jobs run inline on the caller.
    pub fn inline() -> WorkerPool {
        WorkerPool { threads: 1, shared: Shared::default() }
    }

    /// Runs `body` with a pool of `threads` worker slots (min 1). Workers
    /// are spawned once, live for the whole region (scoped threads — they
    /// may borrow from the caller), and are joined before `scoped`
    /// returns, even if `body` panics.
    pub fn scoped<R>(threads: usize, body: impl FnOnce(&WorkerPool) -> R) -> R {
        let threads = threads.max(1);
        let pool = WorkerPool { threads, shared: Shared::default() };
        // The caller participates in every batch as worker slot 0; name
        // its telemetry track accordingly (no-op without the feature).
        sperr_telemetry::set_worker(0);
        if threads == 1 {
            return body(&pool);
        }
        std::thread::scope(|scope| {
            for slot in 1..threads {
                let shared = &pool.shared;
                scope.spawn(move || worker_loop(shared, slot));
            }
            // Shut workers down when `body` finishes OR unwinds —
            // otherwise `scope` would join forever.
            struct Shutdown<'a>(&'a Shared);
            impl Drop for Shutdown<'_> {
                fn drop(&mut self) {
                    lock_ignore_poison(&self.0.state).shutdown = true;
                    self.0.work.notify_all();
                }
            }
            let _guard = Shutdown(&pool.shared);
            body(&pool)
        })
    }

    /// Number of worker slots (including the caller, slot 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(job, worker)` for every `job in 0..n`, returning when all
    /// are done. `worker < threads()`; concurrent jobs always see
    /// distinct worker values (they index per-worker scratch). Nested
    /// calls from inside a job run inline on that job's worker slot.
    ///
    /// Panics in `f` are caught on the worker, and `run` panics on the
    /// caller after the batch drains — with the first captured panic
    /// message — and the pool stays usable.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if let Err(p) = self.try_run(n, f) {
            panic!("worker-pool job panicked: {}", p.message);
        }
    }

    /// Non-panicking variant of [`run`](Self::run): a panic in any job is
    /// caught, the batch still drains fully, and the first captured panic
    /// message is returned as [`JobPanic`]. The streaming pipeline uses
    /// this so a worker panic becomes a typed error instead of an unwind.
    pub fn try_run(&self, n: usize, f: &(dyn Fn(usize, usize) + Sync)) -> Result<(), JobPanic> {
        self.run_with_producer(n, || {}, f)
    }

    /// Runs a batch like [`try_run`](Self::try_run), but executes
    /// `producer` on the caller thread *after* publishing the batch and
    /// *before* the caller joins in as worker slot 0. Spawned workers
    /// start claiming jobs as soon as the batch is published, so the
    /// producer overlaps with them — this is the seam the streaming
    /// pipeline uses: the producer feeds a bounded queue (ingest) while
    /// replicated stage workers drain it.
    ///
    /// A panic in `producer` is caught so the published batch is never
    /// orphaned: the caller still joins the batch, drains it, and the
    /// producer's panic message is returned (taking precedence over any
    /// job panic, since cancellation noise usually follows the root
    /// cause).
    pub fn run_with_producer(
        &self,
        n: usize,
        producer: impl FnOnce(),
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), JobPanic> {
        if n == 0 {
            producer();
            return Ok(());
        }
        // Inside a pool job: inline on the current slot (no oversubscription,
        // no deadlock on the single batch slot).
        if let Some(slot) = CURRENT_SLOT.with(|c| c.get()) {
            producer();
            for i in 0..n {
                f(i, slot);
            }
            return Ok(());
        }
        // Trivial batches run on the caller as slot 0 *without* entering
        // job context, so deeper batches can still go parallel.
        if self.threads == 1 || n == 1 {
            producer();
            for i in 0..n {
                f(i, 0);
            }
            return Ok(());
        }

        let state = Arc::new(BatchState {
            n,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
        });
        let batch = Batch {
            // SAFETY (lifetime erasure): workers dereference `f` only
            // after claiming a job index < n, and `run` cannot return
            // before all n jobs finish — so every such dereference happens
            // while the closure is alive. A late claimant that misses the
            // jobs entirely touches only the Arc-held counters.
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, usize) + Sync),
                    *const (dyn Fn(usize, usize) + Sync),
                >(f as *const _)
            },
            state: Arc::clone(&state),
        };
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            // Another top-level caller may have a batch in flight (pools
            // are per compression call, but the API does not forbid it).
            while st.batch.is_some() {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.batch = Some(batch.clone());
            st.generation += 1;
        }
        self.shared.work.notify_all();

        // Run the producer while workers chew on the batch. Catch its
        // unwind: the batch is already published, so bailing out here
        // would leave the slot occupied forever and deadlock the next
        // caller. The batch must drain regardless.
        let producer_panic = catch_unwind(AssertUnwindSafe(producer))
            .err()
            .map(|p| panic_payload_message(p.as_ref()));

        // The caller participates as worker 0.
        execute_batch(&batch, 0);

        // Wait for stragglers, then free the batch slot. Workers that
        // copied the batch but have not run yet keep their own Arc and
        // find the job counter drained — retiring the slot never races
        // with their counter accesses.
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            while state.finished.load(Ordering::Acquire) < n {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.batch = None;
        }
        self.shared.done.notify_all();
        if let Some(message) = producer_panic {
            return Err(JobPanic { message });
        }
        if state.panicked.load(Ordering::Acquire) {
            let message = lock_ignore_poison(&state.panic_msg)
                .take()
                .unwrap_or_else(|| "non-string panic payload".to_string());
            return Err(JobPanic { message });
        }
        Ok(())
    }

    /// Ordered parallel map: `f(job, worker)` for `job in 0..n`, results
    /// collected in job order.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let slots = SendPtr(out.as_mut_ptr());
        self.run(n, &|i, w| {
            let v = f(i, w);
            // SAFETY: each job index writes exactly its own slot.
            unsafe { *slots.at(i) = Some(v) };
        });
        out.into_iter()
            .map(|s| s.expect("worker failed to fill slot"))
            .collect()
    }
}

/// Raw pointer wrapper for the disjoint-slot writes in [`WorkerPool::map`].
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Method (not field) access so closures capture the Sync wrapper.
    unsafe fn at(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

/// Claims and executes jobs of `batch` until its counter drains; sets the
/// thread's job context so nested `run`s inline onto `slot`.
fn execute_batch(batch: &Batch, slot: usize) {
    // One span per batch per participating worker: the gaps between
    // these spans on a worker's track are its idle time.
    let _busy = sperr_telemetry::span!("pool.batch");
    let st = &*batch.state;
    let prev = CURRENT_SLOT.with(|c| c.replace(Some(slot)));
    loop {
        let i = st.next.fetch_add(1, Ordering::Relaxed);
        if i >= st.n {
            break;
        }
        // SAFETY: job `i < n` was claimed, so `finished` stays below `n`
        // at least until this job completes — `run` is still blocked in
        // its completion wait and the closure it borrows is alive.
        let f = unsafe { &*batch.f };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i, slot))) {
            let message = panic_payload_message(payload.as_ref());
            let mut slot_msg = lock_ignore_poison(&st.panic_msg);
            if slot_msg.is_none() {
                *slot_msg = Some(message);
            }
            drop(slot_msg);
            st.panicked.store(true, Ordering::Release);
        }
        st.finished.fetch_add(1, Ordering::AcqRel);
    }
    CURRENT_SLOT.with(|c| c.set(prev));
}

fn worker_loop(shared: &Shared, slot: usize) {
    sperr_telemetry::set_worker(slot);
    let mut seen_generation = 0u64;
    loop {
        let batch = {
            let mut st = lock_ignore_poison(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    if let Some(batch) = &st.batch {
                        seen_generation = st.generation;
                        break batch.clone();
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        execute_batch(&batch, slot);
        // Wake the caller (and any queued caller) once the batch drains.
        // The lock round-trip orders the notify after the caller's
        // check-then-wait, avoiding a lost wakeup. The counters are held
        // alive by this worker's own Arc even if the caller has already
        // retired the batch.
        if batch.state.finished.load(Ordering::Acquire) >= batch.state.n {
            drop(lock_ignore_poison(&shared.state));
            shared.done.notify_all();
        }
    }
}

impl sperr_wavelet::LineExecutor for WorkerPool {
    fn width(&self) -> usize {
        self.threads
    }

    fn run(&self, n_jobs: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        WorkerPool::run(self, n_jobs, f);
    }
}

/// One value per worker slot, handed out mutably by slot index — the
/// core-side twin of the wavelet crate's internal scratch keying. Used
/// for per-worker [`ScratchArena`](crate::pipeline::ScratchArena)s.
pub(crate) struct PerWorker<T> {
    slots: Box<[std::cell::UnsafeCell<T>]>,
}

// SAFETY: `get` callers uphold one-thread-per-slot (pool contract).
unsafe impl<T: Send> Sync for PerWorker<T> {}

impl<T> PerWorker<T> {
    pub(crate) fn new(n: usize, mut init: impl FnMut() -> T) -> Self {
        PerWorker { slots: (0..n).map(|_| std::cell::UnsafeCell::new(init())).collect() }
    }

    /// # Safety
    ///
    /// No two threads may use the same `worker` index concurrently.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self, worker: usize) -> &mut T {
        &mut *self.slots[worker].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        WorkerPool::scoped(4, |pool| {
            let out = pool.map(100, |i, _| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        });
    }

    #[test]
    fn single_thread_pool_is_inline() {
        let pool = WorkerPool::inline();
        let out = pool.map(5, |i, w| {
            assert_eq!(w, 0);
            i + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn nested_run_inlines_on_callers_slot() {
        // Regression test for the old parallel_map's failure mode: nested
        // use must neither deadlock nor run on extra threads.
        WorkerPool::scoped(4, |pool| {
            let inner_threads = Mutex::new(std::collections::HashSet::new());
            pool.run(8, &|outer, outer_worker| {
                // Nested batch: must execute inline, same thread, same slot.
                let tid = std::thread::current().id();
                pool.run(16, &|_, inner_worker| {
                    assert_eq!(inner_worker, outer_worker, "nested job changed slot");
                    assert_eq!(std::thread::current().id(), tid, "nested job changed thread");
                    inner_threads.lock().unwrap().insert(std::thread::current().id());
                });
                let _ = outer;
            });
            // Nested jobs ran on at most `threads` distinct OS threads.
            assert!(inner_threads.lock().unwrap().len() <= 4);
        });
    }

    #[test]
    fn single_job_batch_leaves_room_for_deeper_parallelism() {
        WorkerPool::scoped(4, |pool| {
            let distinct = Mutex::new(std::collections::HashSet::new());
            // n == 1 runs inline without job context...
            pool.run(1, &|_, w| {
                assert_eq!(w, 0);
                // ...so this deeper batch may still fan out.
                pool.run(64, &|_, _| {
                    distinct.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            });
            assert!(distinct.lock().unwrap().len() >= 1);
        });
    }

    #[test]
    fn pool_reusable_across_batches() {
        WorkerPool::scoped(3, |pool| {
            for round in 0..50 {
                let count = AtomicUsize::new(0);
                pool.run(round % 7 + 1, &|_, _| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(count.load(Ordering::Relaxed), round % 7 + 1);
            }
        });
    }

    #[test]
    fn concurrent_jobs_see_distinct_workers() {
        WorkerPool::scoped(4, |pool| {
            let in_flight: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(64, &|_, w| {
                assert_eq!(in_flight[w].fetch_add(1, Ordering::SeqCst), 0, "slot {w} shared");
                std::thread::sleep(std::time::Duration::from_micros(200));
                in_flight[w].fetch_sub(1, Ordering::SeqCst);
            });
        });
    }

    #[test]
    fn batch_retirement_does_not_race_late_claimants() {
        // Regression test for a use-after-free: a worker could grab the
        // batch from the shared slot just before the caller retired it,
        // then touch the (then stack-allocated) counters after `run`
        // returned, corrupting the next batch. Hammer the slot with rapid
        // back-to-back batches from several top-level callers — under the
        // old code this corrupted job counts or dropped jobs.
        WorkerPool::scoped(4, |pool| {
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        for round in 0..300 {
                            let jobs = round % 5 + 1;
                            let count = AtomicUsize::new(0);
                            pool.run(jobs, &|_, _| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                            assert_eq!(count.load(Ordering::Relaxed), jobs);
                        }
                    });
                }
            });
        });
    }

    #[test]
    fn zero_job_batch_is_noop() {
        // n == 0 must return immediately without publishing a batch,
        // waking a worker, or poisoning the pool — from the top level,
        // from inside a job, and through `map`.
        WorkerPool::scoped(4, |pool| {
            pool.run(0, &|_, _| panic!("zero-job batch ran a job"));
            assert_eq!(pool.map(0, |i, _| i), Vec::<usize>::new());
            pool.run(3, &|_, _| {
                // Nested zero-job batch inside job context.
                pool.run(0, &|_, _| panic!("nested zero-job batch ran a job"));
            });
            // Pool still fully functional afterwards.
            assert_eq!(pool.map(5, |i, _| i * 2), vec![0, 2, 4, 6, 8]);
        });
    }

    #[test]
    fn single_job_with_many_threads() {
        // One job on a wide pool runs inline on the caller (slot 0), never
        // waits on the workers, and leaves them usable for later batches.
        WorkerPool::scoped(8, |pool| {
            let caller = std::thread::current().id();
            for _ in 0..100 {
                pool.run(1, &|i, w| {
                    assert_eq!(i, 0);
                    assert_eq!(w, 0, "single job ran off the caller slot");
                    assert_eq!(std::thread::current().id(), caller);
                });
            }
            // The workers were not consumed: a wide batch still fans out.
            let out = pool.map(64, |i, _| i);
            assert_eq!(out, (0..64).collect::<Vec<_>>());
        });
    }

    #[test]
    fn panic_in_nested_job_propagates_to_outer_run() {
        // A panic in a batch issued from *inside* a pool job unwinds
        // through the outer job; the outer `run` must report it and the
        // pool must survive.
        WorkerPool::scoped(4, |pool| {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(4, &|outer, _| {
                    pool.run(8, &|inner, _| {
                        if outer == 2 && inner == 5 {
                            panic!("nested boom");
                        }
                    });
                });
            }));
            assert!(result.is_err(), "nested panic was swallowed");
            assert_eq!(pool.map(4, |i, _| i + 1), vec![1, 2, 3, 4]);
        });
    }

    #[test]
    fn every_job_still_runs_when_several_panic() {
        // Panicking jobs are caught per-job: the batch drains fully (no
        // job skipped, no deadlock) and the caller panics exactly once at
        // the end, even with many panicking jobs racing many threads.
        WorkerPool::scoped(8, |pool| {
            let ran = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(64, &|i, _| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i % 3 == 0 {
                        panic!("boom {i}");
                    }
                });
            }));
            assert!(result.is_err());
            assert_eq!(ran.load(Ordering::SeqCst), 64, "a job was skipped");
            assert_eq!(pool.map(2, |i, _| i), vec![0, 1]);
        });
    }

    #[test]
    fn map_panic_propagates_not_unfilled_slot() {
        // A panic inside `map`'s closure must surface as the pool's batch
        // panic, not as the "worker failed to fill slot" expect on a
        // missing result.
        WorkerPool::scoped(4, |pool| {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.map(16, |i, _| {
                    if i == 7 {
                        panic!("map boom");
                    }
                    i
                })
            }));
            let msg = *result.unwrap_err().downcast::<String>().unwrap();
            assert!(
                msg.contains("map boom"),
                "panic message lost the original payload: {msg:?}"
            );
        });
    }

    #[test]
    fn try_run_returns_first_panic_message() {
        WorkerPool::scoped(4, |pool| {
            let err = pool
                .try_run(16, &|i, _| {
                    if i == 5 {
                        panic!("stage exploded on job {i}");
                    }
                })
                .unwrap_err();
            assert!(
                err.message.contains("stage exploded"),
                "lost payload: {:?}",
                err.message
            );
            // Pool is reusable; a clean batch succeeds.
            assert!(pool.try_run(8, &|_, _| {}).is_ok());
        });
    }

    #[test]
    fn try_run_non_string_payload_gets_placeholder() {
        WorkerPool::scoped(2, |pool| {
            let err = pool
                .try_run(4, &|i, _| {
                    if i == 1 {
                        std::panic::panic_any(42u32);
                    }
                })
                .unwrap_err();
            assert_eq!(err.message, "non-string panic payload");
        });
    }

    #[test]
    fn run_with_producer_overlaps_and_survives_job_panic() {
        WorkerPool::scoped(4, |pool| {
            let produced = AtomicBool::new(false);
            let ran = AtomicUsize::new(0);
            let err = pool
                .run_with_producer(
                    8,
                    || produced.store(true, Ordering::SeqCst),
                    &|i, _| {
                        ran.fetch_add(1, Ordering::SeqCst);
                        if i == 3 {
                            panic!("mid-stream boom");
                        }
                    },
                )
                .unwrap_err();
            assert!(produced.load(Ordering::SeqCst));
            assert_eq!(ran.load(Ordering::SeqCst), 8, "batch did not drain");
            assert!(err.message.contains("mid-stream boom"));
        });
    }

    #[test]
    fn run_with_producer_panicking_producer_does_not_orphan_batch() {
        // The batch is published before the producer runs; a producer
        // panic must not leave the batch slot occupied (which would
        // deadlock the next caller) and its message must win.
        WorkerPool::scoped(4, |pool| {
            let ran = AtomicUsize::new(0);
            let err = pool
                .run_with_producer(
                    8,
                    || panic!("producer boom"),
                    &|_, _| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    },
                )
                .unwrap_err();
            assert_eq!(ran.load(Ordering::SeqCst), 8);
            assert!(err.message.contains("producer boom"));
            // Next batch proceeds — the slot was freed.
            assert_eq!(pool.map(4, |i, _| i), vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn pool_survives_poisoned_external_state_after_caught_panic() {
        // A caught job panic may poison unrelated user mutexes; the pool's
        // own locks must keep working (lock_ignore_poison) so back-to-back
        // batches after a panic don't cascade into PoisonError unwraps.
        WorkerPool::scoped(4, |pool| {
            for round in 0..10 {
                let r = pool.try_run(8, &|i, _| {
                    if i == 2 {
                        panic!("round {round} boom");
                    }
                });
                assert!(r.unwrap_err().message.contains("boom"));
                assert_eq!(pool.map(3, |i, _| i * 10), vec![0, 10, 20]);
            }
        });
    }

    #[test]
    fn job_panic_propagates_without_deadlock() {
        WorkerPool::scoped(2, |pool| {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(8, &|i, _| {
                    if i == 3 {
                        panic!("boom");
                    }
                });
            }));
            assert!(result.is_err());
            // Pool still works after a failed batch.
            assert_eq!(pool.map(3, |i, _| i), vec![0, 1, 2]);
        });
    }
}
