#!/usr/bin/env bash
# Hot-path throughput benchmark; writes the tracked BENCH_pr9.json
# artifact (see crates/bench/src/bin/hotpath.rs for what is measured;
# BENCH_pr2.json/BENCH_pr4.json/BENCH_pr5.json/BENCH_pr7.json/
# BENCH_pr8.json are the frozen earlier editions the ratios baseline
# against).
#
# Usage:
#   scripts/bench.sh            # full run (256^3), writes BENCH_pr9.json
#   scripts/bench.sh --smoke    # tiny dims, writes target/bench_smoke.json
#   scripts/bench.sh --out F    # override the output path
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_pr9.json"
SMOKE=()
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke)
      SMOKE=(--smoke)
      OUT="target/bench_smoke.json"
      ;;
    --out)
      OUT="$2"
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      echo "usage: scripts/bench.sh [--smoke] [--out FILE]" >&2
      exit 2
      ;;
  esac
  shift
done

cargo build --release -q -p sperr-bench --bin hotpath
target/release/hotpath "${SMOKE[@]}" --out "$OUT"
# Self-check: the artifact we just wrote must validate.
target/release/hotpath --check "$OUT"
