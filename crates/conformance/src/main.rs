//! Conformance driver.
//!
//! ```text
//! cargo run -p sperr-conformance -- regen         # rewrite golden/ + manifest
//! cargo run -p sperr-conformance -- check         # verify committed goldens
//! cargo run -p sperr-conformance -- oracles       # run the differential oracles
//! cargo run -p sperr-conformance -- campaign [N]  # N randomized PWE cases (default 200)
//! cargo run -p sperr-conformance -- faults [N]    # streaming fault injection (default 12)
//! cargo run -p sperr-conformance -- regions [N]   # N random bboxes per corpus field (default 50)
//! cargo run -p sperr-conformance -- refine [N]    # N progressive-refinement cases (default 60)
//! ```
//!
//! Every subcommand except `regen` exits nonzero on any failure, so CI
//! can call them directly. `regen` is the only subcommand that writes to
//! the source tree — remember to bump `GOLDEN_VERSION` when committing
//! its output.

use sperr_conformance::corpus::{corpus_inputs, documented_budget, CodecId};
use sperr_conformance::oracle;
use sperr_conformance::pwe::{run_campaign, CampaignConfig};
use sperr_conformance::{golden, CheckFailure};
use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_wavelet::Kernel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("regen") => regen(),
        Some("check") => report("golden check", &golden::check(&golden::golden_dir())),
        Some("oracles") => report("oracles", &run_oracles()),
        Some("campaign") => {
            let n = args.get(1).map_or(Ok(200), |s| s.parse()).unwrap_or_else(|_| {
                eprintln!("campaign: case count must be a number");
                std::process::exit(2);
            });
            campaign(n)
        }
        Some("faults") => {
            let n = args.get(1).map_or(Ok(12), |s| s.parse()).unwrap_or_else(|_| {
                eprintln!("faults: case count must be a number");
                std::process::exit(2);
            });
            report("fault campaign", &sperr_conformance::fault::run_fault_campaign(n))
        }
        Some("regions") => {
            let n = args.get(1).map_or(Ok(50), |s| s.parse()).unwrap_or_else(|_| {
                eprintln!("regions: bbox count must be a number");
                std::process::exit(2);
            });
            report("region oracle", &run_regions(n))
        }
        Some("refine") => {
            let n = args.get(1).map_or(Ok(60), |s| s.parse()).unwrap_or_else(|_| {
                eprintln!("refine: case count must be a number");
                std::process::exit(2);
            });
            refine(n)
        }
        _ => {
            eprintln!(
                "usage: sperr-conformance regen | check | oracles | campaign [N] | faults [N] \
                 | regions [N] | refine [N]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn regen() -> i32 {
    let dir = golden::golden_dir();
    match golden::regenerate(&dir) {
        Ok(n) => {
            println!(
                "wrote {n} golden streams + v1/v3 fixtures + manifest to {} \
                 (GOLDEN_VERSION {})",
                dir.display(),
                golden::GOLDEN_VERSION
            );
            println!("remember: commit these together with a GOLDEN_VERSION bump");
            0
        }
        Err(e) => {
            eprintln!("regen failed: {e}");
            1
        }
    }
}

fn report(what: &str, failures: &[CheckFailure]) -> i32 {
    if failures.is_empty() {
        println!("{what}: OK");
        0
    } else {
        for f in failures {
            eprintln!("FAIL {f}");
        }
        eprintln!("{what}: {} failure(s)", failures.len());
        1
    }
}

/// The full differential-oracle sweep over the corpus: blocked lifting,
/// encoder-vs-reference, SPECK-stage fast path vs bit-at-a-time
/// reference, thread identity (1/2/4/8), resilient decode, re-encode
/// stability, and the f32-native path vs its widened-f64 twin.
fn run_oracles() -> Vec<CheckFailure> {
    let mut failures = Vec::new();
    fn run(failures: &mut Vec<CheckFailure>, r: oracle::CheckResult) {
        if let Err(f) = r {
            failures.push(f);
        }
    }
    for input in corpus_inputs() {
        let field = input.generate();
        let t = field.tolerance_for_idx(15);
        run(&mut failures, oracle::blocked_lifting_matches_reference(&field.data, field.dims, Kernel::Cdf97));
        run(&mut failures, oracle::encoder_matches_reference(&field.data, field.dims, t, 1.5, Kernel::Cdf97));
        run(&mut failures, oracle::speck_matches_reference(&field.data, field.dims, 1.5 * t));
        let field32 = input.generate_f32();
        run(
            &mut failures,
            oracle::f32_vs_widened(&field32, field32.tolerance_for_idx(15), [16, 16, 16], &[1, 2, 4, 8]),
        );
        match oracle::thread_count_bit_identity(&field, Bound::Pwe(t), [16, 16, 16], &[1, 2, 4, 8])
        {
            Ok(stream) => {
                let sperr = Sperr::new(SperrConfig {
                    chunk_dims: [16, 16, 16],
                    num_threads: 1,
                    ..SperrConfig::default()
                });
                run(&mut failures, oracle::resilient_matches_strict(&sperr, &stream));
            }
            Err(f) => failures.push(f),
        }
        for codec in CodecId::ALL {
            let compressor = codec.build();
            let bound = if compressor.supports(&Bound::Pwe(t)) {
                Bound::Pwe(t)
            } else {
                Bound::Psnr(60.0)
            };
            let budget = documented_budget(codec, bound, field.dims);
            run(&mut failures, oracle::reencode_idempotent(compressor.as_ref(), &field, bound, budget));
        }
    }
    failures
}

/// The region oracle over the whole corpus: each field compressed once
/// (PWE at the corpus-standard tolerance, indexed v3 container), then
/// `decode_region` over `n` randomized bboxes at 1/2/4/8 threads must
/// match the full decode bit-for-bit — and again through the legacy
/// chunk-table scan after a `downgrade_to_v2`.
fn run_regions(n: usize) -> Vec<CheckFailure> {
    let chunk_dims = [16usize, 16, 16];
    let sperr =
        Sperr::new(SperrConfig { chunk_dims, num_threads: 1, ..SperrConfig::default() });
    let threads = [1usize, 2, 4, 8];
    let mut failures = Vec::new();
    for (i, input) in corpus_inputs().iter().enumerate() {
        let field = input.generate();
        let t = field.tolerance_for_idx(15);
        let stream = match sperr.compress(&field, Bound::Pwe(t)) {
            Ok(s) => s,
            Err(e) => {
                failures.push(CheckFailure {
                    check: "region-vs-full",
                    detail: format!("{}: compress failed: {e}", input.id),
                });
                continue;
            }
        };
        let bboxes = oracle::region_bboxes(field.dims, chunk_dims, n, 0x8e90_2026 ^ i as u64);
        if let Err(mut f) = oracle::region_vs_full(&stream, chunk_dims, &bboxes, &threads, true) {
            f.detail = format!("{} (v3): {}", input.id, f.detail);
            failures.push(f);
        }
        match sperr.downgrade_to_v2(&stream) {
            Ok(v2) => {
                if let Err(mut f) =
                    oracle::region_vs_full(&v2, chunk_dims, &bboxes, &threads, false)
                {
                    f.detail = format!("{} (v2 scan): {}", input.id, f.detail);
                    failures.push(f);
                }
            }
            Err(e) => failures.push(CheckFailure {
                check: "region-vs-full",
                detail: format!("{}: downgrade_to_v2 failed: {e}", input.id),
            }),
        }
    }
    failures
}

fn refine(cases: usize) -> i32 {
    let config = sperr_conformance::RefineConfig::tier2(cases);
    let r = sperr_conformance::run_refine_campaign(&config);
    if r.clean() {
        println!("refine: {} cases, 0 violations", r.cases);
        0
    } else {
        for f in &r.violations {
            eprintln!("FAIL {f}");
        }
        eprintln!("refine: {} cases, {} violation(s)", r.cases, r.violations.len());
        1
    }
}

fn campaign(cases: usize) -> i32 {
    let config = CampaignConfig::tier2(cases);
    let r = run_campaign(&config);
    if r.clean() {
        println!("campaign: {} cases, 0 violations", r.cases);
        0
    } else {
        for f in &r.violations {
            eprintln!("FAIL {f}");
        }
        eprintln!("campaign: {} cases, {} violation(s)", r.cases, r.violations.len());
        1
    }
}
