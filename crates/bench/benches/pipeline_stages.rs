//! Criterion companion to Fig. 6: micro-benchmarks of the four SPERR
//! pipeline stages at two tolerance levels, on a Miranda-Viscosity-like
//! field. (The `fig6` binary prints the paper-style breakdown table; this
//! bench tracks regressions per stage.)

use criterion::{criterion_group, criterion_main, Criterion};
use sperr_datagen::SyntheticField;
use sperr_speck::Termination;
use sperr_wavelet::{forward_3d, inverse_3d, levels_for_dims, Kernel};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let dims = [64usize, 64, 48];
    let field = SyntheticField::MirandaViscosity.generate(dims, 5);
    let levels = levels_for_dims(dims);

    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);

    group.bench_function("1_forward_dwt", |b| {
        b.iter(|| {
            let mut coeffs = field.data.clone();
            forward_3d(&mut coeffs, dims, levels, Kernel::Cdf97);
            black_box(coeffs.len())
        })
    });

    let mut coeffs = field.data.clone();
    forward_3d(&mut coeffs, dims, levels, Kernel::Cdf97);

    for idx in [10u32, 30] {
        let t = field.tolerance_for_idx(idx);
        let q = 1.5 * t;
        group.bench_function(format!("2_speck_encode_idx{idx}"), |b| {
            b.iter(|| black_box(sperr_speck::encode(&coeffs, dims, q, Termination::Quality).bits_used))
        });

        group.bench_function(format!("3_locate_outliers_idx{idx}"), |b| {
            b.iter(|| {
                let mut recon = sperr_speck::reconstruct_quantized(&coeffs, q);
                inverse_3d(&mut recon, dims, levels, Kernel::Cdf97);
                let count = field
                    .data
                    .iter()
                    .zip(&recon)
                    .filter(|(a, b)| (*a - *b).abs() > t)
                    .count();
                black_box(count)
            })
        });

        let mut recon = sperr_speck::reconstruct_quantized(&coeffs, q);
        inverse_3d(&mut recon, dims, levels, Kernel::Cdf97);
        let outliers: Vec<sperr_outlier::Outlier> = field
            .data
            .iter()
            .zip(&recon)
            .enumerate()
            .filter_map(|(pos, (&a, &r))| {
                let corr = a - r;
                (corr.abs() > t).then_some(sperr_outlier::Outlier { pos, corr })
            })
            .collect();
        if !outliers.is_empty() {
            group.bench_function(format!("4_outlier_encode_idx{idx}"), |b| {
                b.iter(|| black_box(sperr_outlier::encode(&outliers, field.len(), t).bits_used))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
