//! Multilevel, multi-dimensional transform driver.
//!
//! 2D/3D transforms are separable: each level applies the 1D kernel along
//! every axis of the current approximation sub-box ("transforms are
//! separately applied along each axis", §III-A), then halves the
//! transformed axes. Axes with fewer levels (short dimensions) simply stop
//! participating once their level budget is exhausted.
//!
//! # Hot path
//!
//! The strided (y/z) passes are *panel-blocked*: instead of gathering one
//! stride-`N` line at a time (one cache miss per sample), a panel of up to
//! [`PANEL_W`](crate::PANEL_W) adjacent lines is transposed into a
//! contiguous line-major scratch buffer, the lifting kernel runs over the
//! whole panel, and the panel is scattered back. Because the lines of a
//! panel are adjacent along x, the gather/scatter reads and writes
//! `PANEL_W` *contiguous* doubles per touched row — every fetched cache
//! line is fully used, amortizing the strided walk across the panel.
//! Panels are independent, so passes parallelize through
//! [`LineExecutor`]; per-line arithmetic is exactly the reference path's,
//! so output is bit-identical to [`reference`] for any executor (enforced
//! by proptests).

use crate::exec::{LineExecutor, Serial, TransformScratch, WorkerScratch, PANEL_W};
use crate::kernels::Kernel;
use sperr_simd::Float;

/// Telemetry labels for per-axis lifting passes (span value = level).
/// The `reference` module is deliberately not instrumented: it is the
/// bit-identity oracle and its perf profile should stay untouched.
const FWD_AXIS_SPAN: [&str; 3] = ["wavelet.fwd.x", "wavelet.fwd.y", "wavelet.fwd.z"];
const INV_AXIS_SPAN: [&str; 3] = ["wavelet.inv.x", "wavelet.inv.y", "wavelet.inv.z"];

/// Number of recursive transform passes for an axis of length `n`:
/// `min(6, ⌊log2 n⌋ − 2)`, clamped to 0 for short axes (paper §III-A).
pub fn num_levels(n: usize) -> usize {
    if n < 8 {
        return 0;
    }
    let log2 = usize::BITS as usize - 1 - n.leading_zeros() as usize;
    (log2 - 2).min(6)
}

/// Per-axis level counts for a 3D volume, using [`num_levels`].
pub fn levels_for_dims(dims: [usize; 3]) -> [usize; 3] {
    [num_levels(dims[0]), num_levels(dims[1]), num_levels(dims[2])]
}

/// Length of the approximation band after one level on an axis of length
/// `n` (`ceil(n/2)`; the low band is packed first).
pub fn approx_len(n: usize) -> usize {
    n.div_ceil(2)
}

/// Forward multilevel transform of a 1D signal in place.
pub fn forward_1d<T: Float>(data: &mut [T], n: usize, levels: usize, kernel: Kernel) {
    let mut scratch = vec![T::ZERO; n];
    forward_1d_with(data, n, levels, kernel, &mut scratch);
}

/// [`forward_1d`] with caller-provided scratch (`scratch.len() >= n`), so
/// repeated calls allocate nothing.
pub fn forward_1d_with<T: Float>(data: &mut [T], n: usize, levels: usize, kernel: Kernel, scratch: &mut [T]) {
    assert!(data.len() >= n);
    assert!(scratch.len() >= n, "scratch too short: {} < {n}", scratch.len());
    let mut len = n;
    for _ in 0..levels {
        if len < 2 {
            break;
        }
        kernel.forward_line(data, len, scratch);
        len = approx_len(len);
    }
}

/// Inverse of [`forward_1d`].
pub fn inverse_1d<T: Float>(data: &mut [T], n: usize, levels: usize, kernel: Kernel) {
    let mut scratch = vec![T::ZERO; n];
    inverse_1d_with(data, n, levels, kernel, &mut scratch);
}

/// [`inverse_1d`] with caller-provided scratch (`scratch.len() >= n`).
pub fn inverse_1d_with<T: Float>(data: &mut [T], n: usize, levels: usize, kernel: Kernel, scratch: &mut [T]) {
    assert!(data.len() >= n);
    assert!(scratch.len() >= n, "scratch too short: {} < {n}", scratch.len());
    // Recompute the per-level lengths, then undo them in reverse order.
    let mut lens = [0usize; 64];
    let mut n_lens = 0;
    let mut len = n;
    for _ in 0..levels {
        if len < 2 {
            break;
        }
        lens[n_lens] = len;
        n_lens += 1;
        len = approx_len(len);
    }
    for &len in lens[..n_lens].iter().rev() {
        kernel.inverse_line(data, len, scratch);
    }
}

/// Forward multilevel transform of a row-major 2D field in place.
/// `dims = [nx, ny]` with `x` fastest-varying.
pub fn forward_2d<T: Float>(data: &mut [T], dims: [usize; 2], levels: [usize; 2], kernel: Kernel) {
    let d3 = [dims[0], dims[1], 1];
    forward_3d(data, d3, [levels[0], levels[1], 0], kernel);
}

/// Inverse of [`forward_2d`].
pub fn inverse_2d<T: Float>(data: &mut [T], dims: [usize; 2], levels: [usize; 2], kernel: Kernel) {
    let d3 = [dims[0], dims[1], 1];
    inverse_3d(data, d3, [levels[0], levels[1], 0], kernel);
}

/// Forward multilevel transform of a row-major 3D volume in place.
/// `dims = [nx, ny, nz]` with `x` fastest-varying (index
/// `x + nx*(y + ny*z)`).
pub fn forward_3d<T: Float>(data: &mut [T], dims: [usize; 3], levels: [usize; 3], kernel: Kernel) {
    forward_3d_with(data, dims, levels, kernel, &Serial, &mut TransformScratch::new());
}

/// [`forward_3d`] with a caller-supplied executor (for intra-volume
/// parallelism) and reusable scratch (for allocation-free repetition).
pub fn forward_3d_with<T: Float>(
    data: &mut [T],
    dims: [usize; 3],
    levels: [usize; 3],
    kernel: Kernel,
    exec: &dyn LineExecutor,
    scratch: &mut TransformScratch<T>,
) {
    assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "data/dims mismatch");
    let max_levels = levels.iter().copied().max().unwrap_or(0);
    let max_dim = dims.iter().copied().max().unwrap_or(0);
    scratch.ensure(max_dim, exec.width());
    let mut cur = dims;
    for level in 0..max_levels {
        for axis in 0..3 {
            if level < levels[axis] && cur[axis] >= 2 {
                let _pass = sperr_telemetry::span!(FWD_AXIS_SPAN[axis], level);
                apply_axis_blocked(data, dims, cur, axis, kernel, true, exec, scratch);
                cur[axis] = approx_len(cur[axis]);
            }
        }
    }
}

/// Inverse of [`forward_3d`].
pub fn inverse_3d<T: Float>(data: &mut [T], dims: [usize; 3], levels: [usize; 3], kernel: Kernel) {
    inverse_3d_partial(data, dims, levels, 0, kernel);
}

/// [`inverse_3d`] with executor + reusable scratch.
pub fn inverse_3d_with<T: Float>(
    data: &mut [T],
    dims: [usize; 3],
    levels: [usize; 3],
    kernel: Kernel,
    exec: &dyn LineExecutor,
    scratch: &mut TransformScratch<T>,
) {
    inverse_3d_partial_with(data, dims, levels, 0, kernel, exec, scratch);
}

/// Partial inverse supporting multi-resolution reconstruction (paper
/// §VII: each coarsened hierarchy level resembles the full-resolution
/// data): undoes all forward steps *except* the finest `skip_finest`
/// levels on each axis. Afterwards, the sub-box
/// `[0, coarse_dims(dims, levels, skip_finest))` holds the reconstructed
/// approximation of the data at that resolution (values carry the
/// kernel's per-level DC gain, √2 per skipped level for the unit-norm
/// kernels — divide by `2^(skip/2)` per axis for physical units; see
/// [`coarse_scale`]).
pub fn inverse_3d_partial<T: Float>(
    data: &mut [T],
    dims: [usize; 3],
    levels: [usize; 3],
    skip_finest: usize,
    kernel: Kernel,
) {
    inverse_3d_partial_with(data, dims, levels, skip_finest, kernel, &Serial, &mut TransformScratch::new());
}

/// [`inverse_3d_partial`] with executor + reusable scratch.
pub fn inverse_3d_partial_with<T: Float>(
    data: &mut [T],
    dims: [usize; 3],
    levels: [usize; 3],
    skip_finest: usize,
    kernel: Kernel,
    exec: &dyn LineExecutor,
    scratch: &mut TransformScratch<T>,
) {
    assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "data/dims mismatch");
    let max_levels = levels.iter().copied().max().unwrap_or(0);
    let max_dim = dims.iter().copied().max().unwrap_or(0);
    scratch.ensure(max_dim, exec.width());

    // Replay the forward schedule to learn each step's box size, then undo
    // the steps last-to-first, stopping before the finest `skip_finest`
    // levels.
    let mut schedule: Vec<(usize, usize, usize)> = Vec::new(); // (level, axis, len before)
    let mut cur = dims;
    for level in 0..max_levels {
        for axis in 0..3 {
            if level < levels[axis] && cur[axis] >= 2 {
                schedule.push((level, axis, cur[axis]));
                cur[axis] = approx_len(cur[axis]);
            }
        }
    }
    for &(level, axis, len_before) in schedule.iter().rev() {
        if level < skip_finest {
            continue;
        }
        cur[axis] = len_before;
        let _pass = sperr_telemetry::span!(INV_AXIS_SPAN[axis], level);
        apply_axis_blocked(data, dims, cur, axis, kernel, false, exec, scratch);
    }
}

/// Dimensions of the approximation sub-box after `skip_finest` forward
/// levels remain un-inverted (companion to [`inverse_3d_partial`]).
pub fn coarse_dims(dims: [usize; 3], levels: [usize; 3], skip_finest: usize) -> [usize; 3] {
    let mut out = dims;
    for axis in 0..3 {
        for _ in 0..skip_finest.min(levels[axis]) {
            if out[axis] >= 2 {
                out[axis] = approx_len(out[axis]);
            }
        }
    }
    out
}

/// Amplitude scale carried by the approximation band at a coarse
/// resolution: the unit-norm kernels gain √2 per level per transformed
/// axis. Divide coarse samples by this to recover physical units.
pub fn coarse_scale(dims: [usize; 3], levels: [usize; 3], skip_finest: usize) -> f64 {
    let mut transformed_axis_levels = 0usize;
    for axis in 0..3 {
        let mut len = dims[axis];
        for lv in 0..levels[axis].min(skip_finest) {
            let _ = lv;
            if len >= 2 {
                transformed_axis_levels += 1;
                len = approx_len(len);
            }
        }
    }
    f64::exp2(transformed_axis_levels as f64 / 2.0)
}

/// Raw pointer wrapper letting independent jobs write disjoint samples of
/// the shared volume. Soundness argument at the use sites.
struct VolPtr<T>(*mut T);
impl<T> Clone for VolPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for VolPtr<T> {}
unsafe impl<T: Send> Send for VolPtr<T> {}
unsafe impl<T: Send> Sync for VolPtr<T> {}

impl<T> VolPtr<T> {
    /// Pointer to sample `off`. Method (not field) access so closures
    /// capture the whole Sync wrapper, not the raw pointer field.
    unsafe fn at(self, off: usize) -> *mut T {
        self.0.add(off)
    }
}

/// Lines per job on the contiguous x-axis pass: enough to amortize job
/// dispatch, few enough to load-balance across workers.
const X_LINES_PER_JOB: usize = 8;

/// Applies one lifting pass (`forward` or inverse) to every line along
/// `axis` within the sub-box `[0, cur)` of the full `dims` array,
/// dispatching independent line batches / panels through `exec`.
#[allow(clippy::too_many_arguments)]
fn apply_axis_blocked<T: Float>(
    data: &mut [T],
    dims: [usize; 3],
    cur: [usize; 3],
    axis: usize,
    kernel: Kernel,
    forward: bool,
    exec: &dyn LineExecutor,
    scratch: &TransformScratch<T>,
) {
    let n = cur[axis];
    let strides = [1, dims[0], dims[0] * dims[1]];
    let stride = strides[axis];
    let vol = VolPtr(data.as_mut_ptr());
    let workers = &scratch.workers;

    if axis == 0 {
        // Contiguous fast path along x: each job takes a batch of whole
        // lines. Jobs touch disjoint `[base, base + n)` ranges, so the
        // raw-pointer writes never alias.
        let n_lines = cur[1] * cur[2];
        let n_jobs = n_lines.div_ceil(X_LINES_PER_JOB);
        exec.run(n_jobs, &|job, worker| {
            // SAFETY: one live &mut per worker slot (executor contract).
            let ws: &mut WorkerScratch<T> = unsafe { workers.get(worker) };
            let start = job * X_LINES_PER_JOB;
            for li in start..(start + X_LINES_PER_JOB).min(n_lines) {
                let (jy, jz) = (li % cur[1], li / cur[1]);
                let base = jy * strides[1] + jz * strides[2];
                // SAFETY: this job exclusively owns lines `start..end`.
                let line = unsafe { std::slice::from_raw_parts_mut(vol.at(base), n) };
                if forward {
                    kernel.forward_line(line, n, &mut ws.line);
                } else {
                    kernel.inverse_line(line, n, &mut ws.line);
                }
            }
        });
        return;
    }

    // Strided passes (y: stride nx, z: stride nx*ny). The non-transformed
    // axes are x (stride 1, always one of them for axis != 0) and `b`.
    // A panel is up to PANEL_W lines adjacent along x: sample i of every
    // panel line lives in one contiguous run of `wlen` doubles, so the
    // transpose in/out of the line-major panel buffer streams through
    // memory instead of striding.
    let b = if axis == 1 { 2 } else { 1 };
    let nx = cur[0];
    let panels_per_row = nx.div_ceil(PANEL_W);
    let n_jobs = cur[b] * panels_per_row;
    exec.run(n_jobs, &|job, worker| {
        // SAFETY: one live &mut per worker slot (executor contract).
        let ws: &mut WorkerScratch<T> = unsafe { workers.get(worker) };
        let WorkerScratch { panel, line } = ws;
        let jb = job / panels_per_row;
        let x0 = (job % panels_per_row) * PANEL_W;
        let wlen = PANEL_W.min(nx - x0);
        let base = jb * strides[b] + x0;
        // SAFETY: this job exclusively owns samples
        // `{base + i*stride + w : i in 0..n, w in 0..wlen}` — jobs differ
        // in `jb` (disjoint b-slices) or `x0` (disjoint x-ranges).
        unsafe {
            // Gather: transpose wlen contiguous doubles per row into the
            // line-major panel.
            for i in 0..n {
                let row = vol.at(base + i * stride);
                for w in 0..wlen {
                    *panel.get_unchecked_mut(w * n + i) = *row.add(w);
                }
            }
            // Lift every line of the panel.
            for w in 0..wlen {
                let buf = &mut panel[w * n..(w + 1) * n];
                if forward {
                    kernel.forward_line(buf, n, line);
                } else {
                    kernel.inverse_line(buf, n, line);
                }
            }
            // Scatter back.
            for i in 0..n {
                let row = vol.at(base + i * stride);
                for w in 0..wlen {
                    *row.add(w) = *panel.get_unchecked(w * n + i);
                }
            }
        }
    });
}

/// The pre-blocking per-line driver, kept as the equivalence oracle: the
/// blocked path must produce bit-identical output (proptests) and the
/// benchmark harness measures blocked vs per-line on the strided passes.
pub mod reference {
    use super::*;

    /// Per-line forward multilevel transform (original implementation).
    pub fn forward_3d<T: Float>(data: &mut [T], dims: [usize; 3], levels: [usize; 3], kernel: Kernel) {
        assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "data/dims mismatch");
        let max_levels = levels.iter().copied().max().unwrap_or(0);
        let max_dim = dims.iter().copied().max().unwrap_or(0);
        let mut line = vec![T::ZERO; max_dim];
        let mut scratch = vec![T::ZERO; max_dim];
        let mut cur = dims;
        for level in 0..max_levels {
            for axis in 0..3 {
                if level < levels[axis] && cur[axis] >= 2 {
                    apply_axis_per_line(data, dims, cur, axis, &mut line, &mut scratch, |buf, n, s| {
                        kernel.forward_line(buf, n, s)
                    });
                    cur[axis] = approx_len(cur[axis]);
                }
            }
        }
    }

    /// Per-line inverse multilevel transform (original implementation).
    pub fn inverse_3d<T: Float>(data: &mut [T], dims: [usize; 3], levels: [usize; 3], kernel: Kernel) {
        assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "data/dims mismatch");
        let max_levels = levels.iter().copied().max().unwrap_or(0);
        let max_dim = dims.iter().copied().max().unwrap_or(0);
        let mut line = vec![T::ZERO; max_dim];
        let mut scratch = vec![T::ZERO; max_dim];
        let mut schedule: Vec<(usize, usize)> = Vec::new(); // (axis, len before)
        let mut cur = dims;
        for level in 0..max_levels {
            for axis in 0..3 {
                if level < levels[axis] && cur[axis] >= 2 {
                    schedule.push((axis, cur[axis]));
                    cur[axis] = approx_len(cur[axis]);
                }
            }
        }
        for &(axis, len_before) in schedule.iter().rev() {
            cur[axis] = len_before;
            apply_axis_per_line(data, dims, cur, axis, &mut line, &mut scratch, |buf, n, s| {
                kernel.inverse_line(buf, n, s)
            });
        }
    }

    /// Applies `f` to every line along `axis` within the sub-box
    /// `[0, cur)`, gathering/scattering one strided line at a time.
    fn apply_axis_per_line<T: Float>(
        data: &mut [T],
        dims: [usize; 3],
        cur: [usize; 3],
        axis: usize,
        line: &mut [T],
        scratch: &mut [T],
        mut f: impl FnMut(&mut [T], usize, &mut [T]),
    ) {
        let n = cur[axis];
        let (stride_x, stride_y, stride_z) = (1, dims[0], dims[0] * dims[1]);
        let strides = [stride_x, stride_y, stride_z];
        let stride = strides[axis];
        // The two non-transformed axes.
        let (a, b) = match axis {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        for jb in 0..cur[b] {
            for ja in 0..cur[a] {
                let base = ja * strides[a] + jb * strides[b];
                if stride == 1 {
                    // Contiguous fast path along x.
                    f(&mut data[base..base + n], n, scratch);
                } else {
                    for (i, slot) in line[..n].iter_mut().enumerate() {
                        *slot = data[base + i * stride];
                    }
                    f(line, n, scratch);
                    for (i, &v) in line[..n].iter().enumerate() {
                        data[base + i * stride] = v;
                    }
                }
            }
        }
    }
}
