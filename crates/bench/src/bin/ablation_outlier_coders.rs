//! Ablation extending Fig. 11 with the classical alternatives the paper's
//! §II surveys: bitmap position coding and gap/universal-code coding
//! (Elias gamma), against SPERR's unified SPECK-style coder and SZ's
//! Huffman-over-quant-bins scheme — all fed the *same* intercepted
//! outlier lists.
//!
//! Expected: the bitmap pays N bits regardless of sparsity (§II: "far
//! from optimal"); gap+gamma is competitive but SPERR's coder wins by
//! unifying position and value coding; SZ's scheme is close behind.

use sperr_outlier::alternatives::{bitmap, gaps};
use sperr_sz_like::compress_quant_bins;

fn main() {
    sperr_bench::banner(
        "Ablation — outlier coding schemes (extends Fig. 11)",
        "design discussion of §II / §IV",
    );
    println!("case,num_outliers,outlier_pct,sperr_bpo,sz_bpo,gaps_gamma_bpo,bitmap_bpo");
    for (f, idx) in sperr_bench::table2_matrix() {
        let field = sperr_bench::bench_field(f);
        let t = field.tolerance_for_idx(idx);
        let outliers = sperr_bench::intercept_outliers(&field, t, 1.5);
        if outliers.is_empty() {
            continue;
        }
        let n = field.len();
        let count = outliers.len() as f64;

        let sperr_bits = sperr_outlier::encode(&outliers, n, t).bits_used as f64;
        let mut codes = vec![0i32; n];
        for o in &outliers {
            codes[o.pos] = (o.corr / (2.0 * t)).round() as i32;
        }
        let sz_bits = compress_quant_bins(&codes).len() as f64 * 8.0;
        let gaps_bits = gaps::encode(&outliers, n, t).len() as f64 * 8.0;
        let bitmap_bits = bitmap::encode(&outliers, n, t).len() as f64 * 8.0;

        println!(
            "{},{},{:.3},{:.2},{:.2},{:.2},{:.2}",
            f.abbrev(idx),
            outliers.len(),
            100.0 * count / n as f64,
            sperr_bits / count,
            sz_bits / count,
            gaps_bits / count,
            bitmap_bits / count,
        );
    }
}
