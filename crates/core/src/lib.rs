//! SPERR: SPEck with ERRor bounding — the paper's primary contribution.
//!
//! A lossy compressor for structured scientific floating-point data that
//! couples:
//!
//! 1. a CDF 9/7 wavelet transform (`sperr-wavelet`),
//! 2. the SPECK set-partitioning coder with arbitrary quantization step
//!    (`sperr-speck`),
//! 3. an outlier coder that records positions and correction values of
//!    points violating the point-wise error tolerance (`sperr-outlier`),
//! 4. a lossless post-pass over the concatenated bitstreams
//!    (`sperr-lossless`, standing in for ZSTD — §V).
//!
//! Termination modes — the paper's two plus its §VII extension:
//!
//! * **PWE-bounded** (`Bound::Pwe(t)`): SPECK runs at quantization step
//!   `q = 1.5·t` (the §IV-D sweet-spot default), the reconstruction is
//!   compared against the original, and every point off by more than `t`
//!   is corrected through the outlier coder. The decoded field satisfies
//!   `max |xᵢ − zᵢ| ≤ t`.
//! * **Size-bounded** (`Bound::Bpp(r)`): SPECK's embedded stream is cut at
//!   the bit budget; no outlier pass (no error guarantee), like SPECK/ZFP
//!   fixed-rate modes.
//! * **Average-error** (`Bound::Psnr(db)`): quantization step set from the
//!   PSNR target via the transform's near-orthogonality (§VII item 1).
//!
//! Beyond compress/decompress: multi-resolution decoding
//! ([`Sperr::decompress_multires`]), random-access region decoding via
//! the container-v3 chunk index ([`Sperr::decode_region`] /
//! [`Sperr::decompress_region`]), progressive byte-budget previews
//! ([`Sperr::decode_at_bpp`] / [`Sperr::decode_at_budgets`]), re-rating
//! without re-encoding ([`Sperr::transcode_to_bpp`]), stream inspection
//! ([`Sperr::inspect`]) and multi-field archives ([`archive`]).
//!
//! Large volumes are split into chunks (default 256³, configurable, not
//! required to divide the volume — §III-D) and chunks are processed
//! embarrassingly parallel on scoped threads.
//!
//! # Example
//!
//! ```
//! use sperr_core::{Sperr, SperrConfig};
//! use sperr_compress_api::{Bound, Field, LossyCompressor};
//!
//! let field = Field::from_fn([32, 32, 32], |x, y, z| {
//!     (x as f64 * 0.2).sin() + (y as f64 * 0.1).cos() + z as f64 * 0.01
//! });
//! let t = 1e-4;
//! let sperr = Sperr::new(SperrConfig::default());
//! let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
//! let restored = sperr.decompress(&stream).unwrap();
//! let max_err = field.data.iter().zip(&restored.data)
//!     .map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
//! assert!(max_err <= t);
//! ```

pub mod archive;
mod chunk;
mod compressor;
mod container;
mod crc32;
#[doc(hidden)]
pub mod faultpoint;
mod pipeline;
mod pool;
mod stats;
mod stream;
pub use stats::{metric_labels, stage_labels};

pub use chunk::{chunk_grid, extract_chunk, extract_chunk_into, ChunkSpec};
pub use compressor::{
    ChunkStatus, RegionReport, ResilientReport, Sperr, SperrConfig, StreamInfo, VerifyReport,
};
pub use container::Mode;
pub use container::{ChunkIndexEntry, VERSION as CONTAINER_VERSION};
pub use crc32::crc32;
pub use pipeline::{
    compress_chunk_bpp, compress_chunk_bpp_with, compress_chunk_pwe, compress_chunk_pwe_with,
    compress_chunk_rmse, compress_chunk_rmse_with, decompress_chunk, decompress_chunk_multires,
    decompress_chunk_region_with, decompress_chunk_with, ChunkEncoding, ScratchArena,
};
pub use pool::{JobPanic, WorkerPool};
/// The sample-width abstraction the generic pipeline is written against,
/// re-exported so downstream crates need not depend on `sperr-simd`.
pub use sperr_simd::Float;
pub use stats::{CompressionStats, StageTimes};
pub use stream::{
    SperrError, StreamReport, StreamResilientReport, STAGE_CONTAINER, STAGE_EMIT, STAGE_INGEST,
    STAGE_PIPELINE,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sperr_compress_api::{Bound, Field, LossyCompressor};

    fn wavy_field(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.31).sin() * 40.0
                + (y as f64 * 0.17).cos() * 25.0
                + ((x * y) as f64 * 0.01).sin() * 10.0
                + z as f64 * 0.5
        })
    }

    fn max_err(a: &Field, b: &Field) -> f64 {
        a.data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn pwe_guarantee_single_chunk() {
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        for idx in [5u32, 10, 20, 30] {
            let t = field.tolerance_for_idx(idx);
            let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
            let restored = sperr.decompress(&stream).unwrap();
            assert_eq!(restored.dims, field.dims);
            let e = max_err(&field, &restored);
            assert!(e <= t, "idx={idx}: max err {e} > t {t}");
        }
    }

    #[test]
    fn pwe_guarantee_multi_chunk_non_divisible() {
        // 40 is not divisible by 16: boundary chunks are smaller (§III-D).
        let field = wavy_field([40, 24, 20]);
        let cfg = SperrConfig { chunk_dims: [16, 16, 16], ..SperrConfig::default() };
        let sperr = Sperr::new(cfg);
        let t = field.tolerance_for_idx(15);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let restored = sperr.decompress(&stream).unwrap();
        assert!(max_err(&field, &restored) <= t);
    }

    #[test]
    fn parallel_output_matches_serial() {
        let field = wavy_field([48, 32, 32]);
        let t = field.tolerance_for_idx(12);
        let serial = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            num_threads: 1,
            ..SperrConfig::default()
        });
        let parallel = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            num_threads: 4,
            ..SperrConfig::default()
        });
        let a = serial.compress(&field, Bound::Pwe(t)).unwrap();
        let b = parallel.compress(&field, Bound::Pwe(t)).unwrap();
        assert_eq!(a, b, "chunk order must be deterministic regardless of threading");
        assert_eq!(
            serial.decompress(&a).unwrap().data,
            parallel.decompress(&b).unwrap().data
        );
    }

    #[test]
    fn bpp_mode_hits_target_size() {
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        for target in [0.5f64, 2.0, 4.0] {
            let stream = sperr.compress(&field, Bound::Bpp(target)).unwrap();
            let bpp = stream.len() as f64 * 8.0 / field.len() as f64;
            // Lossless post-pass and headers blur it slightly; stay close.
            assert!(
                bpp <= target * 1.15 + 0.2,
                "target {target} bpp, got {bpp}"
            );
            let restored = sperr.decompress(&stream).unwrap();
            assert_eq!(restored.len(), field.len());
        }
    }

    #[test]
    fn bpp_quality_improves_with_rate() {
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        let lo = sperr.compress(&field, Bound::Bpp(0.5)).unwrap();
        let hi = sperr.compress(&field, Bound::Bpp(6.0)).unwrap();
        let rmse = |s: &[u8]| {
            let rec = sperr.decompress(s).unwrap();
            sperr_metrics::rmse(&field.data, &rec.data)
        };
        assert!(rmse(&hi) < rmse(&lo));
    }

    #[test]
    fn two_dimensional_slice() {
        let field = Field::from_fn([64, 48, 1], |x, y, _| {
            ((x as f64 * 0.2).sin() + (y as f64 * 0.3).cos()) * 100.0
        });
        let sperr = Sperr::new(SperrConfig::default());
        let t = field.tolerance_for_idx(18);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let restored = sperr.decompress(&stream).unwrap();
        assert!(max_err(&field, &restored) <= t);
    }

    #[test]
    fn constant_field_compresses_tiny() {
        let field = Field::new([16, 16, 16], vec![3.5; 4096]);
        let sperr = Sperr::new(SperrConfig::default());
        let stream = sperr.compress(&field, Bound::Pwe(1e-9)).unwrap();
        // 4096 f64 = 32 KiB raw; the approximation band's handful of
        // deep-precision coefficients still cost a few hundred bytes.
        assert!(stream.len() < 600, "constant field took {} bytes", stream.len());
        let restored = sperr.decompress(&stream).unwrap();
        assert!(max_err(&field, &restored) <= 1e-9);
    }

    #[test]
    fn lossless_pass_toggle_roundtrips() {
        let field = wavy_field([24, 24, 24]);
        let t = field.tolerance_for_idx(10);
        for lossless in [false, true] {
            let sperr = Sperr::new(SperrConfig { lossless, ..SperrConfig::default() });
            let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
            let restored = sperr.decompress(&stream).unwrap();
            assert!(max_err(&field, &restored) <= t, "lossless={lossless}");
        }
    }

    #[test]
    fn stats_account_for_both_coders() {
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        let t = field.tolerance_for_idx(20);
        let (_, stats) = sperr.compress_with_stats(&field, Bound::Pwe(t)).unwrap();
        assert!(stats.speck_bits > 0);
        assert_eq!(stats.num_points, field.len());
        // q = 1.5t leaves some outliers on this field at most tolerances;
        // outlier bits must be accounted whenever outliers exist.
        if stats.num_outliers > 0 {
            assert!(stats.outlier_bits > 0);
            let bpo = stats.outlier_bits as f64 / stats.num_outliers as f64;
            assert!((2.0..64.0).contains(&bpo), "bits/outlier {bpo}");
        }
    }

    #[test]
    fn corrupt_stream_is_error_not_panic() {
        let field = wavy_field([16, 16, 16]);
        let sperr = Sperr::new(SperrConfig::default());
        let stream = sperr.compress(&field, Bound::Pwe(0.1)).unwrap();
        // Truncations at various points.
        for cut in [0usize, 1, 5, 10, stream.len() / 2] {
            assert!(sperr.decompress(&stream[..cut]).is_err(), "cut={cut}");
        }
        // Bit flips in the header region.
        let mut bad = stream.clone();
        bad[0] ^= 0xFF;
        assert!(sperr.decompress(&bad).is_err());
    }

    #[test]
    fn all_bound_kinds_supported() {
        // PWE and BPP from the paper; PSNR via the §VII extension.
        let sperr = Sperr::new(SperrConfig::default());
        assert!(sperr.supports(&Bound::Psnr(80.0)));
        assert!(sperr.supports(&Bound::Pwe(0.1)));
        assert!(sperr.supports(&Bound::Bpp(2.0)));
        // Invalid bound values are still rejected.
        let field = wavy_field([8, 8, 8]);
        assert!(sperr.compress(&field, Bound::Pwe(-1.0)).is_err());
        assert!(sperr.compress(&field, Bound::Bpp(f64::NAN)).is_err());
        assert!(sperr.compress(&field, Bound::Psnr(0.0)).is_err());
    }

    #[test]
    fn q_factor_controls_outlier_balance() {
        // §IV-D: larger q -> coarser SPECK -> more outliers.
        let field = wavy_field([32, 32, 32]);
        let t = field.tolerance_for_idx(15);
        let count_outliers = |qf: f64| {
            let sperr = Sperr::new(SperrConfig { q_factor: qf, ..SperrConfig::default() });
            let (_, stats) = sperr.compress_with_stats(&field, Bound::Pwe(t)).unwrap();
            stats.num_outliers
        };
        let few = count_outliers(1.0);
        let many = count_outliers(2.5);
        assert!(many > few, "q=2.5t gave {many} outliers vs q=1.0t {few}");
    }

    #[test]
    fn psnr_mode_meets_target() {
        // §VII extension: average-error-targeted compression.
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        for target in [40.0f64, 70.0, 100.0] {
            let stream = sperr.compress(&field, Bound::Psnr(target)).unwrap();
            let rec = sperr.decompress(&stream).unwrap();
            let achieved = sperr_metrics::psnr(&field.data, &rec.data);
            assert!(achieved >= target, "target {target}, achieved {achieved}");
        }
    }

    #[test]
    fn psnr_mode_has_no_outlier_stream() {
        // The average-error mode skips outlier correction entirely; its
        // cost stays in the same ballpark as the PWE mode at matched idx.
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        let idx = 20u32;
        let pwe = sperr.compress(&field, Bound::Pwe(field.tolerance_for_idx(idx))).unwrap();
        let psnr = sperr
            .compress(&field, Bound::Psnr(sperr_metrics::psnr_target_for_idx(idx)))
            .unwrap();
        let info = sperr.inspect(&psnr).unwrap();
        assert_eq!(info.outlier_bytes, 0);
        assert!(matches!(info.mode, crate::Mode::Rmse));
        assert!(psnr.len() < pwe.len() * 2);
    }

    #[test]
    fn multires_decoding_levels() {
        // §VII extension: multi-level reconstruction from one stream.
        let field = Field::from_fn([64, 64, 32], |x, y, z| {
            (x as f64 * 0.08).sin() * 20.0 + (y as f64 * 0.06).cos() * 10.0 + z as f64 * 0.2
        });
        let sperr = Sperr::new(SperrConfig::default());
        let t = field.tolerance_for_idx(20);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        // level 0 == ordinary decode
        let full = sperr.decompress_multires(&stream, 0).unwrap();
        assert_eq!(full.dims, field.dims);
        for level in 1..=3usize {
            let coarse = sperr.decompress_multires(&stream, level).unwrap();
            let s = 1 << level;
            assert_eq!(
                coarse.dims,
                [64usize.div_ceil(s), 64usize.div_ceil(s), 32usize.div_ceil(s)]
            );
            // The coarse field must resemble a downsampling of the data:
            // compare against the original at the corresponding grid
            // positions (loose bound — wavelet smoothing shifts values).
            let mut err_sum = 0.0;
            let mut count = 0usize;
            for z in 0..coarse.dims[2] {
                for y in 0..coarse.dims[1] {
                    for x in 0..coarse.dims[0] {
                        let orig = field.data
                            [(x * s).min(63) + 64 * ((y * s).min(63) + 64 * (z * s).min(31))];
                        let c = coarse.data[x + coarse.dims[0] * (y + coarse.dims[1] * z)];
                        err_sum += (orig - c).abs();
                        count += 1;
                    }
                }
            }
            let mean_err = err_sum / count as f64;
            assert!(
                mean_err < field.range() * 0.1,
                "level {level}: mean deviation {mean_err} vs range {}",
                field.range()
            );
        }
    }

    #[test]
    fn multires_multi_chunk() {
        let field = wavy_field([64, 32, 32]);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [32, 32, 32],
            ..SperrConfig::default()
        });
        let t = field.tolerance_for_idx(15);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let coarse = sperr.decompress_multires(&stream, 1).unwrap();
        assert_eq!(coarse.dims, [32, 16, 16]);
        // Too-deep level must error cleanly, not panic.
        assert!(sperr.decompress_multires(&stream, 7).is_err());
    }

    #[test]
    fn transcode_reduces_rate_without_reencoding() {
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        let t = field.tolerance_for_idx(25);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let full_rec = sperr.decompress(&stream).unwrap();
        let cut = sperr.transcode_to_bpp(&stream, 2.0).unwrap();
        assert!(cut.len() < stream.len());
        let bpp = cut.len() as f64 * 8.0 / field.len() as f64;
        assert!(bpp <= 2.2, "transcoded to {bpp} bpp");
        let cut_rec = sperr.decompress(&cut).unwrap();
        // Coarser than the original decode, but a real reconstruction.
        let full_rmse = sperr_metrics::rmse(&field.data, &full_rec.data);
        let cut_rmse = sperr_metrics::rmse(&field.data, &cut_rec.data);
        assert!(cut_rmse >= full_rmse);
        assert!(cut_rmse < field.range(), "cut rmse {cut_rmse} not a reconstruction");
    }

    #[test]
    fn region_decode_matches_full_decode() {
        let field = wavy_field([48, 32, 24]);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            ..SperrConfig::default()
        });
        let t = field.tolerance_for_idx(15);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let full = sperr.decompress(&stream).unwrap();
        for (lo, hi) in [
            ([0usize, 0, 0], [48usize, 32, 24]), // whole volume
            ([5, 7, 3], [20, 30, 20]),           // spans several chunks
            ([17, 17, 17], [18, 18, 18]),        // single point
            ([40, 0, 16], [48, 16, 24]),         // corner
        ] {
            let region = sperr.decompress_region(&stream, lo, hi).unwrap();
            assert_eq!(region.dims, [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]]);
            for z in 0..region.dims[2] {
                for y in 0..region.dims[1] {
                    for x in 0..region.dims[0] {
                        let want = full.data
                            [(lo[0] + x) + 48 * ((lo[1] + y) + 32 * (lo[2] + z))];
                        let got =
                            region.data[x + region.dims[0] * (y + region.dims[1] * z)];
                        assert_eq!(want, got, "mismatch at {x},{y},{z} for {lo:?}..{hi:?}");
                    }
                }
            }
        }
        // Invalid regions are rejected.
        assert!(sperr.decompress_region(&stream, [0, 0, 0], [0, 1, 1]).is_err());
        assert!(sperr.decompress_region(&stream, [0, 0, 0], [49, 1, 1]).is_err());
    }

    #[test]
    fn estimated_rmse_tracks_actual() {
        // §III-A / §VII: the wavelet-domain quantization error predicts
        // the reconstruction RMSE without a decode pass. For PSNR-mode
        // streams the estimate must be within a small factor of truth.
        let field = wavy_field([32, 32, 32]);
        let sperr = Sperr::new(SperrConfig::default());
        let (stream, stats) = sperr
            .compress_with_stats(&field, Bound::Psnr(70.0))
            .unwrap();
        let rec = sperr.decompress(&stream).unwrap();
        let actual = sperr_metrics::rmse(&field.data, &rec.data);
        let estimated = stats.estimated_rmse();
        assert!(actual > 0.0);
        let ratio = estimated / actual;
        assert!(
            (0.7..1.5).contains(&ratio),
            "estimate {estimated} vs actual {actual} (ratio {ratio})"
        );
    }

    #[test]
    fn inspect_reports_stream_layout() {
        let field = wavy_field([40, 24, 20]);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            ..SperrConfig::default()
        });
        let t = field.tolerance_for_idx(12);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        assert_eq!(info.dims, [40, 24, 20]);
        assert_eq!(info.chunk_dims, [16, 16, 16]);
        assert_eq!(info.n_chunks, 3 * 2 * 2);
        assert!(info.lossless);
        assert!(matches!(info.mode, crate::Mode::Pwe));
        assert!((info.bound_value - t).abs() < 1e-18);
        assert!(info.speck_bytes > 0);
    }

    #[test]
    fn tight_tolerance_on_rough_data() {
        // Rough data + tight tolerance stresses the outlier path heavily.
        let field = Field::from_fn([20, 20, 20], |x, y, z| {
            (((x * 73 + y * 149 + z * 211) % 97) as f64) * 0.173
        });
        let sperr = Sperr::new(SperrConfig::default());
        let t = field.tolerance_for_idx(25);
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let restored = sperr.decompress(&stream).unwrap();
        assert!(max_err(&field, &restored) <= t);
    }
}
