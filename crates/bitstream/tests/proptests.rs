//! Property tests: anything written through `BitWriter` reads back
//! identically through `BitReader`, for arbitrary interleavings of bit
//! widths.

use proptest::prelude::*;
use sperr_bitstream::{BitReader, BitWriter};

/// A single write operation: a value and the bit width used to store it.
#[derive(Debug, Clone)]
struct Op {
    value: u64,
    width: u32,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..=64).prop_flat_map(|width| {
        let max = if width == 0 {
            Just(0u64).boxed()
        } else if width == 64 {
            any::<u64>().boxed()
        } else {
            (0..(1u64 << width)).boxed()
        };
        max.prop_map(move |value| Op { value, width })
    })
}

proptest! {
    #[test]
    fn mixed_width_roundtrip(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut w = BitWriter::new();
        for op in &ops {
            w.put_bits(op.value, op.width);
        }
        let total_bits: usize = ops.iter().map(|o| o.width as usize).sum();
        prop_assert_eq!(w.len_bits(), total_bits);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), total_bits.div_ceil(8));

        let mut r = BitReader::new(&bytes);
        for op in &ops {
            prop_assert_eq!(r.get_bits(op.width).unwrap(), op.value);
        }
    }

    #[test]
    fn bitwise_equals_bulk(bits in prop::collection::vec(any::<bool>(), 0..512)) {
        // Writing bit-by-bit and reading in arbitrary chunks agree.
        let mut w = BitWriter::new();
        for &b in &bits {
            w.put_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut read_back = Vec::with_capacity(bits.len());
        let mut left = bits.len();
        let mut chunk = 1usize;
        while left > 0 {
            let take = chunk.min(left).min(64);
            let v = r.get_bits(take as u32).unwrap();
            for i in 0..take {
                read_back.push((v >> i) & 1 == 1);
            }
            left -= take;
            chunk = (chunk * 2 + 1) % 67; // vary chunk sizes deterministically
            if chunk == 0 {
                chunk = 1;
            }
        }
        prop_assert_eq!(read_back, bits);
    }

    #[test]
    fn truncated_stream_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64),
                                     reads in prop::collection::vec(0u32..=64, 0..32)) {
        let mut r = BitReader::new(&bytes);
        for n in reads {
            // Must either produce a value or a clean EOF error.
            let _ = r.get_bits(n);
        }
    }

    #[test]
    fn put_zeros_matches_bit_at_a_time(ops in prop::collection::vec(zero_run_op_strategy(), 0..64)) {
        // The bulk zero-run path (accumulator top-up, whole-byte resize,
        // partial tail) must be indistinguishable from emitting the same
        // zeros one put_bit(false) at a time, at every alignment the
        // surrounding one-bits create.
        let mut fast = BitWriter::new();
        let mut slow = BitWriter::new();
        for op in &ops {
            match *op {
                ZeroRunOp::One => {
                    fast.put_bit(true);
                    slow.put_bit(true);
                }
                ZeroRunOp::Zeros(n) => {
                    fast.put_zeros(n);
                    for _ in 0..n {
                        slow.put_bit(false);
                    }
                }
            }
        }
        prop_assert_eq!(fast.len_bits(), slow.len_bits());
        prop_assert_eq!(fast.into_bytes(), slow.into_bytes());
    }

    #[test]
    fn into_bytes_pads_tail_with_zeros(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        // The final partial byte must be zero-padded: every bit past
        // len_bits() reads as 0. Decoders rely on this (padding decodes
        // as insignificance, never as spurious structure).
        let mut w = BitWriter::new();
        for &b in &bits {
            w.put_bit(b);
        }
        let len = w.len_bits();
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), len.div_ceil(8));
        for i in len..bytes.len() * 8 {
            prop_assert_eq!((bytes[i / 8] >> (i % 8)) & 1, 0, "padding bit {} set", i);
        }
    }

    #[test]
    fn count_zero_run_matches_bit_at_a_time(bytes in prop::collection::vec(any::<u8>(), 0..64),
                                            maxes in prop::collection::vec(zero_run_max_strategy(), 0..32)) {
        // Bulk zero-run counting must consume exactly the zeros a
        // peek-one-bit-at-a-time loop would: stop before the first 1 bit,
        // after `max` zeros, or at EOF. Interleaves a get_bit between
        // calls (consuming the 1 that ended a run, when there is one) so
        // runs start at every register alignment.
        let mut r = BitReader::new(&bytes);
        let mut reference = BitReader::new(&bytes);
        for max in maxes {
            let got = r.count_zero_run(max);
            let mut want = 0usize;
            while want < max {
                let mut probe = reference.clone();
                match probe.get_bit() {
                    Ok(false) => {
                        reference = probe;
                        want += 1;
                    }
                    _ => break, // next bit is a 1 (left unconsumed) or EOF
                }
            }
            prop_assert_eq!(got, want, "max {}", max);
            prop_assert_eq!(r.position_bits(), reference.position_bits());
            let (a, b) = (r.get_bit().ok(), reference.get_bit().ok());
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn refill_get_bits_matches_bit_at_a_time(bytes in prop::collection::vec(any::<u8>(), 0..64),
                                             widths in prop::collection::vec(width_strategy(), 0..32)) {
        // Word reads through the refill register must return exactly the
        // bits a bit-at-a-time reader would, for widths straddling every
        // accumulator boundary — including reads that hit EOF, which must
        // consume nothing (the next reader keeps agreeing afterwards).
        let mut r = BitReader::new(&bytes);
        let mut reference = BitReader::new(&bytes);
        for n in widths {
            let got = r.get_bits(n);
            if reference.remaining_bits() < n as usize {
                prop_assert!(got.is_err(), "width {} past EOF must fail", n);
                continue;
            }
            let mut want = 0u64;
            for i in 0..n {
                if reference.get_bit().unwrap() {
                    want |= 1u64 << i;
                }
            }
            prop_assert_eq!(got.unwrap(), want, "width {}", n);
            prop_assert_eq!(r.position_bits(), reference.position_bits());
            prop_assert_eq!(r.remaining_bits(), reference.remaining_bits());
        }
    }
}

/// One step of the zero-run differential test: a literal one-bit (to
/// shift alignment) or a bulk zero run.
#[derive(Debug, Clone, Copy)]
enum ZeroRunOp {
    One,
    Zeros(usize),
}

fn zero_run_op_strategy() -> impl Strategy<Value = ZeroRunOp> {
    // Accumulator-boundary run lengths appear as explicit alternatives:
    // empty runs, single bits, and runs that exactly fill / barely miss /
    // barely cross the 64-bit accumulator, alongside arbitrary lengths.
    prop_oneof![
        Just(ZeroRunOp::One),
        Just(ZeroRunOp::Zeros(0)),
        Just(ZeroRunOp::Zeros(1)),
        Just(ZeroRunOp::Zeros(63)),
        Just(ZeroRunOp::Zeros(64)),
        Just(ZeroRunOp::Zeros(65)),
        (0usize..200).prop_map(ZeroRunOp::Zeros),
    ]
}

/// Read widths with the accumulator-boundary cases as explicit
/// alternatives next to the full range.
fn width_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![Just(0u32), Just(1), Just(63), Just(64), 0u32..=64]
}

/// Zero-run caps with the accumulator boundaries as explicit
/// alternatives.
fn zero_run_max_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(1), Just(63), Just(64), Just(65), 0usize..200]
}
