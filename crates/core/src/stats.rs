//! Cost and timing accounting for the evaluation harness (Figs. 2, 4, 6).

use std::time::Duration;

/// Canonical telemetry span labels for the pipeline stages, shared by the
/// instrumentation sites (pipeline/compressor), the CLI `--stats` printer
/// and the trace-schema checks in the bench harness. One label per
/// [`StageTimes`] field, split by direction.
pub mod stage_labels {
    /// Forward wavelet transform of one chunk.
    pub const WAVELET_FORWARD: &str = "stage.wavelet.forward";
    /// SPECK encoding of one chunk's coefficients.
    pub const SPECK_ENCODE: &str = "stage.speck.encode";
    /// Outlier location: reconstruction + inverse transform + scan.
    pub const OUTLIER_LOCATE: &str = "stage.outlier.locate";
    /// Outlier correction encoding.
    pub const OUTLIER_ENCODE: &str = "stage.outlier.encode";
    /// Container serialization of the whole run.
    pub const CONTAINER_WRITE: &str = "stage.container.write";
    /// Lossless back end over the serialized container.
    pub const LOSSLESS_COMPRESS: &str = "stage.lossless.compress";

    /// Lossless decode of the outer framing.
    pub const LOSSLESS_DECOMPRESS: &str = "stage.lossless.decompress";
    /// Container parse + per-chunk CRC verification.
    pub const CONTAINER_READ: &str = "stage.container.read";
    /// SPECK decoding of one chunk.
    pub const SPECK_DECODE: &str = "stage.speck.decode";
    /// Inverse wavelet transform of one chunk.
    pub const WAVELET_INVERSE: &str = "stage.wavelet.inverse";
    /// Application of decoded outlier corrections.
    pub const OUTLIER_APPLY: &str = "stage.outlier.apply";

    /// Every compression-side stage, in pipeline order.
    pub const COMPRESS: &[&str] = &[
        WAVELET_FORWARD,
        SPECK_ENCODE,
        OUTLIER_LOCATE,
        OUTLIER_ENCODE,
        CONTAINER_WRITE,
        LOSSLESS_COMPRESS,
    ];

    /// Every decompression-side stage, in pipeline order.
    pub const DECOMPRESS: &[&str] =
        &[LOSSLESS_DECOMPRESS, CONTAINER_READ, SPECK_DECODE, WAVELET_INVERSE, OUTLIER_APPLY];
}

/// Canonical metric labels for the histogram layer: top-level operation
/// latencies (split by coefficient width where the pipeline forks),
/// output-size distributions, and memory gauges. Stage latencies reuse
/// [`stage_labels`] directly — `sperr_telemetry::timed` records a
/// histogram sample under the span label at every stage call site.
pub mod metric_labels {
    /// Wall time of one `compress` call on the f64 pipeline.
    pub const OP_COMPRESS_F64: &str = "op.compress.f64";
    /// Wall time of one `compress_f32` call (f32-native pipeline).
    pub const OP_COMPRESS_F32: &str = "op.compress.f32";
    /// Wall time of one `decompress` call over an f64 stream.
    pub const OP_DECOMPRESS_F64: &str = "op.decompress.f64";
    /// Wall time of one f32-native decode (`decompress_f32` on a tag-2
    /// stream, or the widening decode of one inside `decompress`).
    pub const OP_DECOMPRESS_F32: &str = "op.decompress.f32";
    /// Wall time of one `decode_region` call (either width).
    pub const OP_DECODE_REGION: &str = "op.decode_region";
    /// Wall time of one `decode_at_budgets`/`decode_at_bpp` preview.
    pub const OP_DECODE_PREVIEW: &str = "op.decode_preview";
    /// Wall time of one streaming `compress_stream` run.
    pub const OP_COMPRESS_STREAM: &str = "op.compress_stream";
    /// Wall time of one streaming `decompress_stream` run.
    pub const OP_DECOMPRESS_STREAM: &str = "op.decompress_stream";

    /// Final output bytes per compress call (the exporter appends the
    /// `_bytes` unit suffix — labels stay unit-free).
    pub const SIZE_OUTPUT: &str = "size.output";
    /// SPECK payload bytes per encoded chunk.
    pub const SIZE_CHUNK_SPECK: &str = "size.chunk.speck";

    /// Scratch-arena bytes per worker on the f64 path; the histogram max
    /// is the high-water mark.
    pub const MEM_ARENA_F64: &str = "mem.arena.f64";
    /// Scratch-arena bytes per worker on the f32-native path.
    pub const MEM_ARENA_F32: &str = "mem.arena.f32";

    /// Streaming pipeline in-flight chunk occupancy, sampled at every
    /// admit/retire transition; max is the observed peak.
    pub const STREAM_IN_FLIGHT: &str = "stream.in_flight_chunks";
    /// Streaming pipeline configured in-flight budget (constant gauge).
    pub const STREAM_IN_FLIGHT_BUDGET: &str = "stream.in_flight_budget";

    /// Every operation-latency label, for exporters and tests.
    pub const OPS: &[&str] = &[
        OP_COMPRESS_F64,
        OP_COMPRESS_F32,
        OP_DECOMPRESS_F64,
        OP_DECOMPRESS_F32,
        OP_DECODE_REGION,
        OP_DECODE_PREVIEW,
        OP_COMPRESS_STREAM,
        OP_DECOMPRESS_STREAM,
    ];
}

/// Wall time spent in each pipeline stage (§V-C's four major steps, plus
/// the container serialization and lossless back end that bracket them —
/// with those included, `total()` reconciles with end-to-end time on a
/// serial run).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimes {
    /// 1) forward wavelet transform.
    pub wavelet: Duration,
    /// 2) SPECK coding of wavelet coefficients.
    pub speck: Duration,
    /// 3) locating outliers: inverse transform + comparison.
    pub locate_outliers: Duration,
    /// 4) encoding located outliers.
    pub outlier_coding: Duration,
    /// 5) container serialization (write on compress, parse + CRC verify
    /// on decompress). Run-level, not per-chunk.
    pub container: Duration,
    /// 6) lossless back end over the whole container (ZSTD stand-in).
    /// Run-level; zero when the lossless pass is disabled.
    pub lossless: Duration,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.wavelet
            + self.speck
            + self.locate_outliers
            + self.outlier_coding
            + self.container
            + self.lossless
    }

    /// Accumulates another chunk's times.
    pub fn accumulate(&mut self, other: &StageTimes) {
        self.wavelet += other.wavelet;
        self.speck += other.speck;
        self.locate_outliers += other.locate_outliers;
        self.outlier_coding += other.outlier_coding;
        self.container += other.container;
        self.lossless += other.lossless;
    }
}

/// Aggregate cost accounting for one compression run.
#[derive(Debug, Clone, Default)]
pub struct CompressionStats {
    /// Total input points.
    pub num_points: usize,
    /// Bits produced by SPECK coefficient coding (all chunks).
    pub speck_bits: usize,
    /// Bits produced by outlier coding (all chunks).
    pub outlier_bits: usize,
    /// Number of outliers corrected.
    pub num_outliers: usize,
    /// Container bytes before the lossless pass.
    pub container_bytes: usize,
    /// Final output bytes (after the lossless pass, when enabled).
    pub output_bytes: usize,
    /// Accumulated per-stage times across chunks (serial CPU time).
    pub stage_times: StageTimes,
    /// Number of chunks processed.
    pub num_chunks: usize,
    /// Sum of squared quantization errors in the *wavelet domain*,
    /// accumulated during encoding at negligible cost. Because the CDF 9/7
    /// basis is near-orthonormal (§III-A), this estimates the
    /// reconstruction L2 error without any decode pass — the property §VII
    /// says "enables estimating compression error without much
    /// computational overhead".
    pub coeff_sq_error: f64,
}

impl CompressionStats {
    /// Overall bitrate in bits per point (final output).
    pub fn bpp(&self) -> f64 {
        self.output_bytes as f64 * 8.0 / self.num_points.max(1) as f64
    }

    /// Coefficient-coding bitrate in bits per point (Fig. 2's split).
    pub fn speck_bpp(&self) -> f64 {
        self.speck_bits as f64 / self.num_points.max(1) as f64
    }

    /// Outlier-coding bitrate in bits per point (Fig. 2's split).
    pub fn outlier_bpp(&self) -> f64 {
        self.outlier_bits as f64 / self.num_points.max(1) as f64
    }

    /// Average bits spent per outlier (Figs. 4 and 11); NaN when no
    /// outliers were produced.
    pub fn bits_per_outlier(&self) -> f64 {
        self.outlier_bits as f64 / self.num_outliers as f64
    }

    /// Fraction of points that were outliers (Fig. 4's dashed lines).
    pub fn outlier_percentage(&self) -> f64 {
        100.0 * self.num_outliers as f64 / self.num_points.max(1) as f64
    }

    /// Estimated reconstruction RMSE from the wavelet-domain quantization
    /// error (no decode needed; see [`CompressionStats::coeff_sq_error`]).
    /// For PWE streams this estimates the error *before* outlier
    /// correction (corrections only shrink it further).
    pub fn estimated_rmse(&self) -> f64 {
        (self.coeff_sq_error / self.num_points.max(1) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpp_accounting() {
        let stats = CompressionStats {
            num_points: 1000,
            speck_bits: 2000,
            outlier_bits: 500,
            num_outliers: 50,
            output_bytes: 400,
            ..Default::default()
        };
        assert!((stats.bpp() - 3.2).abs() < 1e-12);
        assert!((stats.speck_bpp() - 2.0).abs() < 1e-12);
        assert!((stats.outlier_bpp() - 0.5).abs() < 1e-12);
        assert!((stats.bits_per_outlier() - 10.0).abs() < 1e-12);
        assert!((stats.outlier_percentage() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stage_times_accumulate() {
        let mut a = StageTimes {
            wavelet: Duration::from_millis(5),
            speck: Duration::from_millis(10),
            locate_outliers: Duration::from_millis(3),
            outlier_coding: Duration::from_millis(2),
            container: Duration::from_millis(4),
            lossless: Duration::from_millis(6),
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.total(), Duration::from_millis(60));
    }
}
