//! Fig. 10: compression wall time on the Table II matrix, four worker
//! threads. Paper findings: SZ3 and ZFP are extremely fast and
//! comparable; SPERR runs a few times slower but is far faster than
//! TTHRESH and comparable with MGARD. TTHRESH receives the PSNR targets
//! 120.41 dB (idx 20) / 240.82 dB (idx 40); MGARD is dropped at idx 40.
//!
//! Note: our SPERR and ZFP-like use 4 threads (as in the paper); the
//! SZ/TTHRESH/MGARD reproductions are serial, so their times are upper
//! bounds — the *ordering* is what matters, and on a 1-core host
//! everything is effectively serial anyway.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use std::time::Instant;

fn main() {
    sperr_bench::banner(
        "Fig. 10 — compression wall time, four threads",
        "Figure 10 (Table II matrix, five compressors)",
    );
    let sperr = Sperr::new(SperrConfig { num_threads: 4, ..SperrConfig::default() });
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike { num_threads: 4 };
    let tthresh = sperr_tthresh_like::TthreshLike;
    let mgard = sperr_mgard_like::MgardLike;

    println!("case,compressor,wall_ms");
    for (f, idx) in sperr_bench::table2_matrix() {
        let field = sperr_bench::bench_field(f);
        let t = field.tolerance_for_idx(idx);
        let psnr_target = sperr_metrics::psnr_target_for_idx(idx);
        for (name, comp, bound) in [
            ("SPERR", &sperr as &dyn LossyCompressor, Bound::Pwe(t)),
            ("SZ-like", &sz, Bound::Pwe(t)),
            ("ZFP-like", &zfp, Bound::Pwe(t)),
            ("TTHRESH-like", &tthresh, Bound::Psnr(psnr_target)),
            ("MGARD-like", &mgard, Bound::Pwe(t)),
        ] {
            if name == "MGARD-like" && idx >= 40 {
                continue;
            }
            if name == "TTHRESH-like" && f == sperr_datagen::SyntheticField::Qmcpack {
                continue; // paper: TTHRESH could not finish QMCPACK
            }
            let start = Instant::now();
            let result = comp.compress(&field, bound);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            match result {
                Ok(_) => println!("{},{name},{ms:.1}", f.abbrev(idx)),
                Err(e) => println!("{},{name},error: {e}", f.abbrev(idx)),
            }
        }
    }
}
