//! The top-level SPERR compressor: chunking, the embarrassingly parallel
//! driver (§III-D), container assembly and the lossless post-pass (§V).

use crate::chunk::{chunk_grid, extract_chunk, insert_chunk};
use crate::container::{read_container, write_container, Header, Mode};
use crate::pipeline::{
    compress_chunk_bpp, compress_chunk_pwe, compress_chunk_rmse, decompress_chunk,
    decompress_chunk_multires, ChunkEncoding,
};
use crate::stats::CompressionStats;
use parking_lot::Mutex;
use sperr_compress_api::{Bound, CompressError, Field, LossyCompressor};
use sperr_wavelet::Kernel;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outer stream framing: one flag byte telling whether the container is
/// wrapped by the lossless codec.
const OUTER_RAW: u8 = 0;
const OUTER_LOSSLESS: u8 = 1;

/// Configuration for [`Sperr`].
#[derive(Debug, Clone)]
pub struct SperrConfig {
    /// Chunk extent; the volume is partitioned into chunks of at most this
    /// size. The paper's default is 256³ (§V-B); it need not divide the
    /// volume dimensions.
    pub chunk_dims: [usize; 3],
    /// SPECK quantization step as a multiple of the PWE tolerance:
    /// `q = q_factor · t`. The paper settles on 1.5 (§IV-D).
    pub q_factor: f64,
    /// Wavelet kernel (CDF 9/7 in the paper; others for ablations).
    pub kernel: Kernel,
    /// Apply the lossless post-pass to the final container (§V; on by
    /// default, standing in for ZSTD).
    pub lossless: bool,
    /// Worker threads for chunk-parallel execution; 0 = one per available
    /// core.
    pub num_threads: usize,
}

impl Default for SperrConfig {
    fn default() -> Self {
        SperrConfig {
            chunk_dims: [256, 256, 256],
            q_factor: 1.5,
            kernel: Kernel::Cdf97,
            lossless: true,
            num_threads: 0,
        }
    }
}

/// The SPERR compressor. See the crate docs for the pipeline description.
#[derive(Debug, Clone, Default)]
pub struct Sperr {
    config: SperrConfig,
}

impl Sperr {
    /// Creates a compressor with the given configuration.
    pub fn new(config: SperrConfig) -> Self {
        assert!(config.q_factor > 0.0, "q_factor must be positive");
        assert!(config.chunk_dims.iter().all(|&d| d > 0), "chunk dims must be positive");
        Sperr { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SperrConfig {
        &self.config
    }

    fn effective_threads(&self, n_chunks: usize) -> usize {
        let t = if self.config.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.num_threads
        };
        t.min(n_chunks).max(1)
    }

    /// Compresses and returns the stream together with cost/timing
    /// statistics (the instrumentation behind Figs. 2, 4 and 6).
    pub fn compress_with_stats(
        &self,
        field: &Field,
        bound: Bound,
    ) -> Result<(Vec<u8>, CompressionStats), CompressError> {
        if field.is_empty() {
            return Err(CompressError::Invalid("empty field".into()));
        }
        let chunks_spec = chunk_grid(field.dims, self.config.chunk_dims);
        let (mode, bound_value) = match bound {
            Bound::Pwe(t) => {
                if !(t > 0.0) || !t.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid tolerance {t}")));
                }
                (Mode::Pwe, t)
            }
            Bound::Bpp(r) => {
                if !(r > 0.0) || !r.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid bitrate {r}")));
                }
                (Mode::Bpp, r)
            }
            Bound::Psnr(p) => {
                // §VII extension: average-error-targeted compression via
                // the near-orthogonality of the transform.
                if !(p > 0.0) || !p.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid PSNR target {p}")));
                }
                (Mode::Rmse, p)
            }
        };
        // PSNR targets translate to an RMSE target over the whole field's
        // range; a zero-range (constant) field quantizes relative to its
        // magnitude.
        let rmse_target = if let Mode::Rmse = mode {
            let range = field.range();
            if range > 0.0 {
                range / 10f64.powf(bound_value / 20.0)
            } else {
                let max_abs = field.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                max_abs.max(1.0) * f64::exp2(-40.0)
            }
        } else {
            0.0
        };

        // Per-chunk bit budget for size mode: the raw target minus the
        // amortized chunk-table overhead, so the final container lands at
        // or under the requested rate.
        let per_chunk_header_bits = 26 * 8;
        let cfg = &self.config;
        let q_factor = cfg.q_factor;
        let kernel = cfg.kernel;
        let volume_dims = field.dims;
        let data = &field.data;

        let n_chunks = chunks_spec.len();
        let threads = self.effective_threads(n_chunks);
        let encoded: Vec<ChunkEncoding> = parallel_map(n_chunks, threads, |i| {
            let spec = &chunks_spec[i];
            let chunk_data = extract_chunk(data, volume_dims, spec);
            match mode {
                Mode::Pwe => {
                    compress_chunk_pwe(&chunk_data, spec.dims, bound_value, q_factor, kernel)
                }
                Mode::Bpp => {
                    let budget = ((bound_value * spec.len() as f64) as usize)
                        .saturating_sub(per_chunk_header_bits);
                    compress_chunk_bpp(&chunk_data, spec.dims, budget, kernel)
                }
                Mode::Rmse => compress_chunk_rmse(&chunk_data, spec.dims, rmse_target, kernel),
            }
        });

        let mut stats = CompressionStats {
            num_points: field.len(),
            num_chunks: n_chunks,
            ..CompressionStats::default()
        };
        for enc in &encoded {
            stats.speck_bits += enc.speck_bits;
            stats.outlier_bits += enc.outlier_bits;
            stats.num_outliers += enc.num_outliers as usize;
            stats.stage_times.accumulate(&enc.times);
            stats.coeff_sq_error += enc.coeff_sq_error;
        }

        let header = Header {
            mode,
            kernel,
            precision: field.precision,
            dims: field.dims,
            chunk_dims: cfg.chunk_dims,
            bound_value,
            n_chunks,
        };
        let container = write_container(&header, &encoded);
        stats.container_bytes = container.len();

        let mut out = Vec::with_capacity(container.len() + 1);
        if cfg.lossless {
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&sperr_lossless::compress(&container));
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&container);
        }
        stats.output_bytes = out.len();
        Ok((out, stats))
    }

    /// Strips the outer framing, undoing the lossless pass when present.
    /// Returns the raw container and whether the lossless pass was on.
    fn unwrap_outer(stream: &[u8]) -> Result<(Vec<u8>, bool), CompressError> {
        let (&flag, rest) = stream
            .split_first()
            .ok_or_else(|| CompressError::Corrupt("empty stream".into()))?;
        match flag {
            OUTER_RAW => Ok((rest.to_vec(), false)),
            OUTER_LOSSLESS => Ok((sperr_lossless::decompress(rest)?, true)),
            f => Err(CompressError::Corrupt(format!("unknown outer flag {f}"))),
        }
    }

    /// Inspects a SPERR stream without decoding it: dimensions, mode,
    /// chunking and per-chunk stream sizes.
    pub fn inspect(&self, stream: &[u8]) -> Result<StreamInfo, CompressError> {
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let (header, entries, _) = read_container(&container)?;
        Ok(StreamInfo {
            dims: header.dims,
            chunk_dims: header.chunk_dims,
            mode: header.mode,
            bound_value: header.bound_value,
            n_chunks: header.n_chunks,
            lossless,
            speck_bytes: entries.iter().map(|e| e.speck_len).sum(),
            outlier_bytes: entries.iter().map(|e| e.outlier_len).sum(),
        })
    }

    /// Multi-resolution decompression (§VII): reconstructs the field at
    /// `1/2^level` resolution per axis by undoing only the coarser
    /// transform levels. `level = 0` is full resolution (without outlier
    /// corrections applied at `level > 0`, which are full-resolution
    /// data). Requires every chunk to have at least `level` transform
    /// levels on every axis and `chunk_dims` divisible by `2^level`.
    pub fn decompress_multires(
        &self,
        stream: &[u8],
        level: usize,
    ) -> Result<Field, CompressError> {
        if level == 0 {
            return self.decompress(stream);
        }
        let (container, _) = Self::unwrap_outer(stream)?;
        let (header, entries, payload_start) = read_container(&container)?;
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != header.n_chunks || entries.len() != header.n_chunks {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let step = 1usize << level;
        // Offsets are multiples of chunk_dims; they must stay aligned
        // after coarsening (single-chunk streams are always fine).
        if chunks_spec.len() > 1 && header.chunk_dims.iter().any(|&d| d % step != 0) {
            return Err(CompressError::Invalid(format!(
                "chunk dims {:?} not divisible by 2^{level}",
                header.chunk_dims
            )));
        }
        // Coarse volume geometry: iterated ceil-halving == ceil(n / 2^l).
        let cdims = [
            header.dims[0].div_ceil(step),
            header.dims[1].div_ceil(step),
            header.dims[2].div_ceil(step),
        ];
        let mut volume = vec![0.0f64; cdims.iter().product()];
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            cursor += e.speck_len + e.outlier_len;
            let (chunk, chunk_cdims) = decompress_chunk_multires(
                speck,
                spec.dims,
                e.q,
                e.num_planes,
                level,
                header.kernel,
            )?;
            let coffset = [spec.offset[0] / step, spec.offset[1] / step, spec.offset[2] / step];
            insert_chunk(
                &mut volume,
                cdims,
                &crate::chunk::ChunkSpec { offset: coffset, dims: chunk_cdims },
                &chunk,
            );
        }
        Ok(Field::new(cdims, volume).with_precision(header.precision))
    }

    /// Region-of-interest decompression: reconstructs only the sub-box
    /// `[lo, hi)` of the volume, decoding just the chunks that intersect
    /// it — the practical payoff of SPERR's chunked storage for
    /// explorative analysis. Returns a field of dims `hi - lo`.
    pub fn decompress_region(
        &self,
        stream: &[u8],
        lo: [usize; 3],
        hi: [usize; 3],
    ) -> Result<Field, CompressError> {
        let (container, _) = Self::unwrap_outer(stream)?;
        let (header, entries, payload_start) = read_container(&container)?;
        for d in 0..3 {
            if lo[d] >= hi[d] || hi[d] > header.dims[d] {
                return Err(CompressError::Invalid(format!(
                    "region [{lo:?}, {hi:?}) out of bounds for dims {:?}",
                    header.dims
                )));
            }
        }
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let tolerance = match header.mode {
            Mode::Pwe => header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let region_dims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        let mut out = vec![0.0f64; region_dims.iter().product()];
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            let outlier = &container[cursor + e.speck_len..cursor + e.speck_len + e.outlier_len];
            cursor += e.speck_len + e.outlier_len;
            // Intersect the chunk with the region.
            let c_lo = spec.offset;
            let c_hi = [
                spec.offset[0] + spec.dims[0],
                spec.offset[1] + spec.dims[1],
                spec.offset[2] + spec.dims[2],
            ];
            let isect_lo = [lo[0].max(c_lo[0]), lo[1].max(c_lo[1]), lo[2].max(c_lo[2])];
            let isect_hi = [hi[0].min(c_hi[0]), hi[1].min(c_hi[1]), hi[2].min(c_hi[2])];
            if (0..3).any(|d| isect_lo[d] >= isect_hi[d]) {
                continue; // chunk does not touch the region: skip decode
            }
            let chunk = decompress_chunk(
                speck,
                outlier,
                spec.dims,
                e.q,
                e.num_planes,
                e.max_n,
                tolerance,
                header.kernel,
            )?;
            for z in isect_lo[2]..isect_hi[2] {
                for y in isect_lo[1]..isect_hi[1] {
                    let src_row = (isect_lo[0] - c_lo[0])
                        + spec.dims[0] * ((y - c_lo[1]) + spec.dims[1] * (z - c_lo[2]));
                    let dst_row = (isect_lo[0] - lo[0])
                        + region_dims[0] * ((y - lo[1]) + region_dims[1] * (z - lo[2]));
                    let len = isect_hi[0] - isect_lo[0];
                    out[dst_row..dst_row + len].copy_from_slice(&chunk[src_row..src_row + len]);
                }
            }
        }
        Ok(Field::new(region_dims, out).with_precision(header.precision))
    }

    /// Re-rates an existing SPERR stream to a (lower) size target without
    /// re-encoding, by truncating each chunk's embedded SPECK stream (§VII:
    /// "any prefix of the bitstream can reconstruct a less-accurate
    /// version of the data"). Outlier corrections are dropped — the result
    /// is a size-bounded stream with no error guarantee.
    pub fn transcode_to_bpp(&self, stream: &[u8], bpp: f64) -> Result<Vec<u8>, CompressError> {
        if !(bpp > 0.0) || !bpp.is_finite() {
            return Err(CompressError::Invalid(format!("invalid bitrate {bpp}")));
        }
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let (header, entries, payload_start) = read_container(&container)?;
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let mut new_chunks = Vec::with_capacity(entries.len());
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            cursor += e.speck_len + e.outlier_len;
            let budget_bytes = ((bpp * spec.len() as f64) as usize / 8).saturating_sub(26);
            let keep = e.speck_len.min(budget_bytes);
            new_chunks.push(ChunkEncoding {
                speck_stream: speck[..keep].to_vec(),
                outlier_stream: Vec::new(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: 0,
                num_outliers: 0,
                speck_bits: keep * 8,
                outlier_bits: 0,
                times: Default::default(),
                coeff_sq_error: 0.0,
            });
        }
        let new_header = Header {
            mode: Mode::Bpp,
            kernel: header.kernel,
            precision: header.precision,
            dims: header.dims,
            chunk_dims: header.chunk_dims,
            bound_value: bpp,
            n_chunks: new_chunks.len(),
        };
        let new_container = write_container(&new_header, &new_chunks);
        let mut out = Vec::with_capacity(new_container.len() + 1);
        if lossless {
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&sperr_lossless::compress(&new_container));
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&new_container);
        }
        Ok(out)
    }
}

/// Metadata describing a SPERR stream (see [`Sperr::inspect`]).
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// Full-resolution volume dimensions.
    pub dims: [usize; 3],
    /// Chunk extent used at compression time.
    pub chunk_dims: [usize; 3],
    /// Termination mode.
    pub mode: Mode,
    /// The bound's value: tolerance (PWE), bits-per-point (BPP) or PSNR
    /// target in dB (RMSE mode).
    pub bound_value: f64,
    /// Number of chunks.
    pub n_chunks: usize,
    /// Whether the lossless post-pass was applied.
    pub lossless: bool,
    /// Total SPECK payload bytes across chunks.
    pub speck_bytes: usize,
    /// Total outlier payload bytes across chunks.
    pub outlier_bytes: usize,
}

impl LossyCompressor for Sperr {
    fn name(&self) -> &'static str {
        "SPERR"
    }

    fn supports(&self, bound: &Bound) -> bool {
        matches!(bound, Bound::Pwe(_) | Bound::Bpp(_) | Bound::Psnr(_))
    }

    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError> {
        self.compress_with_stats(field, bound).map(|(stream, _)| stream)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError> {
        let (&flag, rest) = stream
            .split_first()
            .ok_or_else(|| CompressError::Corrupt("empty stream".into()))?;
        let container: Vec<u8> = match flag {
            OUTER_RAW => rest.to_vec(),
            OUTER_LOSSLESS => sperr_lossless::decompress(rest)?,
            f => return Err(CompressError::Corrupt(format!("unknown outer flag {f}"))),
        };
        let (header, entries, payload_start) = read_container(&container)?;
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != header.n_chunks || entries.len() != header.n_chunks {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }

        // Pre-slice each chunk's payload region.
        let mut offsets = Vec::with_capacity(entries.len());
        let mut cursor = payload_start;
        for e in &entries {
            offsets.push(cursor);
            cursor += e.speck_len + e.outlier_len;
        }

        let tolerance = match header.mode {
            Mode::Pwe => header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let n_chunks = entries.len();
        let threads = self.effective_threads(n_chunks);
        let container_ref = &container;
        let entries_ref = &entries;
        let offsets_ref = &offsets;
        let specs_ref = &chunks_spec;
        let kernel = header.kernel;
        let decoded: Vec<Result<Vec<f64>, CompressError>> =
            parallel_map(n_chunks, threads, move |i| {
                let e = &entries_ref[i];
                let start = offsets_ref[i];
                let speck = &container_ref[start..start + e.speck_len];
                let outlier = &container_ref[start + e.speck_len..start + e.speck_len + e.outlier_len];
                decompress_chunk(
                    speck,
                    outlier,
                    specs_ref[i].dims,
                    e.q,
                    e.num_planes,
                    e.max_n,
                    tolerance,
                    kernel,
                )
            });

        let mut volume = vec![0.0f64; header.dims.iter().product()];
        for (spec, result) in chunks_spec.iter().zip(decoded) {
            let chunk = result?;
            insert_chunk(&mut volume, header.dims, spec, &chunk);
        }
        Ok(Field::new(header.dims, volume).with_precision(header.precision))
    }
}

/// Runs `f(0..n)` on up to `threads` scoped workers pulling indices from a
/// shared atomic counter; results land in input order. With one thread the
/// calls happen inline (used by the timing experiments to measure serial
/// stage costs without thread noise).
fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                slots.lock()[i] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("worker failed to fill slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_item() {
        assert_eq!(parallel_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = SperrConfig::default();
        assert_eq!(cfg.chunk_dims, [256, 256, 256]); // §V-B default
        assert!((cfg.q_factor - 1.5).abs() < 1e-12); // §IV-D choice
        assert_eq!(cfg.kernel, Kernel::Cdf97);
        assert!(cfg.lossless); // §V: ZSTD stage on by default
    }
}
