//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this crate implements the subset of proptest's API the workspace's
//! property tests use: the `proptest!` macro, `prop_assert*`/`prop_assume`,
//! `Strategy` with `prop_map`/`prop_flat_map`/`boxed`, range and tuple
//! strategies, `Just`, `any`, `prop_oneof!`, and `prop::collection::
//! {vec, btree_set}`.
//!
//! Differences from real proptest, by design:
//! - Cases are generated from a seed derived from the test's module path
//!   and name, so every run explores the same inputs (CI-reproducible).
//! - No shrinking: a failing case reports its case index and seed instead
//!   of a minimized input.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a fixed seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)` for `1 <= span <= 2^64` (Lemire's
    /// multiply-shift; bias is negligible at these spans).
    #[inline]
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span >= 1 && span <= 1u128 << 64);
        (self.next_u64() as u128 * span) >> 64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another input.
    Reject(String),
}

/// Result type the `proptest!`-generated case closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

// Integer range strategies -------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty integer range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float range strategies ---------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty float range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

// Tuple strategies ---------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}
impl_arbitrary_prim! {
    bool => |r| r.next_u64() & 1 == 1,
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u64() as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u64() as i8,
    i16 => |r| r.next_u64() as i16,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
}

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::*` in real proptest).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            let hi = r.end.saturating_sub(1).max(r.start);
            SizeRange { lo: r.start, hi }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: (*r.end()).max(*r.start()) }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u128) as usize
        }
    }

    /// `Vec` of values from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`; aims for a size within `size`
    /// but may return fewer elements if the domain is too small (matching
    /// proptest's best-effort semantics).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` deterministic inputs through its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        #[test]
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = config.cases as u64 * 20 + 100;
            while accepted < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                }
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body;
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed at case {} (seed {:#x}): {}",
                        stringify!($name), accepted, seed, msg
                    ),
                }
            }
        }
    )*};
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(5usize..=5), &mut rng);
            assert_eq!(w, 5);
            let f = Strategy::generate(&(-2.0f64..3.5), &mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::generate(&s, &mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0u8..255, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::btree_set(0usize..50, 0..10), &mut rng);
            assert!(s.len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples((a, b) in (0u32..10, 10u32..20), c in 0i64..5) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert!(c < 5, "c was {}", c);
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_case_produces_fail_error() {
        // The closure shape generated by `proptest!`: a false property
        // yields `TestCaseError::Fail` with the formatted message.
        let case = || -> TestCaseResult {
            let x = 3u32;
            prop_assert!(x > 100, "x is only {}", x);
            Ok(())
        };
        match case() {
            Err(TestCaseError::Fail(msg)) => assert!(msg.contains("x is only 3")),
            other => panic!("expected Fail, got {other:?}"),
        }
    }
}
