//! Embarrassingly parallel chunked compression (paper §III-D): a large
//! volume is split into chunks, each compressed independently on its own
//! core, then the bitstreams are concatenated. Parallelism is capped by
//! the chunk count — the effect Fig. 7's scalability plateau shows.
//!
//! Run with: `cargo run --release --example parallel_chunks`

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{chunk_grid, Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use std::time::Instant;

fn main() {
    // A "large" volume at laptop scale; chunks of 32³ give 64-way
    // parallelism headroom (the paper uses 2048³ volumes / 256³ chunks).
    let dims = [128, 128, 64];
    let chunk_dims = [32, 32, 32];
    let field = SyntheticField::MirandaDensity.generate(dims, 11);
    let t = field.tolerance_for_idx(15);
    let n_chunks = chunk_grid(dims, chunk_dims).len();
    println!(
        "volume {}x{}x{}, chunks {}x{}x{} -> {n_chunks} chunks ({}-way parallelism cap)",
        dims[0], dims[1], dims[2], chunk_dims[0], chunk_dims[1], chunk_dims[2], n_chunks
    );

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host exposes {cores} core(s); speedups saturate at that count");
    let mut serial_time = None;
    let mut reference: Option<Vec<u8>> = None;
    println!("{:>8} {:>12} {:>9}", "threads", "wall ms", "speedup");
    let mut threads = 1usize;
    while threads <= (2 * cores).min(n_chunks).max(4) {
        let sperr = Sperr::new(SperrConfig {
            chunk_dims,
            num_threads: threads,
            ..SperrConfig::default()
        });
        let start = Instant::now();
        let stream = sperr.compress(&field, Bound::Pwe(t)).expect("compress");
        let elapsed = start.elapsed();
        let serial = *serial_time.get_or_insert(elapsed);
        println!(
            "{:>8} {:>12.1} {:>8.2}x",
            threads,
            elapsed.as_secs_f64() * 1e3,
            serial.as_secs_f64() / elapsed.as_secs_f64()
        );
        // The output must be bit-identical regardless of thread count.
        match &reference {
            None => reference = Some(stream),
            Some(r) => assert_eq!(r, &stream, "thread count changed the output!"),
        }
        threads *= 2;
    }

    // Verify the result once.
    let sperr = Sperr::new(SperrConfig { chunk_dims, ..SperrConfig::default() });
    let restored = sperr.decompress(reference.as_ref().unwrap()).expect("decompress");
    let max_err = sperr_metrics::max_pwe(&field.data, &restored.data);
    println!("\noutput identical across thread counts; max error {max_err:.3e} <= t {t:.3e}");
    assert!(max_err <= t);
}
