use crate::{Error, Result};

/// A cursor over a packed bitstream, reading LSB-first within each byte.
///
/// Mirrors [`crate::BitWriter`]. Reads past the end return
/// [`Error::UnexpectedEof`] without consuming anything, which lets the SPECK
/// decoder stop cleanly on a truncated (embedded) prefix.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit position from the start of `bytes`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool> {
        let byte_idx = self.pos >> 3;
        if byte_idx >= self.bytes.len() {
            return Err(Error::UnexpectedEof);
        }
        let bit = (self.bytes[byte_idx] >> (self.pos & 7)) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads `n` bits (`n <= 64`) into the low bits of the result, LSB
    /// first. Widths above 64 are a caller error surfaced as a clean
    /// [`Error::Corrupt`] so that widths read from untrusted headers can be
    /// passed through without pre-validation.
    pub fn get_bits(&mut self, n: u32) -> Result<u64> {
        if n > 64 {
            return Err(Error::Corrupt("bit width exceeds 64"));
        }
        if n == 0 {
            return Ok(0);
        }
        if self.remaining_bits() < n as usize {
            return Err(Error::UnexpectedEof);
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            let byte_idx = self.pos >> 3;
            let bit_off = (self.pos & 7) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(n - got);
            let chunk = ((self.bytes[byte_idx] >> bit_off) as u64) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        Ok(out)
    }

    /// Skips forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.pos = (self.pos + 7) & !7;
    }

    /// Bits consumed so far.
    #[inline]
    pub fn position_bits(&self) -> usize {
        self.pos
    }

    /// Bits still available.
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}
