//! Bitplane gather/scatter kernels for SPECK's word-packed refinement:
//! collect bit `n` of up to 64 magnitudes into one packed word (encoder)
//! and apply a packed word of refinement bits back onto magnitude /
//! uncertainty arrays (decoder).

/// Packs bit `n` of each magnitude into one word, lane `j` = bit `n` of
/// `ks[j]`. `ks.len()` must be at most 64. Scalar twin:
/// [`scalar_plane_word_u64`].
pub fn plane_word_u64(ks: &[u64], n: u32) -> u64 {
    debug_assert!(ks.len() <= 64);
    #[cfg(feature = "force-scalar")]
    return scalar_plane_word_u64(ks, n);
    #[cfg(not(feature = "force-scalar"))]
    {
        // Per-lane shift/mask then a lane-indexed OR-reduction. Written
        // as two fixed-width passes (extract into a block, fold the
        // block) so the extraction loop vectorizes even when the
        // reduction does not.
        const W: usize = 8;
        let mut word = 0u64;
        let mut base = 0usize;
        let mut chunks = ks.chunks_exact(W);
        for c in chunks.by_ref() {
            let mut lanes = [0u64; W];
            for (l, &kv) in lanes.iter_mut().zip(c) {
                *l = (kv >> n) & 1;
            }
            for (j, &l) in lanes.iter().enumerate() {
                word |= l << (base + j);
            }
            base += W;
        }
        for (j, &kv) in chunks.remainder().iter().enumerate() {
            word |= ((kv >> n) & 1) << (base + j);
        }
        word
    }
}

/// Scalar reference for [`plane_word_u64`].
pub fn scalar_plane_word_u64(ks: &[u64], n: u32) -> u64 {
    let mut word = 0u64;
    for (j, &kv) in ks.iter().enumerate() {
        word |= ((kv >> n) & 1) << j;
    }
    word
}

/// [`plane_word_u64`] over narrow magnitudes (the coder stores the LSP
/// as `u32` when every magnitude fits, halving refinement memory
/// traffic). Scalar twin: [`scalar_plane_word_u32`].
pub fn plane_word_u32(ks: &[u32], n: u32) -> u64 {
    debug_assert!(ks.len() <= 64);
    #[cfg(feature = "force-scalar")]
    return scalar_plane_word_u32(ks, n);
    #[cfg(not(feature = "force-scalar"))]
    {
        const W: usize = 8;
        let mut word = 0u64;
        let mut base = 0usize;
        let mut chunks = ks.chunks_exact(W);
        for c in chunks.by_ref() {
            let mut lanes = [0u32; W];
            for (l, &kv) in lanes.iter_mut().zip(c) {
                *l = (kv >> n) & 1;
            }
            for (j, &l) in lanes.iter().enumerate() {
                word |= (l as u64) << (base + j);
            }
            base += W;
        }
        for (j, &kv) in chunks.remainder().iter().enumerate() {
            word |= (((kv >> n) & 1) as u64) << (base + j);
        }
        word
    }
}

/// Scalar reference for [`plane_word_u32`].
pub fn scalar_plane_word_u32(ks: &[u32], n: u32) -> u64 {
    let mut word = 0u64;
    for (j, &kv) in ks.iter().enumerate() {
        word |= (((kv >> n) & 1) as u64) << j;
    }
    word
}

/// Decoder-side scatter: for each of the first `count` lanes, OR bit `j`
/// of `word` (shifted to plane `n`) into `vals[j]` and stamp `unc[j] = n`.
/// `count <= 64`, `vals.len() == unc.len() >= count`. Scalar twin:
/// [`scalar_apply_plane_bits`].
pub fn apply_plane_bits(vals: &mut [u64], unc: &mut [u8], word: u64, count: usize, n: u32) {
    assert!(count <= vals.len() && count <= unc.len() && count <= 64);
    #[cfg(feature = "force-scalar")]
    return scalar_apply_plane_bits(vals, unc, word, count, n);
    #[cfg(not(feature = "force-scalar"))]
    {
        let nv = n as u8;
        // Equal-length subslices so the bounds checks hoist; both loops
        // are independent elementwise updates (vectorizable).
        for (j, v) in vals[..count].iter_mut().enumerate() {
            *v |= ((word >> j) & 1) << n;
        }
        for u in unc[..count].iter_mut() {
            *u = nv;
        }
    }
}

/// Scalar reference for [`apply_plane_bits`].
pub fn scalar_apply_plane_bits(vals: &mut [u64], unc: &mut [u8], word: u64, count: usize, n: u32) {
    assert!(count <= vals.len() && count <= unc.len() && count <= 64);
    for j in 0..count {
        vals[j] |= ((word >> j) & 1) << n;
        unc[j] = n as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_word_matches_scalar() {
        let ks: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) >> 3).collect();
        for n in [0u32, 1, 13, 31, 62] {
            assert_eq!(plane_word_u64(&ks, n), scalar_plane_word_u64(&ks, n));
        }
        let ks32: Vec<u32> = ks.iter().map(|&k| k as u32).collect();
        for n in [0u32, 7, 31] {
            assert_eq!(plane_word_u32(&ks32, n), scalar_plane_word_u32(&ks32, n));
        }
    }

    #[test]
    fn apply_matches_scalar() {
        let word = 0xdead_beef_1234_5678u64;
        let mut v1 = vec![1u64; 64];
        let mut u1 = vec![0u8; 64];
        let mut v2 = v1.clone();
        let mut u2 = u1.clone();
        apply_plane_bits(&mut v1, &mut u1, word, 50, 9);
        scalar_apply_plane_bits(&mut v2, &mut u2, word, 50, 9);
        assert_eq!(v1, v2);
        assert_eq!(u1, u2);
    }
}
