//! Criterion companion to Fig. 7: SPERR compression wall time vs worker
//! thread count on a chunked volume. On multi-core hosts this shows the
//! near-linear region; the `fig7` binary prints the paper-style speedup
//! table.

use criterion::{criterion_group, criterion_main, Criterion};
use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let field = SyntheticField::MirandaDensity.generate([96, 96, 48], 5);
    let t = field.tolerance_for_idx(15);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut group = c.benchmark_group("parallel_scaling_idx15");
    group.sample_size(10);
    let mut threads = 1usize;
    while threads <= (2 * cores).max(4) {
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [32, 32, 32],
            num_threads: threads,
            ..SperrConfig::default()
        });
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| black_box(sperr.compress(&field, Bound::Pwe(t)).unwrap().len()))
        });
        threads *= 2;
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
