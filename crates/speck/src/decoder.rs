//! The SPECK decoder, kept in its own module so the whole decode path can
//! be audited for panic-freedom (see the repo's `tests/panic_audit.rs`):
//! nothing in this file may `unwrap`, `expect`, `panic!` or `assert` — all
//! failures on untrusted input surface as [`DecodeError`].

use crate::set::SetS;
use sperr_bitstream::BitReader;
use std::fmt;

/// Hard ceiling on the number of coefficients a decoder will allocate
/// reconstruction buffers for. Matches the encoder's own u32-index domain
/// limit: a stream claiming more could never have been produced by
/// [`crate::encode`].
pub const MAX_DECODE_ELEMENTS: u64 = u32::MAX as u64;

/// Typed decoder-side failure. Untrusted streams must never panic the
/// decoder; every structural problem maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the declared structure was complete.
    Truncated(&'static str),
    /// The stream or its declared parameters are structurally invalid.
    Corrupt(&'static str),
    /// A declared size exceeds what the decoder is willing to allocate.
    LimitExceeded(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated(msg) => write!(f, "truncated SPECK stream: {msg}"),
            DecodeError::Corrupt(msg) => write!(f, "corrupt SPECK stream: {msg}"),
            DecodeError::LimitExceeded(msg) => write!(f, "SPECK decode limit exceeded: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<sperr_bitstream::Error> for DecodeError {
    fn from(e: sperr_bitstream::Error) -> Self {
        match e {
            sperr_bitstream::Error::UnexpectedEof => {
                DecodeError::Truncated("unexpected end of stream")
            }
            sperr_bitstream::Error::Corrupt(msg) => DecodeError::Corrupt(msg),
        }
    }
}

impl From<DecodeError> for sperr_compress_api::CompressError {
    fn from(e: DecodeError) -> Self {
        use sperr_compress_api::CompressError;
        match e {
            DecodeError::Truncated(_) => CompressError::Truncated(e.to_string()),
            DecodeError::Corrupt(_) => CompressError::Corrupt(e.to_string()),
            DecodeError::LimitExceeded(_) => CompressError::LimitExceeded(e.to_string()),
        }
    }
}

/// Signals that the stream ran out mid-pass; unwinds the pass cleanly (a
/// truncated embedded stream is a *valid* coarser encoding, not an error).
struct Stop;

struct Decoder<'a, const D: usize> {
    dims: [usize; D],
    k_rec: Vec<u64>,
    negative: Vec<bool>,
    /// Plane index below which a found coefficient's bits are unknown.
    uncert: Vec<u8>,
    lis: Vec<Vec<SetS<D>>>,
    lsp: Vec<u32>,
    lsp_new: Vec<u32>,
    input: BitReader<'a>,
}

impl<'a, const D: usize> Decoder<'a, D> {
    #[inline]
    fn read_bit(&mut self) -> Result<bool, Stop> {
        self.input.get_bit().map_err(|_| Stop)
    }

    fn push_lis(&mut self, set: SetS<D>) {
        let lvl = set.part_level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, Vec::new);
        }
        self.lis[lvl].push(set);
    }

    fn sorting_pass(&mut self, n: u32) -> Result<(), Stop> {
        for lvl in (0..self.lis.len()).rev() {
            let bucket = std::mem::take(&mut self.lis[lvl]);
            for (i, set) in bucket.iter().enumerate() {
                if let Err(stop) = self.process_s(*set, n) {
                    // Put the unprocessed remainder back so state stays sane
                    // (reconstruction happens right after a Stop anyway).
                    for rest in &bucket[i + 1..] {
                        self.push_lis(*rest);
                    }
                    return Err(stop);
                }
            }
        }
        Ok(())
    }

    fn process_s(&mut self, set: SetS<D>, n: u32) -> Result<(), Stop> {
        let sig = self.read_bit()?;
        if sig {
            if set.is_pixel() {
                let idx = set.pixel_index(self.dims);
                let neg = self.read_bit()?;
                self.negative[idx] = neg;
                self.k_rec[idx] = 1u64 << n;
                self.uncert[idx] = n as u8;
                self.lsp_new.push(idx as u32);
            } else {
                self.code_s(&set, n)?;
            }
        } else {
            self.push_lis(set);
        }
        Ok(())
    }

    fn code_s(&mut self, set: &SetS<D>, n: u32) -> Result<(), Stop> {
        let mut children = [*set; 8];
        let mut count = 0usize;
        set.split(|c| {
            children[count] = c;
            count += 1;
        });
        for child in children.iter().take(count) {
            self.process_s(*child, n)?;
        }
        Ok(())
    }

    fn refinement_pass(&mut self, n: u32) -> Result<(), Stop> {
        for i in 0..self.lsp.len() {
            let idx = self.lsp[i] as usize;
            let bit = self.read_bit()?;
            if bit {
                self.k_rec[idx] |= 1u64 << n;
            }
            self.uncert[idx] = n as u8;
        }
        let new = std::mem::take(&mut self.lsp_new);
        self.lsp.extend(new);
        Ok(())
    }

    /// Mid-riser reconstruction: a coefficient whose bits below plane
    /// `uncert` are unknown lies in `[k_rec·q, (k_rec + 2^uncert)·q)`;
    /// reconstruct at the interval centre.
    fn reconstruct(&self, q: f64) -> Vec<f64> {
        self.k_rec
            .iter()
            .zip(&self.negative)
            .zip(&self.uncert)
            .map(|((&k, &neg), &u)| {
                if k == 0 {
                    0.0
                } else {
                    let mag = (k as f64 + 0.5 * (1u64 << u) as f64) * q;
                    if neg {
                        -mag
                    } else {
                        mag
                    }
                }
            })
            .collect()
    }
}

/// Decodes a SPECK stream produced by [`crate::encode`] with the same
/// `dims`, `q` and `num_planes`. A truncated stream (embedded prefix, or a
/// bit-budget encode) decodes to a coarser but valid reconstruction;
/// decoding never fails on short input. Invalid parameters — a
/// non-positive or non-finite `q`, more than 64 bitplanes, or dims whose
/// product exceeds [`MAX_DECODE_ELEMENTS`] — return a typed error instead
/// of panicking, so header fields from untrusted containers can be passed
/// through unchecked.
pub fn decode<const D: usize>(
    stream: &[u8],
    dims: [usize; D],
    q: f64,
    num_planes: u8,
) -> Result<Vec<f64>, DecodeError> {
    if !(q > 0.0) || !q.is_finite() {
        return Err(DecodeError::Corrupt("quantization step must be positive and finite"));
    }
    let n_total = dims
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
        .ok_or(DecodeError::LimitExceeded("dimension product overflows"))?;
    if n_total > MAX_DECODE_ELEMENTS {
        return Err(DecodeError::LimitExceeded("domain too large for u32 indices"));
    }
    let n_total = n_total as usize;
    if num_planes == 0 {
        return Ok(vec![0.0; n_total]);
    }
    if num_planes > 64 {
        return Err(DecodeError::Corrupt("num_planes exceeds 64"));
    }
    if n_total == 0 {
        // A zero-extent domain encodes to an empty stream with zero
        // planes; claiming coded planes over it is structurally invalid
        // (and the degenerate root set would recurse on garbage bits).
        return Err(DecodeError::Corrupt("coded planes over an empty domain"));
    }
    let mut dec = Decoder {
        dims,
        k_rec: vec![0u64; n_total],
        negative: vec![false; n_total],
        uncert: vec![0u8; n_total],
        lis: vec![vec![SetS::root(dims)]],
        lsp: Vec::new(),
        lsp_new: Vec::new(),
        input: BitReader::new(stream),
    };
    'planes: for n in (0..num_planes as u32).rev() {
        if dec.sorting_pass(n).is_err() {
            break 'planes;
        }
        if dec.refinement_pass(n).is_err() {
            break 'planes;
        }
    }
    Ok(dec.reconstruct(q))
}
