//! Fig. 7: strong-scaling test of the embarrassingly parallel strategy.
//! The paper compresses a 2048³ Miranda Density cutout with 256³ chunks
//! (512-way parallelism available) on a 128-core node at idx 10/15/20,
//! observing near-linear speedup to 16 cores and a plateau past 64.
//!
//! We run the same experiment at laptop scale (chunk count still well
//! above the thread count, so the parallelism cap is never the limit).
//! NOTE: on a single-core host the speedup curve is necessarily flat —
//! the *harness* is what this binary demonstrates there; see
//! EXPERIMENTS.md.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{chunk_grid, Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use std::time::Instant;

fn main() {
    sperr_bench::banner(
        "Fig. 7 — strong scaling over OpenMP-style worker threads",
        "Figure 7 (2048³ Miranda Density, 256³ chunks, 1…126 cores)",
    );
    let field = sperr_bench::bench_field(SyntheticField::MirandaDensity);
    let chunk = [32usize, 32, 32];
    let n_chunks = chunk_grid(field.dims, chunk).len();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("# volume {:?}, chunks {chunk:?} -> {n_chunks} chunks; host cores: {cores}",
        field.dims);
    println!("idx,threads,wall_ms,speedup");
    for idx in [10u32, 15, 20] {
        let t = field.tolerance_for_idx(idx);
        let mut serial: Option<f64> = None;
        let mut threads = 1usize;
        while threads <= (2 * cores).max(4).min(n_chunks) {
            let sperr = Sperr::new(SperrConfig {
                chunk_dims: chunk,
                num_threads: threads,
                ..SperrConfig::default()
            });
            let start = Instant::now();
            let _ = sperr.compress(&field, Bound::Pwe(t)).expect("compress");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let base = *serial.get_or_insert(ms);
            println!("{idx},{threads},{ms:.1},{:.2}", base / ms);
            threads *= 2;
        }
    }
}
