//! Tier-1 smoke of the conformance subsystem: fast spot checks that the
//! golden manifest is loadable and version-pinned, the differential
//! oracles hold on one corpus input, and a slice of the PWE campaign
//! runs clean. The exhaustive versions live in
//! `crates/conformance/tests/` (tier-2, run by `scripts/ci.sh` via
//! `cargo test --workspace`).

use sperr_conformance::corpus::corpus_inputs;
use sperr_conformance::pwe::{run_campaign, CampaignConfig};
use sperr_conformance::{golden, oracle, GOLDEN_VERSION};
use sperr_wavelet::Kernel;

#[test]
fn golden_manifest_loads_and_matches_code_versions() {
    let manifest = golden::load_manifest(&golden::golden_dir()).expect("manifest loads");
    assert_eq!(manifest.golden_version, GOLDEN_VERSION);
    // The manifest records the container version the goldens are PINNED
    // at — not the encoder's current default. The 64 goldens stay at v2
    // (the index-less container they were regenerated under); the v3
    // fixture covers the current default separately (DESIGN.md §14).
    assert_eq!(manifest.container_version, golden::GOLDEN_CONTAINER_VERSION);
    assert_eq!(manifest.speck_format, sperr_speck::BITSTREAM_FORMAT);
    assert_eq!(manifest.outlier_format, sperr_outlier::BITSTREAM_FORMAT);
    assert!(!manifest.entries.is_empty(), "golden matrix is empty");
}

#[test]
fn oracles_hold_on_one_corpus_input() {
    let input = corpus_inputs().into_iter().find(|i| i.id == "press-3d21x10x11").unwrap();
    let field = input.generate();
    let t = field.tolerance_for_idx(15);
    oracle::blocked_lifting_matches_reference(&field.data, field.dims, Kernel::Cdf97).unwrap();
    oracle::encoder_matches_reference(&field.data, field.dims, t, 1.5, Kernel::Cdf97).unwrap();
}

#[test]
fn short_pwe_campaign_slice_is_clean() {
    // 30 cases = every codec × decade combination twice; the full
    // 200-case sweep is tier-2.
    let config = CampaignConfig { cases: 30, ..CampaignConfig::tier2(30) };
    let report = run_campaign(&config);
    assert!(
        report.clean(),
        "PWE campaign violations:\n{}",
        report.violations.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}
