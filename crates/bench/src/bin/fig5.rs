//! Fig. 5: chunk-size impact on compression efficiency. Smaller chunks
//! mean more boundaries and fewer transform levels, hurting accuracy gain
//! (§V-B); the paper measures a 1024³ Miranda Density cutout with chunks
//! from 64³ to 1024³ at idx 10/15/20 and finds diminishing returns past
//! 256³. We use a scaled cutout with chunks 16³…full.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn main() {
    sperr_bench::banner(
        "Fig. 5 — accuracy-gain difference vs chunk size",
        "Figure 5 (Miranda Density cutout, chunk sweep, idx 10/15/20)",
    );
    let field = sperr_bench::bench_field(SyntheticField::MirandaDensity);
    let full = field.dims[0].min(field.dims[1]).min(field.dims[2]);
    let mut chunk_sizes = vec![16usize, 32, 64];
    if full > 64 {
        chunk_sizes.push(full);
    }
    println!("# volume {:?}", field.dims);
    println!("idx,chunk,accuracy_gain,delta_gain_vs_best");
    for idx in [10u32, 15, 20] {
        let t = field.tolerance_for_idx(idx);
        let mut rows = Vec::new();
        for &c in &chunk_sizes {
            let sperr = Sperr::new(SperrConfig { chunk_dims: [c, c, c], ..SperrConfig::default() });
            let stream = sperr.compress(&field, Bound::Pwe(t)).expect("compress");
            let rec = sperr.decompress(&stream).expect("decompress");
            let gain = sperr_metrics::accuracy_gain_of(&field.data, &rec.data, stream.len());
            rows.push((c, gain));
        }
        let best = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
        for (c, gain) in rows {
            println!("{idx},{c},{gain:.4},{:.4}", gain - best);
        }
    }
    println!("# expected: gain increases with chunk size, with diminishing returns;");
    println!("# impact grows with idx (tighter tolerances) — paper §V-B.");
}
