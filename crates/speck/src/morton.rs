//! Morton-layout (Z-order) fast path for power-of-two cubic domains.
//!
//! On a `2^k`-sided cube every set SPECK creates is an *aligned dyadic
//! cube*: each [`SetS::split`] halves every axis evenly, so a set at
//! partition level `t` is a side-`2^(k-t)` cube at a position aligned to
//! its own size. Laying the per-pixel `meta` bytes out in Morton order
//! turns this geometry into arithmetic on the index alone:
//!
//! * an aligned side-`2^j` cube is the block of `2^(D·j)` *consecutive*
//!   Morton indices starting at `cell << (D·j)`, so "cube" reduces to a
//!   single `u32` cell number at its level;
//! * its `2^D` split children are cells `cell·2^D + 0 .. 2^D` at the next
//!   level down — and their cached significance bytes are `2^D`
//!   *consecutive bytes* of that level's max array, one cache line
//!   instead of the up-to-`2^D` scattered pyramid reads the general
//!   encoder pays per split (the dominant cost of its sorting pass);
//! * the child enumeration order of [`SetS::split`] (`c = Σ which_d·2^d`,
//!   first part = low half, all splits even) *is* Morton child order, so
//!   processing children by ascending Morton cell reproduces the general
//!   encoder's emission order bit for bit.
//!
//! Significance caches are byte maxima of `meta = msb << 1 | sign`.
//! Because `x >> 1` is monotone and attains its maximum at the maximum
//! element, `max(meta) >> 1 == max(msb)`, so a region is insignificant at
//! plane `n` exactly when its max byte is `<= 2n + 1` — the same
//! one-sided byte compare the bucket scan ([`sperr_simd::run_le`]) uses,
//! with no shift. Pixel entries carry their own meta byte, so the sign
//! of a newly significant pixel is `byte & 1` — no memory re-read at LIS
//! exit. LIS entries shrink from a 20-odd-byte [`SetS`] to a `u32` cell
//! plus the cached byte.
//!
//! Stream identity with the general encoder (and therefore with the
//! bit-at-a-time [`crate::reference`] oracle) holds bit for bit: the
//! significance predicate is equivalent (`max_byte <= 2n+1 ⟺ max_msb <=
//! n`), bucket processing order is equivalent (cube side `2^j` ⟺
//! partition level `k - j`, so ascending `j` = descending level =
//! smallest-first), child order is equivalent (above), and both paths
//! share [`BitSink`]/[`Lsp`] for the emission semantics. Enforced by the
//! conformance goldens and the oracle tests below.

use crate::coder::{empty_result, finish, BitSink, EncodedSpeck, Lsp, Stop};
use sperr_simd::Float;

/// True when `dims` is a power-of-two cube the Morton path handles
/// (side >= 2; a 1-cube is a bare pixel the general path covers).
pub(crate) fn applicable<const D: usize>(dims: [usize; D]) -> bool {
    let side = dims[0];
    side >= 2 && side.is_power_of_two() && dims.iter().all(|&d| d == side)
}

/// Morton ⇄ row-major index mapping for a `2^k`-sided `D`-cube, driven by
/// one group-of-bits lookup table.
///
/// Morton bit `J` addresses axis `J mod D`, bit `J / D` of that axis's
/// coordinate, so its row-major contribution is `stride[J % D] << (J / D)`
/// — additive over bits. Grouping `GB = D·B` Morton bits at a time (so
/// every group covers exactly `B` bits of *each* axis) makes the group's
/// contribution a pure shift of a table value:
/// `idx = Σ_g  L[(m >> g·GB) & (2^GB - 1)] << (g·B)`.
/// `B` is chosen so the table stays one-or-two-cache-lines hot
/// (`2^GB <= 512` entries).
struct MortonLayout {
    lut: Vec<u32>,
    /// Morton bits per group (`D · bits_per_axis_per_group`).
    group_bits: u32,
    /// Row-major shift per group step (`bits_per_axis_per_group`).
    axis_bits: u32,
    groups: u32,
}

impl MortonLayout {
    fn new<const D: usize>(side: usize) -> Self {
        debug_assert!(side.is_power_of_two() && side >= 2 && D >= 1);
        let k = side.trailing_zeros();
        // 9 Morton bits per group for D ∈ {1, 3}, 8 for D = 2.
        let b = (9 / D as u32).max(1);
        let gb = b * D as u32;
        let mut stride = [0u32; 8];
        let mut s = 1u32;
        for d in 0..D {
            stride[d] = s;
            s = s.wrapping_mul(side as u32);
        }
        let lut: Vec<u32> = (0u32..1 << gb)
            .map(|g| {
                let mut idx = 0u32;
                for j in 0..gb {
                    if g >> j & 1 == 1 {
                        idx += stride[j as usize % D] << (j / D as u32);
                    }
                }
                idx
            })
            .collect();
        MortonLayout { lut, group_bits: gb, axis_bits: b, groups: k.div_ceil(b) }
    }

    /// Row-major index of Morton index `m`.
    #[inline]
    fn demorton(&self, m: u32) -> u32 {
        let mask = (1u32 << self.group_bits) - 1;
        let mut idx = 0u32;
        for g in 0..self.groups {
            idx += self.lut[(m >> (g * self.group_bits) & mask) as usize] << (g * self.axis_bits);
        }
        idx
    }
}

/// Permutes row-major `meta` into Morton order (sequential writes,
/// gathered reads — the independent per-element gathers keep many misses
/// in flight).
fn mortonize(meta: &[u8], layout: &MortonLayout) -> Vec<u8> {
    let mut out = vec![0u8; meta.len()];
    for (m, o) in out.iter_mut().enumerate() {
        *o = meta[layout.demorton(m as u32) as usize];
    }
    out
}

/// Builds the per-cube max levels over the Morton meta array:
/// `levels[j][c]` is the max meta byte of the side-`2^j` cube spanning
/// Morton block `[c·2^(D·j), (c+1)·2^(D·j))`. `levels[0]` is the meta
/// array itself; each next level is `D` pairwise halvings
/// ([`sperr_simd::pairwise_max_into`] — contiguous, vectorized). Total
/// extra memory ≈ `n / (2^D − 1)`.
fn build_levels<const D: usize>(morton_meta: Vec<u8>, k: u32) -> Vec<Vec<u8>> {
    let _span = sperr_telemetry::span!("speck.encode.build_levels", k);
    let mut levels = Vec::with_capacity(k as usize + 1);
    levels.push(morton_meta);
    for _ in 1..=k {
        let mut cur = {
            let src = levels.last().unwrap();
            let mut t = vec![0u8; src.len() / 2];
            sperr_simd::pairwise_max_into(src, &mut t);
            t
        };
        for _ in 1..D {
            let mut t = vec![0u8; cur.len() / 2];
            sperr_simd::pairwise_max_into(&cur, &mut t);
            cur = t;
        }
        levels.push(cur);
    }
    levels
}

/// One LIS bucket: all insignificant cubes of one size, as parallel
/// arrays of cell index and cached max-meta byte. Bucket `j` holds
/// side-`2^j` cubes (`j = 0` holds pixels, whose byte is their own meta).
struct Bucket {
    cells: Vec<u32>,
    mb: Vec<u8>,
}

struct MortonEncoder<'a, T: Float, const D: usize, const CHECKED: bool> {
    coeffs: &'a [T],
    inv_q: T,
    layout: MortonLayout,
    levels: Vec<Vec<u8>>,
    /// Insignificant cubes bucketed by size log `j` — ascending `j` is
    /// the general encoder's descending-partition-level (smallest-first)
    /// order.
    buckets: Vec<Bucket>,
    lsp: Lsp,
    sink: BitSink<CHECKED>,
    sets_split: usize,
}

impl<'a, T: Float, const D: usize, const CHECKED: bool> MortonEncoder<'a, T, D, CHECKED> {
    /// One sorting pass at plane `n`: the same SWAR-scan + `copy_within`
    /// compaction as the general encoder's bucket loop, with the
    /// insignificance threshold expressed on raw meta bytes
    /// (`byte <= 2n+1 ⟺ msb <= n`; both sides < 128, so the movemask
    /// trick applies).
    fn sorting_pass(&mut self, n: u32) -> Result<(), Stop> {
        debug_assert!(n < 63);
        let t = (2 * n + 1) as u8;
        for j in 0..self.buckets.len() {
            let len = self.buckets[j].cells.len();
            let mut read = 0usize;
            let mut write = 0usize;
            while read < len {
                let run = sperr_simd::run_le(&self.buckets[j].mb[read..len], t);
                if run > 0 {
                    if write != read {
                        let b = &mut self.buckets[j];
                        b.cells.copy_within(read..read + run, write);
                        b.mb.copy_within(read..read + run, write);
                    }
                    write += run;
                    read += run;
                    self.sink.emit_zero_run(run)?;
                }
                if read < len {
                    let cell = self.buckets[j].cells[read];
                    let byte = self.buckets[j].mb[read];
                    read += 1;
                    self.sink.emit(true, false)?;
                    if j == 0 {
                        // Pixel: its bucket byte is its own meta — sign
                        // included, no memory read.
                        self.sink.emit(byte & 1 == 1, true)?;
                        self.lsp.new_idx.push(self.layout.demorton(cell));
                    } else {
                        self.code_s(j, cell, t)?;
                    }
                }
            }
            let b = &mut self.buckets[j];
            b.cells.truncate(write);
            b.mb.truncate(write);
        }
        self.sink.flush()
    }

    /// Splits a significant size-`2^j` cube: the children's cached bytes
    /// are the `2^D` consecutive bytes `levels[j-1][cell·2^D ..]` — one
    /// contiguous load, copied to a local block so the recursion can
    /// borrow `self` freely.
    fn code_s(&mut self, j: usize, cell: u32, t: u8) -> Result<(), Stop> {
        self.sets_split += 1;
        let jc = j - 1;
        let base = (cell as usize) << D;
        let nc = 1usize << D;
        let mut cb = [0u8; 8];
        cb[..nc].copy_from_slice(&self.levels[jc][base..base + nc]);
        for (ci, &m) in cb.iter().enumerate().take(nc) {
            let sig = m > t;
            self.sink.emit(sig, false)?;
            if jc == 0 {
                if sig {
                    self.sink.emit(m & 1 == 1, true)?;
                    self.lsp.new_idx.push(self.layout.demorton((base + ci) as u32));
                } else {
                    let b = &mut self.buckets[0];
                    b.cells.push((base + ci) as u32);
                    b.mb.push(m);
                }
            } else if sig {
                self.code_s(jc, (base + ci) as u32, t)?;
            } else {
                let b = &mut self.buckets[jc];
                b.cells.push((base + ci) as u32);
                b.mb.push(m);
            }
        }
        Ok(())
    }

    fn run(&mut self, num_planes: u8) {
        for n in (0..num_planes as u32).rev() {
            let _plane = sperr_telemetry::span!("speck.encode.plane", n);
            if self.sorting_pass(n).is_err() {
                break;
            }
            if self.lsp.refine(&mut self.sink, n).is_err() {
                break;
            }
            self.lsp.admit(self.coeffs, self.inv_q);
        }
    }
}

pub(crate) fn encode_morton<T: Float, const D: usize, const CHECKED: bool>(
    coeffs: &[T],
    dims: [usize; D],
    inv_q: T,
    meta: Vec<u8>,
    budget: usize,
) -> EncodedSpeck {
    debug_assert!(applicable(dims));
    let side = dims[0];
    let k = side.trailing_zeros();
    let n_total = meta.len();

    let layout = MortonLayout::new::<D>(side);
    let morton_meta = {
        let _span = sperr_telemetry::span!("speck.encode.mortonize");
        mortonize(&meta, &layout)
    };
    drop(meta);
    let levels = build_levels::<D>(morton_meta, k);

    let num_planes = levels[k as usize][0] >> 1;
    if num_planes == 0 {
        return empty_result();
    }

    // Root: the whole domain, as the single cell of the coarsest level.
    let mut buckets: Vec<Bucket> =
        (0..=k).map(|_| Bucket { cells: Vec::new(), mb: Vec::new() }).collect();
    buckets[k as usize].cells.push(0);
    buckets[k as usize].mb.push(levels[k as usize][0]);

    let mut enc = MortonEncoder::<'_, T, D, CHECKED> {
        coeffs,
        inv_q,
        layout,
        levels,
        buckets,
        lsp: Lsp::new(num_planes),
        sink: BitSink::new(budget, n_total / 2),
        sets_split: 0,
    };
    enc.run(num_planes);
    sperr_telemetry::counter!("speck.morton.cells", n_total);
    sperr_telemetry::counter!("speck.morton.buckets", k as usize + 1);
    finish(enc.sink, enc.sets_split, num_planes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, reference, Termination};

    #[test]
    fn demorton_matches_bit_deinterleave_3d() {
        let side = 16usize;
        let layout = MortonLayout::new::<3>(side);
        for m in 0u32..(side * side * side) as u32 {
            let (mut x, mut y, mut z) = (0u32, 0u32, 0u32);
            for bit in 0..10 {
                x |= (m >> (3 * bit) & 1) << bit;
                y |= (m >> (3 * bit + 1) & 1) << bit;
                z |= (m >> (3 * bit + 2) & 1) << bit;
            }
            let expect = x + y * side as u32 + z * (side * side) as u32;
            assert_eq!(layout.demorton(m), expect, "m={m}");
        }
    }

    #[test]
    fn demorton_matches_bit_deinterleave_2d_and_1d() {
        let side = 32usize;
        let l2 = MortonLayout::new::<2>(side);
        for m in 0u32..(side * side) as u32 {
            let (mut x, mut y) = (0u32, 0u32);
            for bit in 0..16 {
                x |= (m >> (2 * bit) & 1) << bit;
                y |= (m >> (2 * bit + 1) & 1) << bit;
            }
            assert_eq!(l2.demorton(m), x + y * side as u32, "m={m}");
        }
        let l1 = MortonLayout::new::<1>(512);
        for m in [0u32, 1, 17, 255, 511] {
            assert_eq!(l1.demorton(m), m);
        }
    }

    #[test]
    fn morton_path_matches_reference_oracle() {
        // Power-of-two cubes dispatch to this module; the bit-at-a-time
        // reference knows nothing of Morton layouts. Byte-identical
        // streams and identical counters across dimensionalities and
        // termination modes prove the fast path is stream-neutral.
        let cases_3d = [[8usize, 8, 8], [16, 16, 16]];
        for dims in cases_3d {
            let n: usize = dims.iter().product();
            let coeffs: Vec<f64> =
                (0..n).map(|i| ((i * 37) % 113) as f64 - 56.0 + (i as f64 * 0.013)).collect();
            for term in [Termination::Quality, Termination::BitBudget(1777)] {
                let fast = encode(&coeffs, dims, 0.25, term);
                let slow = reference::encode(&coeffs, dims, 0.25, term);
                assert_eq!(fast.stream, slow.stream, "{dims:?} {term:?}");
                assert_eq!(fast.bits_used, slow.bits_used, "{dims:?} {term:?}");
                assert_eq!(fast.significance_bits, slow.significance_bits, "{dims:?} {term:?}");
                assert_eq!(fast.sign_bits, slow.sign_bits, "{dims:?} {term:?}");
                assert_eq!(fast.refinement_bits, slow.refinement_bits, "{dims:?} {term:?}");
            }
        }
        let coeffs: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.11).cos() * 90.0).collect();
        for term in [Termination::Quality, Termination::BitBudget(999)] {
            let fast = encode(&coeffs, [32usize, 32], 0.5, term);
            let slow = reference::encode(&coeffs, [32usize, 32], 0.5, term);
            assert_eq!(fast.stream, slow.stream, "2d {term:?}");
            let fast1 = encode(&coeffs, [1024usize], 0.5, term);
            let slow1 = reference::encode(&coeffs, [1024usize], 0.5, term);
            assert_eq!(fast1.stream, slow1.stream, "1d {term:?}");
        }
    }

    #[test]
    fn applicability_gate() {
        assert!(applicable([8usize, 8, 8]));
        assert!(applicable([2usize, 2]));
        assert!(applicable([64usize]));
        assert!(!applicable([8usize, 8, 4]));
        assert!(!applicable([12usize, 12, 12]));
        assert!(!applicable([1usize, 1, 1]));
    }
}
