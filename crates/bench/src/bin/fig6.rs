//! Fig. 6: serial compression time broken into SPERR's four pipeline
//! stages — (1) forward wavelet transform, (2) SPECK coding, (3) outlier
//! locating (inverse transform + comparison), (4) outlier coding — on
//! Miranda Viscosity across five tolerance levels. Expected shape: total
//! time grows as the tolerance tightens, driven by SPECK time; transform
//! and outlier stages stay roughly flat (§V-C).

use sperr_compress_api::Bound;
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn main() {
    sperr_bench::banner(
        "Fig. 6 — execution time breakdown per pipeline stage",
        "Figure 6 (Miranda Viscosity, 5 tolerance levels, serial)",
    );
    let field = sperr_bench::bench_field(SyntheticField::MirandaViscosity);
    println!("# field dims {:?} (paper: 384x384x256)", field.dims);
    println!("idx,wavelet_ms,speck_ms,locate_outliers_ms,outlier_coding_ms,total_ms,num_outliers");
    for idx in [10u32, 20, 30, 40, 50] {
        let t = field.tolerance_for_idx(idx);
        // Serial (single worker, whole volume one chunk) so stage times
        // are clean CPU time, as in the paper's serial breakdown.
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [512, 512, 512],
            num_threads: 1,
            ..SperrConfig::default()
        });
        let (_, stats) = sperr
            .compress_with_stats(&field, Bound::Pwe(t))
            .expect("compress");
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{idx},{:.2},{:.2},{:.2},{:.2},{:.2},{}",
            ms(stats.stage_times.wavelet),
            ms(stats.stage_times.speck),
            ms(stats.stage_times.locate_outliers),
            ms(stats.stage_times.outlier_coding),
            ms(stats.stage_times.total()),
            stats.num_outliers,
        );
    }
}
