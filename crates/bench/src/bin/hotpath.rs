//! Hot-path throughput benchmark backing the tracked `BENCH_pr9.json`
//! artifact (run via `scripts/bench.sh`; `BENCH_pr2.json`,
//! `BENCH_pr4.json`, `BENCH_pr5.json`, `BENCH_pr7.json` and
//! `BENCH_pr8.json` are the frozen earlier editions of the same
//! measurements).
//!
//! Measures, on a synthetic 256³ volume (48³ with `--smoke`):
//!
//! * the z-axis wavelet pass, per-line gather/scatter (`reference`) vs
//!   the blocked panel scheme — the PR 2 tentpole's cache win in
//!   isolation;
//! * the SPECK stage in isolation: encode and decode over the real
//!   wavelet coefficients of the volume, at the PWE pipeline's
//!   quantization step — the PR 4 tentpole's target, ratioed against
//!   the stage throughput recorded in `BENCH_pr2.json`;
//! * end-to-end PWE compression: the pre-PR pipeline (per-line wavelet,
//!   per-call allocations, single thread — emulated from public APIs)
//!   vs the pooled/arena pipeline at 1 and 8 threads, with per-stage
//!   MB/s from `StageTimes`;
//! * a BPP (size-bounded) workload and decompression;
//! * random access on an 8-chunk container (PR 8): `decode_region` over
//!   bboxes touching 1 of 8 chunks (~1% and exactly 1/8 of the volume)
//!   and over the whole volume, each ratioed against a full multi-chunk
//!   decompress, plus a `decode_at_bpp` preview at 1 bpp — so the
//!   index-seek work-avoidance claim is a tracked number;
//! * the PR 7 SIMD kernels in isolation (sign/magnitude split, pyramid
//!   build, significance scan, lifting, refinement gather), each also
//!   ratioed against its scalar twin so an autovectorization failure
//!   shows up as a tracked number;
//! * f32-native twins (PR 9): the blocked z-axis pass, the SPECK stage,
//!   the split/lift kernels and the end-to-end PWE pipeline all run
//!   again at single precision, ratioed against their f64 twins AND
//!   against the widened path (widen-at-ingest + f64 pipeline +
//!   narrow-at-output — what f32 data cost before the native path).
//!   On a full-size artifact the perf gate enforces the f32-vs-f64
//!   end-to-end ratios as a hard ≥1 floor: the f32 path may never be
//!   slower than running the same data through the f64 pipeline.
//!
//! `loadgen` (PR 10) is a different bench mode entirely: a mixed-traffic
//! load monitor that drives bulk compress/decompress jobs interleaved
//! with small latency-bound `decode_region` and `decode_at_bpp` jobs
//! through ONE shared worker pool, recording per-class latency into the
//! telemetry crate's log-linear histograms and emitting p50/p99 + MB/s
//! per class into `BENCH_pr10.json` (`"kind": "loadgen"`, schema
//! `sperr-bench-pr10/v1`). `trend` reads every committed `BENCH_pr*.json`
//! in one invocation, prints the cross-PR trajectory of each derived
//! ratio plus any loadgen class tables, and hard-fails when the latest
//! full-size occurrence of a [`HARD_GATE_KEYS`] ratio sits more than 20%
//! below the best value that ratio ever reached across the history.
//!
//! `--check FILE` validates an artifact instead of benchmarking (CI uses
//! this to fail on malformed JSON). `--perf-gate NEW BASELINE...`
//! compares the derived ratios of an artifact against the *best* value
//! each ratio ever reached across one or more historical baseline
//! artifacts and prints the full per-ratio delta table unconditionally.
//! Regressions beyond 20% on the SPECK stage ratios (`HARD_GATE_KEYS`)
//! are fatal for full-size artifacts; everything else — and everything
//! on `--smoke` artifacts, whose 48³ ratios are not comparable to 256³
//! baselines — is a loud, non-fatal warning.
//! `--trace FILE` records a telemetry trace of one PWE compression and
//! writes Chrome trace-event JSON (needs the `telemetry` feature);
//! `--check-trace FILE [label...]` validates such a file, requiring a
//! span per given label. All numbers are measured on the host that runs
//! the script; `host_threads`, `effective_workers` and `chunk_count`
//! record its parallelism so the artifact stays interpretable.

use sperr_bench::json::{parse, schema_pr, validate_bench_artifact, validate_trace_artifact, Json};
use sperr_compress_api::Bound;
use sperr_conformance::oracle;
use sperr_core::{CompressionStats, Sperr, SperrConfig, StageTimes};
use sperr_datagen::SyntheticField;
use sperr_speck::Termination;
use sperr_wavelet::{levels_for_dims, reference, Kernel};
use std::time::{Duration, Instant};

const FULL_DIMS: [usize; 3] = [256, 256, 256];
const SMOKE_DIMS: [usize; 3] = [48, 48, 48];
const SEED: u64 = 20230512;

/// SPECK stage throughput recorded in the committed `BENCH_pr2.json`
/// (full 256³ run): the `speck` stage of `pwe_compress_1t` and of
/// `pwe_decompress_8t`. The PR 4 artifact's `speck_encode_vs_pr2` /
/// `speck_decode_vs_pr2` ratios divide the freshly measured stage-only
/// numbers by these, so the speedup claim is pinned to a tracked
/// baseline rather than to whatever happens to be in the working tree.
const PR2_SPECK_ENCODE_MB_S: f64 = 17.19887796951931;
const PR2_SPECK_DECODE_MB_S: f64 = 35.5861463463988;

/// SPECK stage throughput recorded in the committed `BENCH_pr4.json` —
/// the PR 7 SIMD overhaul's baseline (its target was 2× the PR 4 encode
/// number). Same pinning rationale as the PR 2 constants above.
const PR4_SPECK_ENCODE_MB_S: f64 = 63.61039594004794;
const PR4_SPECK_DECODE_MB_S: f64 = 96.0054858786558;

/// Derived-ratio keys the perf gate enforces HARD (process exit 1 on a
/// >20% regression): the SPECK stage ratios, which PR 5 showed can
/// silently drift (its recorded `speck_encode` came in 21% under PR 4's
/// — later bisected to host noise, but the episode proved a soft warning
/// is too easy to scroll past for exactly the stage this repo's perf
/// story is built on). Everything else stays soft: end-to-end numbers
/// fold in thread-pool scheduling and lossless passes that are far
/// noisier than the single-thread stage loops.
const HARD_GATE_KEYS: [&str; 4] = [
    "speck_encode_vs_pr2",
    "speck_decode_vs_pr2",
    "speck_encode_vs_pr4",
    "speck_decode_vs_pr4",
];

/// Derived ratios that must be **at least 1.0** in a full-size artifact,
/// independent of any baseline: the f32-native end-to-end workloads vs
/// the f64 pipeline on the same samples. A value below 1 means the
/// native path is slower than just widening — the one outcome the PR 9
/// tentpole exists to rule out — so the perf gate fails hard on it
/// (downgraded to a warning for `--smoke` artifacts, whose tiny dims
/// amplify fixed overheads).
const F32_FLOOR_KEYS: [&str; 5] = [
    "pwe_f32_vs_f64_1t",
    "pwe_f32_vs_f64_8t",
    "pwe_f32_decompress_vs_f64_8t",
    "pwe_coarse_f32_vs_f64_8t",
    "bpp_f32_vs_f64_8t",
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Subcommand modes (PR 10) come before the flag loop: `loadgen`
    // writes the mixed-traffic artifact, `trend` reads the whole
    // committed BENCH_pr*.json history.
    match raw.first().map(String::as_str) {
        Some("loadgen") => {
            let mut out_path = String::from("BENCH_pr10.json");
            let mut smoke = false;
            let mut it = raw.iter().skip(1);
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--smoke" => smoke = true,
                    "--out" => {
                        out_path = it.next().expect("--out needs a path").clone();
                    }
                    other => fatal(&format!(
                        "loadgen: unknown argument {other:?}\nusage: hotpath loadgen [--smoke] [--out FILE]"
                    )),
                }
            }
            let artifact = run_loadgen(smoke);
            let text = artifact.render();
            validate_bench_artifact(&text)
                .unwrap_or_else(|e| fatal(&format!("emitted loadgen artifact failed validation: {e}")));
            std::fs::write(&out_path, text)
                .unwrap_or_else(|e| fatal(&format!("cannot write {out_path}: {e}")));
            println!("wrote {out_path}");
            return;
        }
        Some("trend") => {
            let paths: Vec<&str> = raw.iter().skip(1).map(String::as_str).collect();
            if paths.is_empty() {
                fatal("usage: hotpath trend BENCH_pr2.json BENCH_pr4.json ...");
            }
            trend(&paths);
            return;
        }
        _ => {}
    }

    let mut out_path = String::from("BENCH_pr9.json");
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut gate: Option<(String, Vec<String>)> = None;
    let mut trace_out: Option<String> = None;
    let mut check_trace: Option<(String, Vec<String>)> = None;
    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check = Some(args.next().expect("--check needs a path")),
            "--perf-gate" => {
                let new = args.next().expect("--perf-gate needs NEW and BASELINE... paths");
                let bases: Vec<String> = args.by_ref().collect();
                if bases.is_empty() {
                    panic!("--perf-gate needs NEW and at least one BASELINE path");
                }
                gate = Some((new, bases));
            }
            "--trace" => trace_out = Some(args.next().expect("--trace needs a path")),
            "--check-trace" => {
                let path = args.next().expect("--check-trace needs a path");
                check_trace = Some((path, args.by_ref().collect()));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: hotpath [--smoke] [--out FILE] | --check FILE | \
                     --perf-gate NEW BASELINE... | --trace FILE | \
                     --check-trace FILE [label...] | \
                     loadgen [--smoke] [--out FILE] | trend FILE..."
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fatal(&format!("cannot read {path}: {e}")));
        match validate_bench_artifact(&text) {
            Ok(()) => println!("{path}: valid bench artifact"),
            Err(e) => fatal(&format!("{path}: INVALID bench artifact: {e}")),
        }
        return;
    }

    if let Some((path, labels)) = check_trace {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fatal(&format!("cannot read {path}: {e}")));
        let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
        match validate_trace_artifact(&text, &labels) {
            Ok(()) => println!("{path}: valid trace artifact ({} label(s) required)", labels.len()),
            Err(e) => fatal(&format!("{path}: INVALID trace artifact: {e}")),
        }
        return;
    }

    if let Some((new_path, base_paths)) = gate {
        let base_refs: Vec<&str> = base_paths.iter().map(String::as_str).collect();
        perf_gate(&new_path, &base_refs);
        return;
    }

    if let Some(path) = trace_out {
        write_trace(&path, smoke);
        return;
    }

    let dims = if smoke { SMOKE_DIMS } else { FULL_DIMS };
    let artifact = run_benchmarks(dims, smoke);
    std::fs::write(&out_path, artifact.render())
        .unwrap_or_else(|e| fatal(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
}

fn fatal(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Records a telemetry session around one multi-chunk PWE compression
/// (lossless pass on, so every compress-side stage appears) and writes
/// the Chrome trace-event JSON, self-validating it before returning.
fn write_trace(path: &str, smoke: bool) {
    if !sperr_telemetry::is_enabled() {
        fatal(
            "--trace needs a build with the `telemetry` feature:\n  \
             cargo build --release -p sperr-bench --features telemetry --bin hotpath",
        );
    }
    let dims = if smoke { SMOKE_DIMS } else { [128, 128, 128] };
    let field = SyntheticField::MirandaDensity.generate(dims, SEED);
    let t = field.range() * 1e-4;
    // Chunks smaller than the volume so the worker pool fans out and the
    // trace gets one timeline track per worker.
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: [dims[0] / 2, dims[1] / 2, dims[2] / 2],
        num_threads: 8,
        ..SperrConfig::default()
    });
    sperr_telemetry::start();
    sperr.compress_with_stats(&field, Bound::Pwe(t)).unwrap();
    let report = sperr_telemetry::stop();
    let json = report.chrome_trace();
    validate_trace_artifact(&json, sperr_core::stage_labels::COMPRESS)
        .unwrap_or_else(|e| fatal(&format!("emitted trace failed validation: {e}")));
    std::fs::write(path, &json).unwrap_or_else(|e| fatal(&format!("cannot write {path}: {e}")));
    println!(
        "wrote {path}: {} events across {} track(s)",
        report.event_count(),
        report.tracks.len()
    );
}

/// The perf gate: every numeric `derived` ratio present in the new
/// artifact AND at least one baseline must not have regressed by more
/// than 20% against the *best* value that ratio ever reached across the
/// given baselines (so a slow PR can't quietly lower the bar for the
/// next one). The full per-ratio delta table prints unconditionally —
/// green runs included — so drift below the warning threshold is still
/// visible in every CI log.
///
/// Regressions on the [`HARD_GATE_KEYS`] ratios (the SPECK stage, the
/// perf-critical core) FAIL the process; all other ratios print a loud
/// but non-fatal warning — end-to-end numbers on shared CI hosts are too
/// noisy for a hard gate (see DESIGN.md §10), while the single-thread
/// SPECK stage ratios proved stable enough across the PR 4/5/7 history
/// to enforce. Unreadable or malformed artifacts also fail: that is
/// harness rot, not noise.
fn perf_gate(new_path: &str, base_paths: &[&str]) {
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fatal(&format!("perf gate: cannot read {path}: {e}")));
        parse(&text).unwrap_or_else(|e| fatal(&format!("perf gate: {path}: {e}")))
    };
    let new = load(new_path);
    let Some(new_derived) = new.get("derived") else {
        fatal(&format!("perf gate: {new_path} has no \"derived\" object"));
    };
    // Hard enforcement only makes sense for a full-size artifact: a
    // --smoke run measures different dims than the committed baselines,
    // so its ratios are advisory by construction. CI gets determinism by
    // also gating the *committed* full artifact against its predecessors.
    let new_is_smoke = matches!(new.get("smoke"), Some(Json::Bool(true)));
    if new_is_smoke {
        println!(
            "perf gate: {new_path} is a --smoke artifact; hard-gated keys \
             downgraded to warnings (full-size artifacts enforce them)"
        );
    }

    // Best value per ratio key across all baselines, remembering which
    // artifact set it so the table names the bar it's comparing against.
    // Keys keep first-seen order so the table is stable across runs.
    let mut keys: Vec<String> = Vec::new();
    let mut best: std::collections::HashMap<String, (f64, &str)> =
        std::collections::HashMap::new();
    for &path in base_paths {
        let base = load(path);
        let Some(Json::Obj(derived)) = base.get("derived") else {
            fatal(&format!("perf gate: {path} has no \"derived\" object"));
        };
        for (key, val) in derived {
            let Some(b) = val.as_num() else { continue };
            match best.get(key.as_str()) {
                Some((prev, _)) if *prev >= b => {}
                _ => {
                    if !best.contains_key(key.as_str()) {
                        keys.push(key.clone());
                    }
                    best.insert(key.clone(), (b, path));
                }
            }
        }
    }

    println!(
        "perf gate: {new_path} vs best-of {} baseline(s): {}",
        base_paths.len(),
        base_paths.join(", ")
    );
    println!(
        "{:<28} {:>10} {:>10} {:>8}  {}",
        "derived ratio", "new", "best", "delta", "baseline"
    );
    let mut compared = 0usize;
    let mut regressed = 0usize;
    let mut hard_failures: Vec<String> = Vec::new();
    for key in &keys {
        let (b, origin) = best[key.as_str()];
        let Some(n) = new_derived.get(key).and_then(Json::as_num) else {
            println!("{key:<28} {:>10} {b:>10.3} {:>8}  {origin} (missing in new)", "-", "-");
            continue;
        };
        compared += 1;
        let hard = !new_is_smoke && HARD_GATE_KEYS.contains(&key.as_str());
        let delta = (n / b - 1.0) * 100.0;
        let mark = if n < 0.8 * b {
            if hard {
                "REGRESSED (hard)"
            } else {
                "REGRESSED"
            }
        } else {
            "ok"
        };
        println!("{key:<28} {n:>10.3} {b:>10.3} {delta:>+7.1}%  {origin} [{mark}]");
        if n < 0.8 * b {
            regressed += 1;
            let kind = if hard { "PERF FAILURE" } else { "PERF WARNING" };
            eprintln!(
                "##### {kind} ########################################"
            );
            eprintln!(
                "# derived.{key}: {n:.3} vs best baseline {b:.3} ({:.0}% regression)",
                (1.0 - n / b) * 100.0
            );
            if hard {
                eprintln!("# (>20% below {origin} on a hard-gated SPECK ratio — CI fails)");
                hard_failures.push(key.clone());
            } else {
                eprintln!(
                    "# (>20% below {origin}; non-fatal — investigate before merging)"
                );
            }
            eprintln!(
                "###########################################################"
            );
        }
    }
    if compared == 0 {
        fatal("perf gate: no comparable derived ratios between the artifacts");
    }
    // Absolute floors on the new artifact itself: the f32-native
    // end-to-end ratios must be ≥ 1 — no baseline needed, "not slower
    // than the f64 pipeline" is the contract. Keys absent from the
    // artifact (pre-PR 9 schemas) are skipped.
    for key in F32_FLOOR_KEYS {
        let Some(n) = new_derived.get(key).and_then(Json::as_num) else { continue };
        if n >= 1.0 {
            println!("{key:<28} {n:>10.3}      floor    1.000  (absolute) [ok]");
            continue;
        }
        let kind = if new_is_smoke { "PERF WARNING" } else { "PERF FAILURE" };
        eprintln!("##### {kind} ########################################");
        eprintln!("# derived.{key}: {n:.3} < 1.0 — the f32-native path is SLOWER than");
        eprintln!("# the f64 pipeline on the same workload");
        if new_is_smoke {
            eprintln!("# (smoke dims; non-fatal — investigate before merging)");
        } else {
            eprintln!("# (full-size artifact — CI fails)");
            hard_failures.push(key.to_string());
        }
        eprintln!("###########################################################");
        regressed += 1;
    }
    println!(
        "perf gate: {compared} ratio(s) compared, {regressed} regression(s) \
         ({} hard)",
        hard_failures.len()
    );
    if !hard_failures.is_empty() {
        fatal(&format!(
            "perf gate: hard-gated ratio(s) regressed >20%: {}",
            hard_failures.join(", ")
        ));
    }
}

/// Mixed-traffic load monitor (the PR 10 tentpole's bench half). One
/// shared `Sperr` — hence one shared worker pool — serves every traffic
/// class; jobs run back-to-back in a fixed interleaved schedule, so each
/// small latency-bound job lands on a pool whose caches and allocator
/// state were just churned by a bulk job, the way a mixed-tenant daemon
/// would see it. Per-job wall times go into the telemetry crate's own
/// log-linear [`sperr_telemetry::Histogram`] (dogfooding the metrics
/// layer this PR adds: the artifact's p50/p99 carry its documented
/// ≤6.25% bucket error), and each class reports ops, p50/p99/mean
/// latency and aggregate MB/s.
fn run_loadgen(smoke: bool) -> Json {
    use sperr_telemetry::Histogram;

    let dims: [usize; 3] = if smoke { [32, 32, 32] } else { [128, 128, 128] };
    let points: usize = dims.iter().product();
    let host_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Half-extent chunks: 8 chunks, so bulk jobs fan out across the pool
    // and region jobs have an index worth seeking.
    let chunk = [dims[0] / 2, dims[1] / 2, dims[2] / 2];
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: chunk,
        lossless: false,
        num_threads: 8,
        ..SperrConfig::default()
    });
    let field = SyntheticField::MirandaDensity.generate(dims, SEED);
    let field32 = field.narrow_lossy();
    let t = field.range() * 1e-4;
    let preview_bpp = 1.0;

    // Decode-side classes replay these pre-built streams.
    let stream = sperr.compress_with_stats(&field, Bound::Pwe(t)).unwrap().0;
    let stream32 = sperr.compress_f32_with_stats(&field32, Bound::Pwe(t)).unwrap().0;
    // Correctness spot-checks once, outside the timed loop.
    assert_eq!(sperr.decompress_with_stats(&stream).unwrap().0.data.len(), points);
    assert_eq!(sperr.decompress_f32(&stream32).unwrap().data.len(), points);

    // Small latency-bound regions: quarter-extent boxes cycling through
    // the 8 chunk corners, each resolved by the v3 index to one chunk.
    let rext = [dims[0] / 4, dims[1] / 4, dims[2] / 4];
    let region_points: usize = rext.iter().product();
    let corners: Vec<[usize; 3]> = (0..8usize)
        .map(|i| {
            [
                (i & 1) * chunk[0],
                ((i >> 1) & 1) * chunk[1],
                ((i >> 2) & 1) * chunk[2],
            ]
        })
        .collect();

    struct Class {
        name: &'static str,
        hist: Histogram,
        bytes: u64,
        total: Duration,
    }
    let mut classes: Vec<Class> = [
        "compress_bulk_f64",
        "compress_bulk_f32",
        "decompress_bulk_f64",
        "decode_region_small",
        "decode_at_bpp_preview",
    ]
    .into_iter()
    .map(|name| Class { name, hist: Histogram::new(), bytes: 0, total: Duration::ZERO })
    .collect();
    const C64: usize = 0;
    const C32: usize = 1;
    const DEC: usize = 2;
    const REG: usize = 3;
    const PRE: usize = 4;
    // One round of mixed traffic: every bulk job is bracketed by small
    // latency jobs, so the region class's tail reflects pool contention
    // rather than an idle machine.
    const SCHEDULE: [usize; 14] =
        [REG, C64, REG, PRE, REG, DEC, REG, C32, REG, PRE, REG, DEC, REG, REG];
    let rounds = if smoke { 2usize } else { 6 };

    let mut corner = 0usize;
    for _ in 0..rounds {
        for &class in &SCHEDULE {
            let t0 = Instant::now();
            let bytes: u64 = match class {
                C64 => {
                    let s = sperr.compress_with_stats(&field, Bound::Pwe(t)).unwrap().0;
                    std::hint::black_box(s.len());
                    (points * 8) as u64
                }
                C32 => {
                    let s =
                        sperr.compress_f32_with_stats(&field32, Bound::Pwe(t)).unwrap().0;
                    std::hint::black_box(s.len());
                    (points * 4) as u64
                }
                DEC => {
                    let rec = sperr.decompress_with_stats(&stream).unwrap().0;
                    std::hint::black_box(rec.data.len());
                    (points * 8) as u64
                }
                REG => {
                    let lo = corners[corner % corners.len()];
                    corner += 1;
                    let hi = [lo[0] + rext[0], lo[1] + rext[1], lo[2] + rext[2]];
                    let (part, report) = sperr.decode_region(&stream, lo, hi).unwrap();
                    assert!(report.all_ok());
                    std::hint::black_box(part.data.len());
                    (region_points * 8) as u64
                }
                PRE => {
                    let preview = sperr.decode_at_bpp(&stream, preview_bpp).unwrap();
                    std::hint::black_box(preview.data.len());
                    (points * 8) as u64
                }
                _ => unreachable!(),
            };
            let d = t0.elapsed();
            let c = &mut classes[class];
            c.hist.record(d.as_nanos() as u64);
            c.bytes += bytes;
            c.total += d;
        }
    }

    for c in &classes {
        eprintln!(
            "loadgen {:<22} ops {:>3}  p50 {:>9.3}ms  p99 {:>9.3}ms  {:>8.2} MB/s",
            c.name,
            c.hist.count,
            c.hist.quantile(0.5) as f64 / 1e6,
            c.hist.quantile(0.99) as f64 / 1e6,
            c.bytes as f64 / 1e6 / c.total.as_secs_f64(),
        );
    }

    let class_json: Vec<Json> = classes
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("name", Json::Str(c.name.into())),
                ("ops", Json::Num(c.hist.count as f64)),
                ("p50_ms", Json::Num(c.hist.quantile(0.5) as f64 / 1e6)),
                ("p99_ms", Json::Num(c.hist.quantile(0.99) as f64 / 1e6)),
                (
                    "mean_ms",
                    Json::Num(c.total.as_secs_f64() * 1e3 / c.hist.count.max(1) as f64),
                ),
                ("mb_per_s", Json::Num(c.bytes as f64 / 1e6 / c.total.as_secs_f64())),
            ])
        })
        .collect();

    Json::obj(vec![
        ("schema", Json::Str("sperr-bench-pr10/v1".into())),
        ("kind", Json::Str("loadgen".into())),
        ("smoke", Json::Bool(smoke)),
        ("host_threads", Json::Num(host_threads as f64)),
        ("effective_workers", Json::Num(sperr.effective_workers(dims) as f64)),
        ("chunk_count", Json::Num(sperr.chunk_count(dims) as f64)),
        ("dims", Json::Arr(dims.iter().map(|&d| Json::Num(d as f64)).collect())),
        ("points", Json::Num(points as f64)),
        ("pwe_tolerance", Json::Num(t)),
        ("preview_bpp", Json::Num(preview_bpp)),
        ("rounds", Json::Num(rounds as f64)),
        ("classes", Json::Arr(class_json)),
    ])
}

/// Cross-PR trend report + gate: loads every given `BENCH_pr*.json`,
/// prints each derived ratio's trajectory in schema order, tabulates any
/// loadgen artifacts' traffic classes, and fails the process when the
/// LATEST full-size occurrence of a hard-gated SPECK ratio sits >20%
/// below the best value that ratio ever reached across the history —
/// the cross-history form of `--perf-gate`'s pairwise check, so the
/// whole committed trajectory is enforced in one deterministic step.
fn trend(paths: &[&str]) {
    struct Art {
        path: String,
        pr: u32,
        smoke: bool,
        root: Json,
    }
    let mut arts: Vec<Art> = paths
        .iter()
        .map(|&path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fatal(&format!("trend: cannot read {path}: {e}")));
            let root =
                parse(&text).unwrap_or_else(|e| fatal(&format!("trend: {path}: {e}")));
            let pr = match root.get("schema") {
                Some(Json::Str(s)) => schema_pr(s)
                    .unwrap_or_else(|| fatal(&format!("trend: {path}: unrecognized schema {s:?}"))),
                other => fatal(&format!("trend: {path}: missing \"schema\": {other:?}")),
            };
            let smoke = matches!(root.get("smoke"), Some(Json::Bool(true)));
            Art { path: path.to_string(), pr, smoke, root }
        })
        .collect();
    arts.sort_by_key(|a| a.pr);

    // Derived-ratio trajectory, keys in first-seen (oldest-schema) order.
    let mut keys: Vec<String> = Vec::new();
    for art in &arts {
        if let Some(Json::Obj(derived)) = art.root.get("derived") {
            for (k, v) in derived {
                if v.as_num().is_some() && !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
    }
    println!("perf trend across {} artifact(s):", arts.len());
    let mut header = format!("{:<34}", "derived ratio");
    for art in &arts {
        header.push_str(&format!(
            " {:>9}",
            format!("pr{}{}", art.pr, if art.smoke { "*" } else { "" })
        ));
    }
    println!("{header}   (* = smoke)");
    for key in &keys {
        let mut line = format!("{key:<34}");
        for art in &arts {
            match art.root.get("derived").and_then(|d| d.get(key)).and_then(Json::as_num) {
                Some(v) => line.push_str(&format!(" {v:>9.3}")),
                None => line.push_str(&format!(" {:>9}", "-")),
            }
        }
        println!("{line}");
    }

    // Loadgen artifacts: per-class latency/throughput tables.
    for art in &arts {
        if !matches!(art.root.get("kind"), Some(Json::Str(k)) if k == "loadgen") {
            continue;
        }
        println!("\nloadgen classes in {} (pr{}):", art.path, art.pr);
        println!(
            "{:<24} {:>5} {:>12} {:>12} {:>10}",
            "class", "ops", "p50_ms", "p99_ms", "mb_per_s"
        );
        let Some(classes) = art.root.get("classes").and_then(Json::as_arr) else { continue };
        for c in classes {
            let num = |k: &str| c.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
            let name = match c.get("name") {
                Some(Json::Str(s)) => s.clone(),
                _ => "?".into(),
            };
            println!(
                "{name:<24} {:>5} {:>12.3} {:>12.3} {:>10.2}",
                num("ops") as u64,
                num("p50_ms"),
                num("p99_ms"),
                num("mb_per_s"),
            );
        }
    }

    // The gate: latest full-size value of each hard key vs the best the
    // history ever recorded. Smoke artifacts are excluded — their dims
    // make the ratios incomparable (same policy as --perf-gate).
    println!();
    let mut failures: Vec<String> = Vec::new();
    for key in HARD_GATE_KEYS {
        let series: Vec<(&Art, f64)> = arts
            .iter()
            .filter(|a| !a.smoke)
            .filter_map(|a| {
                a.root
                    .get("derived")
                    .and_then(|d| d.get(key))
                    .and_then(Json::as_num)
                    .map(|v| (a, v))
            })
            .collect();
        let Some(&(latest, n)) = series.last() else {
            println!("trend gate: {key:<28} no full-size artifact carries it — skipped");
            continue;
        };
        if series.len() < 2 {
            println!("trend gate: {key:<28} only one data point ({n:.3}) — nothing to gate");
            continue;
        }
        let (best_art, best) = series
            .iter()
            .fold((series[0].0, series[0].1), |acc, &(a, v)| if v > acc.1 { (a, v) } else { acc });
        let ok = n >= 0.8 * best;
        println!(
            "trend gate: {key:<28} latest {n:.3} ({}) vs best {best:.3} ({}) [{}]",
            latest.path,
            best_art.path,
            if ok { "ok" } else { "REGRESSED (hard)" }
        );
        if !ok {
            failures.push(key.to_string());
        }
    }
    if !failures.is_empty() {
        fatal(&format!(
            "trend gate: hard-gated ratio(s) regressed >20% vs their historical best: {}",
            failures.join(", ")
        ));
    }
    println!("trend gate: OK");
}

/// Best-of-`reps` wall time of `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Best-of-`reps` wall time of `f`, keeping the fastest run's payload.
/// Every end-to-end workload goes through this so no path pays one-off
/// warm-up (page faults, allocator growth) that another doesn't.
fn time_best_with<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let v = f();
        let d = t0.elapsed();
        if best.as_ref().map_or(true, |(b, _)| d < *b) {
            best = Some((d, v));
        }
    }
    best.unwrap()
}

/// Throughput over the full volume's f64 footprint; 0 for a stage that
/// did not run (zero duration), rather than a nonsense huge number.
fn mb_per_s(points: usize, d: Duration) -> f64 {
    if d.is_zero() {
        return 0.0;
    }
    let mb = (points * std::mem::size_of::<f64>()) as f64 / 1e6;
    mb / d.as_secs_f64()
}

fn workload(name: &str, points: usize, d: Duration, stages: Option<&StageTimes>) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(name.into())),
        ("seconds", Json::Num(d.as_secs_f64())),
        ("mb_per_s", Json::Num(mb_per_s(points, d))),
    ];
    if let Some(s) = stages {
        let stage = |d: Duration| {
            Json::obj(vec![
                ("seconds", Json::Num(d.as_secs_f64())),
                ("mb_per_s", Json::Num(mb_per_s(points, d))),
            ])
        };
        pairs.push((
            "stages",
            Json::obj(vec![
                ("wavelet", stage(s.wavelet)),
                ("speck", stage(s.speck)),
                ("locate_outliers", stage(s.locate_outliers)),
                ("outlier_coding", stage(s.outlier_coding)),
                ("container", stage(s.container)),
                ("lossless", stage(s.lossless)),
            ]),
        ));
    }
    Json::obj(pairs)
}

fn single_chunk_sperr(dims: [usize; 3], threads: usize) -> Sperr {
    Sperr::new(SperrConfig {
        chunk_dims: dims,
        lossless: false,
        num_threads: threads,
        ..SperrConfig::default()
    })
}

fn run_benchmarks(dims: [usize; 3], smoke: bool) -> Json {
    let points: usize = dims.iter().product();
    let host_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "hotpath bench: dims {dims:?} ({points} points), host_threads {host_threads}{}",
        if smoke { ", smoke" } else { "" }
    );

    let field = SyntheticField::MirandaDensity.generate(dims, SEED);
    let t = field.range() * 1e-4;
    // Best-of-3 everywhere: single-shot numbers on shared hosts carry
    // ±15% steal-time noise, which swamps stage-level differences.
    let reps = 3;

    // --- z-axis wavelet pass in isolation: per-line vs blocked ----------
    let levels_z = [0usize, 0, 1];
    let mut work = field.data.clone();
    let per_line = time_best(reps, || {
        work.copy_from_slice(&field.data);
        reference::forward_3d(&mut work, dims, levels_z, Kernel::Cdf97);
    });
    let blocked = time_best(reps, || {
        work.copy_from_slice(&field.data);
        sperr_wavelet::forward_3d(&mut work, dims, levels_z, Kernel::Cdf97);
    });
    eprintln!(
        "z-axis pass: per-line {:.3}s, blocked {:.3}s ({:.2}x)",
        per_line.as_secs_f64(),
        blocked.as_secs_f64(),
        per_line.as_secs_f64() / blocked.as_secs_f64()
    );

    // --- SPECK stage in isolation: encode + decode ----------------------
    // The PR 4 tentpole target. Runs on the volume's real wavelet
    // coefficients at the PWE pipeline's quantization step (q = 1.5·t,
    // the production q_factor), so the bitplane count and significance
    // structure match what the end-to-end pipeline feeds the coder.
    let q = 1.5 * t;
    let mut coeffs = field.data.clone();
    reference::forward_3d(&mut coeffs, dims, levels_for_dims(dims), Kernel::Cdf97);
    let (speck_enc_time, speck_enc) =
        time_best_with(reps, || sperr_speck::encode(&coeffs, dims, q, Termination::Quality));
    let speck_dec_time = time_best(reps, || {
        let rec: Vec<f64> =
            sperr_speck::decode(&speck_enc.stream, dims, q, speck_enc.num_planes).unwrap();
        assert_eq!(rec.len(), points);
    });

    // --- per-kernel micro-workloads -------------------------------------
    // The individual SIMD kernels the PR 7 overhaul introduced, each over
    // the same real wavelet coefficients (or the meta bytes derived from
    // them) so lane distributions match production, timed blocked AND
    // through its scalar twin. The derived `kernel_*_vs_scalar` ratios
    // make an autovectorization failure (a toolchain update deciding not
    // to vectorize a kernel) visible as a tracked number instead of a
    // silent end-to-end slowdown.
    let inv_q = 1.0 / q;
    let mut meta = vec![0u8; points];
    let k_split = time_best(reps, || {
        sperr_simd::quantize_meta_into(&coeffs, inv_q, &mut meta);
    });
    let k_split_scalar = time_best(reps, || {
        sperr_simd::scalar::scalar_quantize_meta_into(&coeffs, inv_q, &mut meta);
    });
    sperr_simd::quantize_meta_into(&coeffs, inv_q, &mut meta);
    drop(coeffs);

    let k_pyramid = time_best(reps, || {
        let p = sperr_speck::MaxPyramid::build(&meta, dims);
        assert!(p.global_max() > 0);
    });

    // Significance scan: walk the meta array the way the sorting pass
    // walks an LIS bucket — jump over each run, step past the significant
    // byte, repeat. A mid-range threshold keeps runs realistically short.
    let scan_t = {
        let m = sperr_simd::max_elem(&meta);
        m / 2
    };
    let scan_walk = |f: &dyn Fn(&[u8], u8) -> usize| {
        let mut i = 0usize;
        let mut found = 0usize;
        while i < meta.len() {
            i += f(&meta[i..], scan_t) + 1;
            found += 1;
        }
        found
    };
    let k_scan = time_best(reps, || {
        assert!(scan_walk(&sperr_simd::run_le) > 0);
    });
    let k_scan_scalar = time_best(reps, || {
        assert!(scan_walk(&sperr_simd::scalar::scalar_run_le) > 0);
    });

    // Lifting kernel: one detail-band update at full-volume scale, the
    // inner loop of every wavelet level.
    let half = points / 2;
    let approx: Vec<f64> = (0..half + 1).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut detail: Vec<f64> = (0..half).map(|i| (i as f64 * 0.11).cos()).collect();
    let k_lift = time_best(reps, || {
        sperr_simd::lift_pairs(&mut detail, &approx[..half], &approx[1..], -1.586);
    });
    let k_lift_scalar = time_best(reps, || {
        sperr_simd::scalar::scalar_lift_pairs(&mut detail, &approx[..half], &approx[1..], -1.586);
    });
    drop((approx, detail));

    // Refinement gather: pack one bitplane of a full-volume u32 LSP.
    let ks: Vec<u32> = (0..points as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let gather_words = |f: &dyn Fn(&[u32], u32) -> u64| {
        let mut acc = 0u64;
        for c in ks.chunks(64) {
            acc ^= f(c, 13);
        }
        acc
    };
    let k_refine = time_best(reps, || {
        std::hint::black_box(gather_words(&sperr_simd::plane_word_u32));
    });
    let k_refine_scalar = time_best(reps, || {
        std::hint::black_box(gather_words(&sperr_simd::scalar::scalar_plane_word_u32));
    });
    drop(ks);
    eprintln!(
        "kernels (blocked vs scalar): split {:.0}ms/{:.0}ms, pyramid {:.0}ms, \
         scan {:.0}ms/{:.0}ms, lift {:.0}ms/{:.0}ms, refine {:.0}ms/{:.0}ms",
        k_split.as_secs_f64() * 1e3,
        k_split_scalar.as_secs_f64() * 1e3,
        k_pyramid.as_secs_f64() * 1e3,
        k_scan.as_secs_f64() * 1e3,
        k_scan_scalar.as_secs_f64() * 1e3,
        k_lift.as_secs_f64() * 1e3,
        k_lift_scalar.as_secs_f64() * 1e3,
        k_refine.as_secs_f64() * 1e3,
        k_refine_scalar.as_secs_f64() * 1e3,
    );
    eprintln!(
        "speck stage: encode {:.3}s ({:.2} MB/s, {:.2}x vs PR2), decode {:.3}s ({:.2} MB/s, {:.2}x vs PR2)",
        speck_enc_time.as_secs_f64(),
        mb_per_s(points, speck_enc_time),
        mb_per_s(points, speck_enc_time) / PR2_SPECK_ENCODE_MB_S,
        speck_dec_time.as_secs_f64(),
        mb_per_s(points, speck_dec_time),
        mb_per_s(points, speck_dec_time) / PR2_SPECK_DECODE_MB_S,
    );

    // --- end-to-end PWE, single chunk ------------------------------------
    // Pre-PR emulation (1 thread, per-line wavelet, fresh allocations),
    // timed through the conformance oracle's reference pipeline — the
    // same implementation the tier-2 oracle tests diff the encoder
    // against:
    let (pre_pr_time, reference_chunk) =
        time_best_with(reps, || oracle::reference_chunk_pwe(&field.data, dims, t, 1.5, Kernel::Cdf97));
    let pre_stages = reference_chunk.times.clone();
    eprintln!("pre-PR PWE 1t: {:.3}s", pre_pr_time.as_secs_f64());

    // Bit-identity of the overhauled encoder against the reference path:
    let new_chunk = sperr_core::compress_chunk_pwe(&field.data, dims, t, 1.5, Kernel::Cdf97);
    oracle::streams_bit_identical(
        "reference vs pooled SPECK stream",
        &reference_chunk.speck_stream,
        &new_chunk.speck_stream,
    )
    .unwrap();
    oracle::streams_bit_identical(
        "reference vs pooled outlier stream",
        &reference_chunk.outlier_stream,
        &new_chunk.outlier_stream,
    )
    .unwrap();
    let bit_identical = true;
    drop((reference_chunk, new_chunk));

    let run_compress = |threads: usize, bound: Bound| -> (Duration, (CompressionStats, Vec<u8>)) {
        let sperr = single_chunk_sperr(dims, threads);
        time_best_with(reps, || {
            let (stream, stats) = sperr.compress_with_stats(&field, bound).unwrap();
            (stats, stream)
        })
    };

    let (pwe_1t_time, (pwe_1t_stats, pwe_stream)) = run_compress(1, Bound::Pwe(t));
    let (pwe_8t_time, (pwe_8t_stats, pwe_stream_8t)) = run_compress(8, Bound::Pwe(t));
    oracle::streams_bit_identical("1-thread vs 8-thread container", &pwe_stream, &pwe_stream_8t)
        .unwrap();
    drop(pwe_stream_8t);
    eprintln!(
        "PWE 1t: {:.3}s, PWE 8t: {:.3}s",
        pwe_1t_time.as_secs_f64(),
        pwe_8t_time.as_secs_f64()
    );

    let bpp = 2.0;
    let (bpp_8t_time, (bpp_8t_stats, _)) = run_compress(8, Bound::Bpp(bpp));

    // --- decompression ----------------------------------------------------
    let sperr8 = single_chunk_sperr(dims, 8);
    let (dec_8t_time, (rec, dec_stats)) =
        time_best_with(reps, || sperr8.decompress_with_stats(&pwe_stream).unwrap());
    let max_err = field
        .data
        .iter()
        .zip(&rec.data)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err <= t, "PWE bound violated: {max_err} > {t}");
    drop(rec);

    // --- f32-native twins (PR 9) ------------------------------------------
    // The same volume rounded once to single precision, through the
    // f32-native pipeline. Two baselines per workload: the f64 pipeline
    // on the widened samples (pure width effect, the hard ≥1 floor) and
    // the *widened path* — widen-at-ingest + f64 pipeline (+ narrow on
    // the decode side) — which is what f32 data actually cost before the
    // native path existed and what the 1.5× acceptance target compares
    // against.
    let field32 = field.narrow_lossy();

    let mut work32 = field32.data.clone();
    let blocked_f32 = time_best(reps, || {
        work32.copy_from_slice(&field32.data);
        sperr_wavelet::forward_3d(&mut work32, dims, levels_z, Kernel::Cdf97);
    });
    drop(work32);

    // SPECK stage on the volume's real f32 wavelet coefficients at the
    // same quantization step as the f64 twin.
    let mut coeffs32 = field32.data.clone();
    reference::forward_3d(&mut coeffs32, dims, levels_for_dims(dims), Kernel::Cdf97);
    let (speck32_enc_time, speck32_enc) =
        time_best_with(reps, || sperr_speck::encode(&coeffs32, dims, q, Termination::Quality));
    let speck32_dec_time = time_best(reps, || {
        let rec: Vec<f32> =
            sperr_speck::decode(&speck32_enc.stream, dims, q, speck32_enc.num_planes).unwrap();
        assert_eq!(rec.len(), points);
    });

    // Width-sensitive kernels at f32 (twice the lanes per vector).
    let inv_q32 = (1.0 / q) as f32;
    let mut meta32 = vec![0u8; points];
    let k_split_f32 = time_best(reps, || {
        sperr_simd::quantize_meta_into(&coeffs32, inv_q32, &mut meta32);
    });
    drop((coeffs32, meta32));
    let approx32: Vec<f32> = (0..half + 1).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut detail32: Vec<f32> = (0..half).map(|i| (i as f32 * 0.11).cos()).collect();
    let k_lift_f32 = time_best(reps, || {
        sperr_simd::lift_pairs(&mut detail32, &approx32[..half], &approx32[1..], -1.586f32);
    });
    drop((approx32, detail32));

    // End-to-end PWE at f32, plus thread-count bit identity of the
    // native stream (the same contract the f64 path pins).
    let run_compress_f32 = |threads: usize| {
        let sperr = single_chunk_sperr(dims, threads);
        time_best_with(reps, || {
            let (stream, stats) = sperr.compress_f32_with_stats(&field32, Bound::Pwe(t)).unwrap();
            (stats, stream)
        })
    };
    let (pwe32_1t_time, (pwe32_1t_stats, stream32)) = run_compress_f32(1);
    let (pwe32_8t_time, (pwe32_8t_stats, stream32_8t)) = run_compress_f32(8);
    oracle::streams_bit_identical("f32 1-thread vs 8-thread container", &stream32, &stream32_8t)
        .unwrap();
    drop(stream32_8t);

    // The widened path a compressor of f32 data paid before PR 9: widen
    // every sample to f64 at ingest, then the f64 pipeline.
    let (widened_8t_time, (widened_8t_stats, widened_stream)) = time_best_with(reps, || {
        let wide = field32.widen();
        let (stream, stats) = sperr8.compress_with_stats(&wide, Bound::Pwe(t)).unwrap();
        (stats, stream)
    });

    // Decode side: native f32 decompress vs the widened path's decode
    // (f64 decompress + narrow to the f32 samples the caller wanted).
    let (dec32_8t_time, (rec32, dec32_stats)) =
        time_best_with(reps, || sperr8.decompress_f32_with_stats(&stream32).unwrap());
    let max_err32 = field32
        .data
        .iter()
        .zip(&rec32.data)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .fold(0.0f64, f64::max);
    let allowed32 = t * (1.0 + 1e-5) + field32.range() * 1e-5;
    assert!(max_err32 <= allowed32, "f32 PWE bound violated: {max_err32} > {allowed32}");
    drop(rec32);
    let (dec_widened_time, narrowed) = time_best_with(reps, || {
        sperr8.decompress_with_stats(&widened_stream).unwrap().0.narrow_lossy()
    });
    assert_eq!(narrowed.data.len(), points);
    drop((narrowed, widened_stream));

    // Size-bounded twin: in PWE mode the SPECK coder — whose coding
    // passes are width-independent by design (they run on quantized
    // indices, the same integers at either width) — dominates
    // end-to-end time, capping how much native width can show (~1.1×).
    // In BPP mode coding terminates at the byte budget, so the
    // bandwidth-bound front-end (wavelet, quantize, Morton gather)
    // dominates and the native-width win is visible end-to-end.
    let (bpp32_8t_time, bpp_stream32) = time_best_with(reps, || {
        sperr8.compress_f32_with_stats(&field32, Bound::Bpp(bpp)).unwrap().0
    });
    let (bpp_widened_8t_time, _) = time_best_with(reps, || {
        let wide = field32.widen();
        sperr8.compress_with_stats(&wide, Bound::Bpp(bpp)).unwrap().0.len()
    });
    assert!(sperr8.decompress_f32(&bpp_stream32).unwrap().data.len() == points);
    drop(bpp_stream32);

    // Coarse-tolerance twin: archive-grade tolerance (range·1e-2, the
    // climate-archive regime) — fewer bitplanes, but the coder's
    // per-coefficient pass structure keeps PWE-mode end-to-end close to
    // width-independent; recorded to make that honest.
    let t_coarse = field.range() * 1e-2;
    let (coarse_8t_time, _) = time_best_with(reps, || {
        sperr8.compress_with_stats(&field, Bound::Pwe(t_coarse)).unwrap()
    });
    let (coarse32_8t_time, coarse_stream32) = time_best_with(reps, || {
        sperr8.compress_f32_with_stats(&field32, Bound::Pwe(t_coarse)).unwrap().0
    });
    let (coarse_widened_8t_time, _) = time_best_with(reps, || {
        let wide = field32.widen();
        sperr8.compress_with_stats(&wide, Bound::Pwe(t_coarse)).unwrap().0.len()
    });
    let coarse_rec32 = sperr8.decompress_f32(&coarse_stream32).unwrap();
    let coarse_err = field32
        .data
        .iter()
        .zip(&coarse_rec32.data)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .fold(0.0f64, f64::max);
    let coarse_allowed = t_coarse * (1.0 + 1e-5) + field32.range() * 1e-5;
    assert!(coarse_err <= coarse_allowed, "coarse f32 PWE violated: {coarse_err} > {coarse_allowed}");
    drop((coarse_rec32, coarse_stream32));
    eprintln!(
        "BPP 2.0 8t: f64 {:.3}s, f32 {:.3}s ({:.2}x vs f64, {:.2}x vs widened {:.3}s)",
        bpp_8t_time.as_secs_f64(),
        bpp32_8t_time.as_secs_f64(),
        bpp_8t_time.as_secs_f64() / bpp32_8t_time.as_secs_f64(),
        bpp_widened_8t_time.as_secs_f64() / bpp32_8t_time.as_secs_f64(),
        bpp_widened_8t_time.as_secs_f64(),
    );
    eprintln!(
        "coarse PWE (range*1e-2) 8t: f64 {:.3}s, f32 {:.3}s ({:.2}x vs f64, \
         {:.2}x vs widened {:.3}s)",
        coarse_8t_time.as_secs_f64(),
        coarse32_8t_time.as_secs_f64(),
        coarse_8t_time.as_secs_f64() / coarse32_8t_time.as_secs_f64(),
        coarse_widened_8t_time.as_secs_f64() / coarse32_8t_time.as_secs_f64(),
        coarse_widened_8t_time.as_secs_f64(),
    );
    eprintln!(
        "f32 twins: zaxis {:.3}s ({:.2}x), speck enc {:.3}s ({:.2}x) dec {:.3}s ({:.2}x)",
        blocked_f32.as_secs_f64(),
        blocked.as_secs_f64() / blocked_f32.as_secs_f64(),
        speck32_enc_time.as_secs_f64(),
        speck_enc_time.as_secs_f64() / speck32_enc_time.as_secs_f64(),
        speck32_dec_time.as_secs_f64(),
        speck_dec_time.as_secs_f64() / speck32_dec_time.as_secs_f64(),
    );
    eprintln!(
        "f32 end-to-end: compress 1t {:.3}s ({:.2}x vs f64), 8t {:.3}s ({:.2}x vs f64, \
         {:.2}x vs widened {:.3}s), decompress {:.3}s ({:.2}x vs f64, {:.2}x vs widened {:.3}s)",
        pwe32_1t_time.as_secs_f64(),
        pwe_1t_time.as_secs_f64() / pwe32_1t_time.as_secs_f64(),
        pwe32_8t_time.as_secs_f64(),
        pwe_8t_time.as_secs_f64() / pwe32_8t_time.as_secs_f64(),
        widened_8t_time.as_secs_f64() / pwe32_8t_time.as_secs_f64(),
        widened_8t_time.as_secs_f64(),
        dec32_8t_time.as_secs_f64(),
        dec_8t_time.as_secs_f64() / dec32_8t_time.as_secs_f64(),
        dec_widened_time.as_secs_f64() / dec32_8t_time.as_secs_f64(),
        dec_widened_time.as_secs_f64(),
    );

    // --- random access on a multi-chunk container (PR 8) -----------------
    // Half-extent chunks partition the volume into 8, so the 1/8 bbox
    // (half per axis) intersects exactly one chunk and the measured
    // speedup is pure decode-work avoidance: the index seek skips 7 of 8
    // chunk payloads. The ~1% bbox also lands in one chunk — it shows
    // that whole-chunk decode granularity bounds how far tiny queries can
    // win. All three region reads are checked bit-identical to the same
    // slice of a full decompress before their time is trusted.
    let region_chunk = [dims[0] / 2, dims[1] / 2, dims[2] / 2];
    let chunked = Sperr::new(SperrConfig {
        chunk_dims: region_chunk,
        lossless: false,
        num_threads: 8,
        ..SperrConfig::default()
    });
    let multi_stream = chunked.compress_with_stats(&field, Bound::Pwe(t)).unwrap().0;
    let (multi_dec_time, multi_rec) =
        time_best_with(reps, || chunked.decompress_with_stats(&multi_stream).unwrap().0);
    let run_region = |lo: [usize; 3], hi: [usize; 3]| -> (Duration, usize) {
        let (d, (part, report)) =
            time_best_with(reps, || chunked.decode_region(&multi_stream, lo, hi).unwrap());
        assert!(report.all_ok(), "region decode reported damaged chunks");
        assert!(report.used_index, "v3 stream must answer regions via the index");
        let rdims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        for z in 0..rdims[2] {
            for y in 0..rdims[1] {
                for x in 0..rdims[0] {
                    let got = part.data[(z * rdims[1] + y) * rdims[0] + x];
                    let want = multi_rec.data
                        [((z + lo[2]) * dims[1] + y + lo[1]) * dims[0] + x + lo[0]];
                    assert_eq!(got.to_bits(), want.to_bits(), "region voxel mismatch");
                }
            }
        }
        (d, rdims.iter().product())
    };
    let (region_1pct_time, region_1pct_pts) =
        run_region([0; 3], [dims[0] / 5, dims[1] / 5, dims[2] / 5]);
    let (region_eighth_time, region_eighth_pts) = run_region([0; 3], region_chunk);
    let (region_full_time, region_full_pts) = run_region([0; 3], dims);
    let (preview_time, preview_field) =
        time_best_with(reps, || chunked.decode_at_bpp(&multi_stream, 1.0).unwrap());
    assert_eq!(preview_field.data.len(), points);
    drop((multi_rec, preview_field));
    eprintln!(
        "region decode (8 chunks): full decompress {:.3}s, 1pct {:.3}s ({:.2}x), \
         eighth {:.3}s ({:.2}x), full-bbox {:.3}s, preview@1bpp {:.3}s",
        multi_dec_time.as_secs_f64(),
        region_1pct_time.as_secs_f64(),
        multi_dec_time.as_secs_f64() / region_1pct_time.as_secs_f64(),
        region_eighth_time.as_secs_f64(),
        multi_dec_time.as_secs_f64() / region_eighth_time.as_secs_f64(),
        region_full_time.as_secs_f64(),
        preview_time.as_secs_f64(),
    );

    let derived = Json::obj(vec![
        (
            "zaxis_blocked_vs_per_line",
            Json::Num(per_line.as_secs_f64() / blocked.as_secs_f64()),
        ),
        (
            "pwe_8t_vs_pre_pr_1t",
            Json::Num(pre_pr_time.as_secs_f64() / pwe_8t_time.as_secs_f64()),
        ),
        (
            "pwe_1t_vs_pre_pr_1t",
            Json::Num(pre_pr_time.as_secs_f64() / pwe_1t_time.as_secs_f64()),
        ),
        (
            "speck_encode_vs_pr2",
            Json::Num(mb_per_s(points, speck_enc_time) / PR2_SPECK_ENCODE_MB_S),
        ),
        (
            "speck_decode_vs_pr2",
            Json::Num(mb_per_s(points, speck_dec_time) / PR2_SPECK_DECODE_MB_S),
        ),
        (
            "speck_encode_vs_pr4",
            Json::Num(mb_per_s(points, speck_enc_time) / PR4_SPECK_ENCODE_MB_S),
        ),
        (
            "speck_decode_vs_pr4",
            Json::Num(mb_per_s(points, speck_dec_time) / PR4_SPECK_DECODE_MB_S),
        ),
        (
            "kernel_split_vs_scalar",
            Json::Num(k_split_scalar.as_secs_f64() / k_split.as_secs_f64()),
        ),
        (
            "kernel_scan_vs_scalar",
            Json::Num(k_scan_scalar.as_secs_f64() / k_scan.as_secs_f64()),
        ),
        (
            "kernel_lift_vs_scalar",
            Json::Num(k_lift_scalar.as_secs_f64() / k_lift.as_secs_f64()),
        ),
        (
            "kernel_refine_vs_scalar",
            Json::Num(k_refine_scalar.as_secs_f64() / k_refine.as_secs_f64()),
        ),
        (
            "region_1pct_speedup_vs_full",
            Json::Num(multi_dec_time.as_secs_f64() / region_1pct_time.as_secs_f64()),
        ),
        (
            "region_eighth_speedup_vs_full",
            Json::Num(multi_dec_time.as_secs_f64() / region_eighth_time.as_secs_f64()),
        ),
        (
            "region_full_vs_decompress",
            Json::Num(multi_dec_time.as_secs_f64() / region_full_time.as_secs_f64()),
        ),
        (
            "zaxis_f32_vs_f64",
            Json::Num(blocked.as_secs_f64() / blocked_f32.as_secs_f64()),
        ),
        (
            "speck_encode_f32_vs_f64",
            Json::Num(speck_enc_time.as_secs_f64() / speck32_enc_time.as_secs_f64()),
        ),
        (
            "speck_decode_f32_vs_f64",
            Json::Num(speck_dec_time.as_secs_f64() / speck32_dec_time.as_secs_f64()),
        ),
        (
            "kernel_split_f32_vs_f64",
            Json::Num(k_split.as_secs_f64() / k_split_f32.as_secs_f64()),
        ),
        (
            "kernel_lift_f32_vs_f64",
            Json::Num(k_lift.as_secs_f64() / k_lift_f32.as_secs_f64()),
        ),
        (
            "pwe_f32_vs_f64_1t",
            Json::Num(pwe_1t_time.as_secs_f64() / pwe32_1t_time.as_secs_f64()),
        ),
        (
            "pwe_f32_vs_f64_8t",
            Json::Num(pwe_8t_time.as_secs_f64() / pwe32_8t_time.as_secs_f64()),
        ),
        (
            "pwe_f32_vs_widened_8t",
            Json::Num(widened_8t_time.as_secs_f64() / pwe32_8t_time.as_secs_f64()),
        ),
        (
            "pwe_f32_decompress_vs_f64_8t",
            Json::Num(dec_8t_time.as_secs_f64() / dec32_8t_time.as_secs_f64()),
        ),
        (
            "pwe_f32_decompress_vs_widened_8t",
            Json::Num(dec_widened_time.as_secs_f64() / dec32_8t_time.as_secs_f64()),
        ),
        (
            "bpp_f32_vs_f64_8t",
            Json::Num(bpp_8t_time.as_secs_f64() / bpp32_8t_time.as_secs_f64()),
        ),
        (
            "bpp_f32_vs_widened_8t",
            Json::Num(bpp_widened_8t_time.as_secs_f64() / bpp32_8t_time.as_secs_f64()),
        ),
        (
            "pwe_coarse_f32_vs_f64_8t",
            Json::Num(coarse_8t_time.as_secs_f64() / coarse32_8t_time.as_secs_f64()),
        ),
        (
            "pwe_coarse_f32_vs_widened_8t",
            Json::Num(coarse_widened_8t_time.as_secs_f64() / coarse32_8t_time.as_secs_f64()),
        ),
        ("pre_pr_bit_identical", Json::Bool(bit_identical)),
    ]);

    // Host metadata: what the 8-thread workloads actually ran with, so
    // the artifact is interpretable without re-deriving the clamping
    // logic (`effective_workers` ≤ 8 on few-job volumes; the bench is
    // single-chunk so `chunk_count` is 1 by construction).
    let meta_sperr = single_chunk_sperr(dims, 8);
    let effective_workers = meta_sperr.effective_workers(dims);
    let chunk_count = meta_sperr.chunk_count(dims);

    Json::obj(vec![
        ("schema", Json::Str("sperr-bench-pr9/v1".into())),
        ("smoke", Json::Bool(smoke)),
        ("host_threads", Json::Num(host_threads as f64)),
        ("effective_workers", Json::Num(effective_workers as f64)),
        ("chunk_count", Json::Num(chunk_count as f64)),
        ("dims", Json::Arr(dims.iter().map(|&d| Json::Num(d as f64)).collect())),
        ("points", Json::Num(points as f64)),
        ("pwe_tolerance", Json::Num(t)),
        ("bpp_target", Json::Num(bpp)),
        (
            "workloads",
            Json::Arr(vec![
                workload("zaxis_pass_per_line", points, per_line, None),
                workload("zaxis_pass_blocked", points, blocked, None),
                workload("speck_encode", points, speck_enc_time, None),
                workload("speck_decode", points, speck_dec_time, None),
                workload("kernel_sign_magnitude_split", points, k_split, None),
                workload("kernel_pyramid_build", points / 8, k_pyramid, None),
                workload("kernel_significance_scan", points / 8, k_scan, None),
                workload("kernel_lift_pairs", points / 2, k_lift, None),
                workload("kernel_refine_gather", points / 2, k_refine, None),
                workload("pwe_compress_pre_pr_1t", points, pre_pr_time, Some(&pre_stages)),
                workload("pwe_compress_1t", points, pwe_1t_time, Some(&pwe_1t_stats.stage_times)),
                workload("pwe_compress_8t", points, pwe_8t_time, Some(&pwe_8t_stats.stage_times)),
                workload("bpp_compress_8t", points, bpp_8t_time, Some(&bpp_8t_stats.stage_times)),
                workload("pwe_decompress_8t", points, dec_8t_time, Some(&dec_stats.stage_times)),
                workload("zaxis_pass_blocked_f32", points, blocked_f32, None),
                workload("speck_encode_f32", points, speck32_enc_time, None),
                workload("speck_decode_f32", points, speck32_dec_time, None),
                workload("kernel_sign_magnitude_split_f32", points, k_split_f32, None),
                workload("kernel_lift_pairs_f32", points / 2, k_lift_f32, None),
                workload(
                    "pwe_compress_f32_1t",
                    points,
                    pwe32_1t_time,
                    Some(&pwe32_1t_stats.stage_times),
                ),
                workload(
                    "pwe_compress_f32_8t",
                    points,
                    pwe32_8t_time,
                    Some(&pwe32_8t_stats.stage_times),
                ),
                workload(
                    "pwe_compress_widened_8t",
                    points,
                    widened_8t_time,
                    Some(&widened_8t_stats.stage_times),
                ),
                workload(
                    "pwe_decompress_f32_8t",
                    points,
                    dec32_8t_time,
                    Some(&dec32_stats.stage_times),
                ),
                workload("pwe_decompress_widened_8t", points, dec_widened_time, None),
                workload("bpp_compress_f32_8t", points, bpp32_8t_time, None),
                workload("bpp_compress_widened_8t", points, bpp_widened_8t_time, None),
                workload("pwe_coarse_compress_8t", points, coarse_8t_time, None),
                workload("pwe_coarse_compress_f32_8t", points, coarse32_8t_time, None),
                workload("pwe_coarse_compress_widened_8t", points, coarse_widened_8t_time, None),
                workload("pwe_decompress_8chunk", points, multi_dec_time, None),
                workload("decode_region_1pct", region_1pct_pts, region_1pct_time, None),
                workload("decode_region_eighth", region_eighth_pts, region_eighth_time, None),
                workload("decode_region_full", region_full_pts, region_full_time, None),
                workload("decode_at_bpp_preview", points, preview_time, None),
            ]),
        ),
        ("derived", derived),
    ])
}
