//! The outlier decoder (Listings 2–3, decoder side), kept in its own
//! module so the whole decode path can be audited for panic-freedom (see
//! the repo's `tests/panic_audit.rs`): nothing in this file may `unwrap`,
//! `expect`, `panic!` or `assert` — all failures on untrusted input
//! surface as [`DecodeError`].

use crate::coder::{Outlier, SetR};
use sperr_bitstream::BitReader;
use std::fmt;

/// Typed decoder-side failure. Untrusted streams must never panic the
/// decoder; every structural problem maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the declared structure was complete.
    Truncated(&'static str),
    /// The stream or its declared parameters are structurally invalid.
    Corrupt(&'static str),
    /// A declared size exceeds what the decoder is willing to allocate.
    LimitExceeded(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated(msg) => write!(f, "truncated outlier stream: {msg}"),
            DecodeError::Corrupt(msg) => write!(f, "corrupt outlier stream: {msg}"),
            DecodeError::LimitExceeded(msg) => {
                write!(f, "outlier decode limit exceeded: {msg}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<sperr_bitstream::Error> for DecodeError {
    fn from(e: sperr_bitstream::Error) -> Self {
        match e {
            sperr_bitstream::Error::UnexpectedEof => {
                DecodeError::Truncated("unexpected end of stream")
            }
            sperr_bitstream::Error::Corrupt(msg) => DecodeError::Corrupt(msg),
        }
    }
}

impl From<DecodeError> for sperr_compress_api::CompressError {
    fn from(e: DecodeError) -> Self {
        use sperr_compress_api::CompressError;
        match e {
            DecodeError::Truncated(_) => CompressError::Truncated(e.to_string()),
            DecodeError::Corrupt(_) => CompressError::Corrupt(e.to_string()),
            DecodeError::LimitExceeded(_) => CompressError::LimitExceeded(e.to_string()),
        }
    }
}

/// Signals that the stream ran out mid-pass; unwinds the pass cleanly (a
/// truncated stream yields a coarser partial set of corrections).
struct Stop;

struct DecPoint {
    pos: usize,
    negative: bool,
    corr: f64,
}

struct Decoder<'a> {
    input: BitReader<'a>,
    lis: Vec<Vec<SetR>>,
    /// Indices into `points` of previously significant entries.
    lsp: Vec<u32>,
    lnsp: Vec<u32>,
    points: Vec<DecPoint>,
}

impl<'a> Decoder<'a> {
    fn read_bit(&mut self) -> Result<bool, Stop> {
        self.input.get_bit().map_err(|_| Stop)
    }

    fn push_lis(&mut self, set: SetR) {
        let lvl = set.level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, Vec::new);
        }
        self.lis[lvl].push(set);
    }

    /// One sorting pass. Mirrors the encoder's in-place LIS bookkeeping:
    /// still-insignificant sets are compacted to the front of their bucket
    /// instead of being drained into a fresh vector, so bucket storage is
    /// allocated once and reused across planes. Splits only create deeper
    /// sets, which this pass already finished, so in-place mutation never
    /// aliases the iteration.
    /// Insignificance bits come in runs (the encoder emits them through
    /// `put_zeros`); `count_zero_run` consumes each run through the refill
    /// register in bulk and the corresponding sets are retained with one
    /// `copy_within`, instead of one `get_bit` + one element move per set.
    fn sorting_pass(&mut self, thrd: f64) -> Result<(), Stop> {
        for lvl in (0..self.lis.len()).rev() {
            let len = self.lis[lvl].len();
            let mut write = 0usize;
            let mut read = 0usize;
            while read < len {
                let run = self.input.count_zero_run(len - read);
                if run > 0 {
                    // A run of 0 bits retains a run of sets unchanged.
                    self.lis[lvl].copy_within(read..read + run, write);
                    write += run;
                    read += run;
                    if read == len {
                        break;
                    }
                }
                // The run stopped short: next bit is a 1, or EOF.
                let keep_or_err = match self.input.get_bit() {
                    Err(_) => Err(Stop),
                    Ok(false) => Ok(true), // unreachable after count_zero_run
                    Ok(true) => {
                        let set = self.lis[lvl][read];
                        self.process_significant(set, thrd).map(|()| false)
                    }
                };
                match keep_or_err {
                    Ok(true) => {
                        self.lis[lvl][write] = self.lis[lvl][read];
                        write += 1;
                        read += 1;
                    }
                    Ok(false) => {
                        read += 1;
                    }
                    Err(stop) => {
                        // Keep the unprocessed remainder so state stays
                        // sane; the set being processed when the stream ran
                        // out is dropped, matching the historical
                        // take-and-repush behavior.
                        self.lis[lvl].copy_within(read + 1..len, write);
                        let kept = write + (len - read - 1);
                        self.lis[lvl].truncate(kept);
                        return Err(stop);
                    }
                }
            }
            self.lis[lvl].truncate(write);
        }
        Ok(())
    }

    /// Handles a set whose significance bit was 1: a single position
    /// records its sign and discovery value, a longer range splits.
    fn process_significant(&mut self, set: SetR, thrd: f64) -> Result<(), Stop> {
        if set.len == 1 {
            let negative = self.read_bit()?;
            // Listing 3 line 12: reconstruct at 3/2 of the discovery
            // threshold (centre of (thrd, 2·thrd]).
            self.points.push(DecPoint { pos: set.start, negative, corr: 1.5 * thrd });
            let idx = (self.points.len() - 1) as u32;
            self.lnsp.push(idx);
            Ok(())
        } else {
            self.code(set, thrd)
        }
    }

    fn process(&mut self, set: SetR, thrd: f64) -> Result<(), Stop> {
        let sig = self.read_bit()?;
        if sig {
            self.process_significant(set, thrd)
        } else {
            self.push_lis(set);
            Ok(())
        }
    }

    fn code(&mut self, set: SetR, thrd: f64) -> Result<(), Stop> {
        // Decoder-side split mirrors the encoder geometrically; outlier
        // index ranges and the `max_mag` cache are unknown (and unused)
        // here. `set.len >= 2` here, so both halves are non-empty and the
        // recursion depth is bounded by log2(array_len).
        let second = set.len / 2;
        let first = set.len - second;
        let a = SetR {
            start: set.start,
            len: first,
            olo: 0,
            ohi: 0,
            level: set.level + 1,
            max_mag: 0.0,
        };
        let b = SetR {
            start: set.start + first,
            len: second,
            olo: 0,
            ohi: 0,
            level: set.level + 1,
            max_mag: 0.0,
        };
        self.process(a, thrd)?;
        self.process(b, thrd)
    }

    /// One refinement pass: bits are consumed up to 64 at a time through
    /// the reader's refill register and scattered to their corrections,
    /// mirroring the encoder's word-packed emission. A truncated stream
    /// applies exactly the bits that exist (the reader's remaining budget
    /// is checked up front per word) and then stops, matching the
    /// bit-at-a-time behavior.
    fn refinement_pass(&mut self, thrd: f64) -> Result<(), Stop> {
        let len = self.lsp.len();
        let mut i = 0usize;
        while i < len {
            let want = (len - i).min(64);
            let avail = self.input.remaining_bits().min(want);
            if avail > 0 {
                let word = self.input.get_bits(avail as u32).map_err(|_| Stop)?;
                for j in 0..avail {
                    let Some(&idx) = self.lsp.get(i + j) else {
                        return Err(Stop); // unreachable: i + j < len
                    };
                    let idx = idx as usize;
                    // Listing 3 lines 5/7: move to the centre of the
                    // narrowed interval.
                    if let Some(p) = self.points.get_mut(idx) {
                        if (word >> j) & 1 == 1 {
                            p.corr += thrd / 2.0;
                        } else {
                            p.corr -= thrd / 2.0;
                        }
                    }
                }
                i += avail;
            }
            if avail < want {
                return Err(Stop);
            }
        }
        let new = std::mem::take(&mut self.lnsp);
        self.lsp.extend(new);
        Ok(())
    }
}

/// Decodes a stream produced by [`crate::encode`] with the same
/// `array_len`, `t` and the `max_n` it returned. Positions are exact;
/// correction values are within `t/2` of the originals when the stream is
/// complete. A truncated stream yields a partial (coarser) set of
/// corrections without error. Invalid parameters — a non-positive or
/// non-finite tolerance, or a non-empty stream over an empty array —
/// return a typed error instead of panicking, so header fields from
/// untrusted containers can be passed through unchecked.
pub fn decode(
    stream: &[u8],
    array_len: usize,
    t: f64,
    max_n: u8,
) -> Result<Vec<Outlier>, DecodeError> {
    let _span = sperr_telemetry::span!("outlier.decode");
    if !(t > 0.0) || !t.is_finite() {
        return Err(DecodeError::Corrupt("tolerance must be positive and finite"));
    }
    if stream.is_empty() {
        return Ok(Vec::new());
    }
    if array_len == 0 {
        // The encoder never emits bits over an empty array; a degenerate
        // root set would otherwise recurse once per garbage bit.
        return Err(DecodeError::Corrupt("non-empty stream over an empty array"));
    }
    let mut dec = Decoder {
        input: BitReader::new(stream),
        lis: vec![vec![SetR { start: 0, len: array_len, olo: 0, ohi: 0, level: 0, max_mag: 0.0 }]],
        lsp: Vec::new(),
        lnsp: Vec::new(),
        points: Vec::new(),
    };
    'outer: for n in (0..=max_n as i64).rev() {
        let thrd = f64::exp2(n as f64) * t;
        if dec.sorting_pass(thrd).is_err() {
            break 'outer;
        }
        if dec.refinement_pass(thrd).is_err() {
            break 'outer;
        }
    }
    Ok(dec
        .points
        .into_iter()
        .map(|p| Outlier { pos: p.pos, corr: if p.negative { -p.corr } else { p.corr } })
        .collect())
}
