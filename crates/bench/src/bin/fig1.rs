//! Fig. 1: outlier positions carry little spatial correlation. The paper
//! shows heat maps of outlier positions on the Kodak Lighthouse image at
//! three outlier-percentage levels (q = 1.3t, 1.5t, 1.7t) and argues the
//! positions look random — justifying the choice to *linearize* data
//! before outlier coding (§IV-C).
//!
//! We quantify "looks random": for each q we print the outlier
//! percentage, the observed probability that a horizontal neighbour of an
//! outlier is also an outlier, and the ratio of that probability to the
//! outlier density (≈ 1 for spatially uncorrelated positions; ≫ 1 for
//! clustered positions like wavelet coefficients').

use sperr_datagen::SyntheticField;

fn main() {
    sperr_bench::banner(
        "Fig. 1 — spatial decorrelation of outlier positions",
        "Figure 1 (outlier heat maps on the Lighthouse image)",
    );
    let field = SyntheticField::Image2d.generate([768, 512, 1], 99);
    let t = field.tolerance_for_idx(14);
    let w = field.dims[0];
    let h = field.dims[1];
    println!("# image {}x{}, t = {t:.4e}", w, h);
    println!("q_over_t,outlier_pct,neighbor_cond_prob,clustering_ratio");
    for q_factor in [1.3f64, 1.5, 1.7] {
        let outliers = sperr_bench::intercept_outliers(&field, t, q_factor);
        let mut mask = vec![false; field.len()];
        for o in &outliers {
            mask[o.pos] = true;
        }
        let density = outliers.len() as f64 / field.len() as f64;
        // P(right neighbour outlier | outlier)
        let mut pairs = 0usize;
        let mut hits = 0usize;
        for y in 0..h {
            for x in 0..w - 1 {
                if mask[x + w * y] {
                    pairs += 1;
                    if mask[x + 1 + w * y] {
                        hits += 1;
                    }
                }
            }
        }
        let cond = if pairs > 0 { hits as f64 / pairs as f64 } else { 0.0 };
        let ratio = if density > 0.0 { cond / density } else { 0.0 };
        println!("{q_factor},{:.3},{:.5},{:.2}", 100.0 * density, cond, ratio);
    }
    println!("# clustering_ratio near 1 => positions ~ spatially random (paper's claim);");
    println!("# compare wavelet-coefficient significance, which clusters strongly.");

    // Contrast: clustering of significant wavelet coefficients at an
    // equivalent density, to show what *correlated* positions look like.
    {
        use sperr_wavelet::{forward_3d, levels_for_dims, Kernel};
        let mut coeffs = field.data.clone();
        forward_3d(&mut coeffs, field.dims, levels_for_dims(field.dims), Kernel::Cdf97);
        let mut mags: Vec<f64> = coeffs.iter().map(|c| c.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let thresh = mags[field.len() / 100]; // top 1%
        let mask: Vec<bool> = coeffs.iter().map(|c| c.abs() > thresh).collect();
        let density = mask.iter().filter(|&&m| m).count() as f64 / field.len() as f64;
        let mut pairs = 0usize;
        let mut hits = 0usize;
        for y in 0..h {
            for x in 0..w - 1 {
                if mask[x + w * y] {
                    pairs += 1;
                    if mask[x + 1 + w * y] {
                        hits += 1;
                    }
                }
            }
        }
        let cond = hits as f64 / pairs.max(1) as f64;
        println!(
            "# reference: top-1% wavelet coefficients cluster at ratio {:.1}",
            cond / density
        );
    }
}
