//! The `Float` sample-type abstraction the generic hot path is built on.
//!
//! Every float-touching stage — wavelet lifting, SPECK quantization, the
//! outlier residual scan, the blocked kernels in this crate — is generic
//! over `T: Float` with exactly two instantiations: `f64` (the historical
//! path, bit-identical to the pre-generic code because monomorphization
//! preserves expression and operand order) and `f32` (the native
//! single-precision path: half the memory traffic, twice the lanes per
//! blocked window).
//!
//! The trait lives in `sperr-simd` because this crate sits at the bottom
//! of the workspace dependency graph; `sperr-core` re-exports it as part
//! of its public API.
//!
//! # Bit-identity contract
//!
//! Generic code must never reassociate or reorder float arithmetic based
//! on `T`: the same expression tree evaluates at both widths. `from_f64`
//! is the only sanctioned narrowing point (rounds once, to nearest), and
//! `to_f64` is exact, so f32 results widen losslessly for comparison
//! against f64 references.

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Sample type of the compression hot path: `f32` or `f64`. Sealed by
/// construction — the pipeline's correctness arguments (quantizer
/// saturation, mid-riser exactness, LE wire layout) are only made for
/// IEEE-754 binary32/binary64.
pub trait Float:
    Copy
    + PartialOrd
    + Default
    + Send
    + Sync
    + Debug
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// 0.5, the mid-riser cell centre offset.
    const HALF: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Quantizer saturation threshold, `2^62` (exactly representable at
    /// both widths; keeps downstream bitplane shifts in range).
    const CAP: Self;
    /// Lanes per blocked-kernel window: 4 for `f64`, 8 for `f32` — one
    /// 256-bit-class vector register either way.
    const LANES: usize;
    /// Wire width in bytes (4 or 8); little-endian in every container
    /// and raw-file format.
    const BYTES: usize;
    /// `"f32"` / `"f64"`, for error messages and bench labels.
    const NAME: &'static str;

    /// Conversion from `f64`: identity for `f64`, round-to-nearest for
    /// `f32`. The single sanctioned narrowing point in generic code.
    fn from_f64(v: f64) -> Self;
    /// Exact widening to `f64`.
    fn to_f64(self) -> f64;
    /// `k as Self` — the quantization cell index as a sample, used by
    /// the mid-riser reconstruction. Rounds when `k` exceeds the
    /// mantissa, exactly as the historical `k as f64` cast did.
    fn from_u64_lossy(k: u64) -> Self;
    /// Saturating `self as u64` cast (NaN maps to 0).
    fn to_u64_saturating(self) -> u64;
    /// `|self|`.
    fn abs(self) -> Self;
    /// IEEE maximum as implemented by `f32::max`/`f64::max`.
    fn max(self, other: Self) -> Self;
    /// Finiteness test (rejects NaN and infinities).
    fn is_finite(self) -> bool;
    /// Reads one sample from exactly `BYTES` little-endian bytes.
    fn read_le(bytes: &[u8]) -> Self;
    /// Writes one sample as exactly `BYTES` little-endian bytes.
    fn write_le(self, out: &mut [u8]);
}

impl Float for f64 {
    const ZERO: Self = 0.0;
    const HALF: Self = 0.5;
    const ONE: Self = 1.0;
    const CAP: Self = (1u64 << 62) as f64;
    const LANES: usize = 4;
    const BYTES: usize = 8;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_u64_lossy(k: u64) -> Self {
        k as f64
    }
    #[inline(always)]
    fn to_u64_saturating(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn read_le(bytes: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[..8]);
        f64::from_le_bytes(b)
    }
    #[inline(always)]
    fn write_le(self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.to_le_bytes());
    }
}

impl Float for f32 {
    const ZERO: Self = 0.0;
    const HALF: Self = 0.5;
    const ONE: Self = 1.0;
    const CAP: Self = (1u64 << 62) as f32;
    const LANES: usize = 8;
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_u64_lossy(k: u64) -> Self {
        k as f32
    }
    #[inline(always)]
    fn to_u64_saturating(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn read_le(bytes: &[u8]) -> Self {
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[..4]);
        f32::from_le_bytes(b)
    }
    #[inline(always)]
    fn write_le(self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_consts() {
        assert_eq!(<f64 as Float>::LANES, 4);
        assert_eq!(<f32 as Float>::LANES, 8);
        assert_eq!(<f64 as Float>::BYTES, 8);
        assert_eq!(<f32 as Float>::BYTES, 4);
        assert_eq!(<f64 as Float>::CAP, (1u64 << 62) as f64);
        assert_eq!(<f32 as Float>::CAP, (1u64 << 62) as f32);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f64::from_f64(1.25), 1.25);
        assert_eq!(f32::from_f64(1.25), 1.25f32);
        assert_eq!(Float::to_f64(0.1f32), 0.1f32 as f64);
        assert_eq!(f64::from_u64_lossy(7), 7.0);
        assert_eq!(f32::from_u64_lossy(7), 7.0f32);
        assert_eq!(Float::to_u64_saturating(2.9f32), 2);
        assert_eq!(Float::to_u64_saturating(f64::NAN), 0);
    }

    #[test]
    fn le_wire_round_trip() {
        let mut b8 = [0u8; 8];
        Float::write_le(-3.75f64, &mut b8);
        assert_eq!(<f64 as Float>::read_le(&b8), -3.75);
        let mut b4 = [0u8; 4];
        Float::write_le(-3.75f32, &mut b4);
        assert_eq!(<f32 as Float>::read_le(&b4), -3.75f32);
    }
}
