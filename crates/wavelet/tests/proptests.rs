//! Property tests for the wavelet substrate: perfect reconstruction and
//! energy behaviour for arbitrary shapes, level counts and kernels.

use proptest::prelude::*;
use sperr_wavelet::{
    coarse_dims, forward_1d, forward_1d_with, forward_3d, forward_3d_with, inverse_1d,
    inverse_1d_with, inverse_3d, inverse_3d_partial, inverse_3d_partial_with, inverse_3d_with,
    levels_for_dims, num_levels, reference, stress::ReverseOrder, stress::StripedWorkers, Kernel,
    TransformScratch, PANEL_W,
};

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    prop_oneof![Just(Kernel::Cdf97), Just(Kernel::Cdf53), Just(Kernel::Haar)]
}

fn volume_strategy() -> impl Strategy<Value = (Vec<f64>, [usize; 3])> {
    (1usize..=20, 1usize..=20, 1usize..=12).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        prop::collection::vec(-1e4f64..1e4, n..=n).prop_map(move |v| (v, [nx, ny, nz]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn perfect_reconstruction_any_shape((data, dims) in volume_strategy(),
                                        kernel in kernel_strategy(),
                                        extra_levels in 0usize..3) {
        let rule = levels_for_dims(dims);
        // Also exercise levels beyond the rule (driver must handle them).
        let levels = [rule[0] + extra_levels, rule[1] + extra_levels, rule[2] + extra_levels];
        let mut work = data.clone();
        forward_3d(&mut work, dims, levels, kernel);
        inverse_3d(&mut work, dims, levels, kernel);
        let scale = data.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in data.iter().zip(&work) {
            prop_assert!((a - b).abs() <= scale * 1e-10,
                         "PR violation: {a} vs {b} (dims {dims:?}, kernel {kernel:?})");
        }
    }

    #[test]
    fn energy_roughly_preserved_cdf97((data, dims) in volume_strategy()) {
        let levels = levels_for_dims(dims);
        let mut work = data.clone();
        forward_3d(&mut work, dims, levels, Kernel::Cdf97);
        let e_in: f64 = data.iter().map(|v| v * v).sum();
        let e_out: f64 = work.iter().map(|v| v * v).sum();
        if e_in > 1e-12 {
            let ratio = e_out / e_in;
            // Biorthogonal, near-orthogonal: bounded drift even on noise.
            prop_assert!((0.5..2.0).contains(&ratio), "energy ratio {ratio}");
        }
    }

    #[test]
    fn partial_inverse_consistent_with_full((data, dims) in volume_strategy()) {
        // skip_finest = 0 must equal the full inverse.
        let levels = levels_for_dims(dims);
        let mut a = data.clone();
        forward_3d(&mut a, dims, levels, Kernel::Cdf97);
        let mut b = a.clone();
        inverse_3d(&mut a, dims, levels, Kernel::Cdf97);
        inverse_3d_partial(&mut b, dims, levels, 0, Kernel::Cdf97);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn coarse_dims_shrink_monotonically(nx in 1usize..200, ny in 1usize..200, nz in 1usize..200) {
        let dims = [nx, ny, nz];
        let levels = levels_for_dims(dims);
        let mut prev = dims;
        for skip in 1..=6usize {
            let c = coarse_dims(dims, levels, skip);
            for d in 0..3 {
                prop_assert!(c[d] <= prev[d]);
                prop_assert!(c[d] >= 1);
            }
            prev = c;
        }
    }

    #[test]
    fn level_rule_monotone(n in 1usize..100000) {
        // num_levels never decreases as n grows, and is capped at 6.
        let l = num_levels(n);
        prop_assert!(l <= 6);
        prop_assert!(num_levels(n + 1) >= l);
    }
}

/// Shapes that stress the panel machinery: axes crossing [`PANEL_W`]
/// (full + partial panels), prime and odd lengths, and axes shorter than
/// 8 where `num_levels` is 0 and the pass must be skipped identically.
fn panel_axis() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..8,                          // below the level-rule threshold
        Just(7usize),                       // prime
        Just(13usize),
        Just(PANEL_W - 1),                  // one line short of a panel
        Just(PANEL_W),
        Just(PANEL_W + 1),
        8usize..=2 * PANEL_W + 3,
    ]
}

fn panel_volume_strategy() -> impl Strategy<Value = (Vec<f64>, [usize; 3])> {
    (panel_axis(), panel_axis(), panel_axis()).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        prop::collection::vec(-1e4f64..1e4, n..=n).prop_map(move |v| (v, [nx, ny, nz]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_forward_bit_identical_to_reference((data, dims) in panel_volume_strategy(),
                                                  kernel in kernel_strategy()) {
        let levels = levels_for_dims(dims);
        let mut per_line = data.clone();
        reference::forward_3d(&mut per_line, dims, levels, kernel);
        let mut blocked = data.clone();
        forward_3d(&mut blocked, dims, levels, kernel);
        // Bit-identical, not approximately equal: the panel scheme must
        // perform the exact same arithmetic as the per-line reference.
        prop_assert_eq!(per_line, blocked, "forward mismatch, dims {:?}", dims);
    }

    #[test]
    fn blocked_inverse_bit_identical_to_reference((data, dims) in panel_volume_strategy(),
                                                  kernel in kernel_strategy()) {
        let levels = levels_for_dims(dims);
        let mut coeffs = data.clone();
        forward_3d(&mut coeffs, dims, levels, kernel);
        let mut per_line = coeffs.clone();
        reference::inverse_3d(&mut per_line, dims, levels, kernel);
        let mut blocked = coeffs;
        inverse_3d(&mut blocked, dims, levels, kernel);
        prop_assert_eq!(per_line, blocked, "inverse mismatch, dims {:?}", dims);
    }

    #[test]
    fn blocked_2d_fields_bit_identical((data, dims) in (2usize..=2 * PANEL_W + 3, 2usize..=2 * PANEL_W + 3)
            .prop_flat_map(|(nx, ny)| {
                let n = nx * ny;
                prop::collection::vec(-1e3f64..1e3, n..=n).prop_map(move |v| (v, [nx, ny, 1]))
            }),
            kernel in kernel_strategy()) {
        // A 2D field is a dims[2] == 1 volume: the z pass is a no-op and
        // the y pass runs the strided panel path.
        let levels = levels_for_dims(dims);
        let mut per_line = data.clone();
        reference::forward_3d(&mut per_line, dims, levels, kernel);
        let mut blocked = data.clone();
        forward_3d(&mut blocked, dims, levels, kernel);
        prop_assert_eq!(per_line, blocked);
    }

    #[test]
    fn executor_order_and_worker_keying_do_not_change_bytes((data, dims) in panel_volume_strategy()) {
        let levels = levels_for_dims(dims);
        let kernel = Kernel::Cdf97;
        let mut serial = data.clone();
        forward_3d(&mut serial, dims, levels, kernel);

        let mut reversed = data.clone();
        let mut scratch = TransformScratch::new();
        forward_3d_with(&mut reversed, dims, levels, kernel, &ReverseOrder, &mut scratch);
        prop_assert_eq!(&serial, &reversed, "job order changed output");

        let mut striped = data.clone();
        let mut scratch = TransformScratch::new();
        forward_3d_with(&mut striped, dims, levels, kernel, &StripedWorkers(3), &mut scratch);
        prop_assert_eq!(&serial, &striped, "worker keying changed output");

        // Same for the inverse, reusing the (already grown) scratch.
        let mut inv_serial = serial.clone();
        inverse_3d(&mut inv_serial, dims, levels, kernel);
        let mut inv_striped = striped;
        inverse_3d_with(&mut inv_striped, dims, levels, kernel, &StripedWorkers(3), &mut scratch);
        prop_assert_eq!(inv_serial, inv_striped);
    }

    #[test]
    fn blocked_f32_bit_identical_and_reconstructs((data, dims) in panel_volume_strategy(),
                                                  kernel in kernel_strategy()) {
        // The f32 instantiation honors the same contracts as f64: blocked
        // == per-line reference bitwise, any executor schedule, and the
        // inverse reconstructs to f32 tolerance.
        let data32: Vec<f32> = data.iter().map(|&v| v as f32).collect();
        let levels = levels_for_dims(dims);
        let mut per_line = data32.clone();
        reference::forward_3d(&mut per_line, dims, levels, kernel);
        let mut blocked = data32.clone();
        forward_3d(&mut blocked, dims, levels, kernel);
        prop_assert_eq!(
            per_line.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            blocked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "f32 forward mismatch, dims {:?}", dims
        );

        let mut striped = data32.clone();
        let mut scratch = TransformScratch::<f32>::new();
        forward_3d_with(&mut striped, dims, levels, kernel, &StripedWorkers(3), &mut scratch);
        prop_assert_eq!(
            blocked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            striped.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "f32 worker keying changed output"
        );

        inverse_3d(&mut blocked, dims, levels, kernel);
        let scale: f32 = data32.iter().fold(1.0f32, |m, v| m.max(v.abs()));
        for (a, b) in data32.iter().zip(&blocked) {
            prop_assert!((a - b).abs() <= scale * 1e-4, "f32 roundtrip error: {a} vs {b}");
        }
    }

    #[test]
    fn partial_inverse_with_matches_allocating((data, dims) in panel_volume_strategy(),
                                               skip in 0usize..3) {
        let levels = levels_for_dims(dims);
        prop_assume!(levels.iter().all(|&l| l >= skip));
        let mut coeffs = data.clone();
        forward_3d(&mut coeffs, dims, levels, Kernel::Cdf97);
        let mut a = coeffs.clone();
        inverse_3d_partial(&mut a, dims, levels, skip, Kernel::Cdf97);
        let mut b = coeffs;
        let mut scratch = TransformScratch::new();
        inverse_3d_partial_with(
            &mut b, dims, levels, skip, Kernel::Cdf97, &StripedWorkers(3), &mut scratch,
        );
        prop_assert_eq!(a, b);
    }

    #[test]
    fn scratch_1d_variants_match_allocating(data in prop::collection::vec(-1e4f64..1e4, 2..300),
                                            kernel in kernel_strategy()) {
        let n = data.len();
        let levels = num_levels(n).max(1);
        let mut alloc = data.clone();
        forward_1d(&mut alloc, n, levels, kernel);
        let mut scratch = vec![0.0; n];
        let mut reuse = data.clone();
        forward_1d_with(&mut reuse, n, levels, kernel, &mut scratch);
        prop_assert_eq!(&alloc, &reuse);

        let mut alloc_inv = alloc.clone();
        inverse_1d(&mut alloc_inv, n, levels, kernel);
        let mut reuse_inv = reuse;
        inverse_1d_with(&mut reuse_inv, n, levels, kernel, &mut scratch);
        prop_assert_eq!(alloc_inv, reuse_inv);
    }
}
