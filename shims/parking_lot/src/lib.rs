//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: `Mutex::new` /
//! `Mutex::lock` with parking_lot's non-poisoning signature (`lock()`
//! returns the guard directly). A poisoned std mutex is recovered via
//! `into_inner` — matching parking_lot semantics, where panicking while
//! holding a lock does not poison it.

/// RAII guard; derefs to the protected data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Non-poisoning mutex with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn basic_lock_unlock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("die while holding the lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 1);
    }
}
