//! Staged streaming pipeline: bounded-memory compress/decompress over
//! `Read`/`Write` endpoints.
//!
//! The non-streaming API ([`Sperr::compress`]) holds the whole volume in
//! RAM. This module drives the same per-chunk pipeline — ingest →
//! wavelet → SPECK → outlier → lossless → ordered container emit —
//! incrementally: the producer (caller thread) reads raw scalars row by
//! row and assembles chunk buffers, replicated middle stages encode or
//! decode chunks on the [`WorkerPool`], and an in-flight budget enforces
//! back-pressure so peak raw-data memory is `O(in_flight × chunk)`
//! instead of `O(volume)`. (Compressed chunk payloads still accumulate
//! until the container header — which precedes them — can be written, so
//! total memory is `O(in_flight × chunk + compressed_output)`.)
//!
//! # Back-pressure protocol
//!
//! One mutex-guarded [`PipeState`] plus two condvars per direction:
//!
//! * compress: the producer blocks acquiring a chunk buffer while
//!   `in_flight ≥ budget`; workers wake it when they return a buffer.
//!   Workers block waiting for *their* chunk index to appear in the
//!   ready mailbox; the producer wakes them as chunks complete.
//! * decompress: workers block acquiring a decode token (granted in
//!   strict chunk-index order — see below); the emitter wakes them after
//!   writing out a layer. The emitter blocks waiting for the decoded
//!   chunks of the current layer.
//!
//! Decode tokens are granted in ascending chunk order: the pool's job
//! counter hands indices out in order, but lock-acquisition races could
//! otherwise let later chunks hog the whole budget while the emitter
//! waits on an earlier layer — a deadlock. With ordered grants the
//! lowest un-emitted layer always makes progress.
//!
//! # Cancellation semantics
//!
//! The first failure — reader/writer error, decode error (strict mode) or
//! a caught worker panic — stores a typed [`SperrError`] in the shared
//! state and broadcasts both condvars. Every wait loop re-checks the
//! error and bails; chunks already being encoded/decoded run to
//! completion (draining, not aborting, keeps buffer accounting exact);
//! the producer stops at the next row boundary. The pool batch always
//! drains fully, so no worker is left blocked and the pool stays usable.
//!
//! # Fault taxonomy
//!
//! * [`SperrError::Io`] — a `Read`/`Write` endpoint failed; carries the
//!   pipeline stage (`stream.ingest` / `stream.emit`) and chunk index
//!   when attributable.
//! * [`SperrError::Codec`] — a typed codec error (corrupt stream,
//!   truncation, limit violations); carries the stage label that raised
//!   it and the chunk index when per-chunk.
//! * [`SperrError::Panic`] — a worker panicked; carries the captured
//!   panic message and the last stage label the panicking thread
//!   entered. Never escapes as an unwind.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use crate::chunk::{chunk_grid, ChunkSpec};
use crate::compressor::{
    chunk_offsets, verify_chunk_crcs, Sperr, OUTER_LOSSLESS, OUTER_RAW, PER_CHUNK_HEADER_BITS,
};
use crate::container::{read_container, write_container, ChunkEntry, Header, Mode};
use crate::crc32::crc32;
use crate::faultpoint;
use crate::pipeline::{
    compress_chunk_bpp_with, compress_chunk_pwe_with, decompress_chunk_with, ChunkEncoding,
    ScratchArena,
};
use crate::pool::{lock_ignore_poison, panic_payload_message, PerWorker, WorkerPool};
use crate::stats::{metric_labels, stage_labels, CompressionStats, StageTimes};
use crate::ChunkStatus;
use sperr_compress_api::{Bound, CompressError, Precision};
use sperr_simd::Float;
use sperr_telemetry::timed;

/// Stage labels specific to the streaming pipeline (the per-chunk codec
/// stages reuse [`stage_labels`]).
pub const STAGE_INGEST: &str = "stream.ingest";
/// See [`STAGE_INGEST`].
pub const STAGE_EMIT: &str = "stream.emit";
/// See [`STAGE_INGEST`].
pub const STAGE_CONTAINER: &str = "stream.container";
/// Fallback stage label when a panic cannot be attributed more precisely.
pub const STAGE_PIPELINE: &str = "stream.pipeline";

/// Typed error for the streaming pipeline. Every failure mode of
/// [`Sperr::compress_stream`] / [`Sperr::decompress_stream`] surfaces as
/// one of these — never a panic, never a hang.
#[derive(Debug, Clone, PartialEq)]
pub enum SperrError {
    /// A codec-level failure (corrupt/truncated/limit-violating stream,
    /// invalid parameters).
    Codec {
        /// Pipeline stage that raised the error.
        stage: &'static str,
        /// Chunk index, when the failure is attributable to one chunk.
        chunk: Option<usize>,
        /// The underlying typed codec error.
        source: CompressError,
    },
    /// A `Read`/`Write` endpoint failed.
    Io {
        /// Pipeline stage performing the I/O (`stream.ingest` or
        /// `stream.emit`).
        stage: &'static str,
        /// Chunk index, when attributable.
        chunk: Option<usize>,
        /// The I/O error kind, preserved for caller dispatch (e.g. the
        /// CLI's exit-code mapping).
        kind: std::io::ErrorKind,
        /// The error's display text.
        message: String,
    },
    /// A worker panicked; the pipeline cancelled deterministically and
    /// captured the payload.
    Panic {
        /// Last stage label the panicking thread entered.
        stage: &'static str,
        /// Chunk index being processed, when known.
        chunk: Option<usize>,
        /// The captured panic message.
        message: String,
    },
}

impl SperrError {
    fn io(stage: &'static str, chunk: Option<usize>, e: &std::io::Error) -> Self {
        SperrError::Io { stage, chunk, kind: e.kind(), message: e.to_string() }
    }

    /// The underlying codec error, when this is a codec failure.
    pub fn codec_source(&self) -> Option<&CompressError> {
        match self {
            SperrError::Codec { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl std::fmt::Display for SperrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let chunk = |c: &Option<usize>| match c {
            Some(i) => format!(" (chunk {i})"),
            None => String::new(),
        };
        match self {
            SperrError::Codec { stage, chunk: c, source } => {
                write!(f, "[{stage}{}] {source}", chunk(c))
            }
            SperrError::Io { stage, chunk: c, kind, message } => {
                write!(f, "[{stage}{}] i/o error ({kind:?}): {message}", chunk(c))
            }
            SperrError::Panic { stage, chunk: c, message } => {
                write!(f, "[{stage}{}] worker panicked: {message}", chunk(c))
            }
        }
    }
}

impl std::error::Error for SperrError {}

/// Outcome accounting for one streaming run.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Raw bytes consumed from the reader.
    pub bytes_in: u64,
    /// Bytes written to the writer.
    pub bytes_out: u64,
    /// Chunks processed.
    pub n_chunks: usize,
    /// The effective in-flight chunk budget the run enforced (config
    /// value clamped up to one chunk layer; see
    /// [`SperrConfig::in_flight_chunks`](crate::SperrConfig)).
    pub in_flight_budget: usize,
    /// Highest number of raw chunk buffers simultaneously in flight —
    /// always `≤ in_flight_budget`; the bounded-memory tests assert on
    /// this.
    pub peak_in_flight: usize,
    /// Codec statistics (same accounting as the non-streaming path).
    pub stats: CompressionStats,
}

/// Report of a resilient streaming decompression: the usual accounting
/// plus one [`ChunkStatus`] per chunk, in chunk order.
#[derive(Debug, Clone)]
pub struct StreamResilientReport {
    /// Run accounting.
    pub report: StreamReport,
    /// Per-chunk outcome, in chunk-grid order.
    pub statuses: Vec<ChunkStatus>,
}

impl StreamResilientReport {
    /// True when every chunk decoded cleanly.
    pub fn all_ok(&self) -> bool {
        self.statuses.iter().all(|s| matches!(s, ChunkStatus::Ok))
    }
}

/// Geometry of the chunk grid as seen by the streaming drivers: chunks
/// arrive (and leave) in z-layers because the raw volume is streamed in
/// x-fastest row-major order.
struct LayerGeometry {
    dims: [usize; 3],
    chunk_dims: [usize; 3],
    /// Chunk-grid extent per axis.
    nx: usize,
    ny: usize,
    nz: usize,
}

impl LayerGeometry {
    fn new(dims: [usize; 3], chunk_dims: [usize; 3]) -> Self {
        LayerGeometry {
            dims,
            chunk_dims,
            nx: dims[0].div_ceil(chunk_dims[0]),
            ny: dims[1].div_ceil(chunk_dims[1]),
            nz: dims[2].div_ceil(chunk_dims[2]),
        }
    }

    /// Chunks per z-layer.
    fn layer_len(&self) -> usize {
        self.nx * self.ny
    }

    /// Inclusive-exclusive z range of layer `l`.
    fn z_range(&self, l: usize) -> (usize, usize) {
        let z0 = l * self.chunk_dims[2];
        (z0, (z0 + self.chunk_dims[2]).min(self.dims[2]))
    }

    /// Last volume-y covered by chunk row `cy`.
    fn last_y(&self, cy: usize) -> usize {
        ((cy + 1) * self.chunk_dims[1]).min(self.dims[1]) - 1
    }
}

/// Reads raw little-endian scalars row by row, converting to the
/// pipeline's sample type `T` exactly like the CLI's file reader (so
/// streaming output is byte-identical to the file path). The `f64`
/// pipeline widens Single wire data (the legacy ingest); the `f32`
/// pipeline reads Single wire data natively (the f32→f64→f32 hop in
/// `from_f64` is exact).
struct ScalarReader<R: Read, T: Float = f64> {
    inner: R,
    precision: Precision,
    row_bytes: Vec<u8>,
    row: Vec<T>,
    bytes_in: u64,
}

impl<R: Read, T: Float> ScalarReader<R, T> {
    fn new(inner: R, precision: Precision, row_len: usize) -> Self {
        let scalar = match precision {
            Precision::Single => 4,
            Precision::Double => 8,
        };
        ScalarReader {
            inner,
            precision,
            row_bytes: vec![0u8; row_len * scalar],
            row: vec![T::ZERO; row_len],
            bytes_in: 0,
        }
    }

    /// Reads one x-row of scalars; short reads surface as
    /// `ErrorKind::UnexpectedEof`.
    fn read_row(&mut self) -> Result<&[T], SperrError> {
        self.inner
            .read_exact(&mut self.row_bytes)
            .map_err(|e| SperrError::io(STAGE_INGEST, None, &e))?;
        self.bytes_in += self.row_bytes.len() as u64;
        match self.precision {
            Precision::Single => {
                for (dst, src) in self.row.iter_mut().zip(self.row_bytes.chunks_exact(4)) {
                    *dst =
                        T::from_f64(f32::from_le_bytes([src[0], src[1], src[2], src[3]]) as f64);
                }
            }
            Precision::Double => {
                for (dst, src) in self.row.iter_mut().zip(self.row_bytes.chunks_exact(8)) {
                    *dst = T::from_f64(f64::from_le_bytes([
                        src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7],
                    ]));
                }
            }
        }
        Ok(&self.row)
    }
}

/// Writes `f64` rows as raw little-endian scalars, matching the CLI's
/// file writer byte for byte.
struct ScalarWriter<W: Write> {
    inner: W,
    precision: Precision,
    buf: Vec<u8>,
    bytes_out: u64,
}

impl<W: Write> ScalarWriter<W> {
    fn new(inner: W, precision: Precision) -> Self {
        ScalarWriter { inner, precision, buf: Vec::new(), bytes_out: 0 }
    }

    fn write_row(&mut self, row: &[f64]) -> Result<(), SperrError> {
        self.buf.clear();
        match self.precision {
            Precision::Single => {
                for &v in row {
                    self.buf.extend_from_slice(&(v as f32).to_le_bytes());
                }
            }
            Precision::Double => {
                for &v in row {
                    self.buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        self.inner
            .write_all(&self.buf)
            .map_err(|e| SperrError::io(STAGE_EMIT, None, &e))?;
        self.bytes_out += self.buf.len() as u64;
        Ok(())
    }

    fn write_all_at_once(&mut self, bytes: &[u8]) -> Result<(), SperrError> {
        self.inner
            .write_all(bytes)
            .map_err(|e| SperrError::io(STAGE_EMIT, None, &e))?;
        self.bytes_out += bytes.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), SperrError> {
        self.inner.flush().map_err(|e| SperrError::io(STAGE_EMIT, None, &e))
    }
}

/// Sink for the ingest loop: hands out chunk buffers and receives them
/// back filled. The serial driver encodes inline; the parallel driver's
/// sink is the back-pressured handoff to the worker stages.
trait ChunkSink<T> {
    fn acquire(&mut self, idx: usize) -> Result<Vec<T>, SperrError>;
    fn complete(&mut self, idx: usize, buf: Vec<T>) -> Result<(), SperrError>;
}

/// Streams the raw volume row by row, assembling each chunk's x-fastest
/// buffer in exactly the order `extract_chunk_into` would, and handing
/// completed chunks to the sink. Chunks complete as early as possible
/// (during the layer's last z-plane, per chunk row) so downstream stages
/// overlap with ingest.
fn ingest_volume<R: Read, T: Float>(
    rd: &mut ScalarReader<R, T>,
    geo: &LayerGeometry,
    grid: &[ChunkSpec],
    sink: &mut dyn ChunkSink<T>,
) -> Result<(), SperrError> {
    let layer_len = geo.layer_len();
    for l in 0..geo.nz {
        let (z0, z1) = geo.z_range(l);
        let base = l * layer_len;
        let mut bufs: Vec<Option<Vec<T>>> = Vec::with_capacity(layer_len);
        for p in 0..layer_len {
            let idx = base + p;
            let mut b = sink.acquire(idx)?;
            b.clear();
            b.reserve(grid[idx].len());
            bufs.push(Some(b));
        }
        for z in z0..z1 {
            faultpoint::stage(STAGE_INGEST);
            for y in 0..geo.dims[1] {
                let row = rd.read_row()?;
                let cy = y / geo.chunk_dims[1];
                for cx in 0..geo.nx {
                    let p = cy * geo.nx + cx;
                    let spec = &grid[base + p];
                    let ox = spec.offset[0];
                    if let Some(buf) = bufs[p].as_mut() {
                        buf.extend_from_slice(&row[ox..ox + spec.dims[0]]);
                    }
                }
                // Chunk row (cy, all cx) completes on its last (y, z).
                if z + 1 == z1 && y == geo.last_y(cy) {
                    for cx in 0..geo.nx {
                        let p = cy * geo.nx + cx;
                        if let Some(buf) = bufs[p].take() {
                            sink.complete(base + p, buf)?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Shared state of one parallel streaming run. Generic over the raw
/// sample type the compress direction buffers (`f64` on the decompress
/// side, whose decoded chunks are widened before entering the mailbox).
struct PipeState<T> {
    /// Completed chunk buffers awaiting their worker (compress) or the
    /// emitter (decompress): index → payload.
    ready: HashMap<usize, ReadyChunk<T>>,
    /// Returned raw buffers for reuse (compress only).
    free: Vec<Vec<T>>,
    /// Buffers/tokens currently in flight.
    in_flight: usize,
    /// High-water mark of `in_flight`.
    peak: usize,
    /// Next chunk index allowed to take a decode token (decompress);
    /// tokens are granted in ascending order to keep the lowest
    /// un-emitted layer progressing.
    next_token: usize,
    /// First failure; set once, checked by every wait loop.
    error: Option<SperrError>,
}

enum ReadyChunk<T> {
    Raw(Vec<T>),
    Decoded { data: Vec<T>, status: ChunkStatus, times: StageTimes },
}

struct PipeShared<T> {
    state: Mutex<PipeState<T>>,
    /// Wakes the producer/emitter side.
    caller_cv: Condvar,
    /// Wakes worker-side waits.
    worker_cv: Condvar,
    budget: usize,
}

impl<T> PipeShared<T> {
    fn new(budget: usize) -> Self {
        PipeShared {
            state: Mutex::new(PipeState {
                ready: HashMap::new(),
                free: Vec::new(),
                in_flight: 0,
                peak: 0,
                next_token: 0,
                error: None,
            }),
            caller_cv: Condvar::new(),
            worker_cv: Condvar::new(),
            budget,
        }
    }

    /// Records the first error and wakes every waiter on both sides.
    fn cancel(&self, err: SperrError) {
        let mut st = lock_ignore_poison(&self.state);
        if st.error.is_none() {
            st.error = Some(err);
        }
        drop(st);
        self.caller_cv.notify_all();
        self.worker_cv.notify_all();
    }

    fn take_error(&self) -> Option<SperrError> {
        lock_ignore_poison(&self.state).error.take()
    }

    fn peak_in_flight(&self) -> usize {
        lock_ignore_poison(&self.state).peak
    }
}

/// Raw pointer wrapper for disjoint per-chunk result writes from pool
/// jobs (same pattern as `WorkerPool::map`).
struct SlotPtr<T>(*mut Option<T>);
unsafe impl<T> Send for SlotPtr<T> {}
unsafe impl<T> Sync for SlotPtr<T> {}
impl<T> SlotPtr<T> {
    /// # Safety
    ///
    /// `i` in bounds; each index written by exactly one job.
    unsafe fn put(&self, i: usize, v: T) {
        *self.0.add(i) = Some(v);
    }
}

impl Sperr {
    /// Resolved in-flight chunk budget: the configured value (0 = auto,
    /// 2 × worker threads), clamped up to one chunk layer — a row-major
    /// stream cannot complete any chunk without buffering its whole
    /// z-layer.
    fn resolve_budget(&self, threads: usize, layer_len: usize) -> usize {
        let configured = if self.config().in_flight_chunks == 0 {
            2 * threads
        } else {
            self.config().in_flight_chunks
        };
        configured.max(layer_len).max(1)
    }

    /// Streaming compression: reads `dims[0]·dims[1]·dims[2]` raw
    /// little-endian scalars (f32 or f64 per `precision`, x fastest) from
    /// `reader` and writes a SPERR stream to `writer`. Output is
    /// byte-identical to [`Sperr::compress`] on the same data; peak
    /// raw-data memory is bounded by the in-flight chunk budget (times
    /// chunk size) rather than the volume size.
    ///
    /// PSNR bounds are rejected: they require full-volume statistics
    /// (the data range) that a single pass cannot provide.
    pub fn compress_stream<R: Read, W: Write>(
        &self,
        reader: R,
        writer: W,
        dims: [usize; 3],
        precision: Precision,
        bound: Bound,
    ) -> Result<StreamReport, SperrError> {
        // Outer guard: a panic anywhere on the caller thread (e.g. in
        // container assembly, after the pool has drained) still surfaces
        // as a typed error — nothing unwinds out of the public API.
        catch_unwind(AssertUnwindSafe(|| {
            self.compress_stream_inner::<f64, R, W>(reader, writer, dims, precision, false, bound)
        }))
        .unwrap_or_else(|p| {
            Err(SperrError::Panic {
                stage: faultpoint::last_stage(),
                chunk: None,
                message: panic_payload_message(p.as_ref()),
            })
        })
    }

    /// Streaming compression through the f32-native pipeline: reads raw
    /// little-endian `f32` scalars (x fastest) from `reader` and writes an
    /// f32-native SPERR stream (precision tag 2), byte-identical to
    /// [`Sperr::compress_f32`] on the same data. Contrast with
    /// [`Sperr::compress_stream`] at `Precision::Single`, which keeps the
    /// legacy behavior of widening f32 input into the f64 pipeline.
    pub fn compress_stream_f32<R: Read, W: Write>(
        &self,
        reader: R,
        writer: W,
        dims: [usize; 3],
        bound: Bound,
    ) -> Result<StreamReport, SperrError> {
        // Outer guard: see `compress_stream`.
        catch_unwind(AssertUnwindSafe(|| {
            self.compress_stream_inner::<f32, R, W>(
                reader,
                writer,
                dims,
                Precision::Single,
                true,
                bound,
            )
        }))
        .unwrap_or_else(|p| {
            Err(SperrError::Panic {
                stage: faultpoint::last_stage(),
                chunk: None,
                message: panic_payload_message(p.as_ref()),
            })
        })
    }

    fn compress_stream_inner<T: Float, R: Read, W: Write>(
        &self,
        reader: R,
        writer: W,
        dims: [usize; 3],
        precision: Precision,
        native_f32: bool,
        bound: Bound,
    ) -> Result<StreamReport, SperrError> {
        let invalid = |msg: String| SperrError::Codec {
            stage: STAGE_INGEST,
            chunk: None,
            source: CompressError::Invalid(msg),
        };
        if dims.iter().any(|&d| d == 0) {
            return Err(invalid("empty field".into()));
        }
        let (mode, bound_value) = match bound {
            Bound::Pwe(t) => {
                if !(t > 0.0) || !t.is_finite() {
                    return Err(invalid(format!("invalid tolerance {t}")));
                }
                (Mode::Pwe, t)
            }
            Bound::Bpp(r) => {
                if !(r > 0.0) || !r.is_finite() {
                    return Err(invalid(format!("invalid bitrate {r}")));
                }
                (Mode::Bpp, r)
            }
            Bound::Psnr(_) => {
                return Err(SperrError::Codec {
                    stage: STAGE_INGEST,
                    chunk: None,
                    source: CompressError::Unsupported(
                        "PSNR-bounded compression needs the full-volume data range; \
                         unavailable in single-pass streaming",
                    ),
                });
            }
        };
        let total_points: usize = dims.iter().product();
        let _run = sperr_telemetry::span!("sperr.compress_stream", total_points);
        let _op = sperr_telemetry::OpTimer::new(metric_labels::OP_COMPRESS_STREAM);

        let cfg = self.config().clone();
        let grid = chunk_grid(dims, cfg.chunk_dims);
        let geo = LayerGeometry::new(dims, cfg.chunk_dims);
        let n_chunks = grid.len();
        let threads = self.effective_threads(&grid);
        let budget = self.resolve_budget(threads, geo.layer_len());
        sperr_telemetry::record_units(metric_labels::STREAM_IN_FLIGHT_BUDGET, budget as u64);

        let mut rd = ScalarReader::<R, T>::new(reader, precision, dims[0]);
        let mut results: Vec<Option<ChunkEncoding>> = (0..n_chunks).map(|_| None).collect();
        let encode_chunk = |data: &[T],
                            spec: &ChunkSpec,
                            pool: &WorkerPool,
                            arena: &mut ScratchArena<T>|
         -> ChunkEncoding {
            match mode {
                Mode::Pwe => compress_chunk_pwe_with(
                    data, spec.dims, bound_value, cfg.q_factor, cfg.kernel, pool, arena,
                ),
                Mode::Bpp => {
                    let bits = ((bound_value * spec.len() as f64) as usize)
                        .saturating_sub(PER_CHUNK_HEADER_BITS);
                    compress_chunk_bpp_with(data, spec.dims, bits, cfg.kernel, pool, arena)
                }
                // PSNR was rejected above; this arm cannot execute.
                Mode::Rmse => unreachable!("PSNR mode rejected for streaming"),
            }
        };

        let peak_in_flight;
        if threads == 1 {
            // Serial driver: ingest a layer, encode its chunks inline,
            // reuse the buffers. In flight = one layer by construction.
            struct SerialSink<'a, T: Float> {
                free: Vec<Vec<T>>,
                in_flight: usize,
                peak: usize,
                grid: &'a [ChunkSpec],
                results: &'a mut [Option<ChunkEncoding>],
                encode: &'a dyn Fn(
                    &[T],
                    &ChunkSpec,
                    &WorkerPool,
                    &mut ScratchArena<T>,
                ) -> ChunkEncoding,
                pool: &'a WorkerPool,
                arena: ScratchArena<T>,
            }
            impl<T: Float> ChunkSink<T> for SerialSink<'_, T> {
                fn acquire(&mut self, _idx: usize) -> Result<Vec<T>, SperrError> {
                    self.in_flight += 1;
                    self.peak = self.peak.max(self.in_flight);
                    sperr_telemetry::record_units(
                        metric_labels::STREAM_IN_FLIGHT,
                        self.in_flight as u64,
                    );
                    Ok(self.free.pop().unwrap_or_default())
                }
                fn complete(&mut self, idx: usize, buf: Vec<T>) -> Result<(), SperrError> {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        (self.encode)(&buf, &self.grid[idx], self.pool, &mut self.arena)
                    }));
                    self.in_flight -= 1;
                    sperr_telemetry::record_units(
                        metric_labels::STREAM_IN_FLIGHT,
                        self.in_flight as u64,
                    );
                    self.free.push(buf);
                    match r {
                        Ok(enc) => {
                            self.results[idx] = Some(enc);
                            Ok(())
                        }
                        Err(p) => Err(SperrError::Panic {
                            stage: faultpoint::last_stage(),
                            chunk: Some(idx),
                            message: panic_payload_message(p.as_ref()),
                        }),
                    }
                }
            }
            let pool = WorkerPool::inline();
            let mut sink = SerialSink {
                free: Vec::new(),
                in_flight: 0,
                peak: 0,
                grid: &grid,
                results: &mut results,
                encode: &encode_chunk,
                pool: &pool,
                arena: ScratchArena::new(),
            };
            ingest_volume(&mut rd, &geo, &grid, &mut sink)?;
            sink.arena.record_footprint();
            peak_in_flight = sink.peak;
        } else {
            let shared = PipeShared::new(budget);
            let results_ptr = SlotPtr(results.as_mut_ptr());
            let grid_ref = &grid;
            let shared_ref = &shared;
            let run = WorkerPool::scoped(threads, |pool| {
                let arenas = PerWorker::new(pool.threads(), ScratchArena::new);
                let worker = |i: usize, w: usize| {
                    // Wait for chunk i (or cancellation).
                    let buf = {
                        let mut st = lock_ignore_poison(&shared_ref.state);
                        loop {
                            if st.error.is_some() {
                                return;
                            }
                            if let Some(ReadyChunk::Raw(b)) = st.ready.remove(&i) {
                                break b;
                            }
                            st = shared_ref
                                .worker_cv
                                .wait(st)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    // SAFETY: one thread per worker slot (pool contract).
                    let arena = unsafe { arenas.get(w) };
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        encode_chunk(&buf, &grid_ref[i], pool, arena)
                    }));
                    match r {
                        // SAFETY: each job writes exactly its own slot.
                        Ok(enc) => unsafe { results_ptr.put(i, enc) },
                        Err(p) => shared_ref.cancel(SperrError::Panic {
                            stage: faultpoint::last_stage(),
                            chunk: Some(i),
                            message: panic_payload_message(p.as_ref()),
                        }),
                    }
                    // Return the buffer and unblock the producer.
                    let mut st = lock_ignore_poison(&shared_ref.state);
                    st.free.push(buf);
                    st.in_flight -= 1;
                    sperr_telemetry::record_units(
                        metric_labels::STREAM_IN_FLIGHT,
                        st.in_flight as u64,
                    );
                    drop(st);
                    shared_ref.caller_cv.notify_all();
                };
                let producer = || {
                    struct ParallelSink<'a, T> {
                        shared: &'a PipeShared<T>,
                    }
                    impl<T: Float> ChunkSink<T> for ParallelSink<'_, T> {
                        fn acquire(&mut self, _idx: usize) -> Result<Vec<T>, SperrError> {
                            let mut st = lock_ignore_poison(&self.shared.state);
                            loop {
                                if let Some(e) = &st.error {
                                    return Err(e.clone());
                                }
                                if st.in_flight < self.shared.budget {
                                    st.in_flight += 1;
                                    st.peak = st.peak.max(st.in_flight);
                                    sperr_telemetry::record_units(
                                        metric_labels::STREAM_IN_FLIGHT,
                                        st.in_flight as u64,
                                    );
                                    return Ok(st.free.pop().unwrap_or_default());
                                }
                                st = self
                                    .shared
                                    .caller_cv
                                    .wait(st)
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                            }
                        }
                        fn complete(&mut self, idx: usize, buf: Vec<T>) -> Result<(), SperrError> {
                            let mut st = lock_ignore_poison(&self.shared.state);
                            if let Some(e) = &st.error {
                                return Err(e.clone());
                            }
                            st.ready.insert(idx, ReadyChunk::Raw(buf));
                            drop(st);
                            self.shared.worker_cv.notify_all();
                            Ok(())
                        }
                    }
                    let mut sink = ParallelSink { shared: shared_ref };
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        ingest_volume(&mut rd, &geo, grid_ref, &mut sink)
                    }));
                    match body {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => shared_ref.cancel(e),
                        Err(p) => shared_ref.cancel(SperrError::Panic {
                            stage: faultpoint::last_stage(),
                            chunk: None,
                            message: panic_payload_message(p.as_ref()),
                        }),
                    }
                };
                let run = pool.run_with_producer(n_chunks, producer, &worker);
                for w in 0..pool.threads() {
                    // SAFETY: all jobs have completed; no concurrent users.
                    unsafe { arenas.get(w) }.record_footprint();
                }
                run
            });
            if let Some(e) = shared.take_error() {
                return Err(e);
            }
            if let Err(jp) = run {
                return Err(SperrError::Panic {
                    stage: STAGE_PIPELINE,
                    chunk: None,
                    message: jp.message,
                });
            }
            peak_in_flight = shared.peak_in_flight();
        }

        // All chunks encoded (any failure returned above); assemble and
        // emit the container exactly like the non-streaming path.
        let mut encoded = Vec::with_capacity(n_chunks);
        for (i, slot) in results.into_iter().enumerate() {
            match slot {
                Some(enc) => encoded.push(enc),
                None => {
                    return Err(SperrError::Panic {
                        stage: STAGE_PIPELINE,
                        chunk: Some(i),
                        message: "chunk result missing after pipeline drain".into(),
                    })
                }
            }
        }
        let mut stats = CompressionStats {
            num_points: total_points,
            num_chunks: n_chunks,
            ..CompressionStats::default()
        };
        for enc in &encoded {
            stats.speck_bits += enc.speck_bits;
            stats.outlier_bits += enc.outlier_bits;
            stats.num_outliers += enc.num_outliers as usize;
            stats.stage_times.accumulate(&enc.times);
            stats.coeff_sq_error += enc.coeff_sq_error;
        }
        faultpoint::stage(STAGE_CONTAINER);
        let header = Header {
            mode,
            kernel: cfg.kernel,
            precision,
            native_f32,
            dims,
            chunk_dims: cfg.chunk_dims,
            bound_value,
            n_chunks,
        };
        let (container, container_time) = timed(stage_labels::CONTAINER_WRITE, || {
            write_container(&header, &encoded, cfg.container_version)
        });
        stats.container_bytes = container.len();
        stats.stage_times.container = container_time;
        let mut out = Vec::with_capacity(container.len() + 1);
        if cfg.lossless {
            let (packed, lossless_time) =
                timed(stage_labels::LOSSLESS_COMPRESS, || sperr_lossless::compress(&container));
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&packed);
            stats.stage_times.lossless = lossless_time;
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&container);
        }
        stats.output_bytes = out.len();

        faultpoint::stage(STAGE_EMIT);
        let mut wr = ScalarWriter::new(writer, precision);
        wr.write_all_at_once(&out)?;
        wr.flush()?;
        Ok(StreamReport {
            bytes_in: rd.bytes_in,
            bytes_out: wr.bytes_out,
            n_chunks,
            in_flight_budget: budget,
            peak_in_flight,
            stats,
        })
    }

    /// Streaming strict decompression: reads a SPERR stream from `reader`
    /// and writes the raw little-endian scalar volume (x fastest) to
    /// `writer`, in `out_precision` (or the stream's recorded precision
    /// when `None`). Any chunk failure (checksum mismatch, decode error)
    /// fails the whole run with a typed error; see
    /// [`Sperr::decompress_stream_resilient`] for the
    /// salvage-what-you-can variant. Decoded chunks held in memory are
    /// bounded by the in-flight budget.
    pub fn decompress_stream<R: Read, W: Write>(
        &self,
        reader: R,
        writer: W,
        out_precision: Option<Precision>,
    ) -> Result<StreamReport, SperrError> {
        self.decompress_stream_impl(reader, writer, out_precision, false).map(|r| r.report)
    }

    /// Streaming resilient decompression: like
    /// [`Sperr::decompress_stream`], but a corrupt chunk yields its
    /// [`ChunkStatus`] and a neutral zero-filled region while the stream
    /// continues — the streaming form of
    /// [`Sperr::decompress_resilient`].
    pub fn decompress_stream_resilient<R: Read, W: Write>(
        &self,
        reader: R,
        writer: W,
        out_precision: Option<Precision>,
    ) -> Result<StreamResilientReport, SperrError> {
        self.decompress_stream_impl(reader, writer, out_precision, true)
    }

    fn decompress_stream_impl<R: Read, W: Write>(
        &self,
        reader: R,
        writer: W,
        out_precision: Option<Precision>,
        resilient: bool,
    ) -> Result<StreamResilientReport, SperrError> {
        // Outer guard: see `compress_stream`.
        catch_unwind(AssertUnwindSafe(|| {
            self.decompress_stream_inner(reader, writer, out_precision, resilient)
        }))
        .unwrap_or_else(|p| {
            Err(SperrError::Panic {
                stage: faultpoint::last_stage(),
                chunk: None,
                message: panic_payload_message(p.as_ref()),
            })
        })
    }

    fn decompress_stream_inner<R: Read, W: Write>(
        &self,
        mut reader: R,
        writer: W,
        out_precision: Option<Precision>,
        resilient: bool,
    ) -> Result<StreamResilientReport, SperrError> {
        // The container places header + chunk table + checksums before
        // the payloads, and the lossless outer pass spans everything, so
        // the compressed input must be held whole; what stays bounded is
        // the *decoded* side.
        let mut stream = Vec::new();
        faultpoint::stage(STAGE_INGEST);
        reader
            .read_to_end(&mut stream)
            .map_err(|e| SperrError::io(STAGE_INGEST, None, &e))?;
        let bytes_in = stream.len() as u64;
        let _run = sperr_telemetry::span!("sperr.decompress_stream", stream.len());
        let _op = sperr_telemetry::OpTimer::new(metric_labels::OP_DECOMPRESS_STREAM);

        let codec_err = |stage: &'static str, chunk: Option<usize>, source: CompressError| {
            SperrError::Codec { stage, chunk, source }
        };
        faultpoint::stage(STAGE_CONTAINER);
        let (container, _) = Sperr::unwrap_outer(&stream)
            .map_err(|e| codec_err(STAGE_CONTAINER, None, e))?;
        let parsed =
            read_container(&container).map_err(|e| codec_err(STAGE_CONTAINER, None, e))?;
        if !resilient {
            verify_chunk_crcs(&container, &parsed)
                .map_err(|e| codec_err(STAGE_CONTAINER, None, e))?;
        }
        let header = parsed.header.clone();
        let grid = chunk_grid(header.dims, header.chunk_dims);
        if grid.len() != parsed.entries.len() {
            return Err(codec_err(
                STAGE_CONTAINER,
                None,
                CompressError::Corrupt("chunk table size mismatch".into()),
            ));
        }
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let tolerance = match header.mode {
            Mode::Pwe => header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let geo = LayerGeometry::new(header.dims, header.chunk_dims);
        let n_chunks = grid.len();
        let threads = self.effective_threads(&grid);
        let budget = self.resolve_budget(threads, geo.layer_len());
        let kernel = header.kernel;
        let native_f32 = header.native_f32;
        sperr_telemetry::record_units(metric_labels::STREAM_IN_FLIGHT_BUDGET, budget as u64);

        // Decodes chunk i, honoring resilient semantics: Ok(status) with
        // a data buffer (zero-filled on per-chunk failure), Err on a
        // strict-mode failure.
        let decode_chunk = |i: usize,
                            pool: &WorkerPool,
                            arena: &mut ScratchArena|
         -> Result<(Vec<f64>, ChunkStatus, StageTimes), SperrError> {
            let e: &ChunkEntry = &parsed.entries[i];
            let start = offsets[i];
            let payload = &container[start..start + e.speck_len + e.outlier_len];
            let spec = &grid[i];
            if resilient {
                if let Some(crcs) = &parsed.chunk_crcs {
                    if crc32(payload) != crcs[i] {
                        return Ok((
                            vec![0.0; spec.len()],
                            ChunkStatus::ChecksumMismatch,
                            StageTimes::default(),
                        ));
                    }
                }
            }
            let (speck, outlier) = payload.split_at(e.speck_len);
            let r = catch_unwind(AssertUnwindSafe(|| {
                if native_f32 {
                    // f32-native payload: decode at native width, widen
                    // (exact) for the f64 emit path. Row emission narrows
                    // back losslessly when the output precision is Single.
                    let mut arena32 = ScratchArena::<f32>::new();
                    decompress_chunk_with(
                        speck,
                        outlier,
                        spec.dims,
                        e.q,
                        e.num_planes,
                        e.max_n,
                        tolerance,
                        kernel,
                        pool,
                        &mut arena32,
                    )
                    .map(|(c, t)| (c.iter().map(|&v| v as f64).collect::<Vec<f64>>(), t))
                } else {
                    decompress_chunk_with(
                        speck,
                        outlier,
                        spec.dims,
                        e.q,
                        e.num_planes,
                        e.max_n,
                        tolerance,
                        kernel,
                        pool,
                        arena,
                    )
                }
            }));
            match r {
                Ok(Ok((data, times))) => Ok((data, ChunkStatus::Ok, times)),
                Ok(Err(ce)) => {
                    if resilient {
                        Ok((
                            vec![0.0; spec.len()],
                            ChunkStatus::DecodeFailed(ce),
                            StageTimes::default(),
                        ))
                    } else {
                        Err(codec_err(faultpoint::last_stage(), Some(i), ce))
                    }
                }
                Err(p) => Err(SperrError::Panic {
                    stage: faultpoint::last_stage(),
                    chunk: Some(i),
                    message: panic_payload_message(p.as_ref()),
                }),
            }
        };

        let mut wr = ScalarWriter::new(writer, out_precision.unwrap_or(header.precision));
        let mut statuses: Vec<ChunkStatus> = Vec::with_capacity(n_chunks);
        let mut stats = CompressionStats {
            num_points: header.dims.iter().product(),
            num_chunks: n_chunks,
            container_bytes: container.len(),
            output_bytes: stream.len(),
            ..CompressionStats::default()
        };
        let mut row = vec![0.0f64; header.dims[0]];

        let peak_in_flight;
        // `n_chunks == 1` must use the serial driver too: the pool's
        // single-job fast path runs the producer to completion before the
        // job, and this direction's producer (the emitter) blocks waiting
        // for the decoded chunk — producer-first would deadlock.
        if threads == 1 || n_chunks == 1 {
            // Chunks decode inline on the caller, but inside a scoped
            // pool so a lone chunk still fans its wavelet/SPECK passes
            // out across workers (decode_chunk nests `pool.run`).
            peak_in_flight = WorkerPool::scoped(threads, |pool| {
                let mut arena = ScratchArena::new();
                let mut peak = 0usize;
                for l in 0..geo.nz {
                    let base = l * geo.layer_len();
                    let mut layer: Vec<Vec<f64>> = Vec::with_capacity(geo.layer_len());
                    for p in 0..geo.layer_len() {
                        let (data, status, times) = decode_chunk(base + p, pool, &mut arena)?;
                        stats.stage_times.accumulate(&times);
                        statuses.push(status);
                        layer.push(data);
                    }
                    peak = peak.max(layer.len());
                    sperr_telemetry::record_units(
                        metric_labels::STREAM_IN_FLIGHT,
                        layer.len() as u64,
                    );
                    emit_layer(&mut wr, &geo, &grid, base, &layer, &mut row)?;
                }
                arena.record_footprint();
                Ok::<usize, SperrError>(peak)
            })?;
        } else {
            let shared = PipeShared::new(budget);
            let shared_ref = &shared;
            let statuses_ref = &mut statuses;
            let stats_ref = &mut stats;
            let wr_ref = &mut wr;
            let row_ref = &mut row;
            let geo_ref = &geo;
            let grid_ref = &grid;
            let decode_ref = &decode_chunk;
            let run = WorkerPool::scoped(threads, |pool| {
                let arenas = PerWorker::new(pool.threads(), ScratchArena::new);
                let worker = |i: usize, w: usize| {
                    // Ordered token grant (see module docs).
                    {
                        let mut st = lock_ignore_poison(&shared_ref.state);
                        loop {
                            if st.error.is_some() {
                                return;
                            }
                            if st.next_token == i && st.in_flight < shared_ref.budget {
                                st.in_flight += 1;
                                st.next_token += 1;
                                st.peak = st.peak.max(st.in_flight);
                                sperr_telemetry::record_units(
                                    metric_labels::STREAM_IN_FLIGHT,
                                    st.in_flight as u64,
                                );
                                break;
                            }
                            st = shared_ref
                                .worker_cv
                                .wait(st)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                        drop(st);
                        // The grant advanced next_token: other waiters
                        // (including the next index) must re-check.
                        shared_ref.worker_cv.notify_all();
                    }
                    // SAFETY: one thread per worker slot (pool contract).
                    let arena = unsafe { arenas.get(w) };
                    match decode_ref(i, pool, arena) {
                        Ok((data, status, times)) => {
                            let mut st = lock_ignore_poison(&shared_ref.state);
                            st.ready.insert(i, ReadyChunk::Decoded { data, status, times });
                            drop(st);
                            shared_ref.caller_cv.notify_all();
                        }
                        Err(e) => {
                            // Token stays accounted; cancellation stops
                            // the run, so the budget is moot.
                            shared_ref.cancel(e);
                        }
                    }
                };
                let emitter = || {
                    let body = catch_unwind(AssertUnwindSafe(
                        || -> Result<(), SperrError> {
                            for l in 0..geo_ref.nz {
                                let base = l * geo_ref.layer_len();
                                let mut layer: Vec<Vec<f64>> =
                                    Vec::with_capacity(geo_ref.layer_len());
                                for p in 0..geo_ref.layer_len() {
                                    let idx = base + p;
                                    let chunk = {
                                        let mut st = lock_ignore_poison(&shared_ref.state);
                                        loop {
                                            if let Some(e) = &st.error {
                                                return Err(e.clone());
                                            }
                                            if let Some(c) = st.ready.remove(&idx) {
                                                break c;
                                            }
                                            st = shared_ref
                                                .caller_cv
                                                .wait(st)
                                                .unwrap_or_else(
                                                    std::sync::PoisonError::into_inner,
                                                );
                                        }
                                    };
                                    let ReadyChunk::Decoded { data, status, times } = chunk
                                    else {
                                        // Only decoded chunks enter the
                                        // mailbox on this path.
                                        continue;
                                    };
                                    stats_ref.stage_times.accumulate(&times);
                                    statuses_ref.push(status);
                                    layer.push(data);
                                }
                                emit_layer(wr_ref, geo_ref, grid_ref, base, &layer, row_ref)?;
                                // Layer written: release its decode
                                // tokens and wake token waiters.
                                let mut st = lock_ignore_poison(&shared_ref.state);
                                st.in_flight -= layer.len();
                                sperr_telemetry::record_units(
                                    metric_labels::STREAM_IN_FLIGHT,
                                    st.in_flight as u64,
                                );
                                drop(st);
                                shared_ref.worker_cv.notify_all();
                            }
                            Ok(())
                        },
                    ));
                    match body {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => shared_ref.cancel(e),
                        Err(p) => shared_ref.cancel(SperrError::Panic {
                            stage: faultpoint::last_stage(),
                            chunk: None,
                            message: panic_payload_message(p.as_ref()),
                        }),
                    }
                };
                let run = pool.run_with_producer(n_chunks, emitter, &worker);
                for w in 0..pool.threads() {
                    // SAFETY: all jobs have completed; no concurrent users.
                    unsafe { arenas.get(w) }.record_footprint();
                }
                run
            });
            if let Some(e) = shared.take_error() {
                return Err(e);
            }
            if let Err(jp) = run {
                return Err(SperrError::Panic {
                    stage: STAGE_PIPELINE,
                    chunk: None,
                    message: jp.message,
                });
            }
            peak_in_flight = shared.peak_in_flight();
        }

        wr.flush()?;
        Ok(StreamResilientReport {
            report: StreamReport {
                bytes_in,
                bytes_out: wr.bytes_out,
                n_chunks,
                in_flight_budget: budget,
                peak_in_flight,
                stats,
            },
            statuses,
        })
    }
}

/// Writes one chunk layer's z-planes to the writer, interleaving the
/// per-chunk buffers back into x-fastest volume rows.
fn emit_layer<W: Write>(
    wr: &mut ScalarWriter<W>,
    geo: &LayerGeometry,
    grid: &[ChunkSpec],
    base: usize,
    layer: &[Vec<f64>],
    row: &mut [f64],
) -> Result<(), SperrError> {
    let l = base / geo.layer_len();
    let (z0, z1) = geo.z_range(l);
    for z in z0..z1 {
        faultpoint::stage(STAGE_EMIT);
        for y in 0..geo.dims[1] {
            let cy = y / geo.chunk_dims[1];
            for cx in 0..geo.nx {
                let p = cy * geo.nx + cx;
                let spec = &grid[base + p];
                let lz = z - spec.offset[2];
                let ly = y - spec.offset[1];
                let cdx = spec.dims[0];
                let src = &layer[p][cdx * (ly + spec.dims[1] * lz)..][..cdx];
                row[spec.offset[0]..spec.offset[0] + cdx].copy_from_slice(src);
            }
            wr.write_row(row)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SperrConfig;
    use sperr_compress_api::{Field, LossyCompressor};

    fn wavy(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.29).sin() * 30.0
                + (y as f64 * 0.15).cos() * 12.0
                + ((x * z) as f64 * 0.013).sin() * 5.0
                + z as f64 * 0.4
        })
    }

    fn raw_bytes(field: &Field, precision: Precision) -> Vec<u8> {
        let mut out = Vec::new();
        for &v in &field.data {
            match precision {
                Precision::Single => out.extend_from_slice(&(v as f32).to_le_bytes()),
                Precision::Double => out.extend_from_slice(&v.to_le_bytes()),
            }
        }
        out
    }

    fn cfg(threads: usize) -> SperrConfig {
        SperrConfig {
            chunk_dims: [16, 16, 16],
            num_threads: threads,
            ..SperrConfig::default()
        }
    }

    #[test]
    fn stream_compress_matches_in_memory_across_threads() {
        // Non-divisible dims: boundary chunks on every axis, 2 z-layers.
        let dims = [40usize, 28, 20];
        let field = wavy(dims);
        for precision in [Precision::Double, Precision::Single] {
            let raw = raw_bytes(&field, precision);
            // The in-memory reference must see exactly the f64 values the
            // stream reader reconstructs (f32 roundtrip for Single).
            let mut ref_field = field.clone().with_precision(precision);
            if precision == Precision::Single {
                for v in &mut ref_field.data {
                    *v = *v as f32 as f64;
                }
            }
            for bound in [Bound::Pwe(1e-3), Bound::Bpp(2.0)] {
                let reference = Sperr::new(cfg(1)).compress(&ref_field, bound).unwrap();
                for threads in [1usize, 2, 4, 8] {
                    let sperr = Sperr::new(cfg(threads));
                    let mut out = Vec::new();
                    let report = sperr
                        .compress_stream(&raw[..], &mut out, dims, precision, bound)
                        .unwrap();
                    assert_eq!(out, reference, "threads={threads} {bound:?} {precision:?}");
                    assert_eq!(report.bytes_in, raw.len() as u64);
                    assert_eq!(report.bytes_out, out.len() as u64);
                    assert!(report.peak_in_flight <= report.in_flight_budget);
                }
            }
        }
    }

    #[test]
    fn stream_decompress_matches_in_memory() {
        let dims = [40usize, 28, 20];
        let field = wavy(dims);
        let sperr = Sperr::new(cfg(4));
        let stream = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let decoded = sperr.decompress(&stream).unwrap();
        let want = raw_bytes(&decoded, decoded.precision);
        for threads in [1usize, 2, 4, 8] {
            let mut out = Vec::new();
            let report = Sperr::new(cfg(threads))
                .decompress_stream(&stream[..], &mut out, None)
                .unwrap();
            assert_eq!(out, want, "threads={threads}");
            assert!(report.peak_in_flight <= report.in_flight_budget);
            assert_eq!(report.n_chunks, 3 * 2 * 2);
        }
    }

    #[test]
    fn stream_f32_compress_matches_in_memory_across_threads() {
        // compress_stream_f32 must produce the exact bytes of the
        // in-memory f32-native path, at every thread count.
        let dims = [40usize, 28, 20];
        let field = wavy(dims);
        let f32_field = field.narrow_lossy();
        let raw: Vec<u8> =
            f32_field.data.iter().flat_map(|v| v.to_le_bytes()).collect();
        for bound in [Bound::Pwe(1e-3), Bound::Bpp(2.0)] {
            let reference = Sperr::new(cfg(1)).compress_f32(&f32_field, bound).unwrap();
            assert!(Sperr::new(cfg(1)).inspect(&reference).unwrap().native_f32);
            for threads in [1usize, 2, 4, 8] {
                let sperr = Sperr::new(cfg(threads));
                let mut out = Vec::new();
                let report = sperr
                    .compress_stream_f32(&raw[..], &mut out, dims, bound)
                    .unwrap();
                assert_eq!(out, reference, "threads={threads} {bound:?}");
                assert_eq!(report.bytes_in, raw.len() as u64);
                assert!(report.peak_in_flight <= report.in_flight_budget);
            }
        }
    }

    #[test]
    fn stream_decompress_native_f32_stream() {
        // decompress_stream on a tag-2 stream: the default output
        // precision is Single, and the emitted f32 wire bytes must match
        // the in-memory decompress_f32 samples exactly (decode at f32,
        // widen, narrow back — all lossless).
        let dims = [40usize, 28, 20];
        let field = wavy(dims).narrow_lossy();
        let sperr = Sperr::new(cfg(4));
        let stream = sperr.compress_f32(&field, Bound::Pwe(1e-3)).unwrap();
        let decoded = sperr.decompress_f32(&stream).unwrap();
        let want: Vec<u8> =
            decoded.data.iter().flat_map(|v| v.to_le_bytes()).collect();
        for threads in [1usize, 2, 4, 8] {
            let mut out = Vec::new();
            let report = Sperr::new(cfg(threads))
                .decompress_stream(&stream[..], &mut out, None)
                .unwrap();
            assert_eq!(out, want, "threads={threads}");
            assert!(report.peak_in_flight <= report.in_flight_budget);
        }
        // Explicit f64 output widens exactly.
        let mut out64 = Vec::new();
        sperr
            .decompress_stream(&stream[..], &mut out64, Some(Precision::Double))
            .unwrap();
        let want64: Vec<u8> =
            decoded.data.iter().flat_map(|v| (*v as f64).to_le_bytes()).collect();
        assert_eq!(out64, want64);
    }

    #[test]
    fn bounded_in_flight_budget_is_honored() {
        // 8 z-layers of 1 chunk each with a budget of 2: the producer
        // must block rather than buffer ahead.
        let dims = [16usize, 16, 128];
        let field = wavy(dims);
        let raw = raw_bytes(&field, Precision::Double);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            num_threads: 4,
            in_flight_chunks: 2,
            ..SperrConfig::default()
        });
        let mut out = Vec::new();
        let report = sperr
            .compress_stream(&raw[..], &mut out, dims, Precision::Double, Bound::Pwe(1e-3))
            .unwrap();
        assert_eq!(report.n_chunks, 8);
        assert_eq!(report.in_flight_budget, 2);
        assert!(
            report.peak_in_flight <= 2,
            "budget 2 but peak {}",
            report.peak_in_flight
        );
        // And the output is still the reference bytes.
        let reference = Sperr::new(cfg(1)).compress(&field, Bound::Pwe(1e-3)).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn short_read_is_typed_io_error() {
        let dims = [16usize, 16, 32];
        let field = wavy(dims);
        let raw = raw_bytes(&field, Precision::Double);
        let sperr = Sperr::new(cfg(4));
        let mut out = Vec::new();
        let err = sperr
            .compress_stream(
                &raw[..raw.len() / 2],
                &mut out,
                dims,
                Precision::Double,
                Bound::Pwe(1e-3),
            )
            .unwrap_err();
        match err {
            SperrError::Io { stage, kind, .. } => {
                assert_eq!(stage, STAGE_INGEST);
                assert_eq!(kind, std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn psnr_bound_rejected_with_typed_error() {
        let sperr = Sperr::new(cfg(2));
        let err = sperr
            .compress_stream(
                &[][..],
                Vec::new(),
                [8, 8, 8],
                Precision::Double,
                Bound::Psnr(60.0),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SperrError::Codec { source: CompressError::Unsupported(_), .. }
        ));
    }

    #[test]
    fn resilient_stream_decode_neutral_fills_corrupt_chunk() {
        let dims = [32usize, 16, 16];
        let field = wavy(dims);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            lossless: false,
            num_threads: 4,
            ..SperrConfig::default()
        });
        let stream = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        let mut bad = stream.clone();
        bad[1 + info.payload_offset + info.chunk_payload_sizes[0] + 3] ^= 0xFF;

        // Strict streaming fails typed.
        let mut out = Vec::new();
        let err = sperr.decompress_stream(&bad[..], &mut out, None).unwrap_err();
        assert!(matches!(err, SperrError::Codec { .. }), "{err:?}");

        // Resilient streaming matches the in-memory resilient decode.
        let (ref_field, ref_report) = sperr.decompress_resilient(&bad).unwrap();
        let mut out = Vec::new();
        let res = sperr.decompress_stream_resilient(&bad[..], &mut out, None).unwrap();
        assert_eq!(res.statuses, ref_report.statuses);
        assert!(!res.all_ok());
        assert_eq!(out, raw_bytes(&ref_field, ref_field.precision));
    }

    #[test]
    fn injected_worker_panic_cancels_with_stage_and_message() {
        let dims = [16usize, 16, 64];
        let field = wavy(dims);
        let raw = raw_bytes(&field, Precision::Double);
        for threads in [1usize, 4] {
            faultpoint::arm(stage_labels::SPECK_ENCODE, 1);
            let sperr = Sperr::new(cfg(threads));
            let mut out = Vec::new();
            let err = sperr
                .compress_stream(&raw[..], &mut out, dims, Precision::Double, Bound::Pwe(1e-3))
                .unwrap_err();
            faultpoint::disarm();
            match err {
                SperrError::Panic { stage, message, .. } => {
                    assert_eq!(stage, stage_labels::SPECK_ENCODE, "threads={threads}");
                    assert!(message.contains("injected fault"), "{message}");
                }
                other => panic!("expected Panic, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_chunk_volume_streams() {
        let dims = [12usize, 10, 8];
        let field = wavy(dims);
        let raw = raw_bytes(&field, Precision::Double);
        let sperr = Sperr::new(cfg(4));
        let reference = Sperr::new(cfg(1)).compress(&field, Bound::Pwe(1e-3)).unwrap();
        let mut out = Vec::new();
        sperr
            .compress_stream(&raw[..], &mut out, dims, Precision::Double, Bound::Pwe(1e-3))
            .unwrap();
        assert_eq!(out, reference);
        let mut round = Vec::new();
        sperr.decompress_stream(&out[..], &mut round, None).unwrap();
        let rec = sperr.decompress(&reference).unwrap();
        assert_eq!(round, raw_bytes(&rec, rec.precision));
    }
}
