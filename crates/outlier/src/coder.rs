//! Encoder/decoder implementing Listings 1–3 of the paper.

use crate::rangemax::SparseMax;
use sperr_bitstream::BitWriter;

/// One outlier: its position in the linearized array and the correction
/// value `corr = x − x̃` (original minus wavelet reconstruction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outlier {
    /// Index into the linearized (1-D) data array.
    pub pos: usize,
    /// Signed correction value; `|corr|` strictly exceeds the tolerance.
    pub corr: f64,
}

/// Result of [`encode`].
#[derive(Debug, Clone)]
pub struct EncodedOutliers {
    /// Bit-packed stream (zero-padded to whole bytes). Empty when there
    /// were no outliers.
    pub stream: Vec<u8>,
    /// Starting exponent: the first threshold is `2^max_n · t`. Needed by
    /// the decoder. Meaningless when `stream` is empty.
    pub max_n: u8,
    /// Exact number of bits produced.
    pub bits_used: usize,
    /// Number of outliers encoded (for cost accounting, §V-A).
    pub num_outliers: usize,
}


/// An insignificant set: a half-open position range plus (encoder only)
/// the index range of outliers it contains in the position-sorted arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SetR {
    pub(crate) start: usize,
    pub(crate) len: usize,
    /// Outlier index range `[olo, ohi)`; decoder carries `0, 0`.
    pub(crate) olo: u32,
    pub(crate) ohi: u32,
    pub(crate) level: u16,
    /// Encoder-side cache of the set's max outlier magnitude
    /// (`NEG_INFINITY` for an empty outlier range), computed once at
    /// creation so each plane's significance test is a float compare
    /// instead of a sparse-table query. Decoder carries `0.0` (unused).
    pub(crate) max_mag: f64,
}

// ---------------------------------------------------------------- encoder

struct Encoder<'a> {
    pos: &'a [usize],
    mag: &'a [f64],
    negative: &'a [bool],
    residual: Vec<f64>,
    sparse: SparseMax,
    lis: Vec<Vec<SetR>>,
    lsp: Vec<u32>,
    lnsp: Vec<u32>,
    out: BitWriter,
}

impl<'a> Encoder<'a> {
    fn push_lis(&mut self, set: SetR) {
        let lvl = set.level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, Vec::new);
        }
        self.lis[lvl].push(set);
    }

    /// Listing 2: one significance bit per set; significant sets split
    /// recursively down to single positions, which emit a sign and join
    /// the newly-significant list.
    ///
    /// Hot path mirrors the SPECK sorting pass: buckets are compacted in
    /// place (no per-plane drain/refill allocation churn), the cached
    /// `max_mag` turns each significance test into a float compare, and
    /// runs of guaranteed-insignificant sets emit their zero bits through
    /// one bulk `put_zeros` call. Splits only create deeper sets, which
    /// this pass already finished, so in-place mutation is safe.
    fn sorting_pass(&mut self, thrd: f64) {
        // "In increasing order of their sizes": deepest buckets first.
        for lvl in (0..self.lis.len()).rev() {
            let len = self.lis[lvl].len();
            let mut write = 0usize;
            let mut run = 0usize; // pending guaranteed-zero significance bits
            for read in 0..len {
                let set = self.lis[lvl][read];
                if !(set.max_mag > thrd) {
                    run += 1;
                    self.lis[lvl][write] = set;
                    write += 1;
                    continue;
                }
                self.out.put_zeros(std::mem::take(&mut run));
                self.out.put_bit(true);
                if set.len == 1 {
                    debug_assert_eq!(set.ohi - set.olo, 1);
                    let idx = set.olo;
                    self.out.put_bit(self.negative[idx as usize]);
                    self.lnsp.push(idx);
                } else {
                    self.code(set, thrd);
                }
            }
            self.out.put_zeros(run);
            self.lis[lvl].truncate(write);
        }
    }

    fn process(&mut self, set: SetR, thrd: f64) {
        let sig = set.max_mag > thrd;
        self.out.put_bit(sig);
        if sig {
            if set.len == 1 {
                debug_assert_eq!(set.ohi - set.olo, 1);
                let idx = set.olo;
                self.out.put_bit(self.negative[idx as usize]);
                self.lnsp.push(idx);
            } else {
                self.code(set, thrd);
            }
        } else {
            self.push_lis(set);
        }
    }

    /// Listing 2's `Code(S)`: equally divide into two disjoint subsets and
    /// process both immediately. Each child's `max_mag` cache is computed
    /// here, once in its lifetime, from the sparse range-max table.
    fn code(&mut self, set: SetR, thrd: f64) {
        let (mut a, mut b) = split(set, self.pos);
        a.max_mag = self.cached_max(&a);
        b.max_mag = self.cached_max(&b);
        self.process(a, thrd);
        self.process(b, thrd);
    }

    fn cached_max(&self, set: &SetR) -> f64 {
        if set.olo < set.ohi {
            self.sparse.query(set.olo as usize, set.ohi as usize)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Listing 3: refine previously significant points by one bit, then
    /// quantize the newly found ones (no bits — their value is implied by
    /// the discovery threshold) and merge them into the LSP. Refinement
    /// bits are gathered 64 at a time into a word and emitted with one
    /// bulk write, mirroring the SPECK refinement pass.
    fn refinement_pass(&mut self, thrd: f64) {
        let len = self.lsp.len();
        let mut i = 0usize;
        while i < len {
            let w = (len - i).min(64);
            let mut word = 0u64;
            for j in 0..w {
                let idx = self.lsp[i + j] as usize;
                if self.residual[idx] > thrd {
                    self.residual[idx] -= thrd;
                    word |= 1u64 << j;
                }
            }
            self.out.put_bits(word, w as u32);
            i += w;
        }
        for i in 0..self.lnsp.len() {
            let idx = self.lnsp[i] as usize;
            self.residual[idx] -= thrd;
        }
        let new = std::mem::take(&mut self.lnsp);
        self.lsp.extend(new);
    }
}

/// Splits a set into two halves, the first taking `len - len/2` positions,
/// and partitions its outlier index range at the position boundary.
/// `max_mag` is left for the caller ([`Encoder::code`]) to fill in — the
/// decoder-side split in `decoder.rs` has no magnitudes to consult.
fn split(set: SetR, pos: &[usize]) -> (SetR, SetR) {
    let second = set.len / 2;
    let first = set.len - second;
    let mid = set.start + first;
    // First index in [olo, ohi) whose position is >= mid.
    let cut = set.olo
        + pos[set.olo as usize..set.ohi as usize].partition_point(|&p| p < mid) as u32;
    (
        SetR {
            start: set.start,
            len: first,
            olo: set.olo,
            ohi: cut,
            level: set.level + 1,
            max_mag: 0.0,
        },
        SetR {
            start: mid,
            len: second,
            olo: cut,
            ohi: set.ohi,
            level: set.level + 1,
            max_mag: 0.0,
        },
    )
}

/// Computes the starting exponent of Listing 1 line 4: the largest integer
/// `n >= 0` such that `2^n · t < max_mag`.
fn starting_exponent(t: f64, max_mag: f64) -> u8 {
    let mut n = ((max_mag / t).log2().floor().max(0.0)) as i64;
    // Guard against floating-point edge cases around exact powers of two.
    while (n as u32) < 200 && f64::exp2((n + 1) as f64) * t < max_mag {
        n += 1;
    }
    while n > 0 && f64::exp2(n as f64) * t >= max_mag {
        n -= 1;
    }
    n.clamp(0, u8::MAX as i64) as u8
}

/// Encodes `outliers` over a linearized array of length `array_len` with
/// PWE tolerance `t > 0` (Listing 1).
///
/// # Panics
///
/// On caller bugs: positions out of range or duplicated, magnitudes not
/// strictly above `t`, or a non-positive tolerance.
pub fn encode(outliers: &[Outlier], array_len: usize, t: f64) -> EncodedOutliers {
    let _span = sperr_telemetry::span!("outlier.encode", outliers.len());
    assert!(t > 0.0 && t.is_finite(), "tolerance must be positive and finite");
    if outliers.is_empty() {
        return EncodedOutliers { stream: Vec::new(), max_n: 0, bits_used: 0, num_outliers: 0 };
    }

    // Sort by position; validate.
    let mut sorted: Vec<Outlier> = outliers.to_vec();
    sorted.sort_by_key(|o| o.pos);
    let mut pos = Vec::with_capacity(sorted.len());
    let mut mag = Vec::with_capacity(sorted.len());
    let mut negative = Vec::with_capacity(sorted.len());
    for (i, o) in sorted.iter().enumerate() {
        assert!(o.pos < array_len, "outlier position {} out of range {}", o.pos, array_len);
        if i > 0 {
            assert!(sorted[i - 1].pos != o.pos, "duplicate outlier position {}", o.pos);
        }
        assert!(
            o.corr.abs() > t,
            "outlier magnitude {} must strictly exceed tolerance {}",
            o.corr.abs(),
            t
        );
        pos.push(o.pos);
        mag.push(o.corr.abs());
        negative.push(o.corr < 0.0);
    }

    let max_mag = mag.iter().copied().fold(0.0, f64::max);
    let max_n = starting_exponent(t, max_mag);

    let mut enc = Encoder {
        pos: &pos,
        mag: &mag,
        negative: &negative,
        residual: mag.clone(),
        sparse: SparseMax::build(&mag),
        lis: vec![vec![SetR {
            start: 0,
            len: array_len,
            olo: 0,
            ohi: pos.len() as u32,
            level: 0,
            max_mag,
        }]],
        lsp: Vec::new(),
        lnsp: Vec::new(),
        // Size hint: each outlier costs roughly its significance-search
        // path plus sign and refinement bits — a few dozen bits in
        // practice; the writer grows if a pathological set exceeds this.
        out: BitWriter::with_capacity_bits(64 + pos.len() * 48),
    };
    let _ = enc.mag; // magnitudes are owned by the sparse table path

    for n in (0..=max_n as i64).rev() {
        let thrd = f64::exp2(n as f64) * t;
        enc.sorting_pass(thrd);
        enc.refinement_pass(thrd);
    }

    let bits_used = enc.out.len_bits();
    EncodedOutliers {
        stream: enc.out.into_bytes(),
        max_n,
        bits_used,
        num_outliers: outliers.len(),
    }
}
