//! The per-chunk SPERR pipeline: transform → SPECK → outlier detection →
//! outlier coding (compression) and the mirror image (decompression).
//!
//! Each stage comes in two flavours: the classic allocating entry points
//! (`compress_chunk_pwe`, `decompress_chunk`, …) kept for API
//! compatibility and tests, and the hot-path `_with` variants that take a
//! [`WorkerPool`] plus a reusable [`ScratchArena`] so that compressing a
//! stream of chunks performs no per-chunk allocations and can fan the
//! elementwise and wavelet work out across the pool.
//!
//! # Determinism
//!
//! The parallel sweeps split work into *fixed-size* blocks
//! ([`ELEM_BLOCK`]) independent of the thread count, and reduce block
//! results in block order. Outlier lists and error accumulators — and
//! therefore the compressed bytes — are identical for any `--threads`
//! value, and identical to the serial reference path.

use crate::pool::WorkerPool;
use crate::stats::{stage_labels, StageTimes};
use sperr_compress_api::CompressError;
use sperr_outlier::Outlier;
use sperr_simd::Float;
use sperr_speck::Termination;
use sperr_telemetry::timed;
use sperr_wavelet::{
    forward_3d_with, inverse_3d_with, levels_for_dims, Kernel, TransformScratch,
};

/// Block length (in samples) for parallel elementwise sweeps. Fixed — not
/// derived from the thread count — so that floating-point reduction order
/// and outlier-list order are identical for every `--threads` value.
const ELEM_BLOCK: usize = 1 << 16;

/// Reusable per-worker scratch for the `_with` pipeline entry points.
///
/// Holds the coefficient buffer, the reconstruction buffer and the wavelet
/// transform's panel/line scratch. Buffers grow to the largest chunk seen
/// and are never shrunk; a compressor keeps one arena per worker slot so
/// that a multi-gigabyte run allocates a bounded, chunk-count-independent
/// amount.
/// Generic over the sample type: the f32 pipeline keeps all of its
/// scratch at half width (the type parameter defaults to `f64` so
/// existing code is unaffected).
pub struct ScratchArena<T: Float = f64> {
    coeffs: Vec<T>,
    recon: Vec<T>,
    wavelet: TransformScratch<T>,
}

impl<T: Float> Default for ScratchArena<T> {
    fn default() -> Self {
        ScratchArena { coeffs: Vec::new(), recon: Vec::new(), wavelet: TransformScratch::new() }
    }
}

impl<T: Float> ScratchArena<T> {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held by this arena's buffers, wavelet panel/line
    /// scratch included. Buffers never shrink, so after a run this *is*
    /// the arena's high-water mark.
    pub fn bytes(&self) -> usize {
        (self.coeffs.capacity() + self.recon.capacity()) * std::mem::size_of::<T>()
            + self.wavelet.bytes()
    }

    /// Records the current footprint into the width-matched memory
    /// histogram (whose max the exporters surface as the high-water
    /// mark). The drivers call this once per worker arena per run.
    pub(crate) fn record_footprint(&self) {
        let label = if std::mem::size_of::<T>() == 4 {
            crate::stats::metric_labels::MEM_ARENA_F32
        } else {
            crate::stats::metric_labels::MEM_ARENA_F64
        };
        sperr_telemetry::record_bytes(label, self.bytes() as u64);
    }
}

/// Fills `coeffs` with a copy of `data` (the transform is in-place and
/// must not clobber the caller's input), reusing capacity. Part of the
/// wavelet stage's timed region, hence free-standing rather than a method
/// (the arena is already destructured at the call sites).
fn load_coeffs<T: Float>(coeffs: &mut Vec<T>, data: &[T]) {
    coeffs.clear();
    coeffs.extend_from_slice(data);
}

/// Everything produced by compressing one chunk.
#[derive(Debug, Clone)]
pub struct ChunkEncoding {
    /// SPECK coefficient bitstream.
    pub speck_stream: Vec<u8>,
    /// Outlier correction bitstream (empty in size-bounded mode or when no
    /// outliers were produced).
    pub outlier_stream: Vec<u8>,
    /// Finest quantization step used by SPECK (`q = q_factor · t` in PWE
    /// mode, derived from the coefficient range in BPP mode).
    pub q: f64,
    /// SPECK bitplane count (decoder input).
    pub num_planes: u8,
    /// Outlier coder starting exponent (decoder input).
    pub max_n: u8,
    /// Number of outliers corrected.
    pub num_outliers: u32,
    /// Exact SPECK bits before byte padding.
    pub speck_bits: usize,
    /// Exact outlier-coding bits before byte padding.
    pub outlier_bits: usize,
    /// Wall time per stage.
    pub times: StageTimes,
    /// Sum of squared reconstruction errors before outlier correction
    /// (space domain in PWE mode, wavelet domain otherwise; ~equal by
    /// near-orthogonality, §III-A).
    pub coeff_sq_error: f64,
    /// Exact post-correction max point-wise error of this chunk's decode
    /// (PWE mode: max of the in-tolerance residuals and the quantized
    /// outlier-correction residuals). NaN in BPP/RMSE modes, which don't
    /// reconstruct in the space domain at encode time. Recorded in the
    /// container-v3 chunk index.
    pub max_err: f64,
}

/// Raw-pointer wrapper for disjoint block writes from pool jobs. The
/// method (not field) access makes closures capture the `Sync` wrapper.
struct BlockPtr<T>(*mut T);
unsafe impl<T: Send> Send for BlockPtr<T> {}
unsafe impl<T: Send> Sync for BlockPtr<T> {}
impl<T> BlockPtr<T> {
    /// # Safety
    ///
    /// Caller guarantees `start..start + len` is in bounds and disjoint
    /// from every other concurrently accessed block.
    unsafe fn block(&self, start: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

/// Mid-riser reconstruction of `coeffs` into `out` (same length), block-
/// parallel over the pool. Bit-identical to the serial sweep.
fn reconstruct_blocks<T: Float>(coeffs: &[T], q: f64, out: &mut [T], pool: &WorkerPool) {
    let len = coeffs.len();
    debug_assert_eq!(len, out.len());
    let n_blocks = len.div_ceil(ELEM_BLOCK).max(1);
    let dst = BlockPtr(out.as_mut_ptr());
    pool.run(n_blocks, &|b, _| {
        let start = b * ELEM_BLOCK;
        let n = ELEM_BLOCK.min(len - start);
        // SAFETY: blocks are disjoint and in bounds.
        let dst = unsafe { dst.block(start, n) };
        sperr_speck::reconstruct_quantized_into(&coeffs[start..start + n], q, dst);
    });
}

/// Compares `data` with `recon` block-parallel, returning the outliers
/// (positions ascending), the total squared error, and the max residual
/// over the *in-tolerance* points (the part of the final max error that
/// outlier correction won't touch). Fixed blocks + block-order reduction
/// keep all three deterministic across thread counts (max is also
/// order-independent).
fn scan_outliers<T: Float>(
    data: &[T],
    recon: &[T],
    t: f64,
    pool: &WorkerPool,
) -> (Vec<Outlier>, f64, f64) {
    let len = data.len();
    let n_blocks = len.div_ceil(ELEM_BLOCK).max(1);
    let per_block = pool.map(n_blocks, |b, _| {
        let start = b * ELEM_BLOCK;
        let end = (start + ELEM_BLOCK).min(len);
        let mut sq = 0.0;
        let mut max_in_tol = 0.0f64;
        let mut found = Vec::new();
        for pos in start..end {
            // Residual in the native width, widened exactly for the (f64)
            // outlier coder — the f64 instantiation is unchanged.
            let corr = (data[pos] - recon[pos]).to_f64();
            sq += corr * corr;
            if corr.abs() > t {
                found.push(Outlier { pos, corr });
            } else {
                max_in_tol = max_in_tol.max(corr.abs());
            }
        }
        (found, sq, max_in_tol)
    });
    let mut outliers = Vec::new();
    let mut coeff_sq_error = 0.0;
    let mut max_in_tol = 0.0f64;
    for (found, sq, m) in per_block {
        outliers.extend(found);
        coeff_sq_error += sq;
        max_in_tol = max_in_tol.max(m);
    }
    (outliers, coeff_sq_error, max_in_tol)
}

/// PWE-bounded compression of one chunk (§IV): SPECK at `q = q_factor · t`
/// followed by outlier correction so every point lands within `t`.
/// Allocating compatibility wrapper around [`compress_chunk_pwe_with`].
pub fn compress_chunk_pwe<T: Float>(
    data: &[T],
    dims: [usize; 3],
    t: f64,
    q_factor: f64,
    kernel: Kernel,
) -> ChunkEncoding {
    compress_chunk_pwe_with(
        data,
        dims,
        t,
        q_factor,
        kernel,
        &WorkerPool::inline(),
        &mut ScratchArena::new(),
    )
}

/// Hot-path PWE compression: wavelet panels, the mid-riser reconstruction
/// and the outlier scan all run on `pool`; every buffer comes from
/// `arena`. Output is bit-identical to [`compress_chunk_pwe`].
pub fn compress_chunk_pwe_with<T: Float>(
    data: &[T],
    dims: [usize; 3],
    t: f64,
    q_factor: f64,
    kernel: Kernel,
    pool: &WorkerPool,
    arena: &mut ScratchArena<T>,
) -> ChunkEncoding {
    assert!(t > 0.0 && t.is_finite(), "PWE tolerance must be positive");
    assert!(q_factor > 0.0, "q factor must be positive");
    let levels = levels_for_dims(dims);
    let q = q_factor * t;

    let ScratchArena { coeffs, recon, wavelet } = arena;

    // Stage 1: forward wavelet transform.
    crate::faultpoint::stage(stage_labels::WAVELET_FORWARD);
    let ((), wavelet_time) = timed(stage_labels::WAVELET_FORWARD, || {
        load_coeffs(coeffs, data);
        forward_3d_with(coeffs, dims, levels, kernel, pool, wavelet);
    });

    // Stage 2: SPECK coding of coefficients, all planes down to q.
    crate::faultpoint::stage(stage_labels::SPECK_ENCODE);
    let (enc, speck_time) = timed(stage_labels::SPECK_ENCODE, || {
        sperr_speck::encode(coeffs, dims, q, Termination::Quality)
    });
    sperr_telemetry::counter!("speck.sets_split", enc.sets_split);
    sperr_telemetry::counter!("speck.zero_runs", enc.zero_runs);
    sperr_telemetry::counter!("speck.significance_bits", enc.significance_bits);
    sperr_telemetry::counter!("speck.sign_bits", enc.sign_bits);
    sperr_telemetry::counter!("speck.refinement_bits", enc.refinement_bits);

    // Stage 3: locate outliers — reconstruct (quantized coefficients +
    // inverse transform) and compare with the original input.
    crate::faultpoint::stage(stage_labels::OUTLIER_LOCATE);
    let ((outliers, coeff_sq_error, max_in_tol), locate_time) =
        timed(stage_labels::OUTLIER_LOCATE, || {
            recon.clear();
            recon.resize(coeffs.len(), T::ZERO);
            reconstruct_blocks(coeffs, q, recon, pool);
            inverse_3d_with(recon, dims, levels, kernel, pool, wavelet);
            scan_outliers(data, recon, t, pool)
        });
    sperr_telemetry::counter!("outlier.count", outliers.len());

    // Stage 4: encode the outliers.
    crate::faultpoint::stage(stage_labels::OUTLIER_ENCODE);
    let ((out_enc, max_err), outlier_time) = timed(stage_labels::OUTLIER_ENCODE, || {
        let out_enc = sperr_outlier::encode(&outliers, data.len(), t);
        // Exact post-correction max error for the v3 chunk index: the
        // in-tolerance residuals stay as-is, and the corrected points end
        // at the residual the *quantized* correction leaves behind —
        // measured by decoding the stream we just wrote (cheap: outliers
        // are sparse by construction).
        let mut max_err = max_in_tol;
        if !outliers.is_empty() {
            // Decode returns corrections in bit-plane discovery order, not
            // position order — sort before pairing with the scan output
            // (which is ascending by construction).
            let mut corrections =
                sperr_outlier::decode(&out_enc.stream, data.len(), t, out_enc.max_n)
                    .expect("freshly encoded outlier stream must decode");
            corrections.sort_by_key(|c| c.pos);
            debug_assert_eq!(corrections.len(), outliers.len());
            for (o, c) in outliers.iter().zip(&corrections) {
                debug_assert_eq!(o.pos, c.pos);
                max_err = max_err.max((o.corr - c.corr).abs());
            }
        }
        (out_enc, max_err)
    });
    sperr_telemetry::counter!("outlier.correction_bits", out_enc.bits_used);

    ChunkEncoding {
        speck_stream: enc.stream,
        outlier_stream: out_enc.stream,
        q,
        num_planes: enc.num_planes,
        max_n: out_enc.max_n,
        num_outliers: outliers.len() as u32,
        speck_bits: enc.bits_used,
        outlier_bits: out_enc.bits_used,
        times: StageTimes {
            wavelet: wavelet_time,
            speck: speck_time,
            locate_outliers: locate_time,
            outlier_coding: outlier_time,
            ..StageTimes::default()
        },
        coeff_sq_error,
        max_err,
    }
}

/// Number of bitplanes below the maximum coefficient magnitude that the
/// size-bounded mode makes addressable. 48 planes put the floor far below
/// any practical bit budget.
const BPP_MODE_PLANES: i32 = 48;

/// Size-bounded compression of one chunk: SPECK's embedded stream is cut
/// at `budget_bits`; no error guarantee, no outlier pass (§III-B: "the
/// encoding process can terminate whenever a user-prescribed output size
/// is reached"). Allocating wrapper around [`compress_chunk_bpp_with`].
pub fn compress_chunk_bpp<T: Float>(
    data: &[T],
    dims: [usize; 3],
    budget_bits: usize,
    kernel: Kernel,
) -> ChunkEncoding {
    compress_chunk_bpp_with(
        data,
        dims,
        budget_bits,
        kernel,
        &WorkerPool::inline(),
        &mut ScratchArena::new(),
    )
}

/// Hot-path size-bounded compression; see [`compress_chunk_bpp`].
pub fn compress_chunk_bpp_with<T: Float>(
    data: &[T],
    dims: [usize; 3],
    budget_bits: usize,
    kernel: Kernel,
    pool: &WorkerPool,
    arena: &mut ScratchArena<T>,
) -> ChunkEncoding {
    let levels = levels_for_dims(dims);
    let ScratchArena { coeffs, wavelet, .. } = arena;
    crate::faultpoint::stage(stage_labels::WAVELET_FORWARD);
    let ((), wavelet_time) = timed(stage_labels::WAVELET_FORWARD, || {
        load_coeffs(coeffs, data);
        forward_3d_with(coeffs, dims, levels, kernel, pool, wavelet);
    });

    let max_mag = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.to_f64().abs()));
    // Quantization floor well below the budget's reach; degenerate
    // all-zero chunks encode to an empty stream with any positive q.
    let q = if max_mag > 0.0 { max_mag * f64::exp2(-f64::from(BPP_MODE_PLANES)) } else { 1.0 };

    crate::faultpoint::stage(stage_labels::SPECK_ENCODE);
    let (enc, speck_time) = timed(stage_labels::SPECK_ENCODE, || {
        sperr_speck::encode(coeffs, dims, q, Termination::BitBudget(budget_bits))
    });

    ChunkEncoding {
        speck_stream: enc.stream,
        outlier_stream: Vec::new(),
        q,
        num_planes: enc.num_planes,
        max_n: 0,
        num_outliers: 0,
        speck_bits: enc.bits_used,
        outlier_bits: 0,
        times: StageTimes {
            wavelet: wavelet_time,
            speck: speck_time,
            ..StageTimes::default()
        },
        coeff_sq_error: 0.0, // budget truncation: not tracked
        max_err: f64::NAN,   // no space-domain reconstruction at encode time
    }
}

/// Average-error-targeted compression of one chunk (paper §VII: "the
/// property of roughly equal root-mean-square error between wavelet
/// coefficients and their inversely transformed reconstruction ...
/// enables ... compression targeting an average error"): SPECK runs at
/// `q = target_rmse`, whose mid-riser error (≤ q/2 per coded coefficient,
/// < q in the dead zone) keeps the reconstruction RMSE at or below the
/// target thanks to the transform's near-orthogonality. No outlier pass.
/// Allocating wrapper around [`compress_chunk_rmse_with`].
pub fn compress_chunk_rmse<T: Float>(
    data: &[T],
    dims: [usize; 3],
    target_rmse: f64,
    kernel: Kernel,
) -> ChunkEncoding {
    compress_chunk_rmse_with(
        data,
        dims,
        target_rmse,
        kernel,
        &WorkerPool::inline(),
        &mut ScratchArena::new(),
    )
}

/// Hot-path average-error compression; see [`compress_chunk_rmse`].
pub fn compress_chunk_rmse_with<T: Float>(
    data: &[T],
    dims: [usize; 3],
    target_rmse: f64,
    kernel: Kernel,
    pool: &WorkerPool,
    arena: &mut ScratchArena<T>,
) -> ChunkEncoding {
    assert!(target_rmse > 0.0 && target_rmse.is_finite());
    let levels = levels_for_dims(dims);
    let ScratchArena { coeffs, recon, wavelet } = arena;
    crate::faultpoint::stage(stage_labels::WAVELET_FORWARD);
    let ((), wavelet_time) = timed(stage_labels::WAVELET_FORWARD, || {
        load_coeffs(coeffs, data);
        forward_3d_with(coeffs, dims, levels, kernel, pool, wavelet);
    });

    let q = target_rmse;
    crate::faultpoint::stage(stage_labels::SPECK_ENCODE);
    let (enc, speck_time) = timed(stage_labels::SPECK_ENCODE, || {
        sperr_speck::encode(coeffs, dims, q, Termination::Quality)
    });

    // Wavelet-domain quantization error ~ reconstruction error (§III-A).
    recon.clear();
    recon.resize(coeffs.len(), T::ZERO);
    reconstruct_blocks(coeffs, q, recon, pool);
    let coeff_sq_error: f64 = {
        // Same fixed-block reduction order as the outlier scan.
        let len = coeffs.len();
        let n_blocks = len.div_ceil(ELEM_BLOCK).max(1);
        pool.map(n_blocks, |b, _| {
            let start = b * ELEM_BLOCK;
            let end = (start + ELEM_BLOCK).min(len);
            let mut sq = 0.0;
            for i in start..end {
                let d = (coeffs[i] - recon[i]).to_f64();
                sq += d * d;
            }
            sq
        })
        .into_iter()
        .sum()
    };

    ChunkEncoding {
        speck_stream: enc.stream,
        outlier_stream: Vec::new(),
        q,
        num_planes: enc.num_planes,
        max_n: 0,
        num_outliers: 0,
        speck_bits: enc.bits_used,
        outlier_bits: 0,
        times: StageTimes { wavelet: wavelet_time, speck: speck_time, ..StageTimes::default() },
        coeff_sq_error,
        max_err: f64::NAN, // tracked in the wavelet domain only
    }
}

/// Multi-resolution decompression of one chunk (paper §VII: the wavelet
/// hierarchy "enables multi-level reconstruction that is useful in areas
/// such as explorative analysis"): decodes the coefficients, undoes all
/// but the finest `level` transform levels, and returns the coarse
/// approximation (re-scaled to physical units) together with its dims.
/// Outlier corrections are full-resolution data and do not apply to a
/// coarse reconstruction.
pub fn decompress_chunk_multires(
    speck_stream: &[u8],
    dims: [usize; 3],
    q: f64,
    num_planes: u8,
    level: usize,
    kernel: Kernel,
) -> Result<(Vec<f64>, [usize; 3]), CompressError> {
    let levels = levels_for_dims(dims);
    if levels.iter().any(|&l| l < level) {
        return Err(CompressError::Invalid(format!(
            "resolution level {level} exceeds the chunk's transform depth {levels:?}"
        )));
    }
    let mut coeffs: Vec<f64> = sperr_speck::decode(speck_stream, dims, q, num_planes)?;
    sperr_wavelet::inverse_3d_partial(&mut coeffs, dims, levels, level, kernel);
    let cdims = sperr_wavelet::coarse_dims(dims, levels, level);
    let scale = 1.0 / sperr_wavelet::coarse_scale(dims, levels, level);
    let mut out = Vec::with_capacity(cdims.iter().product());
    for z in 0..cdims[2] {
        for y in 0..cdims[1] {
            for x in 0..cdims[0] {
                out.push(coeffs[x + dims[0] * (y + dims[1] * z)] * scale);
            }
        }
    }
    Ok((out, cdims))
}

/// Decompresses one chunk. `tolerance` must be the compression-time `t`
/// for PWE streams (used to scale outlier thresholds); it is ignored when
/// the outlier stream is empty. Allocating compatibility wrapper around
/// [`decompress_chunk_with`].
#[allow(clippy::too_many_arguments)]
pub fn decompress_chunk<T: Float>(
    speck_stream: &[u8],
    outlier_stream: &[u8],
    dims: [usize; 3],
    q: f64,
    num_planes: u8,
    max_n: u8,
    tolerance: f64,
    kernel: Kernel,
) -> Result<Vec<T>, CompressError> {
    decompress_chunk_with(
        speck_stream,
        outlier_stream,
        dims,
        q,
        num_planes,
        max_n,
        tolerance,
        kernel,
        &WorkerPool::inline(),
        &mut ScratchArena::new(),
    )
    .map(|(data, _)| data)
}

/// Hot-path decompression: the inverse wavelet transform runs on `pool`
/// using `arena`'s panel scratch. Also reports per-stage wall times
/// (SPECK decode / wavelet / outlier correction) for `info --verbose`.
#[allow(clippy::too_many_arguments)]
pub fn decompress_chunk_with<T: Float>(
    speck_stream: &[u8],
    outlier_stream: &[u8],
    dims: [usize; 3],
    q: f64,
    num_planes: u8,
    max_n: u8,
    tolerance: f64,
    kernel: Kernel,
    pool: &WorkerPool,
    arena: &mut ScratchArena<T>,
) -> Result<(Vec<T>, StageTimes), CompressError> {
    decompress_chunk_inner(
        speck_stream,
        outlier_stream,
        dims,
        q,
        num_planes,
        max_n,
        tolerance,
        kernel,
        None,
        pool,
        arena,
    )
}

/// Region-of-interest variant of [`decompress_chunk_with`]: identical
/// pipeline, but outlier corrections landing outside the chunk-local
/// half-open box `keep_lo..keep_hi` are skipped. The wavelet transform is
/// global to the chunk, so the full chunk is still reconstructed — only
/// the sparse correction pass is scoped — and the kept box is
/// bit-identical to a full decode of the chunk (corrections are
/// point-local, Eq. 1). Used by [`crate::Sperr::decode_region`].
#[allow(clippy::too_many_arguments)]
pub fn decompress_chunk_region_with<T: Float>(
    speck_stream: &[u8],
    outlier_stream: &[u8],
    dims: [usize; 3],
    q: f64,
    num_planes: u8,
    max_n: u8,
    tolerance: f64,
    kernel: Kernel,
    keep_lo: [usize; 3],
    keep_hi: [usize; 3],
    pool: &WorkerPool,
    arena: &mut ScratchArena<T>,
) -> Result<(Vec<T>, StageTimes), CompressError> {
    decompress_chunk_inner(
        speck_stream,
        outlier_stream,
        dims,
        q,
        num_planes,
        max_n,
        tolerance,
        kernel,
        Some((keep_lo, keep_hi)),
        pool,
        arena,
    )
}

#[allow(clippy::too_many_arguments)]
fn decompress_chunk_inner<T: Float>(
    speck_stream: &[u8],
    outlier_stream: &[u8],
    dims: [usize; 3],
    q: f64,
    num_planes: u8,
    max_n: u8,
    tolerance: f64,
    kernel: Kernel,
    keep: Option<([usize; 3], [usize; 3])>,
    pool: &WorkerPool,
    arena: &mut ScratchArena<T>,
) -> Result<(Vec<T>, StageTimes), CompressError> {
    let levels = levels_for_dims(dims);
    crate::faultpoint::stage(stage_labels::SPECK_DECODE);
    let (decoded, speck_time) = timed(stage_labels::SPECK_DECODE, || {
        sperr_speck::decode(speck_stream, dims, q, num_planes)
    });
    let mut coeffs = decoded?;

    crate::faultpoint::stage(stage_labels::WAVELET_INVERSE);
    let ((), wavelet_time) = timed(stage_labels::WAVELET_INVERSE, || {
        inverse_3d_with(&mut coeffs, dims, levels, kernel, pool, &mut arena.wavelet);
    });

    crate::faultpoint::stage(stage_labels::OUTLIER_APPLY);
    let (applied, outlier_time) = timed(stage_labels::OUTLIER_APPLY, || {
        if !outlier_stream.is_empty() {
            if !(tolerance > 0.0) {
                return Err(CompressError::Corrupt(
                    "outlier stream present but tolerance missing".into(),
                ));
            }
            let corrections =
                sperr_outlier::decode(outlier_stream, coeffs.len(), tolerance, max_n)?;
            for c in corrections {
                if c.pos >= coeffs.len() {
                    return Err(CompressError::Corrupt("outlier position out of range".into()));
                }
                if let Some((lo, hi)) = keep {
                    let x = c.pos % dims[0];
                    let y = (c.pos / dims[0]) % dims[1];
                    let z = c.pos / (dims[0] * dims[1]);
                    if x < lo[0] || x >= hi[0] || y < lo[1] || y >= hi[1] || z < lo[2] || z >= hi[2]
                    {
                        continue;
                    }
                }
                // z = x̃ + corr (Eq. 1), applied in f64 and narrowed once
                // so the f32 path pays a single rounding (exact for f64).
                coeffs[c.pos] = T::from_f64(coeffs[c.pos].to_f64() + c.corr);
            }
        }
        Ok(())
    });
    applied?;

    let times = StageTimes {
        wavelet: wavelet_time,
        speck: speck_time,
        outlier_coding: outlier_time,
        ..StageTimes::default()
    };
    Ok((coeffs, times))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_data(dims: [usize; 3]) -> Vec<f64> {
        (0..dims.iter().product())
            .map(|i| (i as f64 * 0.213).sin() * 12.0 + (i as f64 * 0.0071).cos() * 3.0)
            .collect()
    }

    #[test]
    fn chunk_pwe_roundtrip_bounds_error() {
        let dims = [24usize, 16, 12];
        let data = test_data(dims);
        let t = 0.01;
        let enc = compress_chunk_pwe(&data, dims, t, 1.5, Kernel::Cdf97);
        let rec = decompress_chunk(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            t,
            Kernel::Cdf97,
        )
        .unwrap();
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= t, "{a} vs {b}");
        }
    }

    #[test]
    fn outliers_actually_corrected() {
        // With a large q factor SPECK alone violates t; the outlier pass
        // must fix every violation.
        let dims = [16usize, 16, 16];
        let data = test_data(dims);
        let t = 0.001;
        let enc = compress_chunk_pwe(&data, dims, t, 3.0, Kernel::Cdf97);
        assert!(enc.num_outliers > 0, "expected outliers at q = 3t");
        let rec = decompress_chunk(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            t,
            Kernel::Cdf97,
        )
        .unwrap();
        let max_err = data
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_err <= t);
    }

    #[test]
    fn bpp_chunk_respects_budget() {
        let dims = [16usize, 16, 16];
        let data = test_data(dims);
        let budget = 4096usize; // 1 bpp
        let enc = compress_chunk_bpp(&data, dims, budget, Kernel::Cdf97);
        assert!(enc.speck_bits <= budget);
        let rec = decompress_chunk::<f64>(
            &enc.speck_stream,
            &[],
            dims,
            enc.q,
            enc.num_planes,
            0,
            0.0,
            Kernel::Cdf97,
        )
        .unwrap();
        assert_eq!(rec.len(), data.len());
    }

    #[test]
    fn all_zero_chunk() {
        let dims = [8usize, 8, 8];
        let data = vec![0.0; 512];
        let enc = compress_chunk_pwe(&data, dims, 0.1, 1.5, Kernel::Cdf97);
        assert!(enc.speck_stream.is_empty());
        assert_eq!(enc.num_outliers, 0);
        let rec = decompress_chunk::<f64>(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            0.1,
            Kernel::Cdf97,
        )
        .unwrap();
        assert_eq!(rec, data);
    }

    #[test]
    fn pooled_pwe_matches_serial_bit_for_bit() {
        // The `_with` path on a real multi-worker pool must produce the
        // exact bytes of the allocating serial path — for every stream and
        // for an arena reused across differently-sized chunks.
        let t = 0.004;
        let mut arena = ScratchArena::new();
        WorkerPool::scoped(4, |pool| {
            for dims in [[24usize, 16, 12], [16, 16, 16], [7, 5, 3]] {
                let data = test_data(dims);
                let serial = compress_chunk_pwe(&data, dims, t, 1.5, Kernel::Cdf97);
                let pooled =
                    compress_chunk_pwe_with(&data, dims, t, 1.5, Kernel::Cdf97, pool, &mut arena);
                assert_eq!(serial.speck_stream, pooled.speck_stream, "dims {dims:?}");
                assert_eq!(serial.outlier_stream, pooled.outlier_stream, "dims {dims:?}");
                assert_eq!(serial.num_outliers, pooled.num_outliers);
                assert_eq!(serial.q, pooled.q);
                assert_eq!(serial.coeff_sq_error, pooled.coeff_sq_error, "fp order changed");
            }
        });
    }

    #[test]
    fn recorded_max_err_is_exact() {
        // The ChunkEncoding's max_err must equal the max point-wise error
        // actually measured after a full decode — both with and without
        // outliers in play.
        let dims = [16usize, 16, 16];
        let data = test_data(dims);
        for (t, q_factor) in [(0.01, 1.5), (0.001, 3.0)] {
            let enc = compress_chunk_pwe(&data, dims, t, q_factor, Kernel::Cdf97);
            let rec = decompress_chunk(
                &enc.speck_stream,
                &enc.outlier_stream,
                dims,
                enc.q,
                enc.num_planes,
                enc.max_n,
                t,
                Kernel::Cdf97,
            )
            .unwrap();
            let measured =
                data.iter().zip(&rec).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert_eq!(enc.max_err, measured, "t={t} q_factor={q_factor}");
            assert!(enc.max_err <= t);
        }
    }

    #[test]
    fn region_variant_matches_full_decode_inside_kept_box() {
        // Outliers outside the kept box are skipped; inside it the decode
        // must be bit-identical to the full chunk decode.
        let dims = [16usize, 12, 10];
        let data = test_data(dims);
        let t = 0.001;
        let enc = compress_chunk_pwe(&data, dims, t, 3.0, Kernel::Cdf97);
        assert!(enc.num_outliers > 0, "test needs outliers to be meaningful");
        let full = decompress_chunk::<f64>(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            t,
            Kernel::Cdf97,
        )
        .unwrap();
        let (lo, hi) = ([3usize, 0, 2], [9usize, 12, 7]);
        let mut arena = ScratchArena::<f64>::new();
        let (region, _) = decompress_chunk_region_with(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            t,
            Kernel::Cdf97,
            lo,
            hi,
            &WorkerPool::inline(),
            &mut arena,
        )
        .unwrap();
        for z in lo[2]..hi[2] {
            for y in lo[1]..hi[1] {
                for x in lo[0]..hi[0] {
                    let pos = x + dims[0] * (y + dims[1] * z);
                    assert_eq!(full[pos].to_bits(), region[pos].to_bits(), "at {x},{y},{z}");
                }
            }
        }
    }

    #[test]
    fn pooled_decompress_matches_serial() {
        let dims = [20usize, 14, 9];
        let data = test_data(dims);
        let t = 0.002;
        let enc = compress_chunk_pwe(&data, dims, t, 1.5, Kernel::Cdf97);
        let serial = decompress_chunk::<f64>(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            t,
            Kernel::Cdf97,
        )
        .unwrap();
        let mut arena = ScratchArena::new();
        WorkerPool::scoped(3, |pool| {
            let (pooled, times) = decompress_chunk_with(
                &enc.speck_stream,
                &enc.outlier_stream,
                dims,
                enc.q,
                enc.num_planes,
                enc.max_n,
                t,
                Kernel::Cdf97,
                pool,
                &mut arena,
            )
            .unwrap();
            assert_eq!(serial, pooled);
            assert!(times.speck + times.wavelet > std::time::Duration::ZERO);
        });
    }
}
