//! Portable explicit-width SIMD kernels for the SPERR hot loops.
//!
//! Every kernel here is written as an *autovectorization-friendly chunked
//! loop*: a fixed-width block body over `[T; W]`-shaped windows (so LLVM
//! can turn it into `f64x2`/`u8x16`-class vector code on any target, at
//! the baseline feature level) plus an explicit scalar tail. There is no
//! `core::simd` dependency, no nightly feature, no `std::arch` intrinsic
//! and no `unsafe`: the blocked code is ordinary safe Rust shaped so the
//! LLVM loop/SLP vectorizers reliably fire, and it cross-compiles
//! unchanged to non-x86 targets (CI checks aarch64).
//!
//! # Bit-identity rule
//!
//! Every kernel computes the **same per-element expression, with the same
//! operand order**, as its scalar reference (the `scalar_*` twins in this
//! crate). Integer kernels are trivially exact; the floating-point
//! kernels never reassociate across elements — each output lane is an
//! independent expression — so vector and scalar evaluation produce
//! bit-identical results. The SPECK and wavelet conformance goldens rely
//! on this: enabling or disabling the blocked paths must not change a
//! single stream byte.
//!
//! # Scalar fallback
//!
//! The `force-scalar` feature routes every public entry point to its
//! scalar reference implementation. CI builds and tests the workspace in
//! that configuration to prove the fallback stays correct (and the
//! proptests in this crate diff blocked vs scalar on every shape).

mod bitplane;
mod bytes;
mod float;
mod lift;
mod quant;

pub use bitplane::{apply_plane_bits, plane_word_u32, plane_word_u64};
pub use bytes::{max_assign, max_elem, pairwise_max_into, run_le};
pub use float::Float;
pub use lift::{lift_pairs, merge_even_odd, scale_in_place, split_even_odd};
pub use quant::{quantize_magnitude, quantize_meta_into, reconstruct_mid_riser_into};

/// The scalar reference implementations (the `scalar_*` twins), exported
/// for differential tests: proptests diff every blocked kernel against
/// its twin across shapes, tails, and alignments.
pub mod scalar {
    pub use crate::bitplane::{
        scalar_apply_plane_bits, scalar_plane_word_u32, scalar_plane_word_u64,
    };
    pub use crate::bytes::{
        scalar_max_assign, scalar_max_elem, scalar_pairwise_max_into, scalar_run_le,
    };
    pub use crate::lift::{
        scalar_lift_pairs, scalar_merge_even_odd, scalar_scale_in_place, scalar_split_even_odd,
    };
    pub use crate::quant::{scalar_quantize_meta_into, scalar_reconstruct_mid_riser_into};
}

/// Primitive unsigned lane types the integer kernels are generic over.
/// Sealed by construction: implemented only for the widths the pyramid
/// and coder actually use.
pub trait Lane: Copy + Ord + Default {}
impl Lane for u8 {}
impl Lane for u16 {}
impl Lane for u32 {}
impl Lane for u64 {}

#[cfg(test)]
mod tests {
    #[test]
    fn public_surface_links() {
        // Smoke-link every re-export once so a broken cfg combination
        // fails the plain test build, not just downstream crates.
        assert_eq!(crate::max_elem(&[3u8, 9, 1]), 9);
        assert_eq!(crate::run_le(&[1u8, 2, 3], 2), 2);
        assert_eq!(crate::plane_word_u64(&[1, 2, 3], 1), 0b110);
        let mut x = [1.0f64, 2.0];
        crate::scale_in_place(&mut x, 2.0);
        assert_eq!(x, [2.0, 4.0]);
        assert_eq!(crate::quantize_magnitude(2.5, 1.0), 2);
    }
}
