//! SZ3-like baseline: a from-scratch implementation of the
//! interpolation-based, error-bounded compressor family the paper
//! benchmarks as "SZ3" (Liang et al. 2022 / Zhao et al. 2021).
//!
//! Pipeline: a coarse anchor grid is stored verbatim; every other point is
//! predicted by cubic/linear interpolation along one axis from
//! already-reconstructed values (multilevel sweep), the residual is
//! quantized into `2t`-wide bins (guaranteeing `|error| ≤ t`), bin indices
//! are Huffman coded, and the whole stream goes through the lossless
//! stage — mirroring SZ's Huffman + ZSTD back end (§VI-E).
//!
//! Points whose residual exceeds the bin range are stored exactly
//! (SZ's "unpredictable data").
//!
//! Also exports [`compress_quant_bins`], the stand-alone outlier-coding
//! path used for the Fig. 11 comparison against SPERR's outlier coder.

mod compressor;
mod interp;
mod lorenzo;

pub use compressor::{compress_quant_bins, decompress_quant_bins, sz_lorenzo, Predictor, SzLike};

#[cfg(test)]
mod tests {
    use super::*;
    use sperr_compress_api::{Bound, Field, LossyCompressor};

    fn smooth_field(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.18).sin() * 50.0 + (y as f64 * 0.12).cos() * 30.0
                + (z as f64 * 0.25).sin() * 10.0
        })
    }

    fn max_err(a: &Field, b: &Field) -> f64 {
        a.data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn pwe_guarantee_smooth_field() {
        let field = smooth_field([33, 21, 17]);
        let sz = SzLike::default();
        for idx in [5u32, 10, 20, 30] {
            let t = field.tolerance_for_idx(idx);
            let stream = sz.compress(&field, Bound::Pwe(t)).unwrap();
            let rec = sz.decompress(&stream).unwrap();
            let e = max_err(&field, &rec);
            assert!(e <= t, "idx={idx}: {e} > {t}");
        }
    }

    #[test]
    fn pwe_guarantee_rough_field() {
        // Rough data forces many large bins and escapes.
        let field = Field::from_fn([20, 14, 9], |x, y, z| {
            (((x * 7907 + y * 104723 + z * 1299689) % 2048) as f64) - 1024.0
        });
        let sz = SzLike::default();
        let t = 0.25;
        let stream = sz.compress(&field, Bound::Pwe(t)).unwrap();
        let rec = sz.decompress(&stream).unwrap();
        assert!(max_err(&field, &rec) <= t);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let field = smooth_field([48, 48, 48]);
        let sz = SzLike::default();
        let t = field.tolerance_for_idx(12);
        let stream = sz.compress(&field, Bound::Pwe(t)).unwrap();
        let raw = field.len() * 8;
        assert!(
            stream.len() < raw / 15,
            "SZ-like managed only {} of {raw}",
            stream.len()
        );
    }

    #[test]
    fn tighter_tolerance_costs_more() {
        let field = smooth_field([32, 32, 32]);
        let sz = SzLike::default();
        let loose = sz.compress(&field, Bound::Pwe(field.tolerance_for_idx(8))).unwrap();
        let tight = sz.compress(&field, Bound::Pwe(field.tolerance_for_idx(24))).unwrap();
        assert!(tight.len() > loose.len());
    }

    #[test]
    fn small_and_degenerate_dims() {
        for dims in [[1usize, 1, 1], [5, 1, 1], [1, 9, 3], [2, 2, 2]] {
            let field = Field::from_fn(dims, |x, y, z| (x + 2 * y + 3 * z) as f64 * 1.1);
            let sz = SzLike::default();
            let t = 0.01;
            let stream = sz.compress(&field, Bound::Pwe(t)).unwrap();
            let rec = sz.decompress(&stream).unwrap();
            assert!(max_err(&field, &rec) <= t, "dims {dims:?}");
        }
    }

    #[test]
    fn unsupported_bounds() {
        let sz = SzLike::default();
        assert!(!sz.supports(&Bound::Bpp(2.0)));
        assert!(!sz.supports(&Bound::Psnr(80.0)));
        assert!(sz.supports(&Bound::Pwe(0.1)));
        let field = smooth_field([8, 8, 8]);
        assert!(sz.compress(&field, Bound::Bpp(2.0)).is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let field = smooth_field([16, 16, 8]);
        let sz = SzLike::default();
        let stream = sz.compress(&field, Bound::Pwe(0.1)).unwrap();
        assert!(sz.decompress(&stream[..stream.len() / 3]).is_err());
        assert!(sz.decompress(&[]).is_err());
    }

    #[test]
    fn lorenzo_predictor_pwe_guarantee() {
        let field = smooth_field([25, 19, 13]);
        let sz = sz_lorenzo();
        for idx in [8u32, 16, 24] {
            let t = field.tolerance_for_idx(idx);
            let stream = sz.compress(&field, Bound::Pwe(t)).unwrap();
            let rec = sz.decompress(&stream).unwrap();
            assert!(max_err(&field, &rec) <= t, "idx {idx}");
        }
    }

    #[test]
    fn predictor_recorded_in_stream() {
        // A Lorenzo stream must decode correctly through a
        // default-configured decompressor (predictor read from header).
        let field = smooth_field([16, 16, 8]);
        let t = field.tolerance_for_idx(12);
        let stream = sz_lorenzo().compress(&field, Bound::Pwe(t)).unwrap();
        let rec = SzLike::default().decompress(&stream).unwrap();
        assert!(max_err(&field, &rec) <= t);
    }

    #[test]
    fn interpolation_beats_lorenzo_on_turbulence_like_data() {
        // SZ3 moved from Lorenzo to interpolation for exactly this reason.
        // (On additively separable data Lorenzo is exact, so a
        // non-separable turbulence-like field is the fair comparison.)
        let field = sperr_datagen::SyntheticField::MirandaPressure.generate([32, 32, 32], 7);
        let t = field.tolerance_for_idx(16);
        let interp = SzLike::default().compress(&field, Bound::Pwe(t)).unwrap();
        let lorenzo = sz_lorenzo().compress(&field, Bound::Pwe(t)).unwrap();
        assert!(
            interp.len() < lorenzo.len(),
            "interp {} vs lorenzo {}",
            interp.len(),
            lorenzo.len()
        );
    }

    #[test]
    fn quant_bins_roundtrip() {
        let codes: Vec<i32> = (0..5000)
            .map(|i| if i % 37 == 0 { ((i % 9) as i32) - 4 } else { 0 })
            .collect();
        let bytes = compress_quant_bins(&codes);
        assert_eq!(decompress_quant_bins(&bytes).unwrap(), codes);
    }

    #[test]
    fn quant_bins_sparse_is_small() {
        // Mostly zeros: entropy << 1 bit/code; after Huffman + lossless the
        // per-code cost must be well under a byte.
        let n = 100_000usize;
        let codes: Vec<i32> = (0..n)
            .map(|i| if i % 100 == 0 { (((i / 100) % 7) as i32) - 3 } else { 0 })
            .collect();
        let bytes = compress_quant_bins(&codes);
        let bits_per_code = bytes.len() as f64 * 8.0 / n as f64;
        assert!(bits_per_code < 1.0, "bits/code {bits_per_code}");
    }
}
