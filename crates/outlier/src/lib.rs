//! The SPECK-inspired outlier coder (paper §IV, Listings 1–3).
//!
//! This is the component that turns SPECK into SPERR: after wavelet
//! reconstruction, data points whose error exceeds the point-wise error
//! (PWE) tolerance `t` — the *outliers* — get their positions and
//! correction values encoded by this coder, so the decoder can restore
//! them to within the tolerance.
//!
//! Given outliers `(pos, corr)` with `|corr| > t`, the encoder walks
//! thresholds `thrd = 2^n · t` from the largest power-of-two multiple of
//! `t` below `max |corr|` down to `t` itself. Each iteration runs a
//! *sorting pass* (binary set partitioning over the linearized 1-D domain,
//! one significance bit per tested set, one sign bit per newly significant
//! point — Listing 2) and a *refinement pass* (one bit per previously
//! significant point telling which half of its uncertainty interval the
//! true correction lies in — Listing 3). After the final iteration every
//! decoded correction is within `t/2` of the truth, strictly satisfying
//! the PWE tolerance.
//!
//! The paper's §IV-C choice is preserved: multi-dimensional inputs are
//! *linearized* before coding because outlier positions carry little
//! spatial correlation (Fig. 1); what SPECK-style coding buys here is
//! cheap position coding plus variable-length value coding in one
//! mechanism.
//!
//! # Example
//!
//! ```
//! use sperr_outlier::{encode, decode, Outlier};
//!
//! let t = 0.1;
//! let outliers = vec![
//!     Outlier { pos: 3, corr: 0.35 },
//!     Outlier { pos: 900, corr: -1.7 },
//! ];
//! let enc = encode(&outliers, 1024, t);
//! let mut decoded = decode(&enc.stream, 1024, t, enc.max_n).unwrap();
//! decoded.sort_by_key(|o| o.pos); // decode order is discovery order
//! assert_eq!(decoded.len(), 2);
//! for (d, o) in decoded.iter().zip(&outliers) {
//!     assert_eq!(d.pos, o.pos);
//!     assert!((d.corr - o.corr).abs() <= t / 2.0 + 1e-12);
//! }
//! ```

pub mod alternatives;
mod coder;
mod decoder;
mod rangemax;

pub use coder::{encode, EncodedOutliers, Outlier};
pub use decoder::{decode, DecodeError};

/// Version of the outlier bitstream layout produced by [`encode`]. Bump
/// whenever an intentional change alters the emitted bits for the same
/// input — the `sperr-conformance` golden-stream manifest records it, so a
/// silent format drift fails conformance while a deliberate one leaves a
/// paper trail (new constant here, regenerated goldens there).
pub const BITSTREAM_FORMAT: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip(outliers: &[Outlier], n: usize, t: f64) -> EncodedOutliers {
        let enc = encode(outliers, n, t);
        let dec = decode(&enc.stream, n, t, enc.max_n).unwrap();
        assert_eq!(dec.len(), outliers.len(), "outlier count mismatch");
        let mut dec_sorted = dec.clone();
        dec_sorted.sort_by_key(|o| o.pos);
        let mut orig_sorted = outliers.to_vec();
        orig_sorted.sort_by_key(|o| o.pos);
        for (d, o) in dec_sorted.iter().zip(&orig_sorted) {
            assert_eq!(d.pos, o.pos, "position must be exact");
            assert!(
                (d.corr - o.corr).abs() <= t / 2.0 + 1e-12,
                "correction error {} exceeds t/2 = {} (pos {})",
                (d.corr - o.corr).abs(),
                t / 2.0,
                o.pos
            );
        }
        enc
    }

    #[test]
    fn empty_outlier_list() {
        let enc = encode(&[], 100, 0.5);
        assert!(enc.stream.is_empty());
        let dec = decode(&enc.stream, 100, 0.5, enc.max_n).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn single_outlier() {
        check_roundtrip(&[Outlier { pos: 57, corr: 2.0 }], 128, 0.5);
    }

    #[test]
    fn outlier_at_domain_edges() {
        let t = 0.25;
        check_roundtrip(
            &[
                Outlier { pos: 0, corr: 1.0 },
                Outlier { pos: 999, corr: -0.9 },
            ],
            1000,
            t,
        );
    }

    #[test]
    fn barely_over_tolerance() {
        // corr only slightly above t: max_n == 0 path.
        let t = 1.0;
        check_roundtrip(&[Outlier { pos: 5, corr: 1.000001 }], 16, t);
    }

    #[test]
    fn huge_dynamic_range() {
        let t = 1e-9;
        check_roundtrip(
            &[
                Outlier { pos: 1, corr: 1e-8 },
                Outlier { pos: 2, corr: -1e3 },
                Outlier { pos: 3, corr: 2e-9 },
            ],
            8,
            t,
        );
    }

    #[test]
    fn dense_outliers() {
        // Every position is an outlier.
        let t = 0.1;
        let outliers: Vec<Outlier> = (0..64)
            .map(|i| Outlier {
                pos: i,
                corr: (0.2 + (i as f64) * 0.01) * if i % 2 == 0 { 1.0 } else { -1.0 },
            })
            .collect();
        check_roundtrip(&outliers, 64, t);
    }

    #[test]
    fn sparse_random_positions() {
        let t = 0.5;
        let outliers: Vec<Outlier> = (0..50)
            .map(|i| Outlier {
                pos: (i * 7919) % 100_000,
                corr: ((i as f64 * 1.73).sin() * 10.0).signum()
                    * (t * 1.01 + (i as f64 * 0.37).cos().abs() * 5.0),
            })
            .collect();
        // positions from the hash are unique because 7919 is coprime to 1e5
        check_roundtrip(&outliers, 100_000, t);
    }

    #[test]
    fn unsorted_input_is_accepted() {
        let t = 0.1;
        let outliers = vec![
            Outlier { pos: 90, corr: 0.5 },
            Outlier { pos: 3, corr: -0.7 },
            Outlier { pos: 42, corr: 0.2 },
        ];
        check_roundtrip(&outliers, 100, t);
    }

    #[test]
    fn bits_per_outlier_in_expected_range() {
        // §V-A: the cost of outlier coding is mostly 6–16 bits per outlier.
        // With ~1% random outliers on a reasonable domain we should land in
        // (or near) that band.
        let t = 1.0;
        let n = 10_000;
        let outliers: Vec<Outlier> = (0..100)
            .map(|i| Outlier {
                pos: (i * 97 + 13) % n,
                corr: (1.1 + (i % 7) as f64 * 0.33) * if i % 3 == 0 { -1.0 } else { 1.0 },
            })
            .collect();
        let enc = check_roundtrip(&outliers, n, t);
        let bpo = enc.bits_used as f64 / outliers.len() as f64;
        assert!(
            (4.0..30.0).contains(&bpo),
            "bits per outlier wildly off: {bpo}"
        );
    }

    #[test]
    fn decode_truncated_stream_never_panics() {
        let t = 0.5;
        let outliers: Vec<Outlier> = (0..30)
            .map(|i| Outlier { pos: i * 31, corr: 1.0 + i as f64 * 0.1 })
            .collect();
        let enc = encode(&outliers, 1000, t);
        for cut in 0..enc.stream.len() {
            let dec = decode(&enc.stream[..cut], 1000, t, enc.max_n);
            assert!(dec.is_ok());
        }
    }

    #[test]
    fn decode_garbage_never_panics() {
        let garbage: Vec<u8> = (0..500u32).map(|i| (i.wrapping_mul(101) >> 2) as u8).collect();
        for max_n in [0u8, 3, 20, 60] {
            let _ = decode(&garbage, 4096, 0.5, max_n);
        }
    }

    #[test]
    #[should_panic(expected = "outlier magnitude")]
    fn rejects_non_outliers() {
        // |corr| <= t is not an outlier; encoding such input is a caller bug.
        encode(&[Outlier { pos: 0, corr: 0.5 }], 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "position")]
    fn rejects_out_of_range_position() {
        encode(&[Outlier { pos: 10, corr: 5.0 }], 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_positions() {
        encode(
            &[
                Outlier { pos: 4, corr: 5.0 },
                Outlier { pos: 4, corr: -5.0 },
            ],
            10,
            1.0,
        );
    }

    #[test]
    fn amortized_cost_drops_with_density() {
        // §V-A / Fig. 4: more outliers amortize set-significance tests, so
        // bits/outlier decreases as density rises.
        let t = 1.0;
        let n = 4096;
        let make = |count: usize| -> Vec<Outlier> {
            (0..count)
                .map(|i| Outlier {
                    pos: (i * (n / count)) % n,
                    corr: 1.5 + (i % 5) as f64,
                })
                .collect()
        };
        let sparse = make(16);
        let dense = make(1024);
        let enc_sparse = encode(&sparse, n, t);
        let enc_dense = encode(&dense, n, t);
        let bpo_sparse = enc_sparse.bits_used as f64 / 16.0;
        let bpo_dense = enc_dense.bits_used as f64 / 1024.0;
        assert!(
            bpo_dense < bpo_sparse,
            "dense {bpo_dense} should be cheaper than sparse {bpo_sparse}"
        );
    }
}
