//! The per-chunk SPERR pipeline: transform → SPECK → outlier detection →
//! outlier coding (compression) and the mirror image (decompression).

use crate::stats::StageTimes;
use sperr_compress_api::CompressError;
use sperr_outlier::Outlier;
use sperr_speck::Termination;
use sperr_wavelet::{forward_3d, inverse_3d, levels_for_dims, Kernel};
use std::time::Instant;

/// Everything produced by compressing one chunk.
#[derive(Debug, Clone)]
pub struct ChunkEncoding {
    /// SPECK coefficient bitstream.
    pub speck_stream: Vec<u8>,
    /// Outlier correction bitstream (empty in size-bounded mode or when no
    /// outliers were produced).
    pub outlier_stream: Vec<u8>,
    /// Finest quantization step used by SPECK (`q = q_factor · t` in PWE
    /// mode, derived from the coefficient range in BPP mode).
    pub q: f64,
    /// SPECK bitplane count (decoder input).
    pub num_planes: u8,
    /// Outlier coder starting exponent (decoder input).
    pub max_n: u8,
    /// Number of outliers corrected.
    pub num_outliers: u32,
    /// Exact SPECK bits before byte padding.
    pub speck_bits: usize,
    /// Exact outlier-coding bits before byte padding.
    pub outlier_bits: usize,
    /// Wall time per stage.
    pub times: StageTimes,
    /// Sum of squared reconstruction errors before outlier correction
    /// (space domain in PWE mode, wavelet domain otherwise; ~equal by
    /// near-orthogonality, §III-A).
    pub coeff_sq_error: f64,
}

/// PWE-bounded compression of one chunk (§IV): SPECK at `q = q_factor · t`
/// followed by outlier correction so every point lands within `t`.
pub fn compress_chunk_pwe(
    data: &[f64],
    dims: [usize; 3],
    t: f64,
    q_factor: f64,
    kernel: Kernel,
) -> ChunkEncoding {
    assert!(t > 0.0 && t.is_finite(), "PWE tolerance must be positive");
    assert!(q_factor > 0.0, "q factor must be positive");
    let levels = levels_for_dims(dims);
    let q = q_factor * t;

    // Stage 1: forward wavelet transform.
    let t0 = Instant::now();
    let mut coeffs = data.to_vec();
    forward_3d(&mut coeffs, dims, levels, kernel);
    let wavelet_time = t0.elapsed();

    // Stage 2: SPECK coding of coefficients, all planes down to q.
    let t1 = Instant::now();
    let enc = sperr_speck::encode(&coeffs, dims, q, Termination::Quality);
    let speck_time = t1.elapsed();

    // Stage 3: locate outliers — reconstruct (quantized coefficients +
    // inverse transform) and compare with the original input.
    let t2 = Instant::now();
    let mut recon = sperr_speck::reconstruct_quantized(&coeffs, q);
    inverse_3d(&mut recon, dims, levels, kernel);
    let mut coeff_sq_error = 0.0;
    let outliers: Vec<Outlier> = data
        .iter()
        .zip(&recon)
        .enumerate()
        .filter_map(|(pos, (&orig, &rec))| {
            let corr = orig - rec;
            coeff_sq_error += corr * corr;
            (corr.abs() > t).then_some(Outlier { pos, corr })
        })
        .collect();
    let locate_time = t2.elapsed();

    // Stage 4: encode the outliers.
    let t3 = Instant::now();
    let out_enc = sperr_outlier::encode(&outliers, data.len(), t);
    let outlier_time = t3.elapsed();

    ChunkEncoding {
        speck_stream: enc.stream,
        outlier_stream: out_enc.stream,
        q,
        num_planes: enc.num_planes,
        max_n: out_enc.max_n,
        num_outliers: outliers.len() as u32,
        speck_bits: enc.bits_used,
        outlier_bits: out_enc.bits_used,
        times: StageTimes {
            wavelet: wavelet_time,
            speck: speck_time,
            locate_outliers: locate_time,
            outlier_coding: outlier_time,
        },
        coeff_sq_error,
    }
}

/// Number of bitplanes below the maximum coefficient magnitude that the
/// size-bounded mode makes addressable. 48 planes put the floor far below
/// any practical bit budget.
const BPP_MODE_PLANES: i32 = 48;

/// Size-bounded compression of one chunk: SPECK's embedded stream is cut
/// at `budget_bits`; no error guarantee, no outlier pass (§III-B: "the
/// encoding process can terminate whenever a user-prescribed output size
/// is reached").
pub fn compress_chunk_bpp(
    data: &[f64],
    dims: [usize; 3],
    budget_bits: usize,
    kernel: Kernel,
) -> ChunkEncoding {
    let levels = levels_for_dims(dims);
    let t0 = Instant::now();
    let mut coeffs = data.to_vec();
    forward_3d(&mut coeffs, dims, levels, kernel);
    let wavelet_time = t0.elapsed();

    let max_mag = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
    // Quantization floor well below the budget's reach; degenerate
    // all-zero chunks encode to an empty stream with any positive q.
    let q = if max_mag > 0.0 { max_mag * f64::exp2(-f64::from(BPP_MODE_PLANES)) } else { 1.0 };

    let t1 = Instant::now();
    let enc = sperr_speck::encode(&coeffs, dims, q, Termination::BitBudget(budget_bits));
    let speck_time = t1.elapsed();

    ChunkEncoding {
        speck_stream: enc.stream,
        outlier_stream: Vec::new(),
        q,
        num_planes: enc.num_planes,
        max_n: 0,
        num_outliers: 0,
        speck_bits: enc.bits_used,
        outlier_bits: 0,
        times: StageTimes {
            wavelet: wavelet_time,
            speck: speck_time,
            ..StageTimes::default()
        },
        coeff_sq_error: 0.0, // budget truncation: not tracked
    }
}

/// Average-error-targeted compression of one chunk (paper §VII: "the
/// property of roughly equal root-mean-square error between wavelet
/// coefficients and their inversely transformed reconstruction ...
/// enables ... compression targeting an average error"): SPECK runs at
/// `q = target_rmse`, whose mid-riser error (≤ q/2 per coded coefficient,
/// < q in the dead zone) keeps the reconstruction RMSE at or below the
/// target thanks to the transform's near-orthogonality. No outlier pass.
pub fn compress_chunk_rmse(
    data: &[f64],
    dims: [usize; 3],
    target_rmse: f64,
    kernel: Kernel,
) -> ChunkEncoding {
    assert!(target_rmse > 0.0 && target_rmse.is_finite());
    let levels = levels_for_dims(dims);
    let t0 = Instant::now();
    let mut coeffs = data.to_vec();
    forward_3d(&mut coeffs, dims, levels, kernel);
    let wavelet_time = t0.elapsed();

    let q = target_rmse;
    let t1 = Instant::now();
    let enc = sperr_speck::encode(&coeffs, dims, q, Termination::Quality);
    let speck_time = t1.elapsed();

    // Wavelet-domain quantization error ~ reconstruction error (§III-A).
    let recon = sperr_speck::reconstruct_quantized(&coeffs, q);
    let coeff_sq_error: f64 = coeffs
        .iter()
        .zip(&recon)
        .map(|(c, r)| (c - r) * (c - r))
        .sum();

    ChunkEncoding {
        speck_stream: enc.stream,
        outlier_stream: Vec::new(),
        q,
        num_planes: enc.num_planes,
        max_n: 0,
        num_outliers: 0,
        speck_bits: enc.bits_used,
        outlier_bits: 0,
        times: StageTimes { wavelet: wavelet_time, speck: speck_time, ..StageTimes::default() },
        coeff_sq_error,
    }
}

/// Multi-resolution decompression of one chunk (paper §VII: the wavelet
/// hierarchy "enables multi-level reconstruction that is useful in areas
/// such as explorative analysis"): decodes the coefficients, undoes all
/// but the finest `level` transform levels, and returns the coarse
/// approximation (re-scaled to physical units) together with its dims.
/// Outlier corrections are full-resolution data and do not apply to a
/// coarse reconstruction.
pub fn decompress_chunk_multires(
    speck_stream: &[u8],
    dims: [usize; 3],
    q: f64,
    num_planes: u8,
    level: usize,
    kernel: Kernel,
) -> Result<(Vec<f64>, [usize; 3]), CompressError> {
    let levels = levels_for_dims(dims);
    if levels.iter().any(|&l| l < level) {
        return Err(CompressError::Invalid(format!(
            "resolution level {level} exceeds the chunk's transform depth {levels:?}"
        )));
    }
    let mut coeffs = sperr_speck::decode(speck_stream, dims, q, num_planes)?;
    sperr_wavelet::inverse_3d_partial(&mut coeffs, dims, levels, level, kernel);
    let cdims = sperr_wavelet::coarse_dims(dims, levels, level);
    let scale = 1.0 / sperr_wavelet::coarse_scale(dims, levels, level);
    let mut out = Vec::with_capacity(cdims.iter().product());
    for z in 0..cdims[2] {
        for y in 0..cdims[1] {
            for x in 0..cdims[0] {
                out.push(coeffs[x + dims[0] * (y + dims[1] * z)] * scale);
            }
        }
    }
    Ok((out, cdims))
}

/// Decompresses one chunk. `tolerance` must be the compression-time `t`
/// for PWE streams (used to scale outlier thresholds); it is ignored when
/// the outlier stream is empty.
pub fn decompress_chunk(
    speck_stream: &[u8],
    outlier_stream: &[u8],
    dims: [usize; 3],
    q: f64,
    num_planes: u8,
    max_n: u8,
    tolerance: f64,
    kernel: Kernel,
) -> Result<Vec<f64>, CompressError> {
    let levels = levels_for_dims(dims);
    let mut coeffs = sperr_speck::decode(speck_stream, dims, q, num_planes)?;
    inverse_3d(&mut coeffs, dims, levels, kernel);
    if !outlier_stream.is_empty() {
        if !(tolerance > 0.0) {
            return Err(CompressError::Corrupt(
                "outlier stream present but tolerance missing".into(),
            ));
        }
        let corrections =
            sperr_outlier::decode(outlier_stream, coeffs.len(), tolerance, max_n)?;
        for c in corrections {
            if c.pos >= coeffs.len() {
                return Err(CompressError::Corrupt("outlier position out of range".into()));
            }
            // z = x̃ + corr (Eq. 1).
            coeffs[c.pos] += c.corr;
        }
    }
    Ok(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_data(dims: [usize; 3]) -> Vec<f64> {
        (0..dims.iter().product())
            .map(|i| (i as f64 * 0.213).sin() * 12.0 + (i as f64 * 0.0071).cos() * 3.0)
            .collect()
    }

    #[test]
    fn chunk_pwe_roundtrip_bounds_error() {
        let dims = [24usize, 16, 12];
        let data = test_data(dims);
        let t = 0.01;
        let enc = compress_chunk_pwe(&data, dims, t, 1.5, Kernel::Cdf97);
        let rec = decompress_chunk(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            t,
            Kernel::Cdf97,
        )
        .unwrap();
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= t, "{a} vs {b}");
        }
    }

    #[test]
    fn outliers_actually_corrected() {
        // With a large q factor SPECK alone violates t; the outlier pass
        // must fix every violation.
        let dims = [16usize, 16, 16];
        let data = test_data(dims);
        let t = 0.001;
        let enc = compress_chunk_pwe(&data, dims, t, 3.0, Kernel::Cdf97);
        assert!(enc.num_outliers > 0, "expected outliers at q = 3t");
        let rec = decompress_chunk(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            t,
            Kernel::Cdf97,
        )
        .unwrap();
        let max_err = data
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_err <= t);
    }

    #[test]
    fn bpp_chunk_respects_budget() {
        let dims = [16usize, 16, 16];
        let data = test_data(dims);
        let budget = 4096usize; // 1 bpp
        let enc = compress_chunk_bpp(&data, dims, budget, Kernel::Cdf97);
        assert!(enc.speck_bits <= budget);
        let rec = decompress_chunk(
            &enc.speck_stream,
            &[],
            dims,
            enc.q,
            enc.num_planes,
            0,
            0.0,
            Kernel::Cdf97,
        )
        .unwrap();
        assert_eq!(rec.len(), data.len());
    }

    #[test]
    fn all_zero_chunk() {
        let dims = [8usize, 8, 8];
        let data = vec![0.0; 512];
        let enc = compress_chunk_pwe(&data, dims, 0.1, 1.5, Kernel::Cdf97);
        assert!(enc.speck_stream.is_empty());
        assert_eq!(enc.num_outliers, 0);
        let rec = decompress_chunk(
            &enc.speck_stream,
            &enc.outlier_stream,
            dims,
            enc.q,
            enc.num_planes,
            enc.max_n,
            0.1,
            Kernel::Cdf97,
        )
        .unwrap();
        assert_eq!(rec, data);
    }
}
