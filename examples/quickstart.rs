//! Quickstart: compress a 3D scientific field with a point-wise error
//! guarantee, decompress, and verify the bound.
//!
//! Run with: `cargo run --release --example quickstart`

use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn main() {
    // A turbulence-like 64³ field (stand-in for SDRBench's Miranda).
    let dims = [64, 64, 64];
    let field: Field = SyntheticField::MirandaPressure.generate(dims, 42);
    println!("field: {} ({}x{}x{} = {} points, range {:.3e})",
        SyntheticField::MirandaPressure.name(),
        dims[0], dims[1], dims[2], field.len(), field.range());

    // Pick a tolerance one millionth of the data range (Table I, idx=20).
    let t = field.tolerance_for_idx(20);
    println!("PWE tolerance t = {t:.3e}  (idx = 20)");

    // Compress. The default config is the paper's: q = 1.5t, CDF 9/7,
    // 256³ chunks, lossless post-pass.
    let sperr = Sperr::new(SperrConfig::default());
    let (stream, stats) = sperr
        .compress_with_stats(&field, Bound::Pwe(t))
        .expect("compression failed");

    let raw_bytes = field.len() * 8;
    println!("compressed: {} -> {} bytes ({:.1}x, {:.3} bpp)",
        raw_bytes, stream.len(),
        raw_bytes as f64 / stream.len() as f64,
        stats.bpp());
    println!("  coefficient coding: {:.3} bpp", stats.speck_bpp());
    println!("  outlier coding:     {:.3} bpp ({} outliers, {:.1} bits each)",
        stats.outlier_bpp(), stats.num_outliers,
        if stats.num_outliers > 0 { stats.bits_per_outlier() } else { 0.0 });

    // Decompress and verify the guarantee.
    let restored = sperr.decompress(&stream).expect("decompression failed");
    let max_err = sperr_metrics::max_pwe(&field.data, &restored.data);
    let psnr = sperr_metrics::psnr(&field.data, &restored.data);
    println!("max point-wise error: {max_err:.3e} (tolerance {t:.3e})");
    println!("PSNR: {psnr:.2} dB");
    assert!(max_err <= t, "PWE guarantee violated!");
    println!("PWE guarantee holds.");
}
