//! Wavelet-transform substrate for the SPERR reproduction.
//!
//! Implements the CDF 9/7 biorthogonal wavelet transform via the lifting
//! scheme (Daubechies & Sweldens factorization) with symmetric
//! (whole-sample) boundary extension and approximately unit-norm basis
//! functions — the configuration the paper borrows from QccPack (§III-A).
//! Because the basis is near-orthogonal and normalized, the L² error
//! introduced in wavelet coefficients during coding approximately equals
//! the L² error of the reconstruction, which SPERR's design relies on.
//!
//! Also provided, for the design-choice ablations in `crates/bench`:
//! CDF 5/3 (LeGall) and Haar kernels.
//!
//! # Layout
//!
//! Transforms are *in place* over a row-major array. After one level along
//! an axis of length `n`, the `ceil(n/2)` approximation coefficients occupy
//! the front of that axis and the `floor(n/2)` details the back — the
//! standard dyadic ("Mallat") packing SPECK's octree partitioning aligns
//! with.
//!
//! # Level rule
//!
//! Per the paper: with an input axis of length `N`, the number of recursive
//! transform passes is `min(6, ⌊log2 N⌋ − 2)` (and 0 when `N < 8`); see
//! [`num_levels`].
//!
//! # Example
//!
//! ```
//! use sperr_wavelet::{forward_3d, inverse_3d, levels_for_dims, Kernel};
//!
//! let dims = [16, 16, 16];
//! let mut data: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
//!     .map(|i| (i as f64 * 0.37).sin())
//!     .collect();
//! let orig = data.clone();
//! let levels = levels_for_dims(dims);
//! forward_3d(&mut data, dims, levels, Kernel::Cdf97);
//! inverse_3d(&mut data, dims, levels, Kernel::Cdf97);
//! for (a, b) in orig.iter().zip(&data) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

mod exec;
mod kernels;
mod transform;

pub use exec::{stress, LineExecutor, Serial, TransformScratch, PANEL_W};
pub use kernels::Kernel;
pub use transform::reference;
pub use transform::{
    approx_len, coarse_dims, coarse_scale, forward_1d, forward_1d_with, forward_2d, forward_3d,
    forward_3d_with, inverse_1d, inverse_1d_with, inverse_2d, inverse_3d, inverse_3d_partial,
    inverse_3d_partial_with, inverse_3d_with, levels_for_dims, num_levels,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn energy(a: &[f64]) -> f64 {
        a.iter().map(|x| x * x).sum()
    }

    #[test]
    fn level_rule_matches_paper() {
        assert_eq!(num_levels(1), 0);
        assert_eq!(num_levels(7), 0);
        assert_eq!(num_levels(8), 1);
        assert_eq!(num_levels(15), 1);
        assert_eq!(num_levels(16), 2);
        assert_eq!(num_levels(64), 4);
        assert_eq!(num_levels(256), 6);
        assert_eq!(num_levels(512), 6); // capped at six
        assert_eq!(num_levels(3072), 6);
    }

    #[test]
    fn approx_len_is_ceil_half() {
        assert_eq!(approx_len(9), 5);
        assert_eq!(approx_len(8), 4);
        assert_eq!(approx_len(1), 1);
    }

    #[test]
    fn perfect_reconstruction_1d_all_kernels() {
        for kernel in [Kernel::Cdf97, Kernel::Cdf53, Kernel::Haar] {
            for n in [2usize, 3, 5, 8, 9, 16, 17, 33, 64, 100, 257] {
                let orig: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).cos()).collect();
                let mut data = orig.clone();
                let levels = 1;
                forward_1d(&mut data, n, levels, kernel);
                inverse_1d(&mut data, n, levels, kernel);
                assert!(
                    max_abs_diff(&orig, &data) < 1e-10,
                    "PR failed: kernel={kernel:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn perfect_reconstruction_1d_multilevel() {
        for n in [32usize, 65, 100, 257] {
            let orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() * 40.0).collect();
            let mut data = orig.clone();
            let levels = num_levels(n);
            forward_1d(&mut data, n, levels, Kernel::Cdf97);
            inverse_1d(&mut data, n, levels, Kernel::Cdf97);
            assert!(max_abs_diff(&orig, &data) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn perfect_reconstruction_2d() {
        let dims = [21, 34];
        let orig: Vec<f64> = (0..dims[0] * dims[1])
            .map(|i| (i as f64 * 0.17).sin() * 5.0 + (i as f64 * 0.031).cos())
            .collect();
        let mut data = orig.clone();
        let levels = [2, 2];
        forward_2d(&mut data, dims, levels, Kernel::Cdf97);
        inverse_2d(&mut data, dims, levels, Kernel::Cdf97);
        assert!(max_abs_diff(&orig, &data) < 1e-9);
    }

    #[test]
    fn perfect_reconstruction_3d_odd_dims() {
        let dims = [13, 10, 11];
        let orig: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| ((i % 97) as f64).sqrt() - (i as f64 * 0.003))
            .collect();
        let mut data = orig.clone();
        let levels = [1, 1, 1];
        forward_3d(&mut data, dims, levels, Kernel::Cdf97);
        inverse_3d(&mut data, dims, levels, Kernel::Cdf97);
        assert!(max_abs_diff(&orig, &data) < 1e-9);
    }

    #[test]
    fn perfect_reconstruction_3d_deep() {
        let dims = [32, 32, 32];
        let orig: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| (i as f64 * 0.0217).sin() * 100.0)
            .collect();
        let mut data = orig.clone();
        let levels = levels_for_dims(dims);
        assert_eq!(levels, [3, 3, 3]);
        forward_3d(&mut data, dims, levels, Kernel::Cdf97);
        inverse_3d(&mut data, dims, levels, Kernel::Cdf97);
        assert!(max_abs_diff(&orig, &data) < 1e-8);
    }

    #[test]
    fn constant_signal_concentrates_in_approx_band() {
        // A constant input must produce (near-)zero detail coefficients and
        // an approximation band scaled by sqrt(2) per level (unit-norm basis).
        let n = 64;
        let c = 3.5f64;
        let mut data = vec![c; n];
        forward_1d(&mut data, n, 1, Kernel::Cdf97);
        let half = approx_len(n);
        for &d in &data[half..] {
            assert!(d.abs() < 1e-12, "detail leak on constant input: {d}");
        }
        for &s in &data[..half] {
            assert!((s - c * std::f64::consts::SQRT_2).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_ramp_details_vanish_inside() {
        // CDF 9/7 analysis has vanishing moments; a linear ramp yields zero
        // detail coefficients away from boundaries. Whole-sample symmetric
        // extension preserves this at boundaries too for degree <= 1, but we
        // only assert the interior to stay robust.
        let n = 64;
        let mut data: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
        forward_1d(&mut data, n, 1, Kernel::Cdf97);
        let half = approx_len(n);
        for &d in &data[half + 2..n - 2] {
            assert!(d.abs() < 1e-9, "interior detail on ramp: {d}");
        }
    }

    #[test]
    fn near_orthogonality_energy_preservation() {
        // §III-A: basis is near-orthonormal, so energy is roughly preserved.
        // CDF 9/7 is biorthogonal, not orthogonal: allow a few percent.
        let dims = [32, 32, 32];
        let orig: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| ((i as u64).wrapping_mul(2654435761) as f64 / u64::MAX as f64) - 0.5)
            .collect();
        let mut data = orig.clone();
        forward_3d(&mut data, dims, levels_for_dims(dims), Kernel::Cdf97);
        let ratio = energy(&data) / energy(&orig);
        assert!(
            (0.9..1.1).contains(&ratio),
            "energy ratio out of range: {ratio}"
        );
    }

    #[test]
    fn unequal_axis_levels() {
        // Axes of very different lengths get different level counts; the
        // driver must still invert exactly.
        let dims = [64, 8, 16];
        let levels = levels_for_dims(dims);
        assert_eq!(levels, [4, 1, 2]);
        let orig: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| (i as f64).sin())
            .collect();
        let mut data = orig.clone();
        forward_3d(&mut data, dims, levels, Kernel::Cdf97);
        inverse_3d(&mut data, dims, levels, Kernel::Cdf97);
        assert!(max_abs_diff(&orig, &data) < 1e-9);
    }

    #[test]
    fn zero_levels_is_identity() {
        let dims = [5, 5, 5];
        let orig: Vec<f64> = (0..125).map(|i| i as f64).collect();
        let mut data = orig.clone();
        forward_3d(&mut data, dims, [0, 0, 0], Kernel::Cdf97);
        assert_eq!(orig, data);
    }

    #[test]
    fn information_compaction_on_smooth_field() {
        // The defining property the paper relies on: most energy lands in a
        // small fraction of coefficients for smooth inputs (§II).
        let dims = [32, 32, 32];
        let mut orig = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    orig.push(
                        (x as f64 * 0.2).sin() + (y as f64 * 0.15).cos() + (z as f64 * 0.1).sin(),
                    );
                }
            }
        }
        let mut data = orig.clone();
        forward_3d(&mut data, dims, levels_for_dims(dims), Kernel::Cdf97);
        let total = energy(&data);
        let mut mags: Vec<f64> = data.iter().map(|x| x * x).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top1pct: f64 = mags[..mags.len() / 100].iter().sum();
        assert!(
            top1pct / total > 0.99,
            "top 1% of coefficients hold only {:.4} of energy",
            top1pct / total
        );
    }
}
