//! The multilevel interpolation sweep shared by encoder and decoder.
//!
//! SZ3's default predictor (Zhao et al., ICDE 2021) refines a coarse
//! anchor grid level by level: at each level the known grid (all
//! coordinates multiples of `stride`) is refined to `stride/2` in three
//! axis passes, predicting every new point by cubic (4 known neighbours)
//! or linear (2) interpolation along the active axis from
//! already-reconstructed values. Enumerating the sweep identically on
//! both sides is what guarantees encoder/decoder parity, so the traversal
//! lives here and both sides drive it with a callback.

/// Cubic interpolation weights for the midpoint of 4 equally spaced
/// samples (Catmull-Rom / SZ3's choice): (-1, 9, 9, -1) / 16.
#[inline]
pub fn cubic_mid(a: f64, b: f64, c: f64, d: f64) -> f64 {
    (-a + 9.0 * b + 9.0 * c - d) / 16.0
}

/// Prediction for a point along `axis` at `coord`, given known samples at
/// `coord ± stride` and `coord ± 3·stride` (when in range). Reads
/// reconstructed values via `get`.
#[inline]
fn predict(
    get: &impl Fn([usize; 3]) -> f64,
    mut pos: [usize; 3],
    axis: usize,
    stride: usize,
    dim: usize,
) -> f64 {
    let c = pos[axis];
    let left = c >= stride;
    let right = c + stride < dim;
    let left2 = c >= 3 * stride;
    let right2 = c + 3 * stride < dim;
    match (left, right) {
        (true, true) => {
            if left2 && right2 {
                let mut p = pos;
                p[axis] = c - 3 * stride;
                let a = get(p);
                p[axis] = c - stride;
                let b = get(p);
                p[axis] = c + stride;
                let d = get(p);
                p[axis] = c + 3 * stride;
                let e = get(p);
                cubic_mid(a, b, d, e)
            } else {
                let mut p = pos;
                p[axis] = c - stride;
                let a = get(p);
                p[axis] = c + stride;
                let b = get(p);
                (a + b) * 0.5
            }
        }
        (true, false) => {
            pos[axis] = c - stride;
            get(pos)
        }
        (false, true) => {
            pos[axis] = c + stride;
            get(pos)
        }
        (false, false) => 0.0,
    }
}

/// Drives the full multilevel sweep. For every non-anchor point, in a
/// deterministic order, calls `visit(linear_index, prediction)`; `get`
/// must return the *reconstructed* value at a (previously visited or
/// anchor) point.
///
/// `max_level` defines the anchor stride `2^max_level`.
pub fn sweep(
    dims: [usize; 3],
    max_level: u32,
    get: &impl Fn([usize; 3]) -> f64,
    mut visit: impl FnMut(usize, f64),
) {
    let idx = |p: [usize; 3]| p[0] + dims[0] * (p[1] + dims[1] * p[2]);
    for level in (1..=max_level).rev() {
        let step = 1usize << level;
        let half = step >> 1;
        // Pass per axis; after pass `a`, axis `a` is refined to `half`.
        for axis in 0..3 {
            // Enumerate points where coord[axis] is an odd multiple of
            // `half`, already-refined axes run at `half`, not-yet-refined
            // axes at `step`.
            let stride_of = |a: usize| if a < axis { half } else { step };
            let mut p = [0usize; 3];
            // iterate z, y, x with their strides; the active axis runs
            // over odd multiples of half.
            let ranges: Vec<Vec<usize>> = (0..3)
                .map(|a| {
                    if a == axis {
                        (0..dims[a]).skip(half).step_by(step).collect()
                    } else {
                        (0..dims[a]).step_by(stride_of(a)).collect()
                    }
                })
                .collect();
            for &z in &ranges[2] {
                p[2] = z;
                for &y in &ranges[1] {
                    p[1] = y;
                    for &x in &ranges[0] {
                        p[0] = x;
                        let pred = predict(get, p, axis, half, dims[axis]);
                        visit(idx(p), pred);
                    }
                }
            }
        }
    }
}

/// Anchor points: all coordinates multiples of `2^max_level`, in
/// deterministic (z, y, x) order. Returns linear indices.
pub fn anchors(dims: [usize; 3], max_level: u32) -> Vec<usize> {
    let stride = 1usize << max_level;
    let mut out = Vec::new();
    for z in (0..dims[2]).step_by(stride) {
        for y in (0..dims[1]).step_by(stride) {
            for x in (0..dims[0]).step_by(stride) {
                out.push(x + dims[0] * (y + dims[1] * z));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashSet;

    #[test]
    fn sweep_visits_every_non_anchor_exactly_once() {
        for dims in [[9usize, 7, 5], [4, 4, 4], [1, 16, 1], [8, 1, 3]] {
            let max_level = 3;
            let n = dims.iter().product::<usize>();
            let visited = RefCell::new(HashSet::new());
            sweep(dims, max_level, &|_| 0.0, |i, _| {
                assert!(visited.borrow_mut().insert(i), "dup visit {i} dims={dims:?}");
            });
            let anchor_set: HashSet<usize> = anchors(dims, max_level).into_iter().collect();
            assert_eq!(
                visited.borrow().len() + anchor_set.len(),
                n,
                "coverage mismatch dims={dims:?}"
            );
            assert!(visited.borrow().is_disjoint(&anchor_set));
        }
    }

    #[test]
    fn sweep_only_reads_known_points() {
        // `get` must only ever be called on anchors or already-visited
        // points — the property that makes decode mirror encode.
        let dims = [9usize, 6, 5];
        let max_level = 2;
        let known = RefCell::new(
            anchors(dims, max_level).into_iter().collect::<HashSet<usize>>(),
        );
        let dims_c = dims;
        sweep(
            dims,
            max_level,
            &|p| {
                let i = p[0] + dims_c[0] * (p[1] + dims_c[1] * p[2]);
                assert!(known.borrow().contains(&i), "read of unknown point {p:?}");
                0.0
            },
            |i, _| {
                known.borrow_mut().insert(i);
            },
        );
    }

    #[test]
    fn linear_data_predicted_exactly() {
        // Cubic & linear interpolation are exact on affine data, so every
        // prediction must match the true value (except extrapolated
        // boundary copies).
        let dims = [17usize, 9, 5];
        let f = |p: [usize; 3]| 2.0 * p[0] as f64 - 0.5 * p[1] as f64 + p[2] as f64;
        let idx_to_p = |i: usize| {
            [i % dims[0], (i / dims[0]) % dims[1], i / (dims[0] * dims[1])]
        };
        let mut interior_errors = 0;
        sweep(dims, 3, &f, |i, pred| {
            let p = idx_to_p(i);
            let truth = f(p);
            // boundary one-sided predictions are copies, skip those
            let interior = (0..3).all(|a| p[a] + 1 < dims[a] || p[a] == 0 || dims[a] == 1);
            if interior && (pred - truth).abs() > 1e-9 {
                interior_errors += 1;
            }
        });
        // The vast majority of points must be predicted exactly.
        assert!(interior_errors < dims.iter().product::<usize>() / 10,
                "{interior_errors} mispredictions");
    }

    #[test]
    fn cubic_weights_reproduce_cubics() {
        // Midpoint of samples of f(x)=x^3 at -3,-1,1,3 is f(0)=0.
        assert!((cubic_mid(-27.0, -1.0, 1.0, 27.0)).abs() < 1e-12);
        // And f(x)=x^2: (-9 + 9 + 9 - 9)/16 + ... = exact 0^2?
        assert!((cubic_mid(9.0, 1.0, 1.0, 9.0)).abs() < 1e-12 + 0.125);
    }
}
