//! Differential property tests: every blocked kernel must agree with its
//! scalar twin — exactly, including floating-point bit patterns — across
//! arbitrary lengths (odd, prime, block-multiple, tail-remainder) and
//! across *unaligned* slice offsets (the coder hands kernels interior
//! windows of larger arrays, so a kernel must not assume its slice starts
//! at an allocation boundary). This is the executable form of the crate's
//! bit-identity rule; the conformance goldens enforce the same property
//! end-to-end, these pin it per kernel with shrinkable counterexamples.

use proptest::prelude::*;
use sperr_simd as simd;
use sperr_simd::scalar;

/// Lengths that stress the chunked loops: 0, 1, the block widths used in
/// the crate (4, 8, 16), their neighbours, primes, and a few larger odd
/// sizes so every tail-remainder count occurs.
fn len_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        2usize..=17,
        prop_oneof![Just(19usize), Just(23), Just(31), Just(61), Just(67), Just(127)],
        64usize..=129,
    ]
}

/// Offset into a padded backing vector, so kernels see slices whose first
/// element is not allocation-aligned.
fn off_strategy() -> impl Strategy<Value = usize> {
    0usize..=7
}

fn f64_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    // Finite but wide-ranged values plus signed zeros; NaN/inf handling
    // is pinned separately (quantize kernels saturate, lifting kernels
    // are only ever fed finite data by the transform).
    prop::collection::vec(
        prop_oneof![
            -1e9f64..1e9,
            Just(0.0f64),
            Just(-0.0f64),
            -1e-3f64..1e-3,
        ],
        n..=n,
    )
}

fn bytes_lt_128(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..128, n..=n)
}

proptest! {
    #[test]
    fn run_le_matches_scalar(
        (v, off, t) in (len_strategy(), off_strategy(), 0u8..128)
            .prop_flat_map(|(len, off, t)| (bytes_lt_128(len + off), Just(off), Just(t)))
    ) {
        let s = &v[off..];
        prop_assert_eq!(simd::run_le(s, t), scalar::scalar_run_le(s, t));
    }

    #[test]
    fn run_le_boundary_runs(boundary in 0usize..40) {
        // A run that flips exactly at `boundary` exercises every lane
        // position of the 8-byte SWAR step.
        let mut v = vec![5u8; 40];
        for b in v.iter_mut().skip(boundary) {
            *b = 99;
        }
        prop_assert_eq!(simd::run_le(&v, 7), boundary);
        prop_assert_eq!(simd::run_le(&v, 7), scalar::scalar_run_le(&v, 7));
    }

    #[test]
    fn max_kernels_match_scalar(
        (v, off) in (len_strategy(), off_strategy())
            .prop_flat_map(|(len, off)| (prop::collection::vec(any::<u8>(), len + off), Just(off)))
    ) {
        let s = &v[off..];
        prop_assert_eq!(simd::max_elem(s), scalar::scalar_max_elem(s));

        let mut d1: Vec<u8> = s.iter().map(|&b| b ^ 0x5a).collect();
        let mut d2 = d1.clone();
        simd::max_assign(&mut d1, s);
        scalar::scalar_max_assign(&mut d2, s);
        prop_assert_eq!(&d1, &d2);

        let mut p1 = vec![0u8; s.len().div_ceil(2)];
        let mut p2 = p1.clone();
        if !s.is_empty() {
            simd::pairwise_max_into(s, &mut p1);
            scalar::scalar_pairwise_max_into(s, &mut p2);
            prop_assert_eq!(&p1, &p2);
        }
    }

    #[test]
    fn plane_word_matches_scalar(
        (ks, n) in (0usize..=64)
            .prop_flat_map(|len| (prop::collection::vec(any::<u64>(), len), 0u32..64))
    ) {
        prop_assert_eq!(simd::plane_word_u64(&ks, n), scalar::scalar_plane_word_u64(&ks, n));
        let ks32: Vec<u32> = ks.iter().map(|&k| k as u32).collect();
        let n32 = n % 32;
        prop_assert_eq!(simd::plane_word_u32(&ks32, n32), scalar::scalar_plane_word_u32(&ks32, n32));
    }

    #[test]
    fn apply_plane_bits_matches_scalar(
        (word, count, n) in (any::<u64>(), 0usize..=64, 0u32..56)
    ) {
        let mut v1: Vec<u64> = (0..64).map(|i| (i as u64) << 3).collect();
        let mut u1 = vec![0xffu8; 64];
        let mut v2 = v1.clone();
        let mut u2 = u1.clone();
        simd::apply_plane_bits(&mut v1, &mut u1, word, count, n);
        scalar::scalar_apply_plane_bits(&mut v2, &mut u2, word, count, n);
        prop_assert_eq!(&v1, &v2);
        prop_assert_eq!(&u1, &u2);
    }

    #[test]
    fn lift_pairs_bit_identical(
        (len, off, c) in (len_strategy(), off_strategy(), -2.0f64..2.0)
    ) {
        let n = len + off;
        let a: Vec<f64> = (0..n).map(|i| ((i * 31 % 97) as f64 - 48.0) * 0.37).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 17 % 89) as f64 - 44.0) * -0.21).collect();
        let mut d1: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut d2 = d1.clone();
        simd::lift_pairs(&mut d1[off..], &a[off..], &b[off..], c);
        scalar::scalar_lift_pairs(&mut d2[off..], &a[off..], &b[off..], c);
        prop_assert_eq!(bits(&d1), bits(&d2));

        simd::scale_in_place(&mut d1[off..], c);
        scalar::scalar_scale_in_place(&mut d2[off..], c);
        prop_assert_eq!(bits(&d1), bits(&d2));
    }

    #[test]
    fn lift_pairs_bit_identical_dense(
        (d, a, b, c) in len_strategy().prop_flat_map(|len| {
            (f64_vec(len), f64_vec(len), f64_vec(len), -2.0f64..2.0)
        })
    ) {
        let mut d1 = d.clone();
        let mut d2 = d;
        simd::lift_pairs(&mut d1, &a, &b, c);
        scalar::scalar_lift_pairs(&mut d2, &a, &b, c);
        prop_assert_eq!(bits(&d1), bits(&d2));
    }

    #[test]
    fn split_merge_match_scalar((x, off) in (len_strategy(), off_strategy())
        .prop_flat_map(|(len, off)| (f64_vec(len + off), Just(off)))
    ) {
        let s = &x[off..];
        let n = s.len();
        let mut e1 = vec![0.0; n.div_ceil(2)];
        let mut o1 = vec![0.0; n / 2];
        let mut e2 = e1.clone();
        let mut o2 = o1.clone();
        simd::split_even_odd(s, &mut e1, &mut o1);
        scalar::scalar_split_even_odd(s, &mut e2, &mut o2);
        prop_assert_eq!(bits(&e1), bits(&e2));
        prop_assert_eq!(bits(&o1), bits(&o2));

        let mut m1 = vec![0.0; n];
        let mut m2 = vec![0.0; n];
        simd::merge_even_odd(&e1, &o1, &mut m1);
        scalar::scalar_merge_even_odd(&e2, &o2, &mut m2);
        prop_assert_eq!(bits(&m1), bits(&m2));
        // And the pair is an exact inverse.
        prop_assert_eq!(bits(&m1), bits(s));
    }

    #[test]
    fn quantize_kernels_match_scalar(
        (coeffs, off, q) in (len_strategy(), off_strategy())
            .prop_flat_map(|(len, off)| (f64_vec(len + off), Just(off), 1e-6f64..1e3))
    ) {
        let s = &coeffs[off..];
        let inv_q = 1.0 / q;
        let n = s.len();
        let mut m1 = vec![0u8; n];
        let mut m2 = vec![0u8; n];
        simd::quantize_meta_into(s, inv_q, &mut m1);
        scalar::scalar_quantize_meta_into(s, inv_q, &mut m2);
        prop_assert_eq!(&m1, &m2);

        let mut r1 = vec![0.0f64; n];
        let mut r2 = vec![0.0f64; n];
        simd::reconstruct_mid_riser_into(s, q, inv_q, &mut r1);
        scalar::scalar_reconstruct_mid_riser_into(s, q, inv_q, &mut r2);
        prop_assert_eq!(bits(&r1), bits(&r2));
    }

    #[test]
    fn lift_pairs_bit_identical_f32(
        (len, off, c) in (len_strategy(), off_strategy(), (-2.0f64..2.0).prop_map(|c| c as f32))
    ) {
        let n = len + off;
        let a: Vec<f32> = (0..n).map(|i| ((i * 31 % 97) as f32 - 48.0) * 0.37).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i * 17 % 89) as f32 - 44.0) * -0.21).collect();
        let mut d1: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let mut d2 = d1.clone();
        simd::lift_pairs(&mut d1[off..], &a[off..], &b[off..], c);
        scalar::scalar_lift_pairs(&mut d2[off..], &a[off..], &b[off..], c);
        prop_assert_eq!(bits32(&d1), bits32(&d2));

        simd::scale_in_place(&mut d1[off..], c);
        scalar::scalar_scale_in_place(&mut d2[off..], c);
        prop_assert_eq!(bits32(&d1), bits32(&d2));
    }

    #[test]
    fn split_merge_match_scalar_f32((x, off) in (len_strategy(), off_strategy())
        .prop_flat_map(|(len, off)| (f32_vec(len + off), Just(off)))
    ) {
        let s = &x[off..];
        let n = s.len();
        let mut e1 = vec![0.0f32; n.div_ceil(2)];
        let mut o1 = vec![0.0f32; n / 2];
        let mut e2 = e1.clone();
        let mut o2 = o1.clone();
        simd::split_even_odd(s, &mut e1, &mut o1);
        scalar::scalar_split_even_odd(s, &mut e2, &mut o2);
        prop_assert_eq!(bits32(&e1), bits32(&e2));
        prop_assert_eq!(bits32(&o1), bits32(&o2));

        let mut m1 = vec![0.0f32; n];
        let mut m2 = vec![0.0f32; n];
        simd::merge_even_odd(&e1, &o1, &mut m1);
        scalar::scalar_merge_even_odd(&e2, &o2, &mut m2);
        prop_assert_eq!(bits32(&m1), bits32(&m2));
        // And the pair is an exact inverse.
        prop_assert_eq!(bits32(&m1), bits32(s));
    }

    #[test]
    fn quantize_kernels_match_scalar_f32(
        (coeffs, off, q) in (len_strategy(), off_strategy())
            .prop_flat_map(|(len, off)| (f32_vec(len + off), Just(off), (1e-5f64..1e3).prop_map(|q| q as f32)))
    ) {
        let s = &coeffs[off..];
        let inv_q = 1.0 / q;
        let n = s.len();
        let mut m1 = vec![0u8; n];
        let mut m2 = vec![0u8; n];
        simd::quantize_meta_into(s, inv_q, &mut m1);
        scalar::scalar_quantize_meta_into(s, inv_q, &mut m2);
        prop_assert_eq!(&m1, &m2);

        let mut r1 = vec![0.0f32; n];
        let mut r2 = vec![0.0f32; n];
        simd::reconstruct_mid_riser_into(s, q, inv_q, &mut r1);
        scalar::scalar_reconstruct_mid_riser_into(s, q, inv_q, &mut r2);
        prop_assert_eq!(bits32(&r1), bits32(&r2));
    }

    #[test]
    fn quantize_meta_handles_non_finite_f32(pos in 0usize..16) {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e38f32, -1e38f32] {
            let mut coeffs = vec![1.5f32; 17];
            coeffs[pos] = bad;
            let mut m1 = vec![0u8; 17];
            let mut m2 = vec![0u8; 17];
            simd::quantize_meta_into(&coeffs, 1.0f32, &mut m1);
            scalar::scalar_quantize_meta_into(&coeffs, 1.0f32, &mut m2);
            prop_assert_eq!(&m1, &m2, "bad value {} at {}", bad, pos);
        }
    }

    #[test]
    fn quantize_meta_handles_non_finite(pos in 0usize..16) {
        // NaN/±inf/huge values must quantize identically on both paths
        // at every lane position (block body and scalar tail).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300, -1e300] {
            let mut coeffs = vec![1.5f64; 17];
            coeffs[pos] = bad;
            let mut m1 = vec![0u8; 17];
            let mut m2 = vec![0u8; 17];
            simd::quantize_meta_into(&coeffs, 1.0, &mut m1);
            scalar::scalar_quantize_meta_into(&coeffs, 1.0, &mut m2);
            prop_assert_eq!(&m1, &m2, "bad value {} at {}", bad, pos);
        }
    }
}

/// Exact f64 comparison via bit patterns (distinguishes -0.0 from 0.0 and
/// compares NaNs structurally) — the whole point of the bit-identity rule.
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// f32 twin of [`bits`].
fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn f32_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    // The vendored proptest has no Range<f32> strategy; sample f64 and
    // narrow (round-to-nearest), keeping signed zeros distinct.
    prop::collection::vec(
        prop_oneof![
            (-1e9f64..1e9).prop_map(|v| v as f32),
            Just(0.0f32),
            Just(-0.0f32),
            (-1e-3f64..1e-3).prop_map(|v| v as f32),
        ],
        n..=n,
    )
}
