//! Property tests: anything written through `BitWriter` reads back
//! identically through `BitReader`, for arbitrary interleavings of bit
//! widths.

use proptest::prelude::*;
use sperr_bitstream::{BitReader, BitWriter};

/// A single write operation: a value and the bit width used to store it.
#[derive(Debug, Clone)]
struct Op {
    value: u64,
    width: u32,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..=64).prop_flat_map(|width| {
        let max = if width == 0 {
            Just(0u64).boxed()
        } else if width == 64 {
            any::<u64>().boxed()
        } else {
            (0..(1u64 << width)).boxed()
        };
        max.prop_map(move |value| Op { value, width })
    })
}

proptest! {
    #[test]
    fn mixed_width_roundtrip(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut w = BitWriter::new();
        for op in &ops {
            w.put_bits(op.value, op.width);
        }
        let total_bits: usize = ops.iter().map(|o| o.width as usize).sum();
        prop_assert_eq!(w.len_bits(), total_bits);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), total_bits.div_ceil(8));

        let mut r = BitReader::new(&bytes);
        for op in &ops {
            prop_assert_eq!(r.get_bits(op.width).unwrap(), op.value);
        }
    }

    #[test]
    fn bitwise_equals_bulk(bits in prop::collection::vec(any::<bool>(), 0..512)) {
        // Writing bit-by-bit and reading in arbitrary chunks agree.
        let mut w = BitWriter::new();
        for &b in &bits {
            w.put_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut read_back = Vec::with_capacity(bits.len());
        let mut left = bits.len();
        let mut chunk = 1usize;
        while left > 0 {
            let take = chunk.min(left).min(64);
            let v = r.get_bits(take as u32).unwrap();
            for i in 0..take {
                read_back.push((v >> i) & 1 == 1);
            }
            left -= take;
            chunk = (chunk * 2 + 1) % 67; // vary chunk sizes deterministically
            if chunk == 0 {
                chunk = 1;
            }
        }
        prop_assert_eq!(read_back, bits);
    }

    #[test]
    fn truncated_stream_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64),
                                     reads in prop::collection::vec(0u32..=64, 0..32)) {
        let mut r = BitReader::new(&bytes);
        for n in reads {
            // Must either produce a value or a clean EOF error.
            let _ = r.get_bits(n);
        }
    }
}
