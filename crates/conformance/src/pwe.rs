//! The PWE-guarantee campaign: randomized adversarial inputs against the
//! paper's headline claim (`max |x − x̂| ≤ ε`, §IV-C) and each baseline's
//! documented bound.
//!
//! Every case draws a random shape (1D/2D/3D), synthesizes a smooth
//! field, then injects spike outliers — precisely the data SPERR's
//! outlier coder exists for — and sweeps the tolerance across three
//! decades of the field's range. The assertion per case comes from
//! [`documented_budget`]: SPERR/ZFP/SZ must hold `≤ t` exactly, MGARD
//! must hold its hard `(L+1)·t/2` stacking bound, TTHRESH must reach its
//! PSNR target. Every SPERR PWE case additionally runs its f32-native
//! twin: the field narrowed to single precision through `compress_f32`
//! must hold the f32-adjusted budget at the same tolerance.
//!
//! On a violation the campaign *shrinks*: it repeatedly crops the field
//! to the half-box (along each axis in turn) that still violates, then
//! dumps the minimal reproducer — raw f64 little-endian samples plus a
//! config sidecar — under `target/conformance-failures/`, so a failure
//! in CI is immediately replayable locally.

use crate::corpus::{bound_tag, check_budget, documented_budget, f32_budget, CodecId};
use crate::oracle::{CheckFailure, CheckResult};
use rand::{rngs::StdRng, Rng, SeedableRng};
use sperr_compress_api::{Bound, Field};
use sperr_core::{Sperr, SperrConfig};
use std::path::PathBuf;

/// Tolerance decades swept by the campaign: `t = range × 10^-d`.
pub const DECADES: [u32; 3] = [2, 3, 4];

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of randomized cases. Each case is one (field, codec,
    /// tolerance) triple; codecs and decades cycle so every combination
    /// appears every `5 × 3` cases.
    pub cases: usize,
    /// Master seed; case `i` derives its own RNG from `seed ^ i`.
    pub seed: u64,
    /// Where to dump shrunk reproducers (`None` = don't dump).
    pub failure_dir: Option<PathBuf>,
}

impl CampaignConfig {
    /// The tier-2 configuration: the ISSUE's floor of 200 cases, dumping
    /// reproducers under the workspace `target/` directory.
    pub fn tier2(cases: usize) -> Self {
        CampaignConfig { cases, seed: 0x5be2_2023, failure_dir: Some(default_failure_dir()) }
    }
}

/// `target/conformance-failures` in the workspace root.
pub fn default_failure_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/conformance-failures")
}

/// One fully-determined campaign case.
#[derive(Debug, Clone)]
pub struct CampaignCase {
    /// Case index (names the reproducer directory on failure).
    pub index: usize,
    /// The synthesized spiky field.
    pub field: Field,
    /// Codec under test.
    pub codec: CodecId,
    /// The bound handed to the codec.
    pub bound: Bound,
    /// Tolerance decade this case exercises.
    pub decade: u32,
}

/// Campaign outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Cases executed.
    pub cases: usize,
    /// One failure per violating case (after shrinking), each naming the
    /// codec, shape and observed/allowed error.
    pub violations: Vec<CheckFailure>,
}

impl CampaignReport {
    /// True when every case honored its documented budget.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn rand_in(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() as usize) % (hi - lo + 1)
}

/// Random shape: a third each 1D (prime-ish lengths included), 2D and 3D,
/// all small enough for debug-mode test runs.
pub(crate) fn random_dims(rng: &mut StdRng) -> [usize; 3] {
    match rng.next_u64() % 3 {
        0 => [rand_in(rng, 17, 70), 1, 1],
        1 => [rand_in(rng, 5, 24), rand_in(rng, 5, 24), 1],
        _ => [rand_in(rng, 4, 12), rand_in(rng, 4, 12), rand_in(rng, 4, 12)],
    }
}

/// Smooth random sinusoid mixture plus low-level noise plus injected
/// spike outliers — the spikes are what force SPERR's outlier coder to
/// actually earn the guarantee rather than coast on SPECK alone.
pub(crate) fn random_spiky_field(rng: &mut StdRng, dims: [usize; 3]) -> Field {
    let [nx, ny, nz] = dims;
    let n = nx * ny * nz;
    // Three random plane waves.
    let waves: Vec<[f64; 4]> = (0..3)
        .map(|_| {
            [
                0.5 + 4.0 * rng.random::<f64>(), // frequency scale
                rng.random::<f64>(),             // direction mix x
                rng.random::<f64>(),             // direction mix y
                rng.random::<f64>(),             // phase
            ]
        })
        .collect();
    let amp = 1.0 + 9.0 * rng.random::<f64>();
    let mut data = Vec::with_capacity(n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let (fx, fy, fz) = (
                    x as f64 / nx as f64,
                    y as f64 / ny.max(2) as f64,
                    z as f64 / nz.max(2) as f64,
                );
                let mut v = 0.0;
                for w in &waves {
                    v += (std::f64::consts::TAU
                        * (w[0] * (fx + w[1] * fy + w[2] * fz) + w[3]))
                        .sin();
                }
                data.push(amp * v);
            }
        }
    }
    // Low-amplitude white noise (defeats trivially-sparse spectra).
    for v in &mut data {
        *v += amp * 0.01 * (rng.random::<f64>() - 0.5);
    }
    // Spike outliers: ~2% of samples, magnitudes up to 5× the smooth
    // amplitude, both signs.
    let spikes = (n / 50).max(1);
    for _ in 0..spikes {
        let pos = (rng.next_u64() as usize) % n;
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        data[pos] += sign * amp * (1.0 + 4.0 * rng.random::<f64>());
    }
    Field::new(dims, data)
}

/// Builds case `index` deterministically from the master seed.
pub fn make_case(index: usize, seed: u64) -> CampaignCase {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let dims = random_dims(&mut rng);
    let field = random_spiky_field(&mut rng, dims);
    let codec = CodecId::ALL[index % CodecId::ALL.len()];
    let decade = DECADES[(index / CodecId::ALL.len()) % DECADES.len()];
    // TTHRESH is PSNR-bounded only; its "decades" sweep PSNR targets
    // instead (50/60/70 dB track decades 2/3/4 — ~20 dB per decade of
    // RMS error on unit-range data).
    let bound = match codec {
        CodecId::TthreshLike => Bound::Psnr(30.0 + 10.0 * decade as f64),
        _ => Bound::Pwe(field.range() * 10f64.powi(-(decade as i32))),
    };
    CampaignCase { index, field, codec, bound, decade }
}

/// Crops `field` to a half-open sub-box starting at `lo`, `len` per axis.
pub(crate) fn crop(field: &Field, lo: [usize; 3], len: [usize; 3]) -> Field {
    let [nx, ny, _nz] = field.dims;
    let mut data = Vec::with_capacity(len[0] * len[1] * len[2]);
    for z in lo[2]..lo[2] + len[2] {
        for y in lo[1]..lo[1] + len[1] {
            for x in lo[0]..lo[0] + len[0] {
                data.push(field.data[(z * ny + y) * nx + x]);
            }
        }
    }
    Field::new(len, data)
}

/// Does `field` still violate the codec's budget under `bound`? Errors
/// (compress/decompress failures) count as violations — a codec
/// crashing on a shrunk input is still a reproducer worth keeping.
fn violates(codec: CodecId, field: &Field, bound: Bound) -> Option<(f64, f64)> {
    let c = codec.build();
    let stream = match c.compress(field, bound) {
        Ok(s) => s,
        Err(_) => return Some((f64::INFINITY, 0.0)),
    };
    let recon = match c.decompress(&stream) {
        Ok(r) => r,
        Err(_) => return Some((f64::INFINITY, 0.0)),
    };
    let budget = documented_budget(codec, bound, field.dims);
    check_budget(&field.data, &recon.data, budget).err()
}

/// Shrinks a violating field by repeatedly keeping whichever axis
/// half-box still violates, until no half does. Greedy and bounded: at
/// most `log2(n)` rounds.
pub fn shrink_violation(codec: CodecId, field: &Field, bound: Bound) -> Field {
    let mut cur = field.clone();
    'outer: loop {
        for axis in 0..3 {
            if cur.dims[axis] < 2 {
                continue;
            }
            let half = cur.dims[axis] / 2;
            for (start, len) in [(0, half), (cur.dims[axis] - half, half)] {
                let mut lo = [0; 3];
                lo[axis] = start;
                let mut dims = cur.dims;
                dims[axis] = len;
                let candidate = crop(&cur, lo, dims);
                if violates(codec, &candidate, bound).is_some() {
                    cur = candidate;
                    continue 'outer;
                }
            }
        }
        return cur;
    }
}

/// Writes the reproducer for a shrunk violation: `input.bin` (raw f64
/// little-endian, x fastest) and `config.txt` (replay parameters).
fn dump_reproducer(
    dir: &std::path::Path,
    case: &CampaignCase,
    shrunk: &Field,
    observed: f64,
    allowed: f64,
) -> std::io::Result<PathBuf> {
    let case_dir = dir.join(format!("case-{:04}-{}", case.index, case.codec.tag()));
    std::fs::create_dir_all(&case_dir)?;
    let mut bytes = Vec::with_capacity(shrunk.data.len() * 8);
    for v in &shrunk.data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(case_dir.join("input.bin"), &bytes)?;
    let bound_val = match case.bound {
        Bound::Pwe(v) | Bound::Bpp(v) | Bound::Psnr(v) => v,
    };
    let config = format!(
        "case_index {}\ncodec {}\nmode {}\nbound {bound_val:e}\nbound_bits {:016x}\n\
         dims {} {} {}\nobserved {observed:e}\nallowed {allowed:e}\n\
         replay: decode input.bin as little-endian f64, x fastest, \
         compress with the codec/mode/bound above, assert the budget\n",
        case.index,
        case.codec.tag(),
        bound_tag(case.bound),
        bound_val.to_bits(),
        shrunk.dims[0],
        shrunk.dims[1],
        shrunk.dims[2],
    );
    std::fs::write(case_dir.join("config.txt"), config)?;
    Ok(case_dir)
}

/// The f32 twin of a SPERR PWE case: the same spiky field narrowed to
/// single precision and pushed through the native `compress_f32` path
/// must hold the f32-adjusted budget ([`f32_budget`]) at the *same*
/// tolerance the f64 case swept. No shrinking — the f64 shrinker already
/// minimizes the field shape; an f32 twin failure names the case index
/// so the f64 reproducer machinery can be pointed at it directly.
fn f32_twin_check(case: &CampaignCase) -> CheckResult {
    if case.codec != CodecId::Sperr {
        return Ok(());
    }
    let Bound::Pwe(t) = case.bound else { return Ok(()) };
    let field32 = case.field.narrow_lossy();
    let sperr = Sperr::new(SperrConfig {
        chunk_dims: [16, 16, 16],
        num_threads: 1,
        ..SperrConfig::default()
    });
    let err = |what: &str, e: sperr_compress_api::CompressError| CheckFailure {
        check: "pwe-campaign-f32",
        detail: format!(
            "case {} dims {:?} t {t:e}: f32 twin {what} failed: {e}",
            case.index, case.field.dims
        ),
    };
    let stream = sperr.compress_f32(&field32, Bound::Pwe(t)).map_err(|e| err("compress", e))?;
    let recon = sperr.decompress_f32(&stream).map_err(|e| err("decompress", e))?;
    let observed = field32
        .data
        .iter()
        .zip(&recon.data)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .fold(0.0, f64::max);
    let allowed = f32_budget(t, field32.range());
    if observed > allowed {
        return Err(CheckFailure {
            check: "pwe-campaign-f32",
            detail: format!(
                "case {} dims {:?} decade {}: f32 twin observed {observed:e} > allowed \
                 {allowed:e} (t {t:e})",
                case.index, case.field.dims, case.decade
            ),
        });
    }
    Ok(())
}

/// Runs one case end-to-end; on violation, shrinks and (if configured)
/// dumps a reproducer. SPERR PWE cases additionally run their f32-native
/// twin ([`f32_twin_check`]).
pub fn run_case(case: &CampaignCase, failure_dir: Option<&std::path::Path>) -> CheckResult {
    let Some((observed, allowed)) = violates(case.codec, &case.field, case.bound) else {
        return f32_twin_check(case);
    };
    let shrunk = shrink_violation(case.codec, &case.field, case.bound);
    let (observed, allowed) =
        violates(case.codec, &shrunk, case.bound).unwrap_or((observed, allowed));
    let mut detail = format!(
        "case {} {} {:?} dims {:?}: observed {observed:e} > allowed {allowed:e} \
         (shrunk to dims {:?})",
        case.index,
        case.codec.tag(),
        case.bound,
        case.field.dims,
        shrunk.dims,
    );
    if let Some(dir) = failure_dir {
        match dump_reproducer(dir, case, &shrunk, observed, allowed) {
            Ok(path) => detail.push_str(&format!("; reproducer at {}", path.display())),
            Err(e) => detail.push_str(&format!("; reproducer dump FAILED: {e}")),
        }
    }
    Err(CheckFailure { check: "pwe-campaign", detail })
}

/// Runs the full campaign.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let mut violations = Vec::new();
    for i in 0..config.cases {
        let case = make_case(i, config.seed);
        if let Err(f) = run_case(&case, config.failure_dir.as_deref()) {
            violations.push(f);
        }
    }
    CampaignReport { cases: config.cases, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_cover_the_matrix() {
        let a = make_case(7, 1);
        let b = make_case(7, 1);
        assert_eq!(a.field.data, b.field.data);
        assert_eq!(a.codec, b.codec);
        // 15 consecutive cases hit all 5 codecs × 3 decades.
        let mut combos = std::collections::BTreeSet::new();
        for i in 0..15 {
            let c = make_case(i, 1);
            combos.insert((c.codec.tag(), c.decade));
        }
        assert_eq!(combos.len(), 15);
    }

    #[test]
    fn fields_contain_genuine_outliers() {
        // The injected spikes must survive as actual field extremes,
        // otherwise the campaign never exercises the outlier coder.
        let case = make_case(0, 99);
        let f = &case.field;
        let mean = f.data.iter().sum::<f64>() / f.data.len() as f64;
        let peak = f.data.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        let rms = (f.data.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / f.data.len() as f64)
            .sqrt();
        assert!(peak > 3.0 * rms, "no spike stands out: peak {peak:e} rms {rms:e}");
    }

    #[test]
    fn f32_twin_runs_on_sperr_pwe_cases() {
        // Case 0 is always SPERR (ALL[0]) at a PWE bound; the twin must
        // run and hold on a genuine spiky field.
        let case = make_case(0, 42);
        assert_eq!(case.codec, CodecId::Sperr);
        assert!(matches!(case.bound, Bound::Pwe(_)));
        run_case(&case, None).unwrap();
    }

    #[test]
    fn shrinker_reduces_a_synthetic_violation() {
        // Shrinking is driven by `violates`, which treats codec errors as
        // violations; an input that *always* fails shrinks to 1×1×1.
        // MGARD-like at an impossible (negative-range-free) setup isn't
        // available, so instead verify the crop helper directly.
        let f = Field::from_fn([4, 3, 2], |x, y, z| (x + 10 * y + 100 * z) as f64);
        let c = crop(&f, [1, 1, 0], [2, 2, 2]);
        assert_eq!(c.dims, [2, 2, 2]);
        assert_eq!(c.data, vec![11.0, 12.0, 21.0, 22.0, 111.0, 112.0, 121.0, 122.0]);
    }
}
