//! The Lorenzo predictor — the SZ family's classic predictor (Tao et al.,
//! IPDPS 2017, "multidimensional prediction"): each point is predicted
//! from its already-visited corner neighbours,
//!
//! ```text
//! pred(x,y,z) =  f(x-1,y,z) + f(x,y-1,z) + f(x,y,z-1)
//!             −  f(x-1,y-1,z) − f(x-1,y,z-1) − f(x,y-1,z-1)
//!             +  f(x-1,y-1,z-1)
//! ```
//!
//! with out-of-range neighbours treated as 0. The residual equals the
//! third-order mixed finite difference ΔxΔyΔz f, so prediction is exact
//! whenever the mixed derivative ∂³f/∂x∂y∂z vanishes (in particular on
//! additively separable and bilinear-in-pairs data). Points are visited
//! in raster order, reading only *reconstructed* earlier values — same
//! parity discipline as the interpolation sweep.

/// Visits every point in raster (x fastest) order, calling
/// `visit(linear_index, prediction)`. `get` reads reconstructed values at
/// already-visited points.
pub fn sweep(
    dims: [usize; 3],
    get: &impl Fn([usize; 3]) -> f64,
    mut visit: impl FnMut(usize, f64),
) {
    let at = |p: [usize; 3], ok: bool| if ok { get(p) } else { 0.0 };
    let mut i = 0usize;
    for z in 0..dims[2] {
        for y in 0..dims[1] {
            for x in 0..dims[0] {
                let (hx, hy, hz) = (x > 0, y > 0, z > 0);
                let pred = at([x.wrapping_sub(1), y, z], hx)
                    + at([x, y.wrapping_sub(1), z], hy)
                    + at([x, y, z.wrapping_sub(1)], hz)
                    - at([x.wrapping_sub(1), y.wrapping_sub(1), z], hx && hy)
                    - at([x.wrapping_sub(1), y, z.wrapping_sub(1)], hx && hz)
                    - at([x, y.wrapping_sub(1), z.wrapping_sub(1)], hy && hz)
                    + at(
                        [x.wrapping_sub(1), y.wrapping_sub(1), z.wrapping_sub(1)],
                        hx && hy && hz,
                    );
                visit(i, pred);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn visits_every_point_once_in_raster_order() {
        let dims = [5usize, 4, 3];
        let seen = RefCell::new(Vec::new());
        sweep(dims, &|_| 0.0, |i, _| seen.borrow_mut().push(i));
        let seen = seen.into_inner();
        assert_eq!(seen, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn exact_when_mixed_derivative_vanishes() {
        let dims = [6usize, 5, 4];
        // No x·y·z term: ∂³f/∂x∂y∂z = 0, so Lorenzo must predict exactly
        // (away from the zero-padded boundary planes).
        let f = |p: [usize; 3]| {
            2.0 + 1.5 * p[0] as f64 - 0.5 * p[1] as f64 + 3.0 * p[2] as f64
                + 0.25 * (p[0] * p[1]) as f64
                - 0.75 * (p[1] * p[2]) as f64
        };
        // Feed true values as "reconstruction": predictions must be exact
        // everywhere except where out-of-range zeros enter (the three
        // boundary planes through the origin).
        sweep(dims, &f, |i, pred| {
            let x = i % dims[0];
            let y = (i / dims[0]) % dims[1];
            let z = i / (dims[0] * dims[1]);
            if x > 0 && y > 0 && z > 0 {
                let truth = f([x, y, z]);
                assert!((pred - truth).abs() < 1e-9, "at {x},{y},{z}: {pred} vs {truth}");
            }
        });
    }

    #[test]
    fn reads_only_earlier_points() {
        let dims = [4usize, 4, 2];
        let visited = RefCell::new(vec![false; 32]);
        sweep(
            dims,
            &|p| {
                let i = p[0] + 4 * (p[1] + 4 * p[2]);
                assert!(visited.borrow()[i], "read of unvisited {p:?}");
                0.0
            },
            |i, _| visited.borrow_mut()[i] = true,
        );
    }
}
