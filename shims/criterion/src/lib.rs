//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, and
//! `Bencher::iter` — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Timings print as `group/name:
//! median per-iteration time`, enough for coarse regression eyeballing;
//! the paper-figure binaries in `sperr-bench` remain the precise harness.

use std::time::Instant;

/// Re-export so benches written against criterion's `black_box` compile.
pub use std::hint::black_box;

/// Top-level bench context, handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { nanos_per_iter: 0.0 };
            f(&mut b);
            samples.push(b.nanos_per_iter);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!("{}/{}: {}", self.name, id, format_nanos(median));
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Passed to the bench closure; `iter` times the supplied routine.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, amortizing over enough iterations to exceed a
    /// minimal measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up once, then scale iteration count to ~5ms per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as u64;
        let iters = (5_000_000 / once).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a bench group function invoking each target with a shared
/// [`Criterion`] context.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.sample_size(1).bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn formats_scale() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
        assert!(format_nanos(2e9).ends_with(" s"));
    }
}
