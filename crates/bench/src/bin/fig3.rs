//! Fig. 3: for four fields and several tolerance levels, sweep the
//! quantization step q ∈ [1.0t, 3.0t] and report (top row) the bitrate
//! increase over the best observed q and (bottom row) the PSNR increase
//! over the worst observed q. The bitrate curves are U-shaped with sweet
//! spots mostly in q = 1.4t…1.8t; the PSNR curves decrease monotonically
//! — together motivating the paper's q = 1.5t default (§IV-D).

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn main() {
    sperr_bench::banner(
        "Fig. 3 — ΔBPP (top) and ΔPSNR (bottom) vs quantization step q",
        "Figure 3 (4 fields × tolerance levels, q from 1.0t to 3.0t)",
    );
    // Two double-precision Miranda fields, two single-precision Nyx fields
    // (the paper's "four fields from two data sets").
    let cases: Vec<(SyntheticField, Vec<u32>)> = vec![
        (SyntheticField::MirandaPressure, vec![10, 20, 30, 40, 50]),
        (SyntheticField::MirandaViscosity, vec![10, 20, 30, 40, 50]),
        (SyntheticField::NyxDarkMatterDensity, vec![10, 20, 30]),
        (SyntheticField::NyxVelocityX, vec![10, 20, 30]),
    ];
    let q_steps: Vec<f64> = (0..=10).map(|i| 1.0 + 0.2 * i as f64).collect();

    println!("field,idx,q_over_t,delta_bpp,delta_psnr_db");
    for (f, idxs) in cases {
        let field = sperr_bench::bench_field(f);
        for idx in idxs {
            let t = field.tolerance_for_idx(idx);
            let mut rows: Vec<(f64, f64, f64)> = Vec::new(); // (q, bpp, psnr)
            for &q in &q_steps {
                let sperr = Sperr::new(SperrConfig { q_factor: q, ..SperrConfig::default() });
                let (stream, _) = sperr
                    .compress_with_stats(&field, Bound::Pwe(t))
                    .expect("compress");
                let rec = sperr.decompress(&stream).expect("decompress");
                let bpp = stream.len() as f64 * 8.0 / field.len() as f64;
                let psnr = sperr_metrics::psnr(&field.data, &rec.data);
                rows.push((q, bpp, psnr));
            }
            let min_bpp = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
            let min_psnr = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
            for (q, bpp, psnr) in rows {
                println!(
                    "{},{idx},{q:.1},{:.4},{:.3}",
                    f.abbrev(idx),
                    bpp - min_bpp,
                    psnr - min_psnr
                );
            }
        }
    }
}
