//! The multilevel nodal sweep: enumerates every non-coarse grid point
//! exactly once, coarse levels first, with a multilinear prediction from
//! the surrounding coarser-grid nodes. Encoder and decoder drive the same
//! traversal for parity.

/// Hierarchy depth: the largest `L` such that the coarsest grid
/// (stride `2^L`) still has at least 2 nodes along the longest axis (or 0
/// for tiny domains).
pub fn max_level_for(dims: [usize; 3]) -> u32 {
    let max_dim = dims.iter().copied().max().unwrap_or(1);
    if max_dim < 2 {
        return 0;
    }
    // stride 2^L <= max_dim - 1 keeps >= 2 nodes on the longest axis.
    let mut l = 0u32;
    while (1usize << (l + 1)) <= max_dim - 1 {
        l += 1;
    }
    l.min(8)
}

/// Linear indices of the coarsest grid (all coordinates multiples of
/// `2^max_level`), in deterministic (z, y, x) order.
pub fn coarse_grid(dims: [usize; 3], max_level: u32) -> Vec<usize> {
    let s = 1usize << max_level;
    let mut out = Vec::new();
    for z in (0..dims[2]).step_by(s) {
        for y in (0..dims[1]).step_by(s) {
            for x in (0..dims[0]).step_by(s) {
                out.push(x + dims[0] * (y + dims[1] * z));
            }
        }
    }
    out
}

/// Multilinear prediction of point `p` from the grid of stride `s` (whose
/// nodes are all reconstructed): for each axis whose coordinate is not a
/// multiple of `s`, the two bracketing nodes are averaged (with clamping
/// at the upper boundary where the right bracket falls outside).
fn predict(
    get: &impl Fn(usize) -> f64,
    dims: [usize; 3],
    p: [usize; 3],
    s: usize,
) -> f64 {
    // Corner set: per axis, either the coordinate itself (on-grid) or the
    // bracketing pair.
    let mut corners: [[usize; 2]; 3] = [[0; 2]; 3];
    let mut counts = [1usize; 3];
    for a in 0..3 {
        if p[a] % s == 0 {
            corners[a] = [p[a], p[a]];
        } else {
            let lo = p[a] - p[a] % s;
            let hi = lo + s;
            if hi < dims[a] {
                corners[a] = [lo, hi];
                counts[a] = 2;
            } else {
                corners[a] = [lo, lo]; // clamp: one-sided copy
            }
        }
    }
    let mut acc = 0.0;
    let total = counts[0] * counts[1] * counts[2];
    for iz in 0..counts[2] {
        for iy in 0..counts[1] {
            for ix in 0..counts[0] {
                let idx = corners[0][ix]
                    + dims[0] * (corners[1][iy] + dims[1] * corners[2][iz]);
                acc += get(idx);
            }
        }
    }
    acc / total as f64
}

/// Enumerates every point not on the coarsest grid, coarse levels first:
/// for level `l = max_level … 1`, all points on the stride-`2^(l-1)` grid
/// that are not on the stride-`2^l` grid, in (z, y, x) order. For each,
/// calls `visit(linear_index, prediction)` where the prediction uses only
/// stride-`2^l` nodes (already reconstructed).
pub fn multilevel_sweep(
    dims: [usize; 3],
    max_level: u32,
    get: &impl Fn(usize) -> f64,
    mut visit: impl FnMut(usize, f64),
) {
    for level in (1..=max_level).rev() {
        let s = 1usize << level;
        let half = s >> 1;
        for z in (0..dims[2]).step_by(half) {
            for y in (0..dims[1]).step_by(half) {
                for x in (0..dims[0]).step_by(half) {
                    if x % s == 0 && y % s == 0 && z % s == 0 {
                        continue; // coarser-grid node, already known
                    }
                    let p = [x, y, z];
                    let pred = predict(get, dims, p, s);
                    visit(x + dims[0] * (y + dims[1] * z), pred);
                }
            }
        }
    }
    // Finest level: stride-1 points not on the stride-1 grid is empty when
    // max_level >= 1; when max_level == 0 every point is coarse — but
    // dims not a power-of-two-plus-one leave off-grid points at every
    // level, handled above because step_by(half) covers all multiples of
    // half and the final level has half == 1 (covers everything).
    if max_level == 0 {
        // Degenerate: single-level domains — nothing to do, everything is
        // on the coarse grid (stride 1).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashSet;

    #[test]
    fn sweep_plus_coarse_covers_domain_once() {
        for dims in [[9usize, 9, 9], [8, 8, 8], [7, 5, 3], [1, 1, 1], [16, 1, 4]] {
            let l = max_level_for(dims);
            let coarse: HashSet<usize> = coarse_grid(dims, l).into_iter().collect();
            let visited = RefCell::new(HashSet::new());
            multilevel_sweep(dims, l, &|_| 0.0, |i, _| {
                assert!(visited.borrow_mut().insert(i), "dup {i} dims {dims:?}");
            });
            let visited = visited.into_inner();
            assert!(visited.is_disjoint(&coarse));
            assert_eq!(
                visited.len() + coarse.len(),
                dims.iter().product::<usize>(),
                "dims {dims:?}"
            );
        }
    }

    #[test]
    fn sweep_reads_only_known_points() {
        let dims = [9usize, 7, 6];
        let l = max_level_for(dims);
        let known = RefCell::new(coarse_grid(dims, l).into_iter().collect::<HashSet<usize>>());
        multilevel_sweep(
            dims,
            l,
            &|i| {
                assert!(known.borrow().contains(&i), "read of unknown index {i}");
                0.0
            },
            |i, _| {
                known.borrow_mut().insert(i);
            },
        );
    }

    #[test]
    fn trilinear_exact_on_affine_data() {
        let dims = [9usize, 9, 9]; // 2^3+1: clean dyadic nesting
        let f = |i: usize| {
            let x = i % 9;
            let y = (i / 9) % 9;
            let z = i / 81;
            1.5 * x as f64 - 0.25 * y as f64 + 2.0 * z as f64 + 3.0
        };
        multilevel_sweep(dims, max_level_for(dims), &f, |i, pred| {
            assert!((pred - f(i)).abs() < 1e-9, "idx {i}: {pred} vs {}", f(i));
        });
    }

    #[test]
    fn max_level_values() {
        assert_eq!(max_level_for([1, 1, 1]), 0);
        assert_eq!(max_level_for([2, 1, 1]), 0);
        assert_eq!(max_level_for([3, 1, 1]), 1);
        assert_eq!(max_level_for([9, 9, 9]), 3);
        assert_eq!(max_level_for([512, 512, 512]), 8); // capped
    }
}
