#!/usr/bin/env sh
# CI gauntlet: build everything, run the full test suite (which includes the
# decoder panic audit, the corruption campaign and all property tests), then
# re-run the panic audit by name so a violation is called out explicitly.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> decoder panic audit"
cargo test --quiet --test panic_audit

echo "==> bench smoke (release)"
# Tiny-dims run so the harness itself cannot rot; writes
# target/bench_smoke.json and self-validates it. Invoked via its own
# shebang (bash): running it under plain `sh` breaks on bash-isms.
scripts/bench.sh --smoke

echo "==> tracked bench artifact is well-formed"
# The committed BENCH_pr2.json must parse and carry the expected schema.
target/release/hotpath --check BENCH_pr2.json

echo "CI OK"
