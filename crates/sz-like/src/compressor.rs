//! The SZ-like compressor: error-controlled quantization of interpolation
//! residuals, Huffman coding of the bin indices, lossless post-pass.

use crate::interp::{anchors, sweep};
use crate::lorenzo;
use sperr_bitstream::{ByteReader, ByteWriter};
use sperr_compress_api::{Bound, CompressError, Field, LossyCompressor, Precision};
use sperr_lossless::huffman;
use std::cell::RefCell;

const MAGIC: &[u8; 4] = b"SZL1";
/// Quantization bin radius; residuals needing a bin index beyond this are
/// stored exactly ("unpredictable data" in SZ terms).
const RADIUS: i64 = 32768;
/// Symbol alphabet: bins `-RADIUS..=RADIUS` plus one escape symbol.
const ALPHABET: usize = 2 * RADIUS as usize + 2;
const ESCAPE: u32 = (2 * RADIUS + 1) as u32;

/// Anchor-grid spacing exponent: anchors every `2^MAX_LEVEL` points are
/// stored verbatim (their count is ~`N/2^(3·MAX_LEVEL)`, negligible).
const MAX_LEVEL: u32 = 6;

/// Which predictor drives the residual coding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Predictor {
    /// SZ3's multilevel cubic/linear interpolation (Zhao et al. 2021) —
    /// the default, as in SZ3.
    #[default]
    MultilevelInterpolation,
    /// The classic SZ Lorenzo predictor (Tao et al. 2017) for ablations
    /// and rough data.
    Lorenzo,
}

/// The SZ3-like baseline compressor (see DESIGN.md §5 for fidelity notes).
#[derive(Debug, Clone, Copy, Default)]
pub struct SzLike {
    /// Predictor selection (interpolation by default).
    pub predictor: Predictor,
}

/// Shorthand for the Lorenzo-predictor configuration.
pub fn sz_lorenzo() -> SzLike {
    SzLike { predictor: Predictor::Lorenzo }
}

impl LossyCompressor for SzLike {
    fn name(&self) -> &'static str {
        "SZ-like"
    }

    fn supports(&self, bound: &Bound) -> bool {
        matches!(bound, Bound::Pwe(_))
    }

    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError> {
        let t = match bound {
            Bound::Pwe(t) if t > 0.0 && t.is_finite() => t,
            Bound::Pwe(_) => return Err(CompressError::Invalid("invalid tolerance".into())),
            _ => return Err(CompressError::Unsupported("SZ-like bounds PWE only")),
        };
        if field.is_empty() {
            return Err(CompressError::Invalid("empty field".into()));
        }
        let dims = field.dims;
        let n = field.len();
        let bin = 2.0 * t;

        // Reconstruction buffer: predictions must read *reconstructed*
        // values so the decoder sees identical state. Lorenzo needs no
        // anchors (out-of-range neighbours are treated as zero).
        let recon = RefCell::new(vec![0.0f64; n]);
        let anchor_idx = match self.predictor {
            Predictor::MultilevelInterpolation => anchors(dims, MAX_LEVEL),
            Predictor::Lorenzo => Vec::new(),
        };
        {
            let mut r = recon.borrow_mut();
            for &i in &anchor_idx {
                r[i] = field.data[i]; // anchors stored exactly
            }
        }

        let mut symbols: Vec<u32> = Vec::with_capacity(n);
        let mut exact: Vec<f64> = Vec::new();
        {
            let data = &field.data;
            let recon_ref = &recon;
            let get = |p: [usize; 3]| {
                recon_ref.borrow()[p[0] + dims[0] * (p[1] + dims[1] * p[2])]
            };
            let visit = |i: usize, pred: f64| {
                let err = data[i] - pred;
                let code = (err / bin).round();
                if code.abs() <= RADIUS as f64 && code.is_finite() {
                    let code = code as i64;
                    let rec = pred + code as f64 * bin;
                    // Guard against floating-point rounding pushing the
                    // reconstruction out of tolerance.
                    if (data[i] - rec).abs() <= t {
                        symbols.push((code + RADIUS) as u32);
                        recon_ref.borrow_mut()[i] = rec;
                        return;
                    }
                }
                symbols.push(ESCAPE);
                exact.push(data[i]);
                recon_ref.borrow_mut()[i] = data[i];
            };
            match self.predictor {
                Predictor::MultilevelInterpolation => sweep(dims, MAX_LEVEL, &get, visit),
                Predictor::Lorenzo => lorenzo::sweep(dims, &get, visit),
            }
        }

        // Entropy stage: Huffman over bins (exactly SZ's scheme, §VI-E),
        // then the lossless pass standing in for ZSTD.
        let huff = huffman::encode_symbols(&symbols, ALPHABET);

        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u8(match field.precision {
            Precision::Double => 0,
            Precision::Single => 1,
        });
        w.put_u8(match self.predictor {
            Predictor::MultilevelInterpolation => 0,
            Predictor::Lorenzo => 1,
        });
        w.put_f64(t);
        w.put_u32(dims[0] as u32);
        w.put_u32(dims[1] as u32);
        w.put_u32(dims[2] as u32);
        let r = recon.borrow();
        w.put_u32(anchor_idx.len() as u32);
        for &i in &anchor_idx {
            w.put_f64(r[i]);
        }
        w.put_u32(exact.len() as u32);
        for &v in &exact {
            w.put_f64(v);
        }
        w.put_u64(huff.len() as u64);
        w.put_bytes(&huff);
        Ok(sperr_lossless::compress(&w.into_bytes()))
    }

    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError> {
        let container = sperr_lossless::decompress(stream)?;
        let mut r = ByteReader::new(&container);
        if r.get_bytes(4)? != MAGIC {
            return Err(CompressError::Corrupt("bad SZL1 magic".into()));
        }
        let precision = match r.get_u8()? {
            0 => Precision::Double,
            1 => Precision::Single,
            p => return Err(CompressError::Corrupt(format!("bad precision {p}"))),
        };
        let predictor = match r.get_u8()? {
            0 => Predictor::MultilevelInterpolation,
            1 => Predictor::Lorenzo,
            p => return Err(CompressError::Corrupt(format!("bad predictor {p}"))),
        };
        let t = r.get_f64()?;
        if !(t > 0.0) || !t.is_finite() {
            return Err(CompressError::Corrupt("bad tolerance".into()));
        }
        let dims = [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
        if dims.iter().any(|&d| d == 0) {
            return Err(CompressError::Corrupt("zero dimension".into()));
        }
        // Untrusted header: cap the declared volume before sizing any
        // allocation by it (u32-index domain, like the SPERR container).
        let n = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| {
                CompressError::LimitExceeded("declared volume too large".into())
            })? as usize;
        let bin = 2.0 * t;

        let anchor_idx = match predictor {
            Predictor::MultilevelInterpolation => anchors(dims, MAX_LEVEL),
            Predictor::Lorenzo => Vec::new(),
        };
        let n_anchors = r.get_u32()? as usize;
        if n_anchors != anchor_idx.len() {
            return Err(CompressError::Corrupt("anchor count mismatch".into()));
        }
        let recon = RefCell::new(vec![0.0f64; n]);
        {
            let mut rc = recon.borrow_mut();
            for &i in &anchor_idx {
                rc[i] = r.get_f64()?;
            }
        }
        let n_exact = r.get_u32()? as usize;
        if n_exact > n {
            return Err(CompressError::Corrupt("implausible escape count".into()));
        }
        let mut exact = Vec::with_capacity(n_exact);
        for _ in 0..n_exact {
            exact.push(r.get_f64()?);
        }
        let huff_len = r.get_u64()? as usize;
        let huff = r.get_bytes(huff_len)?;
        let symbols = huffman::decode_symbols(huff)?;
        if symbols.len() != n - anchor_idx.len() {
            return Err(CompressError::Corrupt("symbol count mismatch".into()));
        }

        let sym_pos = RefCell::new(0usize);
        let exact_pos = RefCell::new(0usize);
        let error = RefCell::new(None::<CompressError>);
        {
            let recon_ref = &recon;
            let get =
                |p: [usize; 3]| recon_ref.borrow()[p[0] + dims[0] * (p[1] + dims[1] * p[2])];
            let visit = |i: usize, pred: f64| {
                if error.borrow().is_some() {
                    return;
                }
                let mut sp = sym_pos.borrow_mut();
                let sym = symbols[*sp];
                *sp += 1;
                let value = if sym == ESCAPE {
                    let mut ep = exact_pos.borrow_mut();
                    if *ep >= exact.len() {
                        *error.borrow_mut() =
                            Some(CompressError::Corrupt("escape list exhausted".into()));
                        return;
                    }
                    let v = exact[*ep];
                    *ep += 1;
                    v
                } else if (sym as usize) < ALPHABET - 1 {
                    let code = sym as i64 - RADIUS;
                    pred + code as f64 * bin
                } else {
                    *error.borrow_mut() =
                        Some(CompressError::Corrupt("symbol out of range".into()));
                    return;
                };
                recon_ref.borrow_mut()[i] = value;
            };
            match predictor {
                Predictor::MultilevelInterpolation => sweep(dims, MAX_LEVEL, &get, visit),
                Predictor::Lorenzo => lorenzo::sweep(dims, &get, visit),
            }
        }
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(Field::new(dims, recon.into_inner()).with_precision(precision))
    }
}

/// SZ's outlier-coding scheme in isolation, for the Fig. 11 comparison:
/// quantized corrector integers for *every* point (zero-valued inliers
/// included, so positions need no coding), Huffman coded and then passed
/// through the lossless stage — the QCAT `compressQuantBins` equivalent.
pub fn compress_quant_bins(codes: &[i32]) -> Vec<u8> {
    // SZ's default of 65536 quantization bins: codes in ±32768.
    let offset = 1i64 << 15;
    let symbols: Vec<u32> = codes
        .iter()
        .map(|&c| {
            let s = c as i64 + offset;
            assert!((0..(1 << 16) + 1).contains(&s), "quant bin {c} out of supported range");
            s as u32
        })
        .collect();
    let huff = huffman::encode_symbols(&symbols, (1 << 16) + 1);
    sperr_lossless::compress(&huff)
}

/// Inverse of [`compress_quant_bins`].
pub fn decompress_quant_bins(bytes: &[u8]) -> Result<Vec<i32>, CompressError> {
    let huff = sperr_lossless::decompress(bytes)?;
    let symbols = huffman::decode_symbols(&huff)?;
    let offset = 1i64 << 15;
    Ok(symbols.into_iter().map(|s| (s as i64 - offset) as i32).collect())
}
