//! Shared compressor interface for the SPERR reproduction.
//!
//! The paper's evaluation (§VI) drives five compressors — SPERR, SZ3, ZFP,
//! TTHRESH, MGARD — through the same experiments. This crate defines the
//! common currency: a [`Field`] of structured floating-point data, a
//! termination [`Bound`], and the [`LossyCompressor`] trait every
//! compressor crate implements so the benchmark harness can treat them
//! uniformly.

use sperr_simd::Float;
use std::fmt;

/// Source precision of a field. The marker records what the original data
/// "was" so experiments can pick tolerance sweeps the way the paper does
/// (idx up to ~30 for single, ~60 for double — §VI-C). Since the
/// float-generic pipeline landed, [`FieldOf<f32>`] fields also carry their
/// samples natively at this width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// 32-bit origin: trailing-bit noise floor near 2^-24 of the range.
    Single,
    /// 64-bit origin: noise floor near 2^-53 of the range.
    #[default]
    Double,
}

/// A structured scalar field: a row-major 3D array (use `nz = 1` for 2D
/// slices, `ny = nz = 1` for 1D), axis 0 fastest. Generic over the sample
/// width; [`Field`] is the `f64` alias the trait interface uses, and
/// `FieldOf<f32>` carries single-precision data natively for the f32
/// compression path.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldOf<T: Float = f64> {
    /// `[nx, ny, nz]`.
    pub dims: [usize; 3],
    /// `dims[0] * dims[1] * dims[2]` samples.
    pub data: Vec<T>,
    /// Source precision marker (see [`Precision`]).
    pub precision: Precision,
}

/// The double-precision field the [`LossyCompressor`] trait interface
/// exchanges (the historical `Field` type).
pub type Field = FieldOf<f64>;

impl<T: Float> FieldOf<T> {
    /// Creates a field, checking that `data` matches `dims`. The precision
    /// marker defaults to the sample width (`f32` data ⇒ `Single`).
    pub fn new(dims: [usize; 3], data: Vec<T>) -> Self {
        assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "data/dims mismatch");
        let precision = if T::BYTES == 4 { Precision::Single } else { Precision::Double };
        FieldOf { dims, data, precision }
    }

    /// Builds a field by evaluating `f(x, y, z)` over the grid. The
    /// closure works in `f64`; narrower sample types round once on store.
    pub fn from_fn(dims: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    data.push(T::from_f64(f(x, y, z)));
                }
            }
        }
        FieldOf::new(dims, data)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field has no samples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `max − min` of the data — the paper's `Range` used to translate a
    /// tolerance label `idx` into an absolute PWE tolerance (Table I).
    /// Always reported in `f64` (widening is exact for every sample type).
    pub fn range(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &self.data {
            lo = lo.min(v.to_f64());
            hi = hi.max(v.to_f64());
        }
        if lo > hi {
            0.0
        } else {
            hi - lo
        }
    }

    /// The paper's Table I translation: `t = Range / 2^idx`.
    pub fn tolerance_for_idx(&self, idx: u32) -> f64 {
        self.range() / f64::exp2(idx as f64)
    }

    /// Marks the field as single-precision origin (returns self for
    /// builder-style chaining).
    pub fn with_precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }
}

impl FieldOf<f32> {
    /// Widens to a double-precision field (exact for every sample); the
    /// precision marker stays `Single` to record the f32 origin.
    pub fn widen(&self) -> Field {
        Field {
            dims: self.dims,
            data: self.data.iter().map(|&v| v as f64).collect(),
            precision: Precision::Single,
        }
    }
}

impl Field {
    /// Narrows to a single-precision field, rounding each sample once
    /// (nearest-even). Deliberately explicit — nothing in the pipeline
    /// narrows implicitly.
    pub fn narrow_lossy(&self) -> FieldOf<f32> {
        FieldOf {
            dims: self.dims,
            data: self.data.iter().map(|&v| v as f32).collect(),
            precision: Precision::Single,
        }
    }
}

/// Termination criterion for a compression run (paper §I: "most
/// termination criteria are expressed as either a size bound or an error
/// bound"; "no compressor can generally satisfy size and error bounds
/// simultaneously").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Maximum point-wise error tolerance `t > 0`: no reconstructed point
    /// may deviate from its original by more than `t`.
    Pwe(f64),
    /// Target size in bits per point.
    Bpp(f64),
    /// Target quality in dB (TTHRESH-style average-error bound; the paper
    /// maps `idx` to `PSNR = 20·log10(2)·idx` for TTHRESH in §VI-C).
    Psnr(f64),
}

/// Errors shared by all compressor crates.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The compressor does not implement this bound type (e.g. TTHRESH has
    /// no PWE mode; §VI-C).
    Unsupported(&'static str),
    /// The stream failed to parse.
    Corrupt(String),
    /// The input cannot be processed (dimension constraints etc.).
    Invalid(String),
    /// The stream ended before the declared payload was complete.
    Truncated(String),
    /// A header-declared size exceeds what the decoder is willing to
    /// allocate or what the remaining stream could possibly hold.
    LimitExceeded(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Unsupported(what) => write!(f, "unsupported bound: {what}"),
            CompressError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            CompressError::Invalid(msg) => write!(f, "invalid input: {msg}"),
            CompressError::Truncated(msg) => write!(f, "truncated stream: {msg}"),
            CompressError::LimitExceeded(msg) => write!(f, "resource limit exceeded: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<sperr_bitstream::Error> for CompressError {
    fn from(e: sperr_bitstream::Error) -> Self {
        match e {
            sperr_bitstream::Error::UnexpectedEof => CompressError::Truncated(e.to_string()),
            sperr_bitstream::Error::Corrupt(_) => CompressError::Corrupt(e.to_string()),
        }
    }
}

/// The uniform interface the benchmark harness drives.
pub trait LossyCompressor {
    /// Short display name ("SPERR", "ZFP-like", ...).
    fn name(&self) -> &'static str;

    /// Whether this compressor supports a bound type, mirroring the
    /// capability matrix of §VI (e.g. ZFP: both; TTHRESH: PSNR only).
    fn supports(&self, bound: &Bound) -> bool;

    /// Compresses `field` under `bound` into a self-describing stream.
    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError>;

    /// Reconstructs a field from a stream produced by [`Self::compress`].
    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_range_and_tolerance() {
        let f = Field::new([2, 2, 1], vec![-1.0, 3.0, 0.0, 1.0]);
        assert_eq!(f.range(), 4.0);
        assert_eq!(f.tolerance_for_idx(2), 1.0);
        // Table I: idx = 10 -> about one thousandth of the range.
        let t = f.tolerance_for_idx(10);
        assert!((t - 4.0 / 1024.0).abs() < 1e-15);
    }

    #[test]
    fn from_fn_row_major_order() {
        let f = Field::from_fn([2, 2, 2], |x, y, z| (x + 10 * y + 100 * z) as f64);
        assert_eq!(f.data, vec![0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    fn constant_field_range_zero() {
        let f = Field::new([3, 1, 1], vec![7.0; 3]);
        assert_eq!(f.range(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dims_mismatch_panics() {
        Field::new([2, 2, 2], vec![0.0; 7]);
    }

    #[test]
    fn f32_field_defaults_single_and_widens_exactly() {
        let f = FieldOf::<f32>::new([2, 2, 1], vec![-1.5, 3.25, 0.0, 1.0]);
        assert_eq!(f.precision, Precision::Single);
        assert_eq!(f.range(), 4.75);
        let wide = f.widen();
        assert_eq!(wide.precision, Precision::Single);
        assert_eq!(wide.data, vec![-1.5, 3.25, 0.0, 1.0]);
        // narrow_lossy is the sanctioned inverse on representable values.
        assert_eq!(wide.narrow_lossy().data, f.data);
        // f64 construction keeps its historical Double default.
        assert_eq!(Field::new([1, 1, 1], vec![0.5]).precision, Precision::Double);
    }
}
