//! Scripted fault injection for the robustness test campaign.
//!
//! Pipeline stages call [`stage`] as they start. In normal operation that
//! is one relaxed atomic load (the armed flag) plus a thread-local store
//! — cheap enough to leave compiled in unconditionally, which keeps the
//! fault campaign exercising the *production* binary rather than a
//! test-only build. When a test arms a plan with [`arm`], the matching
//! stage call panics with a recognizable message, simulating a worker
//! crash at exactly that point in the pipeline.
//!
//! This module is `#[doc(hidden)]`: it is test machinery that happens to
//! live in the production crate so the hooks can sit inside private
//! functions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::pool::lock_ignore_poison;

/// Fast-path gate: true only while a plan is armed. Checked before
/// touching the mutex so un-instrumented runs pay one relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);

struct Plan {
    /// Stage label to fire at (exact match against the labels passed to
    /// [`stage`], i.e. `stats::stage_labels` plus the stream-only ones).
    label: String,
    /// Number of times the labelled stage has been entered since arming.
    hits: usize,
    /// Fire on the `trigger_at`-th entry (0-based).
    trigger_at: usize,
}

static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

thread_local! {
    /// Last stage label seen on this thread; lets panic-side code report
    /// where it was when it died.
    static LAST_STAGE: std::cell::Cell<&'static str> = const { std::cell::Cell::new("") };
}

/// Marks entry into a pipeline stage. Panics iff a matching fault plan is
/// armed and its trigger count is reached (one-shot: the plan disarms as
/// it fires, so cancellation paths running the same stage again don't
/// re-panic).
pub fn stage(label: &'static str) {
    LAST_STAGE.with(|c| c.set(label));
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let fire = {
        let mut plan = lock_ignore_poison(&PLAN);
        match plan.as_mut() {
            Some(p) if p.label == label => {
                let hit = p.hits;
                p.hits += 1;
                if hit == p.trigger_at {
                    *plan = None;
                    ARMED.store(false, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    };
    if fire {
        panic!("injected fault at {label}");
    }
}

/// Arms a one-shot panic at the `trigger_at`-th entry (0-based) of the
/// stage with `label`. Replaces any previously armed plan.
pub fn arm(label: &str, trigger_at: usize) {
    let mut plan = lock_ignore_poison(&PLAN);
    *plan = Some(Plan { label: label.to_string(), hits: 0, trigger_at });
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms any pending plan. Safe to call unconditionally in test
/// teardown.
pub fn disarm() {
    let mut plan = lock_ignore_poison(&PLAN);
    *plan = None;
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether a plan is currently armed (i.e. `arm` was called and the fault
/// has not fired yet). Lets the campaign detect a plan that never
/// triggered — e.g. a stage label that no longer exists.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Last stage label recorded on the calling thread.
pub fn last_stage() -> &'static str {
    LAST_STAGE.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault plans are process-global; keep the tests serialized so they
    // don't steal each other's plans.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_stage_is_noop() {
        let _g = lock_ignore_poison(&SERIAL);
        disarm();
        stage("stage.test.a");
        assert_eq!(last_stage(), "stage.test.a");
    }

    #[test]
    fn armed_stage_fires_once_at_trigger() {
        let _g = lock_ignore_poison(&SERIAL);
        arm("stage.test.b", 2);
        stage("stage.test.b"); // hit 0
        stage("stage.test.other");
        stage("stage.test.b"); // hit 1
        let r = std::panic::catch_unwind(|| stage("stage.test.b")); // hit 2: fires
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected fault at stage.test.b"), "{msg}");
        assert!(!is_armed(), "plan must disarm as it fires");
        // One-shot: the same stage no longer fires.
        stage("stage.test.b");
    }
}
