//! The SPECK decoder, kept in its own module so the whole decode path can
//! be audited for panic-freedom (see the repo's `tests/panic_audit.rs`):
//! nothing in this file may `unwrap`, `expect`, `panic!` or `assert` — all
//! failures on untrusted input surface as [`DecodeError`].

use crate::set::SetS;
use sperr_bitstream::BitReader;
use sperr_simd::Float;
use std::fmt;

/// Hard ceiling on the number of coefficients a decoder will allocate
/// reconstruction buffers for. Matches the encoder's own u32-index domain
/// limit: a stream claiming more could never have been produced by
/// [`crate::encode`].
pub const MAX_DECODE_ELEMENTS: u64 = u32::MAX as u64;

/// Typed decoder-side failure. Untrusted streams must never panic the
/// decoder; every structural problem maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the declared structure was complete.
    Truncated(&'static str),
    /// The stream or its declared parameters are structurally invalid.
    Corrupt(&'static str),
    /// A declared size exceeds what the decoder is willing to allocate.
    LimitExceeded(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated(msg) => write!(f, "truncated SPECK stream: {msg}"),
            DecodeError::Corrupt(msg) => write!(f, "corrupt SPECK stream: {msg}"),
            DecodeError::LimitExceeded(msg) => write!(f, "SPECK decode limit exceeded: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<sperr_bitstream::Error> for DecodeError {
    fn from(e: sperr_bitstream::Error) -> Self {
        match e {
            sperr_bitstream::Error::UnexpectedEof => {
                DecodeError::Truncated("unexpected end of stream")
            }
            sperr_bitstream::Error::Corrupt(msg) => DecodeError::Corrupt(msg),
        }
    }
}

impl From<DecodeError> for sperr_compress_api::CompressError {
    fn from(e: DecodeError) -> Self {
        use sperr_compress_api::CompressError;
        match e {
            DecodeError::Truncated(_) => CompressError::Truncated(e.to_string()),
            DecodeError::Corrupt(_) => CompressError::Corrupt(e.to_string()),
            DecodeError::LimitExceeded(_) => CompressError::LimitExceeded(e.to_string()),
        }
    }
}

/// Signals that the stream ran out mid-pass; unwinds the pass cleanly (a
/// truncated embedded stream is a *valid* coarser encoding, not an error).
struct Stop;

/// A coefficient discovered in the current sorting pass, not yet merged
/// into the LSP (its refinement starts on the next plane).
struct NewPoint {
    idx: u32,
    negative: bool,
    /// Discovery plane: initial magnitude is `1 << plane`.
    plane: u8,
}

struct Decoder<'a, const D: usize> {
    dims: [usize; D],
    lis: Vec<Vec<SetS<D>>>,
    /// Previously significant coefficients, one entry per discovery, in
    /// discovery order — parallel arrays so the refinement pass updates
    /// magnitudes with sequential writes. Keeping full-grid
    /// `k_rec`/`uncert`/`negative` arrays instead (as the decoder once
    /// did) turns every refinement plane into a random scatter over the
    /// whole domain; here the grid is touched exactly once, at
    /// reconstruction.
    lsp_idx: Vec<u32>,
    /// Reconstructed magnitude bits accumulated so far.
    lsp_val: Vec<u64>,
    /// Plane index below which this coefficient's bits are unknown.
    lsp_unc: Vec<u8>,
    lsp_neg: Vec<bool>,
    lsp_new: Vec<NewPoint>,
    input: BitReader<'a>,
}

impl<'a, const D: usize> Decoder<'a, D> {
    #[inline]
    fn read_bit(&mut self) -> Result<bool, Stop> {
        self.input.get_bit().map_err(|_| Stop)
    }

    fn push_lis(&mut self, set: SetS<D>) {
        let lvl = set.part_level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, Vec::new);
        }
        self.lis[lvl].push(set);
    }

    /// One sorting pass at plane `n`. Mirrors the encoder's in-place LIS
    /// bookkeeping: still-insignificant sets are compacted to the front of
    /// their bucket instead of being drained into a fresh vector, so the
    /// bucket storage is allocated once and reused across planes. Sets
    /// created by splits always land in deeper buckets, which this pass
    /// has already finished, so in-place mutation never aliases the
    /// iteration.
    ///
    /// Insignificance bits come in runs (the encoder emits them through
    /// `put_zeros`); `count_zero_run` consumes each run through the refill
    /// register in bulk and the corresponding sets are retained with one
    /// `copy_within`, instead of one `get_bit` + one element move per set.
    fn sorting_pass(&mut self, n: u32) -> Result<(), Stop> {
        for lvl in (0..self.lis.len()).rev() {
            let len = self.lis[lvl].len();
            let mut write = 0usize;
            let mut read = 0usize;
            while read < len {
                let run = self.input.count_zero_run(len - read);
                if run > 0 {
                    // A run of 0 bits retains a run of sets unchanged.
                    self.lis[lvl].copy_within(read..read + run, write);
                    write += run;
                    read += run;
                    if read == len {
                        break;
                    }
                }
                // The run stopped short of `len - read` zeros: the next
                // bit is a 1, or the stream is exhausted.
                let keep_or_err = match self.input.get_bit() {
                    Err(_) => Err(Stop),
                    Ok(false) => Ok(true), // unreachable after count_zero_run
                    Ok(true) => {
                        let set = self.lis[lvl][read];
                        self.process_significant(set, n).map(|()| false)
                    }
                };
                match keep_or_err {
                    Ok(true) => {
                        self.lis[lvl][write] = self.lis[lvl][read];
                        write += 1;
                        read += 1;
                    }
                    Ok(false) => {
                        read += 1;
                    }
                    Err(stop) => {
                        // Keep the unprocessed remainder so state stays sane
                        // (reconstruction happens right after a Stop anyway).
                        // The set being processed when the stream ran out is
                        // dropped, matching the historical take-and-repush
                        // behavior.
                        self.lis[lvl].copy_within(read + 1..len, write);
                        let kept = write + (len - read - 1);
                        self.lis[lvl].truncate(kept);
                        return Err(stop);
                    }
                }
            }
            self.lis[lvl].truncate(write);
        }
        Ok(())
    }

    /// Handles a set whose significance bit was 1: a pixel records its
    /// sign and magnitude, a cuboid splits.
    fn process_significant(&mut self, set: SetS<D>, n: u32) -> Result<(), Stop> {
        if set.is_pixel() {
            let idx = set.pixel_index(self.dims);
            let negative = self.read_bit()?;
            self.lsp_new.push(NewPoint { idx: idx as u32, negative, plane: n as u8 });
            Ok(())
        } else {
            self.code_s(&set, n)
        }
    }

    fn process_s(&mut self, set: SetS<D>, n: u32) -> Result<(), Stop> {
        let sig = self.read_bit()?;
        if sig {
            self.process_significant(set, n)
        } else {
            self.push_lis(set);
            Ok(())
        }
    }

    fn code_s(&mut self, set: &SetS<D>, n: u32) -> Result<(), Stop> {
        let mut children = [*set; 8];
        let mut count = 0usize;
        set.split(|c| {
            children[count] = c;
            count += 1;
        });
        for child in children.iter().take(count) {
            self.process_s(*child, n)?;
        }
        Ok(())
    }

    /// One refinement pass at plane `n`: bits are consumed up to 64 at a
    /// time through the reader's refill register and applied to the LSP's
    /// parallel magnitude array with sequential writes, mirroring the
    /// encoder's word-packed emission. A truncated stream applies exactly
    /// the bits that exist (the reader's remaining budget is checked up
    /// front per word) and then stops, matching the bit-at-a-time
    /// behavior: entries past the cut keep their previous uncertainty.
    fn refinement_pass(&mut self, n: u32) -> Result<(), Stop> {
        let len = self.lsp_val.len();
        let mut i = 0usize;
        while i < len {
            let want = (len - i).min(64);
            let avail = self.input.remaining_bits().min(want);
            if avail > 0 {
                let word = self.input.get_bits(avail as u32).map_err(|_| Stop)?;
                sperr_simd::apply_plane_bits(
                    &mut self.lsp_val[i..],
                    &mut self.lsp_unc[i..],
                    word,
                    avail,
                    n,
                );
                i += avail;
            }
            if avail < want {
                return Err(Stop);
            }
        }
        for p in std::mem::take(&mut self.lsp_new) {
            self.lsp_idx.push(p.idx);
            self.lsp_val.push(1u64 << p.plane);
            self.lsp_unc.push(p.plane);
            self.lsp_neg.push(p.negative);
        }
        Ok(())
    }

    /// Mid-riser reconstruction: a coefficient whose bits below plane
    /// `uncert` are unknown lies in `[val·q, (val + 2^uncert)·q)`;
    /// reconstruct at the interval centre. Undiscovered coefficients stay
    /// 0. This is the only place the full grid is written — one pass,
    /// one scatter per discovered coefficient.
    fn reconstruct<T: Float>(&self, q: f64, n_total: usize) -> Vec<T> {
        let qt = T::from_f64(q);
        let mut out = vec![T::ZERO; n_total];
        let place = |out: &mut [T], idx: u32, val: u64, unc: u8, neg: bool| {
            let mag = (T::from_u64_lossy(val) + T::HALF * T::from_u64_lossy(1u64 << unc)) * qt;
            if let Some(slot) = out.get_mut(idx as usize) {
                *slot = if neg { -mag } else { mag };
            }
        };
        for i in 0..self.lsp_idx.len() {
            place(&mut out, self.lsp_idx[i], self.lsp_val[i], self.lsp_unc[i], self.lsp_neg[i]);
        }
        // Points discovered in a pass the stream ran out of were never
        // merged into the LSP; they still reconstruct (at their discovery
        // magnitude), exactly as when the grid was written at discovery.
        for p in &self.lsp_new {
            place(&mut out, p.idx, 1u64 << p.plane, p.plane, p.negative);
        }
        out
    }
}

/// Decodes a SPECK stream produced by [`crate::encode`] with the same
/// `dims`, `q` and `num_planes`. A truncated stream (embedded prefix, or a
/// bit-budget encode) decodes to a coarser but valid reconstruction;
/// decoding never fails on short input. Invalid parameters — a
/// non-positive or non-finite `q`, more than 64 bitplanes, or dims whose
/// product exceeds [`MAX_DECODE_ELEMENTS`] — return a typed error instead
/// of panicking, so header fields from untrusted containers can be passed
/// through unchecked.
pub fn decode<T: Float, const D: usize>(
    stream: &[u8],
    dims: [usize; D],
    q: f64,
    num_planes: u8,
) -> Result<Vec<T>, DecodeError> {
    if !(q > 0.0) || !q.is_finite() {
        return Err(DecodeError::Corrupt("quantization step must be positive and finite"));
    }
    let n_total = dims
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
        .ok_or(DecodeError::LimitExceeded("dimension product overflows"))?;
    if n_total > MAX_DECODE_ELEMENTS {
        return Err(DecodeError::LimitExceeded("domain too large for u32 indices"));
    }
    let n_total = n_total as usize;
    if num_planes == 0 {
        return Ok(vec![T::ZERO; n_total]);
    }
    if num_planes > 64 {
        return Err(DecodeError::Corrupt("num_planes exceeds 64"));
    }
    if n_total == 0 {
        // A zero-extent domain encodes to an empty stream with zero
        // planes; claiming coded planes over it is structurally invalid
        // (and the degenerate root set would recurse on garbage bits).
        return Err(DecodeError::Corrupt("coded planes over an empty domain"));
    }
    let mut dec = Decoder {
        dims,
        lis: vec![vec![SetS::root(dims)]],
        lsp_idx: Vec::new(),
        lsp_val: Vec::new(),
        lsp_unc: Vec::new(),
        lsp_neg: Vec::new(),
        lsp_new: Vec::new(),
        input: BitReader::new(stream),
    };
    'planes: for n in (0..num_planes as u32).rev() {
        let _plane = sperr_telemetry::span!("speck.decode.plane", n);
        if dec.sorting_pass(n).is_err() {
            break 'planes;
        }
        if dec.refinement_pass(n).is_err() {
            break 'planes;
        }
    }
    Ok(dec.reconstruct(q, n_total))
}
