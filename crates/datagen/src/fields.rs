//! Synthetic stand-ins for the SDRBench fields used in the paper (§VI-B).
//!
//! The originals (Miranda, S3D, Nyx, QMCPACK) are multi-hundred-MB
//! downloads; what the paper's conclusions depend on is their *character*:
//! spectral slope (smoothness), sharp features, dynamic range, and exact
//! zeros. Each generator here reproduces that character from a seeded
//! Gaussian random field plus a physically motivated nonlinearity; see
//! DESIGN.md §3 for the substitution argument.

use crate::grf::gaussian_random_field;
use sperr_compress_api::{Field, Precision};

/// The nine fields of Table II plus the Fig. 1 image stand-in and the
/// Miranda density field used in the chunking/scaling experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticField {
    /// Miranda (hydrodynamics) pressure — smooth, double precision.
    MirandaPressure,
    /// Miranda viscosity — large exact-zero regions with localized blobs.
    MirandaViscosity,
    /// Miranda x-velocity — turbulent power-law spectrum.
    MirandaVelocityX,
    /// Miranda density — two-fluid mixing plateaus + interfaces (single
    /// precision; the 3072³ field the paper cuts 1024³/2048³ blocks from).
    MirandaDensity,
    /// S3D (combustion) CH4 mass fraction — bounded in [0, 0.05].
    S3dCh4,
    /// S3D temperature — smooth background with a flame front.
    S3dTemperature,
    /// S3D x-velocity.
    S3dVelocityX,
    /// Nyx (cosmology) dark-matter density — log-normal, huge dynamic
    /// range, single precision.
    NyxDarkMatterDensity,
    /// Nyx x-velocity, single precision.
    NyxVelocityX,
    /// QMCPACK orbital — localized oscillatory wavefunction, single
    /// precision.
    Qmcpack,
    /// 2-D natural-image stand-in (smooth regions + edges + texture) for
    /// the Fig. 1 outlier-decorrelation demonstration.
    Image2d,
}

/// The QMCPACK data set is "essentially a stack of 3D volumes of size
/// 69²×115, which is best to be compressed as 288 individual volumes"
/// (§VI-B). This builds such a stack: `n_orbitals` independent orbitals
/// concatenated along z into a `[69, 69, 115·n]` field, so SPERR's chunk
/// size `69²×115` splits it exactly at orbital boundaries.
pub fn qmcpack_stack(n_orbitals: usize, seed: u64) -> Field {
    assert!(n_orbitals > 0);
    let orbital_dims = [69usize, 69, 115];
    let dims = [69, 69, 115 * n_orbitals];
    let mut data = Vec::with_capacity(dims.iter().product());
    for orbital in 0..n_orbitals {
        let f = SyntheticField::Qmcpack.generate(orbital_dims, seed ^ (orbital as u64) << 17);
        data.extend_from_slice(&f.data);
    }
    Field::new(dims, data).with_precision(Precision::Single)
}

impl SyntheticField {
    /// All nine Table II volume fields (excludes the 2-D image).
    pub const TABLE2_FIELDS: [SyntheticField; 9] = [
        SyntheticField::S3dCh4,
        SyntheticField::S3dTemperature,
        SyntheticField::S3dVelocityX,
        SyntheticField::MirandaPressure,
        SyntheticField::MirandaViscosity,
        SyntheticField::MirandaVelocityX,
        SyntheticField::Qmcpack,
        SyntheticField::NyxDarkMatterDensity,
        SyntheticField::NyxVelocityX,
    ];

    /// Display name matching the paper's field names.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticField::MirandaPressure => "Miranda Pressure",
            SyntheticField::MirandaViscosity => "Miranda Viscosity",
            SyntheticField::MirandaVelocityX => "Miranda X Velocity",
            SyntheticField::MirandaDensity => "Miranda Density",
            SyntheticField::S3dCh4 => "S3D CH4",
            SyntheticField::S3dTemperature => "S3D Temperature",
            SyntheticField::S3dVelocityX => "S3D X Velocity",
            SyntheticField::NyxDarkMatterDensity => "Nyx Dark Matter Density",
            SyntheticField::NyxVelocityX => "Nyx X Velocity",
            SyntheticField::Qmcpack => "QMCPACK",
            SyntheticField::Image2d => "Image (Lighthouse stand-in)",
        }
    }

    /// Table II abbreviation at a tolerance level, e.g. `Press-20`.
    pub fn abbrev(self, idx: u32) -> String {
        let stem = match self {
            SyntheticField::MirandaPressure => "Press",
            SyntheticField::MirandaViscosity => "Visc",
            SyntheticField::MirandaVelocityX => "VX2",
            SyntheticField::MirandaDensity => "Dens",
            SyntheticField::S3dCh4 => "CH4",
            SyntheticField::S3dTemperature => "Temp",
            SyntheticField::S3dVelocityX => "VX1",
            SyntheticField::NyxDarkMatterDensity => "Nyx",
            SyntheticField::NyxVelocityX => "VX3",
            SyntheticField::Qmcpack => "QMC",
            SyntheticField::Image2d => "Img",
        };
        format!("{stem}-{idx}")
    }

    /// Source precision of the real data set (§VI-B).
    pub fn precision(self) -> Precision {
        match self {
            SyntheticField::MirandaPressure
            | SyntheticField::MirandaViscosity
            | SyntheticField::MirandaVelocityX
            | SyntheticField::S3dCh4
            | SyntheticField::S3dTemperature
            | SyntheticField::S3dVelocityX => Precision::Double,
            _ => Precision::Single,
        }
    }

    /// The data set's native dimensions in the paper (for reference; the
    /// harness scales these down to laptop-size volumes).
    pub fn paper_dims(self) -> [usize; 3] {
        match self {
            SyntheticField::MirandaPressure
            | SyntheticField::MirandaViscosity
            | SyntheticField::MirandaVelocityX => [384, 384, 256],
            SyntheticField::MirandaDensity => [3072, 3072, 3072],
            SyntheticField::S3dCh4
            | SyntheticField::S3dTemperature
            | SyntheticField::S3dVelocityX => [500, 500, 500],
            SyntheticField::NyxDarkMatterDensity | SyntheticField::NyxVelocityX => {
                [512, 512, 512]
            }
            SyntheticField::Qmcpack => [69, 69, 115],
            SyntheticField::Image2d => [768, 512, 1],
        }
    }

    /// Generates the field at the requested dimensions with a fixed seed
    /// (deterministic across runs).
    pub fn generate(self, dims: [usize; 3], seed: u64) -> Field {
        let data = match self {
            SyntheticField::MirandaPressure => {
                // Smooth turbulence pressure: steep spectrum.
                gaussian_random_field(dims, 4.0, 1.5, seed ^ 0x1001)
            }
            SyntheticField::MirandaViscosity => {
                // Mostly exact-zero with positive blobs where mixing occurs.
                gaussian_random_field(dims, 3.6, 1.0, seed ^ 0x1002)
                    .into_iter()
                    .map(|v| (v - 0.8).max(0.0) * 2.0e-3)
                    .collect()
            }
            SyntheticField::MirandaVelocityX => {
                gaussian_random_field(dims, 3.4, 1.0, seed ^ 0x1003)
                    .into_iter()
                    .map(|v| v * 1.2e6) // cm/s scale as in Miranda outputs
                    .collect()
            }
            SyntheticField::MirandaDensity => {
                // Two-fluid mixing: plateaus near 1 and 3 with interfaces.
                gaussian_random_field(dims, 3.8, 1.2, seed ^ 0x1004)
                    .into_iter()
                    .map(|v| 2.0 + (1.5 * v).tanh())
                    .collect()
            }
            SyntheticField::S3dCh4 => {
                // Mass fraction: bounded [0, 0.05], front-like transitions.
                gaussian_random_field(dims, 3.5, 1.0, seed ^ 0x2001)
                    .into_iter()
                    .map(|v| 0.025 * (1.0 + (2.0 * (v - 0.3)).tanh()))
                    .collect()
            }
            SyntheticField::S3dTemperature => {
                // Kelvin-scale smooth background + flame front.
                gaussian_random_field(dims, 3.7, 1.2, seed ^ 0x2002)
                    .into_iter()
                    .map(|v| 800.0 + 600.0 * (1.0 + (2.5 * v).tanh()))
                    .collect()
            }
            SyntheticField::S3dVelocityX => {
                gaussian_random_field(dims, 3.2, 1.0, seed ^ 0x2003)
                    .into_iter()
                    .map(|v| v * 30.0)
                    .collect()
            }
            SyntheticField::NyxDarkMatterDensity => {
                // Log-normal: exp of a shallow-spectrum GRF; enormous
                // dynamic range with point-like clusters, like N-body
                // density deposits.
                gaussian_random_field(dims, 2.2, 0.8, seed ^ 0x3001)
                    .into_iter()
                    .map(|v| (1.8 * v).exp() * 1.0e10)
                    .collect()
            }
            SyntheticField::NyxVelocityX => {
                gaussian_random_field(dims, 2.8, 1.0, seed ^ 0x3002)
                    .into_iter()
                    .map(|v| v * 2.0e7)
                    .collect()
            }
            SyntheticField::Qmcpack => {
                // Localized oscillatory orbital: smooth GRF modulated by a
                // lattice-periodic oscillation under a Gaussian envelope.
                let base = gaussian_random_field(dims, 3.0, 1.0, seed ^ 0x4001);
                let (cx, cy, cz) =
                    (dims[0] as f64 / 2.0, dims[1] as f64 / 2.0, dims[2] as f64 / 2.0);
                let sigma2 = {
                    let r = dims.iter().copied().max().unwrap() as f64 / 3.0;
                    r * r
                };
                let mut out = Vec::with_capacity(base.len());
                let mut i = 0;
                for z in 0..dims[2] {
                    for y in 0..dims[1] {
                        for x in 0..dims[0] {
                            let dx = x as f64 - cx;
                            let dy = y as f64 - cy;
                            let dz = z as f64 - cz;
                            let env = (-(dx * dx + dy * dy + dz * dz) / (2.0 * sigma2)).exp();
                            let osc = (0.9 * x as f64).cos()
                                * (0.8 * y as f64).cos()
                                * (0.7 * z as f64).cos();
                            out.push(base[i] * env * (0.6 + 0.4 * osc));
                            i += 1;
                        }
                    }
                }
                out
            }
            SyntheticField::Image2d => {
                assert_eq!(dims[2], 1, "Image2d is 2-D; use dims = [w, h, 1]");
                let texture = gaussian_random_field(dims, 2.0, 2.0, seed ^ 0x5001);
                let smooth = gaussian_random_field(dims, 4.5, 1.0, seed ^ 0x5002);
                let (w, h) = (dims[0] as f64, dims[1] as f64);
                let mut out = Vec::with_capacity(dims[0] * dims[1]);
                let mut i = 0;
                for y in 0..dims[1] {
                    for x in 0..dims[0] {
                        let fx = x as f64 / w;
                        let fy = y as f64 / h;
                        // sky gradient + a "lighthouse" vertical edge + a
                        // circular feature + fine texture
                        let mut v = 120.0 + 80.0 * fy + 10.0 * smooth[i];
                        if (fx - 0.3).abs() < 0.04 && fy > 0.2 {
                            v += 70.0; // tower
                        }
                        let dx = fx - 0.7;
                        let dy = fy - 0.35;
                        if dx * dx + dy * dy < 0.02 {
                            v -= 50.0; // disc
                        }
                        if fy > 0.75 {
                            v += 25.0 * texture[i]; // foreground texture
                        } else {
                            v += 4.0 * texture[i];
                        }
                        out.push(v.clamp(0.0, 255.0));
                        i += 1;
                    }
                }
                out
            }
        };
        Field::new(dims, data).with_precision(self.precision())
    }
}
