//! Ablation (design choice, §III-A): wavelet kernel. The paper picks
//! CDF 9/7 for its compaction and near-orthogonality; this ablation swaps
//! in CDF 5/3 and Haar to quantify the choice on rate-distortion.

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use sperr_wavelet::Kernel;

fn main() {
    sperr_bench::banner(
        "Ablation — wavelet kernel (CDF 9/7 vs CDF 5/3 vs Haar)",
        "design choice of §III-A",
    );
    println!("field,idx,kernel,bpp,psnr_db,accuracy_gain");
    for f in [
        SyntheticField::MirandaPressure,
        SyntheticField::S3dTemperature,
        SyntheticField::NyxDarkMatterDensity,
    ] {
        let field = sperr_bench::bench_field(f);
        for idx in [10u32, 20] {
            let t = field.tolerance_for_idx(idx);
            for kernel in [Kernel::Cdf97, Kernel::Cdf53, Kernel::Haar] {
                let sperr = Sperr::new(SperrConfig { kernel, ..SperrConfig::default() });
                let stream = sperr.compress(&field, Bound::Pwe(t)).expect("compress");
                let rec = sperr.decompress(&stream).expect("decompress");
                assert!(sperr_metrics::max_pwe(&field.data, &rec.data) <= t);
                println!(
                    "{},{idx},{},{:.4},{:.2},{:.3}",
                    f.abbrev(idx),
                    kernel.name(),
                    stream.len() as f64 * 8.0 / field.len() as f64,
                    sperr_metrics::psnr(&field.data, &rec.data),
                    sperr_metrics::accuracy_gain_of(&field.data, &rec.data, stream.len()),
                );
            }
        }
    }
    println!("# expected: CDF 9/7 gives the lowest bpp / highest gain throughout.");
}
