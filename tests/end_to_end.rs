//! Cross-crate integration tests: the full SPERR pipeline on synthetic
//! SDRBench-like fields, across chunking/threading/lossless configs.

use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;

fn max_err(a: &Field, b: &Field) -> f64 {
    sperr_metrics::max_pwe(&a.data, &b.data)
}

#[test]
fn pwe_guarantee_on_every_table2_field() {
    let dims = [24, 20, 16];
    let sperr = Sperr::new(SperrConfig::default());
    for f in SyntheticField::TABLE2_FIELDS {
        let field = f.generate(dims, 1);
        for idx in [10u32, 20] {
            let t = field.tolerance_for_idx(idx);
            let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
            let restored = sperr.decompress(&stream).unwrap();
            let e = max_err(&field, &restored);
            assert!(e <= t, "{} idx={idx}: {e} > {t}", f.name());
            assert_eq!(restored.precision, field.precision);
        }
    }
}

#[test]
fn chunked_parallel_lossless_matrix() {
    // Every combination of chunking x threading x lossless must honour the
    // guarantee and produce identical bytes for identical configs.
    let field = SyntheticField::S3dTemperature.generate([40, 36, 20], 5);
    let t = field.tolerance_for_idx(15);
    for chunk in [[64, 64, 64], [16, 16, 16], [20, 12, 20]] {
        for threads in [1usize, 3] {
            for lossless in [false, true] {
                let sperr = Sperr::new(SperrConfig {
                    chunk_dims: chunk,
                    num_threads: threads,
                    lossless,
                    ..SperrConfig::default()
                });
                let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
                let restored = sperr.decompress(&stream).unwrap();
                assert!(
                    max_err(&field, &restored) <= t,
                    "chunk={chunk:?} threads={threads} lossless={lossless}"
                );
            }
        }
    }
}

#[test]
fn compression_ratio_ordering_smooth_vs_rough() {
    // Smooth fields must compress far better than rough ones at the same
    // relative tolerance — the information-compaction premise of §II.
    let dims = [32, 32, 32];
    let smooth = SyntheticField::MirandaPressure.generate(dims, 2);
    let rough = SyntheticField::NyxVelocityX.generate(dims, 2);
    let sperr = Sperr::new(SperrConfig::default());
    let size = |f: &Field| {
        sperr
            .compress(f, Bound::Pwe(f.tolerance_for_idx(15)))
            .unwrap()
            .len()
    };
    let s = size(&smooth);
    let r = size(&rough);
    assert!(s < r, "smooth {s} should beat rough {r}");
}

#[test]
fn all_five_compressors_roundtrip() {
    let field = SyntheticField::MirandaPressure.generate([20, 20, 20], 3);
    let t = field.tolerance_for_idx(12);
    for comp in sperr_repro::all_compressors() {
        let bound = if comp.supports(&Bound::Pwe(t)) {
            Bound::Pwe(t)
        } else {
            Bound::Psnr(60.0)
        };
        let stream = comp.compress(&field, bound).unwrap_or_else(|e| {
            panic!("{} failed to compress: {e}", comp.name())
        });
        let restored = comp.decompress(&stream).unwrap_or_else(|e| {
            panic!("{} failed to decompress: {e}", comp.name())
        });
        assert_eq!(restored.dims, field.dims, "{}", comp.name());
        // All of them must at least be sane reconstructions.
        let rel = sperr_metrics::rmse(&field.data, &restored.data) / field.range();
        assert!(rel < 0.01, "{}: rel rmse {rel}", comp.name());
    }
}

#[test]
fn pwe_compressors_honour_bound_zfp_sz() {
    // The three PWE-capable compressors (SPERR, SZ-like, ZFP-like) must
    // all strictly honour the tolerance; MGARD-like only its hard bound
    // (the §VI-C observation).
    let field = SyntheticField::NyxDarkMatterDensity.generate([24, 16, 16], 9);
    let t = field.tolerance_for_idx(18);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    for comp in [&sperr as &dyn LossyCompressor, &sz, &zfp] {
        let stream = comp.compress(&field, Bound::Pwe(t)).unwrap();
        let restored = comp.decompress(&stream).unwrap();
        let e = max_err(&field, &restored);
        assert!(e <= t, "{}: {e} > {t}", comp.name());
    }
    let mgard = sperr_mgard_like::MgardLike;
    let stream = mgard.compress(&field, Bound::Pwe(t)).unwrap();
    let restored = mgard.decompress(&stream).unwrap();
    let e = max_err(&field, &restored);
    assert!(e <= sperr_mgard_like::MgardLike::hard_error_bound(field.dims, t));
}

#[test]
fn sperr_wins_bitrate_at_tight_tolerance_on_smooth_data() {
    // Fig. 9's headline: SPERR uses the fewest bits to satisfy a given
    // PWE tolerance (vs. the prediction- and block-based baselines) on
    // smooth scientific data at tight tolerances.
    let field = SyntheticField::MirandaPressure.generate([32, 32, 32], 4);
    let t = field.tolerance_for_idx(20);
    let sperr = Sperr::new(SperrConfig::default());
    let zfp = sperr_zfp_like::ZfpLike::default();
    let sperr_size = sperr.compress(&field, Bound::Pwe(t)).unwrap().len();
    let zfp_size = zfp.compress(&field, Bound::Pwe(t)).unwrap().len();
    assert!(
        sperr_size < zfp_size,
        "SPERR {sperr_size} should beat ZFP-like {zfp_size} at idx=20"
    );
}

#[test]
fn decompressing_wrong_format_fails_cleanly() {
    // Feeding one compressor's stream to another must error, not panic.
    let field = SyntheticField::S3dCh4.generate([16, 16, 16], 6);
    let t = field.tolerance_for_idx(10);
    let sperr = Sperr::new(SperrConfig::default());
    let sz = sperr_sz_like::SzLike::default();
    let zfp = sperr_zfp_like::ZfpLike::default();
    let sperr_stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let zfp_stream = zfp.compress(&field, Bound::Pwe(t)).unwrap();
    assert!(sz.decompress(&sperr_stream).is_err());
    assert!(sperr.decompress(&zfp_stream).is_err());
    assert!(zfp.decompress(&sperr_stream).is_err());
}

#[test]
fn two_dimensional_image_roundtrip() {
    // Fig. 1 uses a 2-D image; the pipeline must handle nz == 1.
    let field = SyntheticField::Image2d.generate([96, 64, 1], 1);
    let sperr = Sperr::new(SperrConfig::default());
    let t = field.tolerance_for_idx(12);
    let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
    let restored = sperr.decompress(&stream).unwrap();
    assert!(max_err(&field, &restored) <= t);
}
