//! Ablation (design choice, §III-A): transform recursion depth. The paper
//! caps levels at `min(6, ⌊log2 N⌋ − 2)` citing diminishing returns of
//! deep recursion; this ablation sweeps the cap directly on the raw
//! wavelet+SPECK path (no outlier stage, so the effect is isolated).

use sperr_datagen::SyntheticField;
use sperr_speck::Termination;
use sperr_wavelet::{forward_3d, inverse_3d, num_levels, Kernel};

fn main() {
    sperr_bench::banner(
        "Ablation — wavelet transform depth cap",
        "level rule min(6, ⌊log2 N⌋ − 2) of §III-A",
    );
    let field = sperr_bench::bench_field(SyntheticField::MirandaPressure);
    let dims = field.dims;
    let rule = [
        num_levels(dims[0]),
        num_levels(dims[1]),
        num_levels(dims[2]),
    ];
    let q = field.range() * f64::exp2(-20.0);
    println!("# dims {dims:?}; paper rule -> levels {rule:?}; q = {q:.3e}");
    println!("level_cap,bpp,psnr_db,accuracy_gain");
    let max_cap = rule.iter().copied().max().unwrap() + 2;
    for cap in 0..=max_cap {
        let levels = [cap.min(rule[0] + 2), cap.min(rule[1] + 2), cap.min(rule[2] + 2)];
        let mut coeffs = field.data.clone();
        forward_3d(&mut coeffs, dims, levels, Kernel::Cdf97);
        let enc = sperr_speck::encode(&coeffs, dims, q, Termination::Quality);
        let mut rec = sperr_speck::decode(&enc.stream, dims, q, enc.num_planes).unwrap();
        inverse_3d(&mut rec, dims, levels, Kernel::Cdf97);
        let bpp = enc.bits_used as f64 / field.len() as f64;
        println!(
            "{cap},{bpp:.4},{:.2},{:.3}",
            sperr_metrics::psnr(&field.data, &rec),
            sperr_metrics::accuracy_gain(
                sperr_metrics::std_dev(&field.data),
                sperr_metrics::rmse(&field.data, &rec),
                bpp
            ),
        );
    }
    println!("# expected: gain improves rapidly through ~4 levels then saturates —");
    println!("# the diminishing returns motivating the paper's six-level cap.");
}
