//! Canonical Huffman coding over an arbitrary `u32` symbol alphabet.
//!
//! Used in two places:
//! * the LZ77 back end (literal/length and distance alphabets), and
//! * the SZ-style baseline, which Huffman-codes quantization-bin indices
//!   the same way SZ does (paper §VI-E: "quantized outlier correction
//!   values are stored as non-zero integers and then Huffman coded
//!   together with zero-valued inliers").
//!
//! Code lengths are depth-limited (default 15) by the frequency-halving
//! rebuild heuristic; codes are canonical so only the length table needs
//! to be transmitted.

use sperr_bitstream::{BitReader, BitWriter, Error};

/// Maximum code length used throughout.
pub const MAX_CODE_LEN: u8 = 15;

/// Computes depth-limited Huffman code lengths for `freqs` (one entry per
/// symbol; zero-frequency symbols get length 0). Guarantees the Kraft sum
/// is exactly 1 when at least two symbols occur (one symbol gets length 1).
///
/// A depth limit of `max_len` can encode at most `2^max_len` distinct
/// symbols (Kraft); when more occur, the limit is raised automatically —
/// callers that serialize lengths in fixed-width fields must size them
/// for the worst case they feed in (see [`LENGTH_FIELD_BITS`]).
pub fn code_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let used = freqs.iter().filter(|&&f| f > 0).count();
    match used {
        0 => return lengths,
        1 => {
            let i = freqs.iter().position(|&f| f > 0).unwrap();
            lengths[i] = 1;
            return lengths;
        }
        _ => {}
    }
    // A tree over `used` leaves needs depth >= ceil(log2(used)); raise the
    // cap if the requested one is infeasible (otherwise the flattening
    // loop below would never terminate).
    let min_feasible = (usize::BITS - (used - 1).leading_zeros()) as u8;
    let max_len = max_len.max(min_feasible);

    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lens = huffman_lengths(&f);
        let depth = lens.iter().copied().max().unwrap_or(0);
        if depth <= max_len {
            for (i, &l) in lens.iter().enumerate() {
                lengths[i] = l;
            }
            return lengths;
        }
        // Flatten the distribution and retry; terminates because all
        // frequencies converge toward 1 (uniform distribution has depth
        // ceil(log2 used) <= max_len by the adjustment above).
        for x in f.iter_mut() {
            if *x > 0 {
                *x = *x / 2 + 1;
            }
        }
    }
}

/// Bits used to serialize one code length in [`encode_symbols`]: supports
/// depths up to 31, enough for any alphabet up to 2^31 symbols.
pub const LENGTH_FIELD_BITS: u32 = 5;

/// Plain (unlimited) Huffman code lengths via the standard two-queue /
/// heap construction.
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Node {
        weight: u64,
        id: usize,
    }

    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    // Tree nodes: leaves 0..n, internal nodes appended after.
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    for (i, &w) in freqs.iter().enumerate() {
        if w > 0 {
            heap.push(Reverse(Node { weight: w, id: i }));
        }
    }
    if heap.len() < 2 {
        if let Some(Reverse(node)) = heap.pop() {
            lengths[node.id] = 1;
        }
        return lengths;
    }
    while heap.len() > 1 {
        let Reverse(a) = heap.pop().unwrap();
        let Reverse(b) = heap.pop().unwrap();
        let id = parent.len();
        parent.push(usize::MAX);
        parent[a.id] = id;
        parent[b.id] = id;
        heap.push(Reverse(Node { weight: a.weight.saturating_add(b.weight), id }));
    }
    let root = heap.pop().unwrap().0.id;
    // Depth of each leaf by walking parents (tree is small).
    for i in 0..n {
        if freqs[i] == 0 {
            continue;
        }
        let mut d = 0u8;
        let mut cur = i;
        while cur != root {
            cur = parent[cur];
            d += 1;
        }
        lengths[i] = d;
    }
    lengths
}

/// Canonical code assignment: symbols sorted by (length, index) receive
/// consecutive code values per length. Returns per-symbol codes (MSB-first
/// bit patterns).
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u64; max as usize + 1];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    // Wrapping u64 arithmetic: adversarial length tables (decoder side)
    // need not satisfy Kraft, and the canonical recurrence can overflow on
    // them. A wrapped code yields a garbage-but-harmless table whose
    // lookups simply fail to match.
    let mut next = vec![0u64; max as usize + 2];
    let mut code = 0u64;
    for l in 1..=max as usize {
        code = code.wrapping_add(count[l - 1]).wrapping_shl(1);
        next[l] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[l as usize];
                next[l as usize] = c.wrapping_add(1);
                c as u32
            }
        })
        .collect()
}

/// A canonical Huffman encoder/decoder pair built from code lengths.
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    lengths: Vec<u8>,
    codes: Vec<u32>,
    /// Decoding tables: for each length, the first canonical code, the
    /// index (into `sorted_symbols`) of its first symbol, and the number
    /// of codes of that length.
    first_code: Vec<u64>,
    first_index: Vec<u32>,
    count: Vec<u32>,
    sorted_symbols: Vec<u32>,
    max_len: u8,
}

impl CanonicalCode {
    /// Builds the code from per-symbol lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let codes = canonical_codes(lengths);
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut count = vec![0u32; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // u64 wrapping arithmetic for the same reason as in
        // [`canonical_codes`]: decoder-side length tables are untrusted.
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0u32; max_len as usize + 2];
        let mut code = 0u64;
        let mut index = 0u32;
        for l in 1..=max_len as usize {
            code = code.wrapping_add(count[l - 1] as u64).wrapping_shl(1);
            first_code[l] = code;
            first_index[l] = index;
            index = index.wrapping_add(count[l]);
        }
        // Symbols sorted by (length, symbol).
        let mut sorted: Vec<u32> = (0..lengths.len() as u32).filter(|&s| lengths[s as usize] > 0).collect();
        sorted.sort_by_key(|&s| (lengths[s as usize], s));
        CanonicalCode {
            lengths: lengths.to_vec(),
            codes,
            first_code,
            first_index,
            count,
            sorted_symbols: sorted,
            max_len,
        }
    }

    /// Builds an optimal (depth-limited) code for the given frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        Self::from_lengths(&code_lengths(freqs, MAX_CODE_LEN))
    }

    /// Per-symbol code lengths (for serializing the table).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Writes the code for `symbol` (MSB-first) to the bit sink.
    #[inline]
    pub fn encode_symbol(&self, symbol: u32, out: &mut BitWriter) {
        let len = self.lengths[symbol as usize];
        debug_assert!(len > 0, "encoding symbol {symbol} with zero frequency");
        let code = self.codes[symbol as usize];
        for i in (0..len).rev() {
            out.put_bit((code >> i) & 1 == 1);
        }
    }

    /// Reads one symbol from the bit source.
    #[inline]
    pub fn decode_symbol(&self, input: &mut BitReader<'_>) -> Result<u32, Error> {
        let mut code = 0u64;
        // Cap at 63 so the shift below cannot overflow even if an
        // adversarial length table declared absurd depths.
        for len in 1..=(self.max_len as usize).min(63) {
            code = (code << 1) | input.get_bit()? as u64;
            let fc = self.first_code[len];
            if code >= fc && code.wrapping_sub(fc) < self.count[len] as u64 {
                let idx = self.first_index[len] as u64 + (code - fc);
                return match self.sorted_symbols.get(idx as usize) {
                    Some(&s) => Ok(s),
                    None => Err(Error::Corrupt("invalid Huffman code")),
                };
            }
        }
        Err(Error::Corrupt("invalid Huffman code"))
    }
}

/// Convenience: Huffman-encode a symbol sequence over `0..alphabet` into a
/// self-contained byte vector (length table + payload).
pub fn encode_symbols(symbols: &[u32], alphabet: usize) -> Vec<u8> {
    let mut freqs = vec![0u64; alphabet];
    for &s in symbols {
        freqs[s as usize] += 1;
    }
    let code = CanonicalCode::from_freqs(&freqs);
    // Exact output size: fixed header + length table + Σ freq·code-length.
    let payload_bits: u64 =
        freqs.iter().zip(code.lengths()).map(|(&f, &l)| f * u64::from(l)).sum();
    let table_bits = 32 + 64 + alphabet * LENGTH_FIELD_BITS as usize;
    let mut w = BitWriter::with_capacity_bits(table_bits + payload_bits as usize);
    // Table: alphabet size (u32), then LENGTH_FIELD_BITS per length.
    w.put_bits(alphabet as u64, 32);
    w.put_bits(symbols.len() as u64, 64);
    for &l in code.lengths() {
        w.put_bits(l as u64, LENGTH_FIELD_BITS);
    }
    for &s in symbols {
        code.encode_symbol(s, &mut w);
    }
    w.into_bytes()
}

/// Inverse of [`encode_symbols`].
pub fn decode_symbols(bytes: &[u8]) -> Result<Vec<u32>, Error> {
    let mut r = BitReader::new(bytes);
    let alphabet = r.get_bits(32)? as usize;
    let count = r.get_bits(64)?;
    if alphabet > (1 << 24) {
        return Err(Error::Corrupt("implausible Huffman alphabet"));
    }
    // Each length costs LENGTH_FIELD_BITS bits; a header declaring more
    // lengths than the stream can hold is rejected before any allocation.
    if (alphabet as u64).saturating_mul(LENGTH_FIELD_BITS as u64) > r.remaining_bits() as u64 {
        return Err(Error::UnexpectedEof);
    }
    let mut lengths = Vec::with_capacity(alphabet);
    for _ in 0..alphabet {
        lengths.push(r.get_bits(LENGTH_FIELD_BITS)? as u8);
    }
    let code = CanonicalCode::from_lengths(&lengths);
    // Every coded symbol costs at least one bit, so the remaining stream
    // bounds the symbol count; this keeps the reservation honest.
    if count > r.remaining_bits() as u64 {
        return Err(Error::UnexpectedEof);
    }
    let count = count as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(code.decode_symbol(&mut r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kraft_sum_is_valid() {
        let freqs = vec![90, 5, 3, 1, 1, 0, 40, 12];
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft {kraft}");
        assert_eq!(lens[5], 0, "zero-frequency symbol must get length 0");
    }

    #[test]
    fn depth_limit_enforced() {
        // Fibonacci-like frequencies force deep trees without a limit.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs, 15);
        assert!(lens.iter().all(|&l| l <= 15));
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn single_symbol_alphabet() {
        let symbols = vec![7u32; 100];
        let bytes = encode_symbols(&symbols, 10);
        assert_eq!(decode_symbols(&bytes).unwrap(), symbols);
    }

    #[test]
    fn empty_sequence() {
        let bytes = encode_symbols(&[], 5);
        assert_eq!(decode_symbols(&bytes).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn skewed_distribution_roundtrip_and_ratio() {
        // 95% zeros — like SZ quantization bins on smooth data.
        let symbols: Vec<u32> = (0..10_000)
            .map(|i| if i % 20 == 0 { 1 + (i % 7) as u32 } else { 0 })
            .collect();
        let bytes = encode_symbols(&symbols, 16);
        assert_eq!(decode_symbols(&bytes).unwrap(), symbols);
        // Entropy is well under 1 bit/symbol; allow overhead but require
        // real compression vs. 4 bits/symbol naive.
        assert!(bytes.len() * 8 < symbols.len() * 2, "len {}", bytes.len());
    }

    #[test]
    fn uniform_distribution_roundtrip() {
        let symbols: Vec<u32> = (0..4096).map(|i| (i % 256) as u32).collect();
        let bytes = encode_symbols(&symbols, 256);
        assert_eq!(decode_symbols(&bytes).unwrap(), symbols);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = vec![5u64, 9, 12, 13, 16, 45, 0, 3];
        let lens = code_lengths(&freqs, 15);
        let codes = canonical_codes(&lens);
        for i in 0..freqs.len() {
            for j in 0..freqs.len() {
                if i == j || lens[i] == 0 || lens[j] == 0 || lens[i] > lens[j] {
                    continue;
                }
                let prefix = codes[j] >> (lens[j] - lens[i]);
                assert!(
                    !(prefix == codes[i]),
                    "code {i} is a prefix of code {j}"
                );
            }
        }
    }

    #[test]
    fn huge_alphabets_terminate_and_roundtrip() {
        // Regression: > 2^15 distinct symbols cannot fit a depth-15 code
        // (Kraft); code_lengths must raise the depth instead of looping
        // forever, and the (5-bit) length serialization must carry it.
        let n = 50_000u32;
        let symbols: Vec<u32> = (0..n).collect(); // all distinct
        let bytes = encode_symbols(&symbols, n as usize);
        assert_eq!(decode_symbols(&bytes).unwrap(), symbols);
        let mut freqs = vec![1u64; n as usize];
        freqs[0] = 1 << 40; // skew it, too
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9);
        assert!(lens.iter().all(|&l| l <= 31));
    }

    #[test]
    fn corrupt_stream_is_error_not_panic() {
        let symbols: Vec<u32> = (0..100).map(|i| (i % 5) as u32).collect();
        let mut bytes = encode_symbols(&symbols, 5);
        let last = bytes.len() - 1;
        bytes.truncate(last);
        let _ = decode_symbols(&bytes); // must not panic
    }
}
