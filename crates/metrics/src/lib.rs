//! Quality and rate metrics used throughout the paper's evaluation.
//!
//! * RMSE, PSNR (range-referenced, as is conventional for scientific data),
//!   maximum point-wise error.
//! * **Accuracy gain** (Eq. 2, §V-B): `gain = log2(σ/E) − R`, where `σ` is
//!   the standard deviation of the original data, `E` the RMSE and `R` the
//!   bitrate in bits per point. It folds rate and distortion into a single
//!   number ("the amount of information inferred by a compressor that need
//!   not be stored") and flattens the 6.02 dB/bit slope of SNR plots.
//! * Table I's `idx ↔ tolerance` translation helpers.

/// Root-mean-square error between two equal-length slices.
pub fn rmse(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    if original.is_empty() {
        return 0.0;
    }
    let sum: f64 = original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    (sum / original.len() as f64).sqrt()
}

/// Maximum point-wise absolute error — the quantity SPERR's PWE mode
/// bounds.
pub fn max_pwe(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// `max − min` of a slice.
pub fn data_range(data: &[f64]) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        0.0
    } else {
        hi - lo
    }
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    let var = data.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / data.len() as f64;
    var.sqrt()
}

/// Peak signal-to-noise ratio in dB, referenced to the data range:
/// `PSNR = 20·log10(range / rmse)`. Returns `f64::INFINITY` for a perfect
/// reconstruction.
pub fn psnr(original: &[f64], reconstructed: &[f64]) -> f64 {
    let e = rmse(original, reconstructed);
    if e == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (data_range(original) / e).log10()
}

/// Signal-to-noise ratio in dB referenced to the signal's standard
/// deviation: `SNR = 20·log10(σ / rmse)`.
pub fn snr(original: &[f64], reconstructed: &[f64]) -> f64 {
    let e = rmse(original, reconstructed);
    if e == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (std_dev(original) / e).log10()
}

/// Bitrate in bits per point.
pub fn bpp(compressed_bytes: usize, num_points: usize) -> f64 {
    assert!(num_points > 0);
    compressed_bytes as f64 * 8.0 / num_points as f64
}

/// Accuracy gain (Eq. 2): `log2(σ/E) − R`. `sigma` is the original data's
/// standard deviation, `e` the RMSE, `rate` the bitrate in BPP. Higher is
/// better; returns `f64::INFINITY` for zero error.
pub fn accuracy_gain(sigma: f64, e: f64, rate: f64) -> f64 {
    if e == 0.0 {
        return f64::INFINITY;
    }
    (sigma / e).log2() - rate
}

/// Convenience: accuracy gain computed from raw slices and compressed size.
pub fn accuracy_gain_of(original: &[f64], reconstructed: &[f64], compressed_bytes: usize) -> f64 {
    accuracy_gain(
        std_dev(original),
        rmse(original, reconstructed),
        bpp(compressed_bytes, original.len()),
    )
}

/// Table I: translate a tolerance label `idx` into an absolute PWE
/// tolerance for a field with the given `range`: `t = range / 2^idx`.
pub fn tolerance_for_idx(range: f64, idx: u32) -> f64 {
    range / f64::exp2(idx as f64)
}

/// The paper's TTHRESH mapping (§VI-C): at tolerance label `idx`,
/// prescribe `PSNR = 20·log10(2) · idx` (halving RMSE per idx increment).
pub fn psnr_target_for_idx(idx: u32) -> f64 {
    20.0 * std::f64::consts::LOG10_2 * idx as f64
}

/// Accuracy gain relates to SNR by `gain = SNR/(20·log10 2) − R ≈ SNR/6.02 − R`
/// (§V-B). Exposed for cross-checking in tests and the harness.
pub fn gain_from_snr(snr_db: f64, rate: f64) -> f64 {
    snr_db / (20.0 * std::f64::consts::LOG10_2) - rate
}

/// Mean structural similarity (SSIM) over non-overlapping 8³ windows of a
/// row-major 3D field — the domain-oriented metric the paper's §VI-C
/// points to for use-case-specific evaluation ("Evaluations using more
/// domain-specific metrics (e.g., SSIM) are likely necessary"). Uses the
/// standard stabilizers `C1 = (0.01·range)²`, `C2 = (0.03·range)²`.
/// Returns 1.0 for identical inputs; degrades toward 0 (or negative for
/// anti-correlated structure).
pub fn ssim_3d(original: &[f64], reconstructed: &[f64], dims: [usize; 3]) -> f64 {
    assert_eq!(original.len(), dims.iter().product::<usize>());
    assert_eq!(original.len(), reconstructed.len());
    const W: usize = 8;
    let range = data_range(original);
    if range == 0.0 {
        return if original == reconstructed { 1.0 } else { 0.0 };
    }
    let c1 = (0.01 * range) * (0.01 * range);
    let c2 = (0.03 * range) * (0.03 * range);

    let mut total = 0.0;
    let mut windows = 0usize;
    let mut z0 = 0;
    while z0 < dims[2] {
        let z1 = (z0 + W).min(dims[2]);
        let mut y0 = 0;
        while y0 < dims[1] {
            let y1 = (y0 + W).min(dims[1]);
            let mut x0 = 0;
            while x0 < dims[0] {
                let x1 = (x0 + W).min(dims[0]);
                // Window statistics.
                let mut n = 0.0;
                let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
                for z in z0..z1 {
                    for y in y0..y1 {
                        for x in x0..x1 {
                            let i = x + dims[0] * (y + dims[1] * z);
                            let a = original[i];
                            let b = reconstructed[i];
                            n += 1.0;
                            sa += a;
                            sb += b;
                            saa += a * a;
                            sbb += b * b;
                            sab += a * b;
                        }
                    }
                }
                let ma = sa / n;
                let mb = sb / n;
                let va = (saa / n - ma * ma).max(0.0);
                let vb = (sbb / n - mb * mb).max(0.0);
                let cov = sab / n - ma * mb;
                let ssim = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                    / ((ma * ma + mb * mb + c1) * (va + vb + c2));
                total += ssim;
                windows += 1;
                x0 += W;
            }
            y0 += W;
        }
        z0 += W;
    }
    total / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_pwe_basic() {
        assert_eq!(max_pwe(&[1.0, 5.0, -2.0], &[1.5, 5.0, -4.0]), 2.0);
    }

    #[test]
    fn psnr_of_known_case() {
        // range 10, rmse 0.1 -> psnr = 20 log10(100) = 40 dB
        let orig = vec![0.0, 10.0];
        let rec = vec![0.1, 10.1];
        assert!((psnr(&orig, &rec) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_reconstruction_is_infinite_psnr() {
        assert_eq!(psnr(&[1.0, 2.0], &[1.0, 2.0]), f64::INFINITY);
    }

    #[test]
    fn accuracy_gain_matches_snr_identity() {
        // gain = SNR/(20 log10 2) − R must agree with log2(σ/E) − R.
        let orig: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let rec: Vec<f64> = orig.iter().map(|v| v + 0.001).collect();
        let rate = 2.5;
        let g1 = accuracy_gain(std_dev(&orig), rmse(&orig, &rec), rate);
        let g2 = gain_from_snr(snr(&orig, &rec), rate);
        assert!((g1 - g2).abs() < 1e-9, "{g1} vs {g2}");
    }

    #[test]
    fn each_extra_bit_halves_error_keeps_gain_flat() {
        // §VI-C: on the plateau, one extra bit halves E, so gain is flat.
        let sigma = 1.0;
        let g1 = accuracy_gain(sigma, 0.01, 4.0);
        let g2 = accuracy_gain(sigma, 0.005, 5.0);
        assert!((g1 - g2).abs() < 1e-12);
    }

    #[test]
    fn table1_translation() {
        // idx = 10 -> roughly one thousandth of the range.
        let t = tolerance_for_idx(1.0, 10);
        assert!((t - 1.0 / 1024.0).abs() < 1e-15);
        // idx = 20 -> about 1e-6 of the range.
        assert!((tolerance_for_idx(1.0, 20) * 1e6 - 0.9536743).abs() < 1e-6);
    }

    #[test]
    fn tthresh_psnr_mapping() {
        // §VI-D: idx = 20 -> 120.41 dB, idx = 40 -> 240.82 dB.
        assert!((psnr_target_for_idx(20) - 120.41).abs() < 0.01);
        assert!((psnr_target_for_idx(40) - 240.82).abs() < 0.01);
    }

    #[test]
    fn bpp_accounting() {
        assert_eq!(bpp(1000, 8000), 1.0);
    }

    #[test]
    fn std_dev_constant_is_zero() {
        assert_eq!(std_dev(&[5.0; 10]), 0.0);
    }

    #[test]
    fn ssim_identity_is_one() {
        let dims = [12usize, 10, 6];
        let a: Vec<f64> = (0..720).map(|i| (i as f64 * 0.1).sin()).collect();
        assert!((ssim_3d(&a, &a, dims) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_degrades_with_noise() {
        let dims = [16usize, 16, 16];
        let a: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.05).sin()).collect();
        let small: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + if i % 2 == 0 { 1e-3 } else { -1e-3 }).collect();
        let big: Vec<f64> = a.iter().enumerate().map(|(i, v)| v + if i % 2 == 0 { 0.5 } else { -0.5 }).collect();
        let s_small = ssim_3d(&a, &small, dims);
        let s_big = ssim_3d(&a, &big, dims);
        assert!(s_small > s_big, "{s_small} vs {s_big}");
        assert!(s_small > 0.99);
        // Heavy alternating noise adds uncorrelated variance: a clear,
        // strictly lower score (exact value depends on window statistics).
        assert!(s_big < 0.93, "{s_big}");
    }

    #[test]
    fn ssim_constant_fields() {
        let dims = [4usize, 4, 4];
        let a = vec![3.0; 64];
        assert_eq!(ssim_3d(&a, &a, dims), 1.0);
        let b = vec![4.0; 64];
        assert_eq!(ssim_3d(&a, &b, dims), 0.0);
    }
}
