//! The pre-overhaul SPECK encoder, kept verbatim as a differential
//! oracle (mirroring `wavelet::reference` for the lifting scheme).
//!
//! This implementation does everything the slow, obviously-correct way:
//! one [`BitWriter::put_bit`] per output bit with a per-bit budget check,
//! a [`MaxPyramid::region_max`] query per significance test, and
//! take-and-rebuild LIS buckets. The production [`crate::encode`] must
//! emit **byte-identical** streams and identical bit-type counters for
//! every input — `sperr-conformance` and the crate's property tests
//! enforce this. Do not optimize this file; its value is being boring.

use crate::coder::{quantize_all, EncodedSpeck, Termination};
use crate::pyramid::MaxPyramid;
use crate::set::SetS;
use sperr_bitstream::BitWriter;
use sperr_simd::Float;

/// Signals that the bit budget has been exhausted; unwinds the pass.
struct Stop;

struct Encoder<'a, const D: usize> {
    dims: [usize; D],
    k: &'a [u64],
    negative: &'a [bool],
    pyramid: &'a MaxPyramid<'a, u64, D>,
    lis: Vec<Vec<SetS<D>>>,
    lsp: Vec<u32>,
    lsp_new: Vec<u32>,
    out: BitWriter,
    budget: usize,
    significance_bits: usize,
    sign_bits: usize,
    refinement_bits: usize,
}

impl<'a, const D: usize> Encoder<'a, D> {
    #[inline]
    fn emit(&mut self, bit: bool) -> Result<(), Stop> {
        if self.out.len_bits() >= self.budget {
            return Err(Stop);
        }
        self.out.put_bit(bit);
        Ok(())
    }

    fn push_lis(&mut self, set: SetS<D>) {
        let lvl = set.part_level as usize;
        if self.lis.len() <= lvl {
            self.lis.resize_with(lvl + 1, Vec::new);
        }
        self.lis[lvl].push(set);
    }

    fn sorting_pass(&mut self, n: u32) -> Result<(), Stop> {
        // Smallest sets first (paper, Listing 2: "in increasing order of
        // their sizes"): iterate buckets from the deepest partition level.
        for lvl in (0..self.lis.len()).rev() {
            let bucket = std::mem::take(&mut self.lis[lvl]);
            for set in bucket {
                self.process_s(set, n)?;
            }
        }
        Ok(())
    }

    fn process_s(&mut self, set: SetS<D>, n: u32) -> Result<(), Stop> {
        let max = if set.is_pixel() {
            self.k[set.pixel_index(self.dims)]
        } else {
            self.pyramid.region_max(set.origin, set.len)
        };
        let sig = (max >> n) != 0;
        self.emit(sig)?;
        self.significance_bits += 1;
        if sig {
            if set.is_pixel() {
                let idx = set.pixel_index(self.dims);
                self.emit(self.negative[idx])?;
                self.sign_bits += 1;
                self.lsp_new.push(idx as u32);
            } else {
                self.code_s(&set, n)?;
            }
            // Significant sets are consumed (not returned to the LIS).
        } else {
            self.push_lis(set);
        }
        Ok(())
    }

    fn code_s(&mut self, set: &SetS<D>, n: u32) -> Result<(), Stop> {
        let mut children = [*set; 8];
        let mut count = 0usize;
        set.split(|c| {
            children[count] = c;
            count += 1;
        });
        for child in children.iter().take(count) {
            self.process_s(*child, n)?;
        }
        Ok(())
    }

    fn refinement_pass(&mut self, n: u32) -> Result<(), Stop> {
        for i in 0..self.lsp.len() {
            let idx = self.lsp[i] as usize;
            let bit = (self.k[idx] >> n) & 1 == 1;
            self.emit(bit)?;
            self.refinement_bits += 1;
        }
        // Newly significant points join the LSP *after* the refinement pass
        // (their bit `n` is implied by the significance test itself).
        let new = std::mem::take(&mut self.lsp_new);
        self.lsp.extend(new);
        Ok(())
    }
}

/// Encodes `coeffs` exactly like [`crate::encode`], through the
/// pre-overhaul bit-at-a-time path. Differential-oracle use only.
pub fn encode<T: Float, const D: usize>(
    coeffs: &[T],
    dims: [usize; D],
    q: f64,
    term: Termination,
) -> EncodedSpeck {
    assert!(q > 0.0 && q.is_finite(), "quantization step must be positive");
    let n_total: usize = dims.iter().product();
    assert_eq!(coeffs.len(), n_total, "coeffs/dims mismatch");
    assert!(n_total as u64 <= u32::MAX as u64, "domain too large for u32 indices");

    let (k, negative) = quantize_all(coeffs, q);
    let pyramid = MaxPyramid::build(&k, dims);
    let max_k = pyramid.global_max();
    if max_k == 0 {
        return EncodedSpeck {
            stream: Vec::new(),
            num_planes: 0,
            bits_used: 0,
            significance_bits: 0,
            sign_bits: 0,
            refinement_bits: 0,
            sets_split: 0,
            zero_runs: 0,
        };
    }
    let num_planes = (64 - max_k.leading_zeros()) as u8;

    let budget = match term {
        Termination::Quality => usize::MAX,
        Termination::BitBudget(b) => b,
    };
    let mut enc = Encoder {
        dims,
        k: &k,
        negative: &negative,
        pyramid: &pyramid,
        lis: vec![vec![SetS::root(dims)]],
        lsp: Vec::new(),
        lsp_new: Vec::new(),
        out: BitWriter::with_capacity_bits(n_total / 2),
        budget,
        significance_bits: 0,
        sign_bits: 0,
        refinement_bits: 0,
    };

    'planes: for n in (0..num_planes as u32).rev() {
        if enc.sorting_pass(n).is_err() {
            break 'planes;
        }
        if enc.refinement_pass(n).is_err() {
            break 'planes;
        }
    }

    let bits_used = enc.out.len_bits();
    EncodedSpeck {
        significance_bits: enc.significance_bits,
        sign_bits: enc.sign_bits,
        refinement_bits: enc.refinement_bits,
        // Structural statistics are a production-path concern; the oracle
        // only compares streams and bit-type counters.
        sets_split: 0,
        zero_runs: 0,
        stream: enc.out.into_bytes(),
        num_planes,
        bits_used,
    }
}
