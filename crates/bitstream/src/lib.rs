//! Bit-granular I/O substrate for the SPERR reproduction.
//!
//! SPERR's coders (SPECK and the outlier coder) emit *individual bits*:
//! set-significance flags, signs, and refinement directions. "Every eight
//! bits are then packed into a byte in the output bitstream" (paper,
//! §IV-B). This crate provides that packing plus the byte-level helpers
//! used by container headers.
//!
//! Bit order within a byte is LSB-first: the first bit written occupies the
//! least-significant bit of the first byte. Multi-bit integers are written
//! least-significant-bit first as well, so a value round-trips through
//! [`BitWriter::put_bits`] / [`BitReader::get_bits`] with the same width.
//!
//! All readers are non-panicking: reading past the end yields
//! [`Error::UnexpectedEof`], which the SPECK decoder uses to detect the end
//! of an embedded (truncated) stream gracefully.

mod byteio;
mod error;
mod reader;
mod writer;

pub use byteio::{ByteReader, ByteWriter};
pub use error::Error;
pub use reader::BitReader;
pub use writer::BitWriter;

/// Result alias for bitstream operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.len_bits(), pattern.len());
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2); // 10 bits -> 2 bytes

        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn first_bit_is_lsb_of_first_byte() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bit(false);
        w.put_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b0000_0101]);
    }

    #[test]
    fn multibit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0xDEAD_BEEF, 32);
        w.put_bits(0x3, 2);
        w.put_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(32).unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_bits(2).unwrap(), 0x3);
        assert_eq!(r.get_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn zero_width_bits() {
        let mut w = BitWriter::new();
        w.put_bits(123, 0);
        assert_eq!(w.len_bits(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(0).unwrap(), 0);
    }

    #[test]
    fn eof_is_reported() {
        let bytes = vec![0xFF];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert!(matches!(r.get_bit(), Err(Error::UnexpectedEof)));
    }

    #[test]
    fn remaining_bits_accounting() {
        let bytes = vec![0xAA, 0x55];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 16);
        r.get_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 11);
        assert_eq!(r.position_bits(), 5);
    }

    #[test]
    fn writer_padding_is_zero() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x01]);
    }

    #[test]
    fn align_to_byte() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.align_to_byte();
        assert_eq!(w.len_bits(), 8);
        w.put_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x01, 0x01]);

        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().unwrap());
        r.align_to_byte();
        assert!(r.get_bit().unwrap());
    }

    #[test]
    fn byteio_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0x12);
        w.put_u16(0x3456);
        w.put_u32(0x789A_BCDE);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(std::f64::consts::PI);
        w.put_bytes(b"sperr");
        let buf = w.into_bytes();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0x12);
        assert_eq!(r.get_u16().unwrap(), 0x3456);
        assert_eq!(r.get_u32().unwrap(), 0x789A_BCDE);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_bytes(5).unwrap(), b"sperr");
        assert!(r.is_empty());
        assert!(matches!(r.get_u8(), Err(Error::UnexpectedEof)));
    }

    #[test]
    fn byteio_eof_mid_value() {
        let buf = [0u8; 3];
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.get_u32(), Err(Error::UnexpectedEof)));
        // A failed read must not consume input.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u16().unwrap(), 0);
    }

    #[test]
    fn writer_reserve_estimates() {
        let mut w = BitWriter::with_capacity_bits(1 << 16);
        for i in 0..(1 << 16) {
            w.put_bit(i % 3 == 0);
        }
        assert_eq!(w.len_bits(), 1 << 16);
        assert_eq!(w.into_bytes().len(), (1 << 16) / 8);
    }
}
