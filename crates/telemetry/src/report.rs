//! Drained telemetry data and its aggregations: per-label CPU vs. wall
//! time, counter totals, and per-worker busy time. These types compile
//! (and stay usable, as empties) whether or not the `enabled` feature is
//! on, so exporters and printers downstream need no `cfg` of their own.

use std::collections::BTreeMap;

/// Everything recorded in one `start()`..`stop()` session.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Session open, nanoseconds on the process-wide monotonic clock.
    pub t0_ns: u64,
    /// Session close on the same clock.
    pub t1_ns: u64,
    /// One timeline track per recorded thread, workers first.
    pub tracks: Vec<Track>,
    /// Events discarded because some ring filled up.
    pub dropped: u64,
}

/// One thread's timeline.
#[derive(Debug, Clone)]
pub struct Track {
    /// "worker N" for pool workers (N = slot, caller is 0), else "thread N".
    pub name: String,
    /// Worker slot, when the thread announced one via `set_worker`.
    pub worker: Option<usize>,
    /// Completed spans, ordered by start time.
    pub spans: Vec<Span>,
    /// Raw counter events in recording order.
    pub counters: Vec<CounterEvent>,
}

/// A completed (or forcibly closed at session end) span.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub label: &'static str,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth within the track (0 = top level).
    pub depth: u16,
    /// Optional numeric payload (e.g. bitplane index, axis level).
    pub value: Option<u64>,
}

/// A single counter increment.
#[derive(Debug, Clone, Copy)]
pub struct CounterEvent {
    pub label: &'static str,
    pub t_ns: u64,
    pub value: u64,
}

/// Per-label span aggregate across all tracks.
#[derive(Debug, Clone)]
pub struct LabelSummary {
    pub label: &'static str,
    /// Number of spans with this label.
    pub count: usize,
    /// Sum of span durations — total CPU time across workers.
    pub cpu_ns: u64,
    /// Union of span intervals — wall-clock footprint of the label.
    /// `cpu_ns / wall_ns` approximates the label's effective parallelism.
    pub wall_ns: u64,
}

impl Report {
    /// True when nothing was recorded (always the case without the
    /// `enabled` feature).
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Session length on the monotonic clock.
    pub fn wall_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }

    /// Total recorded events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.spans.len() + t.counters.len()).sum()
    }

    /// Whether any track carries a span with this label.
    pub fn has_span(&self, label: &str) -> bool {
        self.tracks.iter().any(|t| t.spans.iter().any(|s| s.label == label))
    }

    /// Counter totals, aggregated across tracks, sorted by label.
    pub fn counter_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for track in &self.tracks {
            for c in &track.counters {
                *totals.entry(c.label).or_insert(0) += c.value;
            }
        }
        totals.into_iter().collect()
    }

    /// Per-label CPU (summed) and wall (interval union) time, sorted by
    /// label.
    pub fn span_summary(&self) -> Vec<LabelSummary> {
        let mut by_label: BTreeMap<&'static str, (usize, u64, Vec<(u64, u64)>)> = BTreeMap::new();
        for track in &self.tracks {
            for s in &track.spans {
                let entry = by_label.entry(s.label).or_default();
                entry.0 += 1;
                entry.1 += s.dur_ns;
                entry.2.push((s.start_ns, s.start_ns.saturating_add(s.dur_ns)));
            }
        }
        by_label
            .into_iter()
            .map(|(label, (count, cpu_ns, mut intervals))| LabelSummary {
                label,
                count,
                cpu_ns,
                wall_ns: interval_union_ns(&mut intervals),
            })
            .collect()
    }

    /// Per-track busy time: the union of each track's top-level spans.
    /// For pool workers that is exactly the batch-execution timeline, so
    /// `busy / wall` is the worker's utilization.
    pub fn track_busy_ns(&self) -> Vec<(String, u64)> {
        self.tracks
            .iter()
            .map(|t| {
                let mut intervals: Vec<(u64, u64)> = t
                    .spans
                    .iter()
                    .filter(|s| s.depth == 0)
                    .map(|s| (s.start_ns, s.start_ns.saturating_add(s.dur_ns)))
                    .collect();
                (t.name.clone(), interval_union_ns(&mut intervals))
            })
            .collect()
    }

    /// Renders the report as Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        crate::chrome::render(self)
    }
}

/// Total length covered by a set of possibly-overlapping intervals.
fn interval_union_ns(intervals: &mut Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut current: Option<(u64, u64)> = None;
    for &(start, end) in intervals.iter() {
        match current {
            Some((cur_start, cur_end)) if start <= cur_end => {
                current = Some((cur_start, cur_end.max(end)));
            }
            Some((cur_start, cur_end)) => {
                total += cur_end - cur_start;
                current = Some((start, end));
            }
            None => current = Some((start, end)),
        }
    }
    if let Some((cur_start, cur_end)) = current {
        total += cur_end - cur_start;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(label: &'static str, start_ns: u64, dur_ns: u64, depth: u16) -> Span {
        Span { label, start_ns, dur_ns, depth, value: None }
    }

    fn track(name: &str, worker: Option<usize>, spans: Vec<Span>) -> Track {
        Track { name: name.to_string(), worker, spans, counters: Vec::new() }
    }

    #[test]
    fn union_merges_overlaps_and_keeps_gaps() {
        let mut iv = vec![(0, 10), (5, 15), (20, 30), (30, 35)];
        assert_eq!(interval_union_ns(&mut iv), 15 + 15);
        let mut empty: Vec<(u64, u64)> = Vec::new();
        assert_eq!(interval_union_ns(&mut empty), 0);
    }

    #[test]
    fn summary_separates_cpu_from_wall() {
        // Two workers run the same label fully overlapped: CPU doubles,
        // wall does not.
        let report = Report {
            t0_ns: 0,
            t1_ns: 100,
            tracks: vec![
                track("worker 0", Some(0), vec![span("stage.speck.encode", 10, 50, 0)]),
                track("worker 1", Some(1), vec![span("stage.speck.encode", 10, 50, 0)]),
            ],
            dropped: 0,
        };
        let summary = report.span_summary();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].count, 2);
        assert_eq!(summary[0].cpu_ns, 100);
        assert_eq!(summary[0].wall_ns, 50);
    }

    #[test]
    fn busy_time_uses_top_level_spans_only() {
        let report = Report {
            t0_ns: 0,
            t1_ns: 100,
            tracks: vec![track(
                "worker 0",
                Some(0),
                vec![span("pool.batch", 0, 40, 0), span("wavelet.fwd.x", 5, 10, 1)],
            )],
            dropped: 0,
        };
        assert_eq!(report.track_busy_ns(), vec![("worker 0".to_string(), 40)]);
    }
}
