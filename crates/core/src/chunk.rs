//! Volume chunking (§III-D): a big input volume is divided into smaller
//! chunks, each processed independently (and in parallel). The chunk size
//! need not divide the volume dimensions — boundary chunks are simply
//! smaller.

/// One chunk: offset and extent within the full volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Offset of the chunk's origin in the volume.
    pub offset: [usize; 3],
    /// Extent of the chunk.
    pub dims: [usize; 3],
}

impl ChunkSpec {
    /// Number of points in the chunk.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the chunk is empty (never produced by [`chunk_grid`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Partitions `volume_dims` into a grid of chunks of size at most
/// `chunk_dims`, ordered x-fastest. Always returns at least one chunk for
/// non-empty volumes.
pub fn chunk_grid(volume_dims: [usize; 3], chunk_dims: [usize; 3]) -> Vec<ChunkSpec> {
    assert!(volume_dims.iter().all(|&d| d > 0), "empty volume");
    assert!(chunk_dims.iter().all(|&d| d > 0), "empty chunk dims");
    let counts = [
        volume_dims[0].div_ceil(chunk_dims[0]),
        volume_dims[1].div_ceil(chunk_dims[1]),
        volume_dims[2].div_ceil(chunk_dims[2]),
    ];
    let mut out = Vec::with_capacity(counts.iter().product());
    for cz in 0..counts[2] {
        for cy in 0..counts[1] {
            for cx in 0..counts[0] {
                let offset = [cx * chunk_dims[0], cy * chunk_dims[1], cz * chunk_dims[2]];
                let dims = [
                    chunk_dims[0].min(volume_dims[0] - offset[0]),
                    chunk_dims[1].min(volume_dims[1] - offset[1]),
                    chunk_dims[2].min(volume_dims[2] - offset[2]),
                ];
                out.push(ChunkSpec { offset, dims });
            }
        }
    }
    out
}

/// Copies a chunk out of the row-major volume into a dense buffer.
pub fn extract_chunk<T: Copy>(volume: &[T], volume_dims: [usize; 3], spec: &ChunkSpec) -> Vec<T> {
    let mut out = Vec::with_capacity(spec.len());
    extract_chunk_into(volume, volume_dims, spec, &mut out);
    out
}

/// [`extract_chunk`] into a reusable buffer (cleared first, capacity kept)
/// — the per-chunk hot path extracts into a per-worker buffer instead of
/// allocating.
pub fn extract_chunk_into<T: Copy>(
    volume: &[T],
    volume_dims: [usize; 3],
    spec: &ChunkSpec,
    out: &mut Vec<T>,
) {
    out.clear();
    out.reserve(spec.len());
    for z in 0..spec.dims[2] {
        for y in 0..spec.dims[1] {
            let row_start = spec.offset[0]
                + volume_dims[0] * ((spec.offset[1] + y) + volume_dims[1] * (spec.offset[2] + z));
            out.extend_from_slice(&volume[row_start..row_start + spec.dims[0]]);
        }
    }
}

/// Writes a dense chunk buffer back into the row-major volume.
pub fn insert_chunk<T: Copy>(
    volume: &mut [T],
    volume_dims: [usize; 3],
    spec: &ChunkSpec,
    chunk: &[T],
) {
    debug_assert_eq!(chunk.len(), spec.len());
    for z in 0..spec.dims[2] {
        for y in 0..spec.dims[1] {
            let row_start = spec.offset[0]
                + volume_dims[0] * ((spec.offset[1] + y) + volume_dims[1] * (spec.offset[2] + z));
            let src = spec.dims[0] * (y + spec.dims[1] * z);
            volume[row_start..row_start + spec.dims[0]]
                .copy_from_slice(&chunk[src..src + spec.dims[0]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let chunks = chunk_grid([32, 32, 32], [16, 16, 16]);
        assert_eq!(chunks.len(), 8);
        assert!(chunks.iter().all(|c| c.dims == [16, 16, 16]));
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 32 * 32 * 32);
    }

    #[test]
    fn non_divisible_boundary_chunks() {
        let chunks = chunk_grid([40, 16, 10], [16, 16, 16]);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].dims, [16, 16, 10]);
        assert_eq!(chunks[2].dims, [8, 16, 10]);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 40 * 16 * 10);
    }

    #[test]
    fn chunk_larger_than_volume() {
        let chunks = chunk_grid([10, 10, 10], [256, 256, 256]);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].dims, [10, 10, 10]);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let dims = [7usize, 5, 4];
        let volume: Vec<f64> = (0..140).map(|i| i as f64).collect();
        let mut rebuilt = vec![0.0; 140];
        for spec in chunk_grid(dims, [3, 2, 3]) {
            let chunk = extract_chunk(&volume, dims, &spec);
            insert_chunk(&mut rebuilt, dims, &spec, &chunk);
        }
        assert_eq!(volume, rebuilt);
    }

    #[test]
    fn extract_respects_offsets() {
        let dims = [4usize, 4, 1];
        let volume: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let spec = ChunkSpec { offset: [2, 1, 0], dims: [2, 2, 1] };
        assert_eq!(extract_chunk(&volume, dims, &spec), vec![6.0, 7.0, 10.0, 11.0]);
    }
}
