//! Chrome trace-event JSON exporter. The output loads directly in
//! Perfetto (ui.perfetto.dev) or chrome://tracing: one `tid` per
//! recorded track, `X` (complete) events for spans, `C` events for
//! counters, and `M` metadata events naming the tracks. Timestamps are
//! microseconds relative to the session start, as the format requires.

use crate::report::Report;

pub(crate) fn render(report: &Report) -> String {
    let mut out = String::with_capacity(256 + report.event_count() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    push_event(&mut out, &mut first, |e| {
        e.push_str("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",");
        e.push_str("\"args\":{\"name\":\"sperr\"}}");
    });

    for (tid, track) in report.tracks.iter().enumerate() {
        push_event(&mut out, &mut first, |e| {
            e.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape(&track.name)
            ));
        });
        push_event(&mut out, &mut first, |e| {
            // Order tracks workers-first in the viewer, matching the report.
            let sort_index = track.worker.map(|w| w as i64).unwrap_or(1_000_000 + tid as i64);
            e.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{sort_index}}}}}",
            ));
        });

        for span in &track.spans {
            push_event(&mut out, &mut first, |e| {
                e.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"sperr\",\"ts\":{},\"dur\":{}",
                    escape(span.label),
                    micros(span.start_ns.saturating_sub(report.t0_ns)),
                    micros(span.dur_ns),
                ));
                if let Some(value) = span.value {
                    e.push_str(&format!(",\"args\":{{\"v\":{value}}}"));
                }
                e.push('}');
            });
        }
        for counter in &track.counters {
            push_event(&mut out, &mut first, |e| {
                e.push_str(&format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"name\":\"{}\",\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    escape(counter.label),
                    micros(counter.t_ns.saturating_sub(report.t0_ns)),
                    counter.value,
                ));
            });
        }
    }

    out.push_str("]}");
    out
}

fn push_event(out: &mut String, first: &mut bool, write: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write(out);
}

/// Nanoseconds → microseconds with sub-µs precision preserved.
fn micros(ns: u64) -> String {
    if ns % 1000 == 0 {
        format!("{}", ns / 1000)
    } else {
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }
}

fn escape(s: &str) -> String {
    let mut escaped = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use crate::report::{CounterEvent, Report, Span, Track};

    #[test]
    fn renders_all_event_kinds() {
        let report = Report {
            t0_ns: 1_000,
            t1_ns: 100_000,
            tracks: vec![Track {
                name: "worker 0".to_string(),
                worker: Some(0),
                spans: vec![Span {
                    label: "stage.speck.encode",
                    start_ns: 2_500,
                    dur_ns: 10_000,
                    depth: 0,
                    value: Some(7),
                }],
                counters: vec![CounterEvent { label: "speck.sets_split", t_ns: 3_000, value: 42 }],
            }],
            dropped: 0,
        };
        let json = report.chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker 0\""));
        // 2500 ns after t0=1000 ns → 1.5 µs.
        assert!(json.contains("\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"stage.speck.encode\",\"cat\":\"sperr\",\"ts\":1.500,\"dur\":10"));
        assert!(json.contains("\"args\":{\"v\":7}"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":42}"));
    }

    #[test]
    fn empty_report_is_still_valid_json_shape() {
        let json = Report::default().chrome_trace();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn escapes_label_metacharacters() {
        let report = Report {
            t0_ns: 0,
            t1_ns: 10,
            tracks: vec![Track {
                name: "a\"b\\c".to_string(),
                worker: None,
                spans: Vec::new(),
                counters: Vec::new(),
            }],
            dropped: 0,
        };
        let json = report.chrome_trace();
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
