//! Property tests for the SPECK coder: the quantization-error contract and
//! the embedded-stream property must hold for arbitrary inputs.

use proptest::prelude::*;
use sperr_speck::{decode, encode, Termination};

fn field_strategy() -> impl Strategy<Value = (Vec<f64>, [usize; 3])> {
    (1usize..=10, 1usize..=10, 1usize..=6).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        prop::collection::vec(-1e6f64..1e6f64, n..=n).prop_map(move |v| (v, [nx, ny, nz]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quality_mode_bounds_error_by_q((coeffs, dims) in field_strategy(),
                                      q in 1e-3f64..1e3) {
        let enc = encode(&coeffs, dims, q, Termination::Quality);
        let rec = decode(&enc.stream, dims, q, enc.num_planes).unwrap();
        for (c, r) in coeffs.iter().zip(&rec) {
            // Dead-zone values reconstruct as 0 (error < q); coded values
            // reconstruct mid-riser (error <= q/2).
            prop_assert!((c - r).abs() < q * (1.0 + 1e-12),
                         "c={c} r={r} q={q}");
            if c.abs() >= q {
                prop_assert!((c - r).abs() <= q / 2.0 * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn zeros_decode_to_zeros((coeffs, dims) in field_strategy(), q in 1e-3f64..1e3) {
        // Exact-zero coefficients must come back as exact zeros.
        let mut coeffs = coeffs;
        for (i, c) in coeffs.iter_mut().enumerate() {
            if i % 3 == 0 { *c = 0.0; }
        }
        let enc = encode(&coeffs, dims, q, Termination::Quality);
        let rec = decode::<f64, 3>(&enc.stream, dims, q, enc.num_planes).unwrap();
        for (i, (&c, &r)) in coeffs.iter().zip(&rec).enumerate() {
            if c == 0.0 {
                prop_assert_eq!(r, 0.0, "idx {}", i);
            }
        }
    }

    #[test]
    fn every_prefix_decodes((coeffs, dims) in field_strategy(), q in 1e-2f64..1e2) {
        let enc = encode(&coeffs, dims, q, Termination::Quality);
        // Every byte-prefix must decode to a full-size result without error.
        let step = (enc.stream.len() / 7).max(1);
        let n: usize = dims.iter().product();
        let mut cut = 0;
        while cut <= enc.stream.len() {
            let rec = decode::<f64, 3>(&enc.stream[..cut], dims, q, enc.num_planes).unwrap();
            prop_assert_eq!(rec.len(), n);
            cut += step;
        }
    }

    #[test]
    fn truncation_at_every_byte_boundary_never_panics((coeffs, dims) in field_strategy(),
                                                      q in 1e-2f64..1e2) {
        // Exhaustive sweep: EVERY proper prefix must decode cleanly (the
        // stream is embedded — truncation means lower quality, not error)
        // and must never panic.
        let enc = encode(&coeffs, dims, q, Termination::Quality);
        let n: usize = dims.iter().product();
        for cut in 0..=enc.stream.len() {
            let rec = decode::<f64, 3>(&enc.stream[..cut], dims, q, enc.num_planes);
            match rec {
                Ok(v) => prop_assert_eq!(v.len(), n),
                Err(_) => prop_assert!(false, "embedded prefix rejected at {}", cut),
            }
        }
    }

    #[test]
    fn corrupted_streams_never_panic((coeffs, dims) in field_strategy(),
                                     q in 1e-2f64..1e2,
                                     pos_seed in any::<u64>(),
                                     planes in 0u8..=64) {
        // Bit flips and adversarial plane counts: any Result is fine.
        let enc = encode(&coeffs, dims, q, Termination::Quality);
        if !enc.stream.is_empty() {
            let mut bad = enc.stream.clone();
            let pos = (pos_seed as usize) % bad.len();
            bad[pos] ^= 1 << (pos_seed % 8);
            let _ = decode::<f64, 3>(&bad, dims, q, enc.num_planes);
        }
        let _ = decode::<f64, 3>(&enc.stream, dims, q, planes);
    }

    #[test]
    fn fast_path_bit_identical_to_reference((coeffs, dims) in field_strategy(),
                                            q in 1e-3f64..1e3,
                                            budget_seed in any::<u64>()) {
        // The word-granular hot path must emit the exact bytes (and bit
        // counters) of the kept bit-at-a-time reference encoder, in both
        // termination modes, for arbitrary inputs — the property that
        // makes the PR 4 overhaul stream-neutral.
        let fast = encode(&coeffs, dims, q, Termination::Quality);
        let slow = sperr_speck::reference::encode(&coeffs, dims, q, Termination::Quality);
        prop_assert_eq!(&fast.stream, &slow.stream);
        prop_assert_eq!(fast.bits_used, slow.bits_used);
        prop_assert_eq!(fast.significance_bits, slow.significance_bits);
        prop_assert_eq!(fast.sign_bits, slow.sign_bits);
        prop_assert_eq!(fast.refinement_bits, slow.refinement_bits);

        let budget = (budget_seed as usize) % (fast.bits_used + 2);
        let fast_b = encode(&coeffs, dims, q, Termination::BitBudget(budget));
        let slow_b = sperr_speck::reference::encode(&coeffs, dims, q, Termination::BitBudget(budget));
        prop_assert_eq!(&fast_b.stream, &slow_b.stream);
        prop_assert_eq!(fast_b.bits_used, slow_b.bits_used);
    }

    #[test]
    fn f32_fast_path_matches_reference_and_bounds_error((coeffs, dims) in field_strategy(),
                                                        q in 1e-2f64..1e2) {
        // f32 instantiation: production == reference bitwise, decode ==
        // encode-side reconstruction, and the quantization-error contract
        // holds up to f32 rounding (quantizing c/q in f32 loses precision
        // once the ratio nears 2^24, so the bound carries a relative term).
        let coeffs32: Vec<f32> = coeffs.iter().map(|&v| v as f32).collect();
        let fast = encode(&coeffs32, dims, q, Termination::Quality);
        let slow = sperr_speck::reference::encode(&coeffs32, dims, q, Termination::Quality);
        prop_assert_eq!(&fast.stream, &slow.stream);
        prop_assert_eq!(fast.bits_used, slow.bits_used);
        let rec: Vec<f32> = decode(&fast.stream, dims, q, fast.num_planes).unwrap();
        let via_fast = sperr_speck::reconstruct_quantized(&coeffs32, q);
        prop_assert_eq!(&rec, &via_fast);
        for (&c, &r) in coeffs32.iter().zip(&rec) {
            let err = (c as f64 - r as f64).abs();
            prop_assert!(err < q * (1.0 + 1e-5) + (c as f64).abs() * 1e-5,
                         "c={c} r={r} q={q}");
        }
    }

    #[test]
    fn budget_prefix_of_quality_stream((coeffs, dims) in field_strategy(), q in 1e-2f64..1e2,
                                       frac in 0.05f64..1.0) {
        // A bit-budget encode must be a strict prefix of the quality-mode
        // stream (same coder state, earlier stop).
        let full = encode(&coeffs, dims, q, Termination::Quality);
        let budget_bits = ((full.bits_used as f64) * frac) as usize;
        let cut = encode(&coeffs, dims, q, Termination::BitBudget(budget_bits));
        prop_assert!(cut.bits_used <= budget_bits.max(0));
        let full_bits = &full.stream;
        let cut_bytes = cut.bits_used / 8;
        prop_assert_eq!(&cut.stream[..cut_bytes], &full_bits[..cut_bytes]);
    }
}
