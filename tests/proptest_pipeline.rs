//! Property tests over the full pipeline: for arbitrary field shapes,
//! contents and tolerances, SPERR's decoded output must satisfy the PWE
//! bound exactly — the paper's central claim.

use proptest::prelude::*;
use sperr_compress_api::{Bound, Field, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};

fn field_strategy() -> impl Strategy<Value = Field> {
    (2usize..=14, 2usize..=14, 1usize..=10).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        prop::collection::vec(-1e5f64..1e5, n..=n)
            .prop_map(move |data| Field::new([nx, ny, nz], data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sperr_pwe_always_holds(field in field_strategy(), idx in 1u32..28,
                              chunk_edge in 4usize..16) {
        let t = field.range() / f64::exp2(idx as f64);
        prop_assume!(t > 0.0);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [chunk_edge, chunk_edge, chunk_edge],
            ..SperrConfig::default()
        });
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let restored = sperr.decompress(&stream).unwrap();
        let e = sperr_metrics::max_pwe(&field.data, &restored.data);
        prop_assert!(e <= t, "max err {} > t {}", e, t);
    }

    #[test]
    fn sperr_stream_is_deterministic(field in field_strategy(), idx in 1u32..20) {
        let t = field.range() / f64::exp2(idx as f64);
        prop_assume!(t > 0.0);
        let sperr = Sperr::new(SperrConfig::default());
        let a = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let b = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sz_like_pwe_always_holds(field in field_strategy(), idx in 1u32..24) {
        let t = field.range() / f64::exp2(idx as f64);
        prop_assume!(t > 0.0);
        let sz = sperr_sz_like::SzLike::default();
        let stream = sz.compress(&field, Bound::Pwe(t)).unwrap();
        let restored = sz.decompress(&stream).unwrap();
        let e = sperr_metrics::max_pwe(&field.data, &restored.data);
        prop_assert!(e <= t);
    }

    #[test]
    fn zfp_like_pwe_always_holds(field in field_strategy(), idx in 1u32..24) {
        let t = field.range() / f64::exp2(idx as f64);
        prop_assume!(t > 0.0);
        let zfp = sperr_zfp_like::ZfpLike::default();
        let stream = zfp.compress(&field, Bound::Pwe(t)).unwrap();
        let restored = zfp.decompress(&stream).unwrap();
        let e = sperr_metrics::max_pwe(&field.data, &restored.data);
        prop_assert!(e <= t);
    }

    #[test]
    fn truncated_sperr_streams_never_panic(field in field_strategy(), idx in 1u32..16,
                                           frac in 0.0f64..1.0) {
        let t = field.range() / f64::exp2(idx as f64);
        prop_assume!(t > 0.0);
        let sperr = Sperr::new(SperrConfig::default());
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let cut = ((stream.len() as f64) * frac) as usize;
        let _ = sperr.decompress(&stream[..cut]); // Err is fine; panic is not
    }

    #[test]
    fn container_header_chunk_table_and_index_roundtrip(field in field_strategy(),
                                                        idx in 1u32..20,
                                                        chunk_edge in 4usize..16,
                                                        lossless in any::<bool>()) {
        // Whatever the shape and chunking, the container must carry the
        // header, chunk table and chunk index faithfully: inspect()
        // recovers them, the per-chunk payload sizes tile the payload
        // region exactly, and verify() confirms every checksum on an
        // undamaged stream.
        let t = field.range() / f64::exp2(idx as f64);
        prop_assume!(t > 0.0);
        let sperr = Sperr::new(SperrConfig {
            chunk_dims: [chunk_edge, chunk_edge, chunk_edge],
            lossless,
            ..SperrConfig::default()
        });
        let stream = sperr.compress(&field, Bound::Pwe(t)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        prop_assert_eq!(info.version, sperr_core::CONTAINER_VERSION);
        // The v3 chunk index must cover every chunk, in offset order,
        // tiling the payload region exactly like the chunk table does.
        let index = info.chunk_index.as_ref().expect("v3 stream carries an index");
        prop_assert_eq!(index.len(), info.n_chunks);
        let mut expect_offset = 0u64;
        for (e, &size) in index.iter().zip(&info.chunk_payload_sizes) {
            prop_assert_eq!(e.offset, expect_offset);
            prop_assert_eq!(e.len as usize, size);
            expect_offset += e.len as u64;
        }
        prop_assert_eq!(info.dims, field.dims);
        prop_assert_eq!(info.chunk_dims, [chunk_edge, chunk_edge, chunk_edge]);
        prop_assert_eq!(info.lossless, lossless);
        let expected_chunks: usize = field
            .dims
            .iter()
            .map(|&d| d.div_ceil(chunk_edge))
            .product();
        prop_assert_eq!(info.n_chunks, expected_chunks);
        prop_assert_eq!(info.chunk_payload_sizes.len(), expected_chunks);
        let payload_total: usize = info.chunk_payload_sizes.iter().sum();
        prop_assert_eq!(payload_total, info.speck_bytes + info.outlier_bytes);
        if !lossless {
            // Raw container: offsets are literal, regions must tile the stream.
            prop_assert_eq!(1 + info.payload_offset + payload_total, stream.len());
        }
        let report = sperr.verify(&stream).unwrap();
        prop_assert!(report.checksummed);
        prop_assert!(report.is_ok(), "clean stream flagged: {:?}", report);
        prop_assert_eq!(report.n_chunks, expected_chunks);
    }
}
