//! Raw binary field I/O: little-endian f32/f64 arrays, the format the
//! SDRBench files (and upstream SPERR's CLI) use.

use crate::args::ScalarType;
use sperr_compress_api::{Field, FieldOf, Precision};
use std::fs;
use std::io;
use std::path::Path;

fn check_size(path: &Path, len: usize, dims: [usize; 3], elem: usize, ty: ScalarType) -> io::Result<usize> {
    let n: usize = dims.iter().product();
    if len != n * elem {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} holds {} bytes but dims {:?} as {:?} need {}",
                path.display(),
                len,
                dims,
                ty,
                n * elem
            ),
        ));
    }
    Ok(n)
}

/// Reads a raw little-endian scalar file into a [`Field`] of the given
/// dims, widening f32 samples to f64 (the legacy ingest path; prefer
/// [`read_field_f32`] for f32 files headed to the native pipeline).
/// Errors if the file size does not match.
pub fn read_field(path: &Path, dims: [usize; 3], ty: ScalarType) -> io::Result<Field> {
    let bytes = fs::read(path)?;
    let elem = match ty {
        ScalarType::F32 => 4,
        ScalarType::F64 => 8,
    };
    let n = check_size(path, bytes.len(), dims, elem, ty)?;
    let mut data = Vec::with_capacity(n);
    match ty {
        ScalarType::F32 => {
            for c in bytes.chunks_exact(4) {
                data.push(f32::from_le_bytes(c.try_into().unwrap()) as f64);
            }
        }
        ScalarType::F64 => {
            for c in bytes.chunks_exact(8) {
                data.push(f64::from_le_bytes(c.try_into().unwrap()));
            }
        }
    }
    let precision = match ty {
        ScalarType::F32 => Precision::Single,
        ScalarType::F64 => Precision::Double,
    };
    Ok(Field::new(dims, data).with_precision(precision))
}

/// Reads a raw little-endian f32 file at its native width — no widening,
/// feeding [`sperr_core::Sperr::compress_f32`] directly.
pub fn read_field_f32(path: &Path, dims: [usize; 3]) -> io::Result<FieldOf<f32>> {
    let bytes = fs::read(path)?;
    let n = check_size(path, bytes.len(), dims, 4, ScalarType::F32)?;
    let mut data = Vec::with_capacity(n);
    for c in bytes.chunks_exact(4) {
        data.push(f32::from_le_bytes(c.try_into().unwrap()));
    }
    Ok(FieldOf::<f32>::new(dims, data))
}

fn write_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if path.as_os_str() == "-" {
        use io::Write;
        let mut out = io::stdout().lock();
        out.write_all(bytes)?;
        return out.flush();
    }
    fs::write(path, bytes)
}

/// Writes a [`Field`] as raw little-endian scalars.
///
/// Writing a double-precision field (`precision == Double`) as f32 rounds
/// every sample — real information loss, not a format conversion — so it
/// is refused unless `lossy_ok` (the CLI sets it when the user passed an
/// explicit `--dtype f32`/`--type f32`). Single-precision-origin fields
/// narrow freely: their payload is f32 data, possibly widened in transit.
pub fn write_field(path: &Path, field: &Field, ty: ScalarType, lossy_ok: bool) -> io::Result<()> {
    if ty == ScalarType::F32 && field.precision == Precision::Double && !lossy_ok {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "refusing to silently narrow f64 data to f32 output; \
             pass an explicit --dtype f32 to round",
        ));
    }
    let mut bytes = Vec::with_capacity(field.len() * 8);
    match ty {
        ScalarType::F32 => {
            for &v in &field.data {
                bytes.extend_from_slice(&(v as f32).to_le_bytes());
            }
        }
        ScalarType::F64 => {
            for &v in &field.data {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    write_bytes(path, &bytes)
}

/// Writes a native f32 field as raw little-endian f32 — the exact samples
/// the f32 pipeline produced, no round-trip through f64.
pub fn write_field_f32(path: &Path, field: &FieldOf<f32>) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(field.len() * 4);
    for &v in &field.data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    write_bytes(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64_and_f32() {
        let dir = std::env::temp_dir().join("sperr_cli_rawio_test");
        fs::create_dir_all(&dir).unwrap();
        let field = Field::from_fn([3, 2, 2], |x, y, z| x as f64 + 0.5 * y as f64 - z as f64);

        let p64 = dir.join("a.f64");
        write_field(&p64, &field, ScalarType::F64, false).unwrap();
        let back = read_field(&p64, [3, 2, 2], ScalarType::F64).unwrap();
        assert_eq!(back.data, field.data);
        assert_eq!(back.precision, Precision::Double);

        let p32 = dir.join("a.f32");
        write_field(&p32, &field, ScalarType::F32, true).unwrap();
        let back = read_field(&p32, [3, 2, 2], ScalarType::F32).unwrap();
        for (a, b) in field.data.iter().zip(&back.data) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(back.precision, Precision::Single);

        // wrong dims -> clean error
        assert!(read_field(&p64, [4, 2, 2], ScalarType::F64).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_narrowing_requires_opt_in() {
        let dir = std::env::temp_dir().join("sperr_cli_rawio_narrow_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.f32");
        // A true f64 field refuses f32 output without the override...
        let field = Field::new([2, 1, 1], vec![0.1, 0.2]);
        let err = write_field(&p, &field, ScalarType::F32, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        write_field(&p, &field, ScalarType::F32, true).unwrap();
        // ...but a Single-origin field narrows freely (its payload is
        // f32 data in transit at f64).
        let single = field.clone().with_precision(Precision::Single);
        write_field(&p, &single, ScalarType::F32, false).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn native_f32_io_roundtrips_bit_exact() {
        let dir = std::env::temp_dir().join("sperr_cli_rawio_f32_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("n.f32");
        let field =
            FieldOf::<f32>::from_fn([4, 2, 1], |x, y, _| (x as f64 * 0.7).sin() + y as f64);
        write_field_f32(&p, &field).unwrap();
        let back = read_field_f32(&p, [4, 2, 1]).unwrap();
        assert_eq!(back.precision, Precision::Single);
        for (a, b) in field.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(read_field_f32(&p, [5, 2, 1]).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
