//! Max-magnitude pyramid answering SPECK's set-significance queries.
//!
//! A significance test asks "does any coefficient in this cuboid have a
//! quantized magnitude ≥ 2^n?". Scanning the cuboid per test would make
//! each sorting pass O(N · sets); instead we build a mip-style pyramid of
//! per-block maxima once (O(N) total) and answer each query by recursive
//! block decomposition — O(1) for aligned sets, O(boundary · levels) worst
//! case.

use sperr_simd::Lane;

/// Mip pyramid of running maxima over `2^level`-sized blocks of a
/// `D`-dimensional row-major array.
///
/// Generic over the cell type: the reference encoder builds it over raw
/// `u64` magnitudes, the production encoder over per-coefficient
/// `msb_plus1` values (`u8`) — `planes_of` is monotone, so the max of the
/// mapped values equals the mapped max and the two answer the same
/// significance predicate, but the `u8` pyramid touches 8× less memory
/// per build and per query. `T::default()` must be the minimum value
/// (zero for the unsigned integers used here).
///
/// Memory: the base level (the coefficients themselves) is **borrowed**,
/// not copied — only the coarser levels are owned, which together cost
/// under `N / (2^D - 1)` cells. Before the hot-path overhaul the builder
/// `to_vec()`-copied level 0, doubling the coder's peak magnitude
/// footprint; pixel significance tests now read the caller's `k` slice
/// directly, so the copy bought nothing.
///
/// Construction is row-based rather than cell-based: each output row
/// folds its up-to-`2^(D-1)` source rows with an elementwise max
/// ([`sperr_simd::max_assign`]) and then halves along axis 0 with a
/// pairwise max ([`sperr_simd::pairwise_max_into`]) — both chunked
/// vector kernels — instead of paying a full odometer decomposition
/// (div/mod per axis) per *cell* as the original builder did.
#[derive(Debug)]
pub struct MaxPyramid<'a, T, const D: usize> {
    /// Level 0: the input magnitudes, borrowed.
    base: &'a [T],
    base_dims: [usize; D],
    /// `levels[i]` is pyramid level `i + 1`; each level halves every axis
    /// (ceil). The last entry is a single cell holding the global max.
    /// Empty when the domain is a single cell per axis.
    levels: Vec<(Vec<T>, [usize; D])>,
}

impl<'a, T: Lane, const D: usize> MaxPyramid<'a, T, D> {
    /// Builds the pyramid over quantized magnitudes `values` with shape
    /// `dims` (row-major, axis 0 fastest). `values` is borrowed for the
    /// pyramid's lifetime.
    pub fn build(values: &'a [T], dims: [usize; D]) -> Self {
        assert_eq!(values.len(), dims.iter().product::<usize>());
        let mut levels: Vec<(Vec<T>, [usize; D])> = Vec::new();
        // Row scratch: the elementwise fold of one output row's source
        // rows, before the axis-0 pairwise halving. Sized for the finest
        // level, reused throughout.
        let mut folded: Vec<T> = vec![T::default(); dims[0]];
        loop {
            let (prev, pdims): (&[T], [usize; D]) = match levels.last() {
                None => (values, dims),
                Some((v, d)) => (v, *d),
            };
            if pdims.iter().all(|&d| d <= 1) {
                break;
            }
            let mut ndims = [0usize; D];
            for d in 0..D {
                ndims[d] = pdims[d].div_ceil(2);
            }
            let mut next = vec![T::default(); ndims.iter().product()];

            // Strides of the source level, and the number of output rows
            // (the product of the output dims over axes 1..D).
            let mut pstride = [0usize; D];
            let mut s = 1usize;
            for d in 0..D {
                pstride[d] = s;
                s *= pdims[d];
            }
            let n_rows: usize = ndims.iter().skip(1).product();
            let row_len = pdims[0];
            let out_len = ndims[0];

            let mut coord = [0usize; D]; // output coords over axes 1..D
            for (out_row_i, out_row) in next.chunks_exact_mut(out_len).enumerate() {
                debug_assert!(out_row_i < n_rows.max(1));
                // Fold the up-to-2^(D-1) source rows of this output row.
                let mut first = true;
                let combos = 1usize << (D - 1);
                'combo: for c in 0..combos {
                    let mut base = 0usize;
                    for d in 1..D {
                        let x = coord[d] * 2 + ((c >> (d - 1)) & 1);
                        if x >= pdims[d] {
                            continue 'combo;
                        }
                        base += x * pstride[d];
                    }
                    let src = &prev[base..base + row_len];
                    if first {
                        folded[..row_len].copy_from_slice(src);
                        first = false;
                    } else {
                        sperr_simd::max_assign(&mut folded[..row_len], src);
                    }
                }
                debug_assert!(!first, "every output row has at least one source row");
                // Halve along axis 0.
                sperr_simd::pairwise_max_into(&folded[..row_len], out_row);
                // Advance the output-row odometer (axes 1..D).
                for d in 1..D {
                    coord[d] += 1;
                    if coord[d] < ndims[d] {
                        break;
                    }
                    coord[d] = 0;
                }
            }
            levels.push((next, ndims));
        }
        MaxPyramid { base: values, base_dims: dims, levels }
    }

    /// Data and dims of pyramid level `level` (0 = the borrowed base).
    #[inline]
    fn level(&self, level: usize) -> (&[T], &[usize; D]) {
        if level == 0 {
            (self.base, &self.base_dims)
        } else {
            let (v, d) = &self.levels[level - 1];
            (v, d)
        }
    }

    /// Maximum magnitude stored anywhere (top of the pyramid).
    pub fn global_max(&self) -> T {
        let (top, _) = self.level(self.levels.len());
        sperr_simd::max_elem(top)
    }

    /// Maximum over the half-open cuboid `[lo[d], lo[d]+len[d])`.
    ///
    /// The encoder calls this once per cuboid set, at creation (the
    /// cached-significance scheme), and set sizes follow the partition
    /// geometry. At power-of-two dims every split is dyadic, so the
    /// overwhelming majority of queries are *aligned cubes* — for those
    /// one pyramid cell holds exactly the region's max and the query is
    /// a single load. Unaligned tiny regions scan the base level
    /// directly (a few contiguous rows beat a pyramid descent); larger
    /// irregular regions start the recursive decomposition at the level
    /// whose cells match the region scale (at most 2 cells per axis)
    /// instead of walking down from the apex every time.
    pub fn region_max(&self, lo: [u32; D], len: [u32; D]) -> T {
        let mut hi = [0usize; D];
        let mut lo_us = [0usize; D];
        let mut volume = 1usize;
        let mut max_len = 1usize;
        for d in 0..D {
            lo_us[d] = lo[d] as usize;
            hi[d] = lo[d] as usize + len[d] as usize;
            volume *= len[d] as usize;
            max_len = max_len.max(len[d] as usize);
        }
        if volume == 0 {
            return T::default();
        }
        // Aligned power-of-two cube: level-L cells have extent 2^L per
        // axis, so the cell at `lo >> L` covers exactly this region (the
        // region is inside the domain; boundary clipping only trims past
        // it). One load answers the query.
        let l0 = len[0];
        if l0.is_power_of_two() && len.iter().all(|&l| l == l0) {
            let lvl = l0.trailing_zeros() as usize;
            if lvl <= self.levels.len()
                && (0..D).all(|d| lo_us[d] & (l0 as usize - 1) == 0)
            {
                let (data, dims) = self.level(lvl);
                let mut idx = 0usize;
                let mut stride = 1usize;
                for d in 0..D {
                    idx += (lo_us[d] >> lvl) * stride;
                    stride *= dims[d];
                }
                return data[idx];
            }
        }
        if volume <= 64 {
            return self.scan_base(&lo_us, &hi);
        }
        // Cells of size 2^level cover the region with at most 2 cells per
        // axis (2^level >= max_len).
        let level =
            ((usize::BITS - (max_len - 1).leading_zeros()) as usize).min(self.levels.len());
        let mut cell = [0usize; D];
        for d in 0..D {
            cell[d] = lo_us[d] >> level;
        }
        let mut m = T::default();
        loop {
            m = m.max(self.recurse(level, cell, &lo_us, &hi));
            let mut d = 0;
            loop {
                if d == D {
                    return m;
                }
                cell[d] += 1;
                if cell[d] <= (hi[d] - 1) >> level {
                    break;
                }
                cell[d] = lo_us[d] >> level;
                d += 1;
            }
        }
    }

    /// Direct max over a small region of the base: row-at-a-time along
    /// axis 0 (contiguous memory), odometer over the remaining axes.
    fn scan_base(&self, lo: &[usize; D], hi: &[usize; D]) -> T {
        let row = hi[0] - lo[0];
        let mut coord = *lo;
        let mut m = T::default();
        loop {
            let mut idx = 0usize;
            let mut stride = 1usize;
            for d in 0..D {
                idx += coord[d] * stride;
                stride *= self.base_dims[d];
            }
            m = m.max(sperr_simd::max_elem(&self.base[idx..idx + row]));
            let mut d = 1;
            loop {
                if d >= D {
                    return m;
                }
                coord[d] += 1;
                if coord[d] < hi[d] {
                    break;
                }
                coord[d] = lo[d];
                d += 1;
            }
        }
    }

    fn recurse(&self, level: usize, cell: [usize; D], lo: &[usize; D], hi: &[usize; D]) -> T {
        let (data, dims) = self.level(level);
        // Extent of this cell in level-0 coordinates.
        let mut c_lo = [0usize; D];
        let mut c_hi = [0usize; D];
        for d in 0..D {
            c_lo[d] = cell[d] << level;
            c_hi[d] = ((cell[d] + 1) << level).min(self.base_dims[d]);
            // Disjoint?
            if c_lo[d] >= hi[d] || c_hi[d] <= lo[d] {
                return T::default();
            }
        }
        // Fully contained?
        if (0..D).all(|d| lo[d] <= c_lo[d] && c_hi[d] <= hi[d]) {
            let mut idx = 0usize;
            let mut stride = 1usize;
            for d in 0..D {
                idx += cell[d] * stride;
                stride *= dims[d];
            }
            return data[idx];
        }
        debug_assert!(level > 0, "level-0 cells are single points, always contained");
        // Partial overlap: descend into children.
        let (_, child_dims) = self.level(level - 1);
        let child_dims = *child_dims;
        let mut m = T::default();
        let combos = 1usize << D;
        'combo: for c in 0..combos {
            let mut child = [0usize; D];
            for d in 0..D {
                let x = cell[d] * 2 + ((c >> d) & 1);
                if x >= child_dims[d] {
                    continue 'combo;
                }
                child[d] = x;
            }
            m = m.max(self.recurse(level - 1, child, lo, hi));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_max<const D: usize>(
        values: &[u64],
        dims: [usize; D],
        lo: [u32; D],
        len: [u32; D],
    ) -> u64 {
        let mut m = 0u64;
        let total: usize = dims.iter().product();
        'cell: for i in 0..total {
            let mut rest = i;
            for d in 0..D {
                let x = rest % dims[d];
                rest /= dims[d];
                if x < lo[d] as usize || x >= lo[d] as usize + len[d] as usize {
                    continue 'cell;
                }
            }
            m = m.max(values[i]);
        }
        m
    }

    #[test]
    fn global_max_matches() {
        let dims = [7usize, 5];
        let values: Vec<u64> = (0..35).map(|i| (i * 97 % 41) as u64).collect();
        let p = MaxPyramid::build(&values, dims);
        assert_eq!(p.global_max(), *values.iter().max().unwrap());
    }

    #[test]
    fn region_queries_match_brute_force_2d() {
        let dims = [13usize, 9];
        let values: Vec<u64> = (0..117).map(|i| ((i * 2654435761u64) >> 7) % 1000).collect();
        let p = MaxPyramid::build(&values, dims);
        for x0 in [0u32, 3, 7, 12] {
            for y0 in [0u32, 2, 8] {
                for lx in [1u32, 2, 5] {
                    for ly in [1u32, 3] {
                        if x0 + lx <= 13 && y0 + ly <= 9 {
                            let lo = [x0, y0];
                            let len = [lx, ly];
                            assert_eq!(
                                p.region_max(lo, len),
                                brute_max(&values, dims, lo, len),
                                "lo={lo:?} len={len:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn region_queries_match_brute_force_3d() {
        let dims = [5usize, 6, 4];
        let values: Vec<u64> = (0..120).map(|i| ((i * 31) % 77) as u64).collect();
        let p = MaxPyramid::build(&values, dims);
        // exhaustive over all valid cuboids (small domain)
        for x0 in 0..5u32 {
            for y0 in 0..6u32 {
                for z0 in 0..4u32 {
                    for lx in 1..=(5 - x0) {
                        for ly in 1..=(6 - y0) {
                            for lz in 1..=(4 - z0) {
                                let lo = [x0, y0, z0];
                                let len = [lx, ly, lz];
                                assert_eq!(
                                    p.region_max(lo, len),
                                    brute_max(&values, dims, lo, len)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn aligned_cube_fast_path_matches_brute_force() {
        // Power-of-two domain: every dyadic cube must hit the one-load
        // fast path and still agree with brute force.
        let dims = [16usize, 16, 8];
        let values: Vec<u64> =
            (0..16 * 16 * 8).map(|i| ((i as u64) * 2654435761) >> 9).collect();
        let p = MaxPyramid::build(&values, dims);
        for l in [1u32, 2, 4, 8] {
            for x0 in (0..16).step_by(l as usize) {
                for y0 in (0..16).step_by(l as usize) {
                    for z0 in (0..8.min(16)).step_by(l as usize) {
                        if z0 + l <= 8 {
                            let lo = [x0 as u32, y0 as u32, z0 as u32];
                            let len = [l, l, l];
                            assert_eq!(
                                p.region_max(lo, len),
                                brute_max(&values, dims, lo, len),
                                "lo={lo:?} len={len:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn single_cell_domain() {
        let p = MaxPyramid::build(&[42u64], [1usize]);
        assert_eq!(p.global_max(), 42);
        assert_eq!(p.region_max([0], [1]), 42);
    }

    #[test]
    fn all_zeros() {
        let p = MaxPyramid::build(&[0u64; 64], [4usize, 4, 4]);
        assert_eq!(p.global_max(), 0);
        assert_eq!(p.region_max([1, 1, 1], [2, 2, 2]), 0);
    }
}
