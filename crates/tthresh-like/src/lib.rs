//! TTHRESH-like baseline: Tucker-decomposition compression for
//! multidimensional visual data (Ballester-Ripoll, Lindstrom & Pajarola,
//! TVCG 2019), the data-dependent-basis compressor of the paper's §VI.
//!
//! Pipeline: HOSVD — eigendecomposition (from-scratch cyclic Jacobi) of
//! each mode-unfolding's Gram matrix gives orthogonal factor matrices; the
//! core tensor (same size as the input, energy-compacted toward one
//! corner) is coded bitplane-by-bitplane by the embedded SPECK coder over
//! its flattened form; factor matrices are stored densely (f32, or f64 for
//! very high quality targets).
//!
//! Like the original, the only quality control is an *average-error*
//! target (`Bound::Psnr`); there is no PWE mode (§VI-C: "TTHRESH requires
//! some special attention: it supports a target average error (e.g.,
//! PSNR) but not a PWE guarantee").
//!
//! Because the factors are orthogonal, L² error injected in the core by
//! truncated coding equals L² error in the reconstruction, which is how
//! the PSNR target is met: the core is quantized at `q ≈ target RMSE`.

mod linalg;

pub use linalg::{jacobi_eigen, mode_gram, ttm};

use sperr_bitstream::{ByteReader, ByteWriter};
use sperr_compress_api::{Bound, CompressError, Field, LossyCompressor, Precision};
use sperr_speck::Termination;

const MAGIC: &[u8; 4] = b"TTHL";

/// The TTHRESH-like baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct TthreshLike;

impl LossyCompressor for TthreshLike {
    fn name(&self) -> &'static str {
        "TTHRESH-like"
    }

    fn supports(&self, bound: &Bound) -> bool {
        matches!(bound, Bound::Psnr(_))
    }

    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError> {
        let psnr = match bound {
            Bound::Psnr(p) if p > 0.0 && p.is_finite() => p,
            Bound::Psnr(_) => return Err(CompressError::Invalid("invalid PSNR".into())),
            _ => return Err(CompressError::Unsupported("TTHRESH-like bounds PSNR only")),
        };
        if field.is_empty() {
            return Err(CompressError::Invalid("empty field".into()));
        }
        let dims = field.dims;
        let range = field.range();
        // Degenerate constant field: range 0 — quantize relative to the
        // value's magnitude instead (well below any sensible target).
        let target_rmse = if range > 0.0 {
            range / 10f64.powf(psnr / 20.0)
        } else {
            let max_abs = field.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            max_abs.max(1.0) * f64::exp2(-40.0)
        };

        // HOSVD: factor per mode from the Gram of the unfolding.
        let mut core = field.data.clone();
        let mut factors: Vec<Vec<f64>> = Vec::with_capacity(3);
        for mode in 0..3 {
            if dims[mode] == 1 {
                factors.push(vec![1.0]);
                continue;
            }
            let gram = mode_gram(&core, dims, mode);
            let (_, u) = jacobi_eigen(gram, dims[mode]);
            core = ttm(&core, dims, mode, &u, true); // U^T × core
            factors.push(u);
        }

        // Code the core with the embedded bitplane coder. Orthogonality
        // makes core L2 error == reconstruction L2 error; a mid-riser step
        // of q keeps per-coefficient error <= q/2, so rmse <= q/2 over
        // coded coefficients (dead-zone zeros contribute < q). q = target
        // rmse keeps us at or under the target in practice.
        let q = target_rmse;
        let n = core.len();
        let enc = sperr_speck::encode(&core, [n], q, Termination::Quality);

        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u8(match field.precision {
            Precision::Double => 0,
            Precision::Single => 1,
        });
        // Factor precision: f32 is plenty until PSNR targets get extreme.
        let factor_f64 = psnr > 130.0;
        w.put_u8(u8::from(factor_f64));
        w.put_f64(q);
        w.put_u8(enc.num_planes);
        w.put_u32(dims[0] as u32);
        w.put_u32(dims[1] as u32);
        w.put_u32(dims[2] as u32);
        for f in &factors {
            for &v in f {
                if factor_f64 {
                    w.put_f64(v);
                } else {
                    w.put_u32((v as f32).to_bits());
                }
            }
        }
        w.put_u64(enc.stream.len() as u64);
        w.put_bytes(&enc.stream);
        Ok(w.into_bytes())
    }

    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError> {
        let mut r = ByteReader::new(stream);
        if r.get_bytes(4)? != MAGIC {
            return Err(CompressError::Corrupt("bad TTHL magic".into()));
        }
        let precision = match r.get_u8()? {
            0 => Precision::Double,
            1 => Precision::Single,
            p => return Err(CompressError::Corrupt(format!("bad precision {p}"))),
        };
        let factor_f64 = match r.get_u8()? {
            0 => false,
            1 => true,
            f => return Err(CompressError::Corrupt(format!("bad factor flag {f}"))),
        };
        let q = r.get_f64()?;
        if !(q > 0.0) || !q.is_finite() {
            return Err(CompressError::Corrupt("bad quantization step".into()));
        }
        let num_planes = r.get_u8()?;
        let dims = [r.get_u32()? as usize, r.get_u32()? as usize, r.get_u32()? as usize];
        if dims.iter().any(|&d| d == 0) {
            return Err(CompressError::Corrupt("bad dimensions".into()));
        }
        // Untrusted header: checked product (three u32 dims can overflow
        // even u64-sized debug arithmetic when multiplied naively).
        let n = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
            .filter(|&n| n <= 1 << 30)
            .ok_or_else(|| {
                CompressError::LimitExceeded("declared volume too large".into())
            })? as usize;
        let elem_size: u64 = if factor_f64 { 8 } else { 4 };
        let mut factors: Vec<Vec<f64>> = Vec::with_capacity(3);
        for &d in &dims {
            // Each factor matrix is d x d; it must physically fit in the
            // remaining stream before any reservation sized by it.
            let count = (d as u64) * (d as u64);
            if count.saturating_mul(elem_size) > r.remaining() as u64 {
                return Err(CompressError::Truncated(
                    "factor matrices extend past end of stream".into(),
                ));
            }
            let count = count as usize;
            let mut f = Vec::with_capacity(count);
            for _ in 0..count {
                let v = if factor_f64 {
                    r.get_f64()?
                } else {
                    f32::from_bits(r.get_u32()?) as f64
                };
                f.push(v);
            }
            factors.push(f);
        }
        let core_len = r.get_u64()? as usize;
        let core_stream = r.get_bytes(core_len)?;
        let mut data = sperr_speck::decode(core_stream, [n], q, num_planes)?;
        // Reverse TTM order: factors applied forward (not transposed).
        for mode in (0..3).rev() {
            if dims[mode] == 1 {
                continue;
            }
            data = ttm(&data, dims, mode, &factors[mode], false);
        }
        Ok(Field::new(dims, data).with_precision(precision))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.2).sin() * 12.0 + (y as f64 * 0.15).cos() * 8.0
                + ((x + z) as f64 * 0.05).sin() * 4.0
        })
    }

    #[test]
    fn meets_psnr_target() {
        let field = smooth_field([16, 12, 10]);
        let tt = TthreshLike;
        for target in [40.0f64, 60.0, 90.0] {
            let stream = tt.compress(&field, Bound::Psnr(target)).unwrap();
            let rec = tt.decompress(&stream).unwrap();
            let achieved = sperr_metrics::psnr(&field.data, &rec.data);
            assert!(
                achieved >= target,
                "target {target} dB, achieved {achieved} dB"
            );
        }
    }

    #[test]
    fn higher_target_costs_more() {
        let field = smooth_field([16, 16, 16]);
        let tt = TthreshLike;
        let lo = tt.compress(&field, Bound::Psnr(40.0)).unwrap();
        let hi = tt.compress(&field, Bound::Psnr(100.0)).unwrap();
        assert!(hi.len() > lo.len());
    }

    #[test]
    fn compresses_separable_data_extremely_well() {
        // Tucker's sweet spot: separable (low multilinear rank) data.
        let field = Field::from_fn([24, 24, 24], |x, y, z| {
            (x as f64 * 0.3).sin() * (y as f64 * 0.2).cos() * (1.0 + z as f64 * 0.1)
        });
        let tt = TthreshLike;
        let stream = tt.compress(&field, Bound::Psnr(70.0)).unwrap();
        // Core energy collapses to a tiny corner; stream must be far below
        // raw even with dense factor storage.
        let raw = field.len() * 8;
        assert!(
            stream.len() < raw / 12,
            "separable field: {} of {raw}",
            stream.len()
        );
    }

    #[test]
    fn degenerate_axes() {
        let field = Field::from_fn([9, 1, 5], |x, _, z| (x * z) as f64 * 0.1);
        let tt = TthreshLike;
        let stream = tt.compress(&field, Bound::Psnr(60.0)).unwrap();
        let rec = tt.decompress(&stream).unwrap();
        assert!(sperr_metrics::psnr(&field.data, &rec.data) >= 60.0);
    }

    #[test]
    fn constant_field_roundtrip() {
        let field = Field::new([8, 8, 8], vec![2.5; 512]);
        let tt = TthreshLike;
        let stream = tt.compress(&field, Bound::Psnr(80.0)).unwrap();
        let rec = tt.decompress(&stream).unwrap();
        let err = sperr_metrics::max_pwe(&field.data, &rec.data);
        assert!(err < 1e-6, "constant field err {err}");
    }

    #[test]
    fn unsupported_bounds() {
        let tt = TthreshLike;
        assert!(!tt.supports(&Bound::Pwe(0.1)));
        assert!(!tt.supports(&Bound::Bpp(1.0)));
        let field = smooth_field([8, 8, 8]);
        assert!(tt.compress(&field, Bound::Pwe(0.1)).is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let field = smooth_field([8, 8, 8]);
        let tt = TthreshLike;
        let stream = tt.compress(&field, Bound::Psnr(50.0)).unwrap();
        assert!(tt.decompress(&stream[..10]).is_err());
        let mut bad = stream.clone();
        bad[1] = b'?';
        assert!(tt.decompress(&bad).is_err());
    }
}
