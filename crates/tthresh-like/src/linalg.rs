//! Dense symmetric eigendecomposition (cyclic Jacobi) and the tensor
//! operations HOSVD needs — built from scratch; no external linear
//! algebra.

/// Eigendecomposition of a symmetric `n×n` matrix (row-major `a[i*n+j]`).
/// Returns eigenvalues (descending) and eigenvectors as a row-major matrix
/// whose *column* `j` is the eigenvector of eigenvalue `j`.
pub fn jacobi_eigen(mut a: Vec<f64>, n: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n);
    // V starts as identity.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let off = |a: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                s += a[i * n + j] * a[i * n + j];
            }
        }
        s
    };
    let scale: f64 = (0..n).map(|i| a[i * n + i].abs()).fold(1e-300, f64::max);
    let tol = (scale * 1e-14) * (scale * 1e-14) * n as f64;
    for _sweep in 0..60 {
        if off(&a) <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[p * n + q];
                if apq.abs() <= scale * 1e-300 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply Givens rotation to rows/cols p,q of A.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate into V.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort by descending eigenvalue.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[i * n + i], i)).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
    let eigvals: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut eigvecs = vec![0.0f64; n * n];
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for i in 0..n {
            eigvecs[i * n + new_col] = v[i * n + old_col];
        }
    }
    (eigvals, eigvecs)
}

/// Gram matrix of the mode-`m` unfolding: `G[a][b] = Σ X[..a..] X[..b..]`
/// where `a, b` index coordinate `m` and the sum runs over the other two
/// coordinates.
pub fn mode_gram(x: &[f64], dims: [usize; 3], mode: usize) -> Vec<f64> {
    let n = dims[mode];
    let mut g = vec![0.0f64; n * n];
    let strides = [1usize, dims[0], dims[0] * dims[1]];
    let (a, b) = match mode {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let mut fiber = vec![0.0f64; n];
    for jb in 0..dims[b] {
        for ja in 0..dims[a] {
            let base = ja * strides[a] + jb * strides[b];
            for (i, slot) in fiber.iter_mut().enumerate() {
                *slot = x[base + i * strides[mode]];
            }
            // rank-1 update (symmetric; fill upper then mirror at the end)
            for p in 0..n {
                let fp = fiber[p];
                if fp == 0.0 {
                    continue;
                }
                for q in p..n {
                    g[p * n + q] += fp * fiber[q];
                }
            }
        }
    }
    for p in 0..n {
        for q in 0..p {
            g[p * n + q] = g[q * n + p];
        }
    }
    g
}

/// Mode-`m` tensor-times-matrix: `Y[.. j ..] = Σ_a M[j,a] · X[.. a ..]`,
/// with `M` row-major `n×n` (square here — no rank truncation; the coder
/// truncates by bitplane instead, as TTHRESH does). If `transpose`, uses
/// `M^T` instead.
pub fn ttm(x: &[f64], dims: [usize; 3], mode: usize, m: &[f64], transpose: bool) -> Vec<f64> {
    let n = dims[mode];
    assert_eq!(m.len(), n * n);
    let strides = [1usize, dims[0], dims[0] * dims[1]];
    let (a, b) = match mode {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let mut out = vec![0.0f64; x.len()];
    let mut fiber = vec![0.0f64; n];
    for jb in 0..dims[b] {
        for ja in 0..dims[a] {
            let base = ja * strides[a] + jb * strides[b];
            for (i, slot) in fiber.iter_mut().enumerate() {
                *slot = x[base + i * strides[mode]];
            }
            for j in 0..n {
                let mut acc = 0.0;
                for (aa, &f) in fiber.iter().enumerate() {
                    let coef = if transpose { m[aa * n + j] } else { m[j * n + aa] };
                    acc += coef * f;
                }
                out[base + j * strides[mode]] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let (vals, _) = jacobi_eigen(a, 3);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let (vals, vecs) = jacobi_eigen(vec![2.0, 1.0, 1.0, 2.0], 2);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        // eigenvector of 3 is (1,1)/sqrt(2)
        let (v0, v1) = (vecs[0], vecs[2]);
        assert!((v0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0 - v1).abs() < 1e-10);
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        let n = 12;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let v = ((i * 31 + j * 17) % 13) as f64 - 6.0;
                a[i * n + j] += v;
                a[j * n + i] += v;
            }
        }
        let (_, v) = jacobi_eigen(a, n);
        for c1 in 0..n {
            for c2 in 0..n {
                let dot: f64 = (0..n).map(|i| v[i * n + c1] * v[i * n + c2]).sum();
                let want = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-9, "cols {c1},{c2}: {dot}");
            }
        }
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        // A = V diag(λ) V^T
        let n = 8;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = (1.0 + (i * j) as f64).sin();
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let orig = a.clone();
        let (vals, v) = jacobi_eigen(a, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += v[i * n + k] * vals[k] * v[j * n + k];
                }
                assert!((acc - orig[i * n + j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ttm_transpose_inverts_orthogonal() {
        // With an orthogonal M, ttm(ttm(X, M^T), M) == X.
        let dims = [4usize, 3, 2];
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.7).sin()).collect();
        // Build an orthogonal 4x4 from Jacobi of a symmetric matrix.
        let mut sym = vec![0.0f64; 16];
        for i in 0..4 {
            for j in i..4 {
                let v = ((i + 2 * j) as f64).cos();
                sym[i * 4 + j] = v;
                sym[j * 4 + i] = v;
            }
        }
        let (_, u) = jacobi_eigen(sym, 4);
        let core = ttm(&x, dims, 0, &u, true);
        let back = ttm(&core, dims, 0, &u, false);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn gram_matches_brute_force() {
        let dims = [3usize, 4, 2];
        let x: Vec<f64> = (0..24).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        for mode in 0..3 {
            let g = mode_gram(&x, dims, mode);
            let n = dims[mode];
            // brute force
            for a in 0..n {
                for b in 0..n {
                    let mut want = 0.0;
                    for z in 0..dims[2] {
                        for y in 0..dims[1] {
                            for xx in 0..dims[0] {
                                let p = [xx, y, z];
                                if p[mode] != a {
                                    continue;
                                }
                                let mut p2 = p;
                                p2[mode] = b;
                                want += x[p[0] + dims[0] * (p[1] + dims[1] * p[2])]
                                    * x[p2[0] + dims[0] * (p2[1] + dims[1] * p2[2])];
                            }
                        }
                    }
                    assert!((g[a * n + b] - want).abs() < 1e-9, "mode {mode} ({a},{b})");
                }
            }
        }
    }
}
