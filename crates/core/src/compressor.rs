//! The top-level SPERR compressor: chunking, the embarrassingly parallel
//! driver (§III-D), container assembly and the lossless post-pass (§V).

use crate::chunk::{chunk_grid, extract_chunk_into, insert_chunk, ChunkSpec};
use crate::container::{read_container, write_container, ChunkEntry, Header, Mode};
use crate::crc32::crc32;
use crate::pipeline::{
    compress_chunk_bpp_with, compress_chunk_pwe_with, compress_chunk_rmse_with, decompress_chunk,
    decompress_chunk_multires, decompress_chunk_with, ChunkEncoding, ScratchArena,
};
use crate::pool::{PerWorker, WorkerPool};
use crate::stats::{stage_labels, CompressionStats, StageTimes};
use sperr_compress_api::{Bound, CompressError, Field, LossyCompressor};
use sperr_telemetry::timed;
use sperr_wavelet::{Kernel, PANEL_W};

/// Outer stream framing: one flag byte telling whether the container is
/// wrapped by the lossless codec.
pub(crate) const OUTER_RAW: u8 = 0;
pub(crate) const OUTER_LOSSLESS: u8 = 1;

/// Amortized per-chunk container overhead charged against the bit budget
/// in size-bounded mode (chunk-table entry + share of the header).
pub(crate) const PER_CHUNK_HEADER_BITS: usize = 26 * 8;

/// Configuration for [`Sperr`].
#[derive(Debug, Clone)]
pub struct SperrConfig {
    /// Chunk extent; the volume is partitioned into chunks of at most this
    /// size. The paper's default is 256³ (§V-B); it need not divide the
    /// volume dimensions.
    pub chunk_dims: [usize; 3],
    /// SPECK quantization step as a multiple of the PWE tolerance:
    /// `q = q_factor · t`. The paper settles on 1.5 (§IV-D).
    pub q_factor: f64,
    /// Wavelet kernel (CDF 9/7 in the paper; others for ablations).
    pub kernel: Kernel,
    /// Apply the lossless post-pass to the final container (§V; on by
    /// default, standing in for ZSTD).
    pub lossless: bool,
    /// Worker threads for chunk-parallel execution; 0 = one per available
    /// core.
    pub num_threads: usize,
    /// Bound on the number of raw chunk buffers the streaming pipeline
    /// ([`Sperr::compress_stream`] / [`Sperr::decompress_stream`]) keeps
    /// in flight at once; back-pressure blocks the ingest/emit side when
    /// the budget is exhausted. 0 = auto (2 × worker threads). The
    /// effective budget is never below the number of chunks in one
    /// z-layer of the chunk grid — a row-major stream cannot complete any
    /// chunk of a layer without buffering the whole layer.
    pub in_flight_chunks: usize,
}

impl Default for SperrConfig {
    fn default() -> Self {
        SperrConfig {
            chunk_dims: [256, 256, 256],
            q_factor: 1.5,
            kernel: Kernel::Cdf97,
            lossless: true,
            num_threads: 0,
            in_flight_chunks: 0,
        }
    }
}

/// The SPERR compressor. See the crate docs for the pipeline description.
#[derive(Debug, Clone, Default)]
pub struct Sperr {
    config: SperrConfig,
}

impl Sperr {
    /// Creates a compressor with the given configuration.
    pub fn new(config: SperrConfig) -> Self {
        assert!(config.q_factor > 0.0, "q_factor must be positive");
        assert!(config.chunk_dims.iter().all(|&d| d > 0), "chunk dims must be positive");
        Sperr { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SperrConfig {
        &self.config
    }

    /// Worker count for the pool, clamped to the parallelism actually
    /// available in `chunks`. Deliberately *not* clamped to the chunk
    /// count alone — a single-chunk volume still uses every thread
    /// through the intra-chunk (wavelet-panel / elementwise-sweep)
    /// parallelism — but bounded by those inner job counts, so a tiny
    /// volume on a many-core machine does not spawn workers that
    /// outnumber the jobs they would run.
    pub(crate) fn effective_threads(&self, chunks: &[ChunkSpec]) -> usize {
        let t = if self.config.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.config.num_threads
        };
        // Useful-worker ceiling: the outer chunk jobs, or — in the
        // few-chunk regime where the inner levels fan out instead — the
        // strided-pass job count of the largest chunk (lines along the
        // non-transformed axis × panels along x; see `apply_axis_blocked`
        // in `sperr-wavelet`).
        let panel_jobs = chunks
            .iter()
            .map(|c| c.dims[1].max(c.dims[2]) * c.dims[0].div_ceil(PANEL_W))
            .max()
            .unwrap_or(1);
        t.min(chunks.len().max(panel_jobs)).max(1)
    }

    /// The worker-pool size a run over a volume of `dims` would actually
    /// use (thread config clamped to the available parallelism); surfaced
    /// so benchmark artifacts can record it alongside the raw thread
    /// count.
    pub fn effective_workers(&self, dims: [usize; 3]) -> usize {
        self.effective_threads(&chunk_grid(dims, self.config.chunk_dims))
    }

    /// Number of chunks a volume of `dims` partitions into under this
    /// configuration.
    pub fn chunk_count(&self, dims: [usize; 3]) -> usize {
        chunk_grid(dims, self.config.chunk_dims).len()
    }

    /// Compresses and returns the stream together with cost/timing
    /// statistics (the instrumentation behind Figs. 2, 4 and 6).
    pub fn compress_with_stats(
        &self,
        field: &Field,
        bound: Bound,
    ) -> Result<(Vec<u8>, CompressionStats), CompressError> {
        if field.is_empty() {
            return Err(CompressError::Invalid("empty field".into()));
        }
        let _run = sperr_telemetry::span!("sperr.compress", field.len());
        let chunks_spec = chunk_grid(field.dims, self.config.chunk_dims);
        let (mode, bound_value) = match bound {
            Bound::Pwe(t) => {
                if !(t > 0.0) || !t.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid tolerance {t}")));
                }
                (Mode::Pwe, t)
            }
            Bound::Bpp(r) => {
                if !(r > 0.0) || !r.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid bitrate {r}")));
                }
                (Mode::Bpp, r)
            }
            Bound::Psnr(p) => {
                // §VII extension: average-error-targeted compression via
                // the near-orthogonality of the transform.
                if !(p > 0.0) || !p.is_finite() {
                    return Err(CompressError::Invalid(format!("invalid PSNR target {p}")));
                }
                (Mode::Rmse, p)
            }
        };
        // PSNR targets translate to an RMSE target over the whole field's
        // range; a zero-range (constant) field quantizes relative to its
        // magnitude.
        let rmse_target = if let Mode::Rmse = mode {
            let range = field.range();
            if range > 0.0 {
                range / 10f64.powf(bound_value / 20.0)
            } else {
                let max_abs = field.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                max_abs.max(1.0) * f64::exp2(-40.0)
            }
        } else {
            0.0
        };

        // Per-chunk bit budget for size mode: the raw target minus the
        // amortized chunk-table overhead, so the final container lands at
        // or under the requested rate.
        let per_chunk_header_bits = PER_CHUNK_HEADER_BITS;
        let cfg = &self.config;
        let q_factor = cfg.q_factor;
        let kernel = cfg.kernel;
        let volume_dims = field.dims;
        let data = &field.data;

        let n_chunks = chunks_spec.len();
        let threads = self.effective_threads(&chunks_spec);
        let encoded: Vec<ChunkEncoding> = WorkerPool::scoped(threads, |pool| {
            let arenas = PerWorker::new(pool.threads(), ScratchArena::new);
            let inputs = PerWorker::new(pool.threads(), Vec::new);
            let encode_one = |i: usize, w: usize| {
                // SAFETY: concurrent jobs see distinct worker slots (pool
                // contract), so each arena/input buffer has one user.
                let (arena, input) = unsafe { (arenas.get(w), inputs.get(w)) };
                let spec = &chunks_spec[i];
                extract_chunk_into(data, volume_dims, spec, input);
                match mode {
                    Mode::Pwe => compress_chunk_pwe_with(
                        input, spec.dims, bound_value, q_factor, kernel, pool, arena,
                    ),
                    Mode::Bpp => {
                        let budget = ((bound_value * spec.len() as f64) as usize)
                            .saturating_sub(per_chunk_header_bits);
                        compress_chunk_bpp_with(input, spec.dims, budget, kernel, pool, arena)
                    }
                    Mode::Rmse => {
                        compress_chunk_rmse_with(input, spec.dims, rmse_target, kernel, pool, arena)
                    }
                }
            };
            if n_chunks >= pool.threads() {
                // Enough chunks to saturate the pool: parallelize the outer
                // loop; each chunk's inner stages then run inline.
                pool.map(n_chunks, |i, w| encode_one(i, w))
            } else {
                // Few chunks: serial outer loop so each chunk's wavelet
                // panels and elementwise sweeps fan out across the pool.
                (0..n_chunks).map(|i| encode_one(i, 0)).collect()
            }
        });

        let mut stats = CompressionStats {
            num_points: field.len(),
            num_chunks: n_chunks,
            ..CompressionStats::default()
        };
        for enc in &encoded {
            stats.speck_bits += enc.speck_bits;
            stats.outlier_bits += enc.outlier_bits;
            stats.num_outliers += enc.num_outliers as usize;
            stats.stage_times.accumulate(&enc.times);
            stats.coeff_sq_error += enc.coeff_sq_error;
        }

        let header = Header {
            mode,
            kernel,
            precision: field.precision,
            dims: field.dims,
            chunk_dims: cfg.chunk_dims,
            bound_value,
            n_chunks,
        };
        let (container, container_time) =
            timed(stage_labels::CONTAINER_WRITE, || write_container(&header, &encoded));
        stats.container_bytes = container.len();
        stats.stage_times.container = container_time;

        let mut out = Vec::with_capacity(container.len() + 1);
        if cfg.lossless {
            let (packed, lossless_time) =
                timed(stage_labels::LOSSLESS_COMPRESS, || sperr_lossless::compress(&container));
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&packed);
            stats.stage_times.lossless = lossless_time;
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&container);
        }
        stats.output_bytes = out.len();
        Ok((out, stats))
    }

    /// Strips the outer framing, undoing the lossless pass when present.
    /// Returns the raw container and whether the lossless pass was on.
    pub(crate) fn unwrap_outer(stream: &[u8]) -> Result<(Vec<u8>, bool), CompressError> {
        let (&flag, rest) = stream
            .split_first()
            .ok_or_else(|| CompressError::Corrupt("empty stream".into()))?;
        match flag {
            OUTER_RAW => Ok((rest.to_vec(), false)),
            OUTER_LOSSLESS => Ok((sperr_lossless::decompress(rest)?, true)),
            f => Err(CompressError::Corrupt(format!("unknown outer flag {f}"))),
        }
    }

    /// Inspects a SPERR stream without decoding it: dimensions, mode,
    /// chunking and per-chunk stream sizes.
    pub fn inspect(&self, stream: &[u8]) -> Result<StreamInfo, CompressError> {
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        Ok(StreamInfo {
            dims: parsed.header.dims,
            chunk_dims: parsed.header.chunk_dims,
            mode: parsed.header.mode,
            bound_value: parsed.header.bound_value,
            n_chunks: parsed.header.n_chunks,
            lossless,
            speck_bytes: parsed.entries.iter().map(|e| e.speck_len).sum(),
            outlier_bytes: parsed.entries.iter().map(|e| e.outlier_len).sum(),
            version: parsed.version,
            payload_offset: parsed.payload_start,
            chunk_payload_sizes: parsed
                .entries
                .iter()
                .map(|e| e.speck_len + e.outlier_len)
                .collect(),
        })
    }

    /// Verifies a v2 stream's integrity checksums without running the
    /// (much more expensive) SPECK decode: the header CRC is checked by
    /// the container parser, then each chunk's payload CRC is recomputed.
    /// v1 streams carry no checksums — the report says so via
    /// [`VerifyReport::checksummed`] and trivially lists no corruption.
    pub fn verify(&self, stream: &[u8]) -> Result<VerifyReport, CompressError> {
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        let mut corrupt_chunks = Vec::new();
        if let Some(crcs) = &parsed.chunk_crcs {
            let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
            for (i, (e, &start)) in parsed.entries.iter().zip(&offsets).enumerate() {
                let payload = &container[start..start + e.speck_len + e.outlier_len];
                if crc32(payload) != crcs[i] {
                    corrupt_chunks.push(i);
                }
            }
        }
        Ok(VerifyReport {
            version: parsed.version,
            checksummed: parsed.chunk_crcs.is_some(),
            n_chunks: parsed.header.n_chunks,
            corrupt_chunks,
        })
    }

    /// Best-effort decompression of a damaged stream: chunks whose payload
    /// checksum mismatches (v2) or whose decode fails are skipped and
    /// their region of the volume left neutrally zero-filled, while every
    /// healthy chunk is reconstructed normally. The per-chunk outcome is
    /// returned alongside the field. Header-level damage (bad magic,
    /// unreadable chunk table, failed header CRC, or a corrupted lossless
    /// outer wrapper) still fails outright — without the table there is
    /// nothing to salvage.
    pub fn decompress_resilient(
        &self,
        stream: &[u8],
    ) -> Result<(Field, ResilientReport), CompressError> {
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        let chunks_spec = chunk_grid(parsed.header.dims, parsed.header.chunk_dims);
        if chunks_spec.len() != parsed.entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let tolerance = match parsed.header.mode {
            Mode::Pwe => parsed.header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let mut volume = vec![0.0f64; parsed.header.dims.iter().product()];
        let mut statuses = Vec::with_capacity(parsed.entries.len());
        for (i, (spec, e)) in chunks_spec.iter().zip(&parsed.entries).enumerate() {
            let start = offsets[i];
            let payload = &container[start..start + e.speck_len + e.outlier_len];
            if let Some(crcs) = &parsed.chunk_crcs {
                if crc32(payload) != crcs[i] {
                    // Known-bad payload: don't even hand it to the coders.
                    statuses.push(ChunkStatus::ChecksumMismatch);
                    continue;
                }
            }
            let (speck, outlier) = payload.split_at(e.speck_len);
            match decompress_chunk(
                speck,
                outlier,
                spec.dims,
                e.q,
                e.num_planes,
                e.max_n,
                tolerance,
                parsed.header.kernel,
            ) {
                Ok(chunk) => {
                    insert_chunk(&mut volume, parsed.header.dims, spec, &chunk);
                    statuses.push(ChunkStatus::Ok);
                }
                Err(e) => statuses.push(ChunkStatus::DecodeFailed(e)),
            }
        }
        let field =
            Field::new(parsed.header.dims, volume).with_precision(parsed.header.precision);
        Ok((field, ResilientReport { statuses }))
    }

    /// Multi-resolution decompression (§VII): reconstructs the field at
    /// `1/2^level` resolution per axis by undoing only the coarser
    /// transform levels. `level = 0` is full resolution (without outlier
    /// corrections applied at `level > 0`, which are full-resolution
    /// data). Requires every chunk to have at least `level` transform
    /// levels on every axis and `chunk_dims` divisible by `2^level`.
    pub fn decompress_multires(
        &self,
        stream: &[u8],
        level: usize,
    ) -> Result<Field, CompressError> {
        if level == 0 {
            return self.decompress(stream);
        }
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let Header { dims, chunk_dims, kernel, precision, .. } = parsed.header;
        let entries = parsed.entries;
        let payload_start = parsed.payload_start;
        let chunks_spec = chunk_grid(dims, chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let step = 1usize << level;
        // Offsets are multiples of chunk_dims; they must stay aligned
        // after coarsening (single-chunk streams are always fine).
        if chunks_spec.len() > 1 && chunk_dims.iter().any(|&d| d % step != 0) {
            return Err(CompressError::Invalid(format!(
                "chunk dims {chunk_dims:?} not divisible by 2^{level}"
            )));
        }
        // Coarse volume geometry: iterated ceil-halving == ceil(n / 2^l).
        let cdims =
            [dims[0].div_ceil(step), dims[1].div_ceil(step), dims[2].div_ceil(step)];
        let mut volume = vec![0.0f64; cdims.iter().product()];
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            cursor += e.speck_len + e.outlier_len;
            let (chunk, chunk_cdims) =
                decompress_chunk_multires(speck, spec.dims, e.q, e.num_planes, level, kernel)?;
            let coffset = [spec.offset[0] / step, spec.offset[1] / step, spec.offset[2] / step];
            insert_chunk(
                &mut volume,
                cdims,
                &crate::chunk::ChunkSpec { offset: coffset, dims: chunk_cdims },
                &chunk,
            );
        }
        Ok(Field::new(cdims, volume).with_precision(precision))
    }

    /// Region-of-interest decompression: reconstructs only the sub-box
    /// `[lo, hi)` of the volume, decoding just the chunks that intersect
    /// it — the practical payoff of SPERR's chunked storage for
    /// explorative analysis. Returns a field of dims `hi - lo`.
    pub fn decompress_region(
        &self,
        stream: &[u8],
        lo: [usize; 3],
        hi: [usize; 3],
    ) -> Result<Field, CompressError> {
        let (container, _) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let header = parsed.header;
        let entries = parsed.entries;
        let payload_start = parsed.payload_start;
        for d in 0..3 {
            if lo[d] >= hi[d] || hi[d] > header.dims[d] {
                return Err(CompressError::Invalid(format!(
                    "region [{lo:?}, {hi:?}) out of bounds for dims {:?}",
                    header.dims
                )));
            }
        }
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let tolerance = match header.mode {
            Mode::Pwe => header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let region_dims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        let mut out = vec![0.0f64; region_dims.iter().product()];
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            let outlier = &container[cursor + e.speck_len..cursor + e.speck_len + e.outlier_len];
            cursor += e.speck_len + e.outlier_len;
            // Intersect the chunk with the region.
            let c_lo = spec.offset;
            let c_hi = [
                spec.offset[0] + spec.dims[0],
                spec.offset[1] + spec.dims[1],
                spec.offset[2] + spec.dims[2],
            ];
            let isect_lo = [lo[0].max(c_lo[0]), lo[1].max(c_lo[1]), lo[2].max(c_lo[2])];
            let isect_hi = [hi[0].min(c_hi[0]), hi[1].min(c_hi[1]), hi[2].min(c_hi[2])];
            if (0..3).any(|d| isect_lo[d] >= isect_hi[d]) {
                continue; // chunk does not touch the region: skip decode
            }
            let chunk = decompress_chunk(
                speck,
                outlier,
                spec.dims,
                e.q,
                e.num_planes,
                e.max_n,
                tolerance,
                header.kernel,
            )?;
            for z in isect_lo[2]..isect_hi[2] {
                for y in isect_lo[1]..isect_hi[1] {
                    let src_row = (isect_lo[0] - c_lo[0])
                        + spec.dims[0] * ((y - c_lo[1]) + spec.dims[1] * (z - c_lo[2]));
                    let dst_row = (isect_lo[0] - lo[0])
                        + region_dims[0] * ((y - lo[1]) + region_dims[1] * (z - lo[2]));
                    let len = isect_hi[0] - isect_lo[0];
                    out[dst_row..dst_row + len].copy_from_slice(&chunk[src_row..src_row + len]);
                }
            }
        }
        Ok(Field::new(region_dims, out).with_precision(header.precision))
    }

    /// Re-rates an existing SPERR stream to a (lower) size target without
    /// re-encoding, by truncating each chunk's embedded SPECK stream (§VII:
    /// "any prefix of the bitstream can reconstruct a less-accurate
    /// version of the data"). Outlier corrections are dropped — the result
    /// is a size-bounded stream with no error guarantee.
    pub fn transcode_to_bpp(&self, stream: &[u8], bpp: f64) -> Result<Vec<u8>, CompressError> {
        if !(bpp > 0.0) || !bpp.is_finite() {
            return Err(CompressError::Invalid(format!("invalid bitrate {bpp}")));
        }
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let header = parsed.header;
        let entries = parsed.entries;
        let payload_start = parsed.payload_start;
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }
        let mut new_chunks = Vec::with_capacity(entries.len());
        let mut cursor = payload_start;
        for (spec, e) in chunks_spec.iter().zip(&entries) {
            let speck = &container[cursor..cursor + e.speck_len];
            cursor += e.speck_len + e.outlier_len;
            let budget_bytes = ((bpp * spec.len() as f64) as usize / 8).saturating_sub(26);
            let keep = e.speck_len.min(budget_bytes);
            new_chunks.push(ChunkEncoding {
                speck_stream: speck[..keep].to_vec(),
                outlier_stream: Vec::new(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: 0,
                num_outliers: 0,
                speck_bits: keep * 8,
                outlier_bits: 0,
                times: Default::default(),
                coeff_sq_error: 0.0,
            });
        }
        let new_header = Header {
            mode: Mode::Bpp,
            kernel: header.kernel,
            precision: header.precision,
            dims: header.dims,
            chunk_dims: header.chunk_dims,
            bound_value: bpp,
            n_chunks: new_chunks.len(),
        };
        let new_container = write_container(&new_header, &new_chunks);
        let mut out = Vec::with_capacity(new_container.len() + 1);
        if lossless {
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&sperr_lossless::compress(&new_container));
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&new_container);
        }
        Ok(out)
    }

    /// Re-frames a stream as a legacy **container v1** (checksum-free)
    /// stream with byte-identical chunk payloads, preserving the outer
    /// lossless framing. Real v1 streams predate this repo's checksummed
    /// container; this is how the conformance suite regenerates its
    /// committed v1 back-compat fixture without keeping an old encoder
    /// around. The result must always decode to exactly the same field as
    /// the input stream.
    pub fn downgrade_to_v1(&self, stream: &[u8]) -> Result<Vec<u8>, CompressError> {
        let (container, lossless) = Self::unwrap_outer(stream)?;
        let parsed = read_container(&container)?;
        verify_chunk_crcs(&container, &parsed)?;
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let chunks: Vec<ChunkEncoding> = parsed
            .entries
            .iter()
            .zip(&offsets)
            .map(|(e, &s)| ChunkEncoding {
                speck_stream: container[s..s + e.speck_len].to_vec(),
                outlier_stream: container[s + e.speck_len..s + e.speck_len + e.outlier_len]
                    .to_vec(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: e.max_n,
                num_outliers: e.num_outliers,
                speck_bits: e.speck_len * 8,
                outlier_bits: e.outlier_len * 8,
                times: Default::default(),
                coeff_sq_error: 0.0,
            })
            .collect();
        let v1 = crate::container::write_container_v1(&parsed.header, &chunks);
        let mut out = Vec::with_capacity(v1.len() + 1);
        if lossless {
            out.push(OUTER_LOSSLESS);
            out.extend_from_slice(&sperr_lossless::compress(&v1));
        } else {
            out.push(OUTER_RAW);
            out.extend_from_slice(&v1);
        }
        Ok(out)
    }

    /// Decompresses and returns the field together with per-stage timing
    /// statistics (surfaced by the CLI's `info --verbose`).
    pub fn decompress_with_stats(
        &self,
        stream: &[u8],
    ) -> Result<(Field, CompressionStats), CompressError> {
        let _run = sperr_telemetry::span!("sperr.decompress", stream.len());
        let (unwrapped, lossless_time) =
            timed(stage_labels::LOSSLESS_DECOMPRESS, || Self::unwrap_outer(stream));
        let (container, was_lossless) = unwrapped?;
        // Strict mode: any checksummed chunk failing its CRC fails the
        // whole decode (use `decompress_resilient` to salvage the rest).
        let (parsed, container_time) = timed(stage_labels::CONTAINER_READ, || {
            let parsed = read_container(&container)?;
            verify_chunk_crcs(&container, &parsed)?;
            Ok::<_, CompressError>(parsed)
        });
        let parsed = parsed?;
        let header = parsed.header;
        let entries = parsed.entries;
        let chunks_spec = chunk_grid(header.dims, header.chunk_dims);
        if chunks_spec.len() != entries.len() {
            return Err(CompressError::Corrupt("chunk table size mismatch".into()));
        }

        // Pre-slice each chunk's payload region.
        let offsets = chunk_offsets(&entries, parsed.payload_start);

        let tolerance = match header.mode {
            Mode::Pwe => header.bound_value,
            Mode::Bpp | Mode::Rmse => 0.0,
        };
        let n_chunks = entries.len();
        let threads = self.effective_threads(&chunks_spec);
        let container_ref = &container;
        let entries_ref = &entries;
        let offsets_ref = &offsets;
        let specs_ref = &chunks_spec;
        let kernel = header.kernel;
        type Decoded = Result<(Vec<f64>, StageTimes), CompressError>;
        let decoded: Vec<Decoded> = WorkerPool::scoped(threads, |pool| {
            let arenas = PerWorker::new(pool.threads(), ScratchArena::new);
            let decode_one = |i: usize, w: usize| {
                // SAFETY: concurrent jobs see distinct worker slots.
                let arena = unsafe { arenas.get(w) };
                let e = &entries_ref[i];
                let start = offsets_ref[i];
                let speck = &container_ref[start..start + e.speck_len];
                let outlier =
                    &container_ref[start + e.speck_len..start + e.speck_len + e.outlier_len];
                decompress_chunk_with(
                    speck,
                    outlier,
                    specs_ref[i].dims,
                    e.q,
                    e.num_planes,
                    e.max_n,
                    tolerance,
                    kernel,
                    pool,
                    arena,
                )
            };
            if n_chunks >= pool.threads() {
                pool.map(n_chunks, |i, w| decode_one(i, w))
            } else {
                (0..n_chunks).map(|i| decode_one(i, 0)).collect()
            }
        });

        let mut stats = CompressionStats {
            num_points: header.dims.iter().product(),
            num_chunks: n_chunks,
            container_bytes: container.len(),
            output_bytes: stream.len(),
            ..CompressionStats::default()
        };
        if was_lossless {
            stats.stage_times.lossless = lossless_time;
        }
        stats.stage_times.container = container_time;
        let mut volume = vec![0.0f64; header.dims.iter().product()];
        for (spec, result) in chunks_spec.iter().zip(decoded) {
            let (chunk, times) = result?;
            stats.stage_times.accumulate(&times);
            insert_chunk(&mut volume, header.dims, spec, &chunk);
        }
        let field = Field::new(header.dims, volume).with_precision(header.precision);
        Ok((field, stats))
    }
}

/// Byte offset of each chunk's payload within the container.
pub(crate) fn chunk_offsets(entries: &[ChunkEntry], payload_start: usize) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(entries.len());
    let mut cursor = payload_start;
    for e in entries {
        offsets.push(cursor);
        cursor += e.speck_len + e.outlier_len;
    }
    offsets
}

/// Checks every chunk payload against its v2 CRC; no-op for v1 streams.
pub(crate) fn verify_chunk_crcs(
    container: &[u8],
    parsed: &crate::container::Parsed,
) -> Result<(), CompressError> {
    let Some(crcs) = &parsed.chunk_crcs else { return Ok(()) };
    let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
    for (i, (e, &start)) in parsed.entries.iter().zip(&offsets).enumerate() {
        let payload = &container[start..start + e.speck_len + e.outlier_len];
        if crc32(payload) != crcs[i] {
            return Err(CompressError::Corrupt(format!("chunk {i} payload checksum mismatch")));
        }
    }
    Ok(())
}

/// Outcome of one chunk in [`Sperr::decompress_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkStatus {
    /// Decoded normally.
    Ok,
    /// The v2 payload checksum failed; the chunk was not decoded.
    ChecksumMismatch,
    /// The payload passed its checksum (or the stream is v1) but the
    /// coders rejected it.
    DecodeFailed(CompressError),
}

/// Per-chunk outcomes of a resilient decode.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// One status per chunk, in chunk-grid order.
    pub statuses: Vec<ChunkStatus>,
}

impl ResilientReport {
    /// True when every chunk decoded cleanly.
    pub fn all_ok(&self) -> bool {
        self.statuses.iter().all(|s| matches!(s, ChunkStatus::Ok))
    }

    /// Indices of chunks that failed (either way).
    pub fn failed_chunks(&self) -> Vec<usize> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, ChunkStatus::Ok))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Result of a checksum-only integrity pass (see [`Sperr::verify`]).
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Container format version (1 or 2).
    pub version: u8,
    /// Whether the stream carries checksums at all (v2 only).
    pub checksummed: bool,
    /// Number of chunks in the stream.
    pub n_chunks: usize,
    /// Indices of chunks whose payload CRC failed.
    pub corrupt_chunks: Vec<usize>,
}

impl VerifyReport {
    /// True when no checksum failed (vacuously true for v1 streams —
    /// check [`Self::checksummed`] to tell the difference).
    pub fn is_ok(&self) -> bool {
        self.corrupt_chunks.is_empty()
    }
}

/// Metadata describing a SPERR stream (see [`Sperr::inspect`]).
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// Full-resolution volume dimensions.
    pub dims: [usize; 3],
    /// Chunk extent used at compression time.
    pub chunk_dims: [usize; 3],
    /// Termination mode.
    pub mode: Mode,
    /// The bound's value: tolerance (PWE), bits-per-point (BPP) or PSNR
    /// target in dB (RMSE mode).
    pub bound_value: f64,
    /// Number of chunks.
    pub n_chunks: usize,
    /// Whether the lossless post-pass was applied.
    pub lossless: bool,
    /// Total SPECK payload bytes across chunks.
    pub speck_bytes: usize,
    /// Total outlier payload bytes across chunks.
    pub outlier_bytes: usize,
    /// Container format version (1 = legacy, 2 = checksummed).
    pub version: u8,
    /// Byte offset of the first chunk payload *within the container*
    /// (add 1 for the outer flag byte when `lossless` is false; for
    /// lossless streams the container is not byte-addressable from the
    /// outside).
    pub payload_offset: usize,
    /// Per-chunk payload sizes (SPECK + outlier bytes), in chunk order.
    pub chunk_payload_sizes: Vec<usize>,
}

impl LossyCompressor for Sperr {
    fn name(&self) -> &'static str {
        "SPERR"
    }

    fn supports(&self, bound: &Bound) -> bool {
        matches!(bound, Bound::Pwe(_) | Bound::Bpp(_) | Bound::Psnr(_))
    }

    fn compress(&self, field: &Field, bound: Bound) -> Result<Vec<u8>, CompressError> {
        self.compress_with_stats(field, bound).map(|(stream, _)| stream)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Field, CompressError> {
        self.decompress_with_stats(stream).map(|(field, _)| field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_field(dims: [usize; 3]) -> Field {
        Field::from_fn(dims, |x, y, z| {
            (x as f64 * 0.3).sin() * 20.0 + (y as f64 * 0.2).cos() * 10.0 + z as f64 * 0.5
        })
    }

    fn raw_sperr() -> Sperr {
        Sperr::new(SperrConfig {
            chunk_dims: [16, 16, 16],
            lossless: false,
            ..SperrConfig::default()
        })
    }

    #[test]
    fn v1_stream_decodes_back_compat() {
        // Re-emit a freshly compressed stream in the legacy v1 layout and
        // check the reader still accepts it, byte-identically.
        let field = test_field([16, 16, 16]);
        let sperr = raw_sperr();
        let v2 = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let parsed = read_container(&v2[1..]).unwrap();
        let offsets = chunk_offsets(&parsed.entries, parsed.payload_start);
        let chunks: Vec<ChunkEncoding> = parsed
            .entries
            .iter()
            .zip(&offsets)
            .map(|(e, &s)| ChunkEncoding {
                speck_stream: v2[1 + s..1 + s + e.speck_len].to_vec(),
                outlier_stream:
                    v2[1 + s + e.speck_len..1 + s + e.speck_len + e.outlier_len].to_vec(),
                q: e.q,
                num_planes: e.num_planes,
                max_n: e.max_n,
                num_outliers: e.num_outliers,
                speck_bits: e.speck_len * 8,
                outlier_bits: e.outlier_len * 8,
                times: Default::default(),
                coeff_sq_error: 0.0,
            })
            .collect();
        let v1 = crate::container::write_container_v1(&parsed.header, &chunks);
        let mut legacy = vec![OUTER_RAW];
        legacy.extend_from_slice(&v1);
        assert_eq!(
            sperr.decompress(&legacy).unwrap().data,
            sperr.decompress(&v2).unwrap().data
        );
        assert_eq!(sperr.inspect(&legacy).unwrap().version, 1);
        let report = sperr.verify(&legacy).unwrap();
        assert!(!report.checksummed);
        assert!(report.is_ok());
    }

    #[test]
    fn resilient_decode_isolates_damaged_chunk() {
        // Two chunks; flip a byte inside the second chunk's payload. The
        // strict decoder must reject the stream, verify() must name the
        // chunk, and the resilient decoder must return chunk 0
        // bit-identical with chunk 1 zero-filled.
        let field = test_field([32, 16, 16]);
        let sperr = raw_sperr();
        let stream = sperr.compress(&field, Bound::Pwe(1e-3)).unwrap();
        let info = sperr.inspect(&stream).unwrap();
        assert_eq!(info.n_chunks, 2);
        let clean = sperr.decompress(&stream).unwrap();

        let mut bad = stream.clone();
        let target = 1 + info.payload_offset + info.chunk_payload_sizes[0] + 2;
        bad[target] ^= 0xFF;

        assert!(matches!(sperr.decompress(&bad), Err(CompressError::Corrupt(_))));
        assert_eq!(sperr.verify(&bad).unwrap().corrupt_chunks, vec![1]);

        let (rec, report) = sperr.decompress_resilient(&bad).unwrap();
        assert_eq!(report.statuses[0], ChunkStatus::Ok);
        assert_eq!(report.statuses[1], ChunkStatus::ChecksumMismatch);
        assert_eq!(report.failed_chunks(), vec![1]);
        assert!(!report.all_ok());
        // Chunk 0 spans x in 0..16; chunk 1 spans x in 16..32.
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..32 {
                    let i = x + 32 * (y + 16 * z);
                    if x < 16 {
                        assert_eq!(rec.data[i], clean.data[i], "healthy chunk altered at {i}");
                    } else {
                        assert_eq!(rec.data[i], 0.0, "damaged chunk not neutral at {i}");
                    }
                }
            }
        }
        // An undamaged stream reports all chunks Ok and matches strict.
        let (rec2, report2) = sperr.decompress_resilient(&stream).unwrap();
        assert!(report2.all_ok());
        assert_eq!(rec2.data, clean.data);
    }

    #[test]
    fn stream_bytes_identical_across_thread_counts() {
        // The acceptance bar for the parallel overhaul: the container bytes
        // must not depend on the thread count, for multi-chunk volumes
        // (outer parallelism) and single-chunk volumes (intra-chunk
        // parallelism) alike, in every mode.
        for (dims, bound) in [
            ([32usize, 16, 16], Bound::Pwe(1e-3)), // 2 chunks
            ([20, 20, 20], Bound::Pwe(1e-3)),      // 1 chunk: intra-chunk path
            ([20, 20, 20], Bound::Bpp(2.0)),
            ([20, 20, 20], Bound::Psnr(60.0)),
        ] {
            let field = test_field(dims);
            let streams: Vec<Vec<u8>> = [1usize, 2, 4, 8]
                .iter()
                .map(|&t| {
                    Sperr::new(SperrConfig {
                        chunk_dims: [16, 16, 16],
                        lossless: false,
                        num_threads: t,
                        ..SperrConfig::default()
                    })
                    .compress(&field, bound)
                    .unwrap()
                })
                .collect();
            for (i, s) in streams.iter().enumerate().skip(1) {
                assert_eq!(&streams[0], s, "threads=1 vs threads={}", [1, 2, 4, 8][i]);
            }
            // Decompression is also thread-count independent.
            let rec1 = Sperr::new(SperrConfig { num_threads: 1, ..SperrConfig::default() })
                .decompress(&streams[0])
                .unwrap();
            let rec8 = Sperr::new(SperrConfig { num_threads: 8, ..SperrConfig::default() })
                .decompress(&streams[0])
                .unwrap();
            assert_eq!(rec1.data, rec8.data);
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = SperrConfig::default();
        assert_eq!(cfg.chunk_dims, [256, 256, 256]); // §V-B default
        assert!((cfg.q_factor - 1.5).abs() < 1e-12); // §IV-D choice
        assert_eq!(cfg.kernel, Kernel::Cdf97);
        assert!(cfg.lossless); // §V: ZSTD stage on by default
    }
}
