//! Minimal complex FFT substrate (iterative radix-2 Cooley–Tukey) used by
//! the Gaussian-random-field synthesizer. Power-of-two lengths only; the
//! GRF generator pads and crops around it.

/// A complex number; kept as a plain pair for tight loops.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    /// Constructs `re + i·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    #[inline]
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex { re: self.re + other.re, im: self.im + other.im }
    }

    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex { re: self.re - other.re, im: self.im - other.im }
    }
}

/// In-place FFT of a power-of-two-length buffer. `inverse` applies the
/// conjugate transform *and* the 1/n normalization, so
/// `fft(x, false); fft(x, true)` is the identity.
pub fn fft(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) as usize;
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = buf[i + j];
                let v = buf[i + j + len / 2].mul(w);
                buf[i + j] = u.add(v);
                buf[i + j + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for c in buf.iter_mut() {
            c.re *= inv_n;
            c.im *= inv_n;
        }
    }
}

/// In-place 3D FFT over a row-major cube of power-of-two dims.
pub fn fft_3d(buf: &mut [Complex], dims: [usize; 3], inverse: bool) {
    assert_eq!(buf.len(), dims[0] * dims[1] * dims[2]);
    let max_dim = dims.iter().copied().max().unwrap();
    let mut line = vec![Complex::default(); max_dim];
    let strides = [1usize, dims[0], dims[0] * dims[1]];
    for axis in 0..3 {
        let n = dims[axis];
        if n <= 1 {
            continue;
        }
        let (a, b) = match axis {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        for jb in 0..dims[b] {
            for ja in 0..dims[a] {
                let base = ja * strides[a] + jb * strides[b];
                let stride = strides[axis];
                for (i, slot) in line[..n].iter_mut().enumerate() {
                    *slot = buf[base + i * stride];
                }
                fft(&mut line[..n], inverse);
                for (i, &v) in line[..n].iter().enumerate() {
                    buf[base + i * stride] = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_inverse_identity() {
        let mut buf: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let orig = buf.clone();
        fft(&mut buf, false);
        fft(&mut buf, true);
        for (a, b) in orig.iter().zip(&buf) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut buf = vec![Complex::default(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft(&mut buf, false);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_has_single_bin() {
        let n = 32;
        let k = 5;
        let mut buf: Vec<Complex> = (0..n)
            .map(|i| {
                let ang = 2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                Complex::new(ang.cos(), ang.sin())
            })
            .collect();
        fft(&mut buf, false);
        for (i, c) in buf.iter().enumerate() {
            let mag = (c.re * c.re + c.im * c.im).sqrt();
            if i == k {
                assert!((mag - n as f64).abs() < 1e-9);
            } else {
                assert!(mag < 1e-9, "leak at bin {i}: {mag}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut buf: Vec<Complex> =
            (0..128).map(|i| Complex::new(((i * 13) % 17) as f64 - 8.0, 0.0)).collect();
        let time_energy: f64 = buf.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        fft(&mut buf, false);
        let freq_energy: f64 =
            buf.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn fft_3d_roundtrip() {
        let dims = [8usize, 4, 2];
        let mut buf: Vec<Complex> = (0..64)
            .map(|i| Complex::new(i as f64, (i * i % 7) as f64))
            .collect();
        let orig = buf.clone();
        fft_3d(&mut buf, dims, false);
        fft_3d(&mut buf, dims, true);
        for (a, b) in orig.iter().zip(&buf) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }
}
