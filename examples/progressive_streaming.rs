//! Embedded / progressive decoding (paper §VII): SPECK's bitplane-by-
//! bitplane output means *any prefix* of the coefficient bitstream decodes
//! to a valid, coarser reconstruction — useful for streaming, where a
//! partially transmitted stream is still worth decoding.
//!
//! This example encodes a field once at high quality, then decodes
//! prefixes of growing length and prints the quality ladder. It also
//! exercises SPERR's size-bounded mode (fixed BPP targets), which is
//! built on the same embedded property.
//!
//! Run with: `cargo run --release --example progressive_streaming`

use sperr_compress_api::{Bound, LossyCompressor};
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use sperr_speck::Termination;
use sperr_wavelet::{forward_3d, inverse_3d, levels_for_dims, Kernel};

fn main() {
    let dims = [64, 64, 64];
    let field = SyntheticField::S3dTemperature.generate(dims, 3);
    let n = field.len();

    // --- Part 1: one embedded stream, many qualities -------------------
    println!("== embedded stream: decode prefixes of a single encode ==");
    let levels = levels_for_dims(dims);
    let mut coeffs = field.data.clone();
    forward_3d(&mut coeffs, dims, levels, Kernel::Cdf97);
    let q = field.range() * f64::exp2(-30.0);
    let enc = sperr_speck::encode(&coeffs, dims, q, Termination::Quality);
    println!("full stream: {} bytes ({:.3} bpp)", enc.stream.len(),
        enc.stream.len() as f64 * 8.0 / n as f64);

    println!("{:>10} {:>10} {:>12} {:>10}", "prefix B", "bpp", "rmse", "psnr dB");
    for percent in [1usize, 5, 10, 25, 50, 100] {
        let cut = (enc.stream.len() * percent / 100).max(1);
        let mut rec = sperr_speck::decode(&enc.stream[..cut], dims, q, enc.num_planes)
            .expect("prefix decode");
        inverse_3d(&mut rec, dims, levels, Kernel::Cdf97);
        let rmse = sperr_metrics::rmse(&field.data, &rec);
        let psnr = sperr_metrics::psnr(&field.data, &rec);
        println!("{:>10} {:>10.3} {:>12.4e} {:>10.2}", cut,
            cut as f64 * 8.0 / n as f64, rmse, psnr);
    }

    // --- Part 2: SPERR's size-bounded mode ------------------------------
    println!("\n== size-bounded mode: fixed BPP targets ==");
    let sperr = Sperr::new(SperrConfig::default());
    println!("{:>8} {:>10} {:>10} {:>10}", "target", "actual", "rmse", "psnr dB");
    for target in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let stream = sperr.compress(&field, Bound::Bpp(target)).expect("bpp compress");
        let restored = sperr.decompress(&stream).expect("bpp decode");
        let actual = stream.len() as f64 * 8.0 / n as f64;
        println!("{:>8.2} {:>10.3} {:>10.4e} {:>10.2}",
            target, actual,
            sperr_metrics::rmse(&field.data, &restored.data),
            sperr_metrics::psnr(&field.data, &restored.data));
    }
    println!("\nnote: size-bounded compression provides no error guarantee");
    println!("(no compressor can satisfy size and error bounds simultaneously, §I).");
}
