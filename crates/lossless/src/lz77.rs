//! Block-level LZ77 parse + Huffman entropy stage.
//!
//! Deflate-style symbol design (literal/length alphabet with extra bits,
//! separate distance alphabet) but an independent format: match lengths
//! 4..=259, distances 1..=32768, canonical-Huffman tables transmitted as
//! 4-bit code lengths per block.

use crate::huffman::CanonicalCode;
use sperr_bitstream::{BitReader, BitWriter, Error};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 259;
const MAX_DIST: usize = 32768;
const EOB: u32 = 256;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 48;

/// (base, extra-bits) buckets for match lengths; symbol `257 + i` covers
/// lengths `base ..= base + 2^extra - 1`.
fn length_buckets() -> Vec<(u32, u8)> {
    let mut v = Vec::with_capacity(28);
    for i in 0..8 {
        v.push((MIN_MATCH as u32 + i, 0));
    }
    let mut base = MIN_MATCH as u32 + 8;
    for extra in 1..=5u8 {
        for _ in 0..4 {
            v.push((base, extra));
            base += 1 << extra;
        }
    }
    debug_assert_eq!(base as usize, MAX_MATCH + 1);
    v
}

/// (base, extra-bits) buckets for distances; symbol `i` covers distances
/// `base ..= base + 2^extra - 1`.
fn dist_buckets() -> Vec<(u32, u8)> {
    let mut v = vec![(1, 0), (2, 0), (3, 0), (4, 0)];
    let mut base = 5u32;
    for extra in 1..=13u8 {
        for _ in 0..2 {
            v.push((base, extra));
            base += 1 << extra;
        }
    }
    debug_assert_eq!(base as usize, MAX_DIST + 1);
    v
}

/// Finds the bucket index for `value` in a bucket table (tables are tiny;
/// linear scan would do, but binary search keeps it O(log n)).
fn bucket_of(buckets: &[(u32, u8)], value: u32) -> usize {
    buckets.partition_point(|&(base, _)| base <= value) - 1
}

const LITLEN_ALPHABET: usize = 257 + 28; // literals + EOB + length codes
const DIST_ALPHABET: usize = 30;

enum Token {
    Literal(u8),
    Match { len: u32, dist: u32 },
}

/// Greedy hash-chain LZ77 parse of `block`.
fn parse(block: &[u8]) -> Vec<Token> {
    let n = block.len();
    let mut tokens = Vec::with_capacity(n / 2);
    if n < MIN_MATCH {
        tokens.extend(block.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let hash = |i: usize| -> usize {
        let v = u32::from_le_bytes([block[i], block[i + 1], block[i + 2], block[i + 3]]);
        (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
    };
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash(i);
            let mut cand = head[h];
            let mut chain = 0;
            let max_len = (n - i).min(MAX_MATCH);
            while cand != usize::MAX && chain < MAX_CHAIN {
                let dist = i - cand;
                if dist > MAX_DIST {
                    break;
                }
                // Quick reject: candidate must beat the current best at the
                // position best_len (common trick to skip short matches).
                if best_len == 0 || block[cand + best_len] == block[i + best_len] {
                    let mut l = 0usize;
                    while l < max_len && block[cand + l] == block[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = dist;
                        if l >= max_len {
                            break;
                        }
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match { len: best_len as u32, dist: best_dist as u32 });
            // Insert hash entries for every position the match covers so
            // later matches can refer into it.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let h = hash(j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i += best_len;
        } else {
            if i + MIN_MATCH <= n {
                let h = hash(i);
                prev[i] = head[h];
                head[h] = i;
            }
            tokens.push(Token::Literal(block[i]));
            i += 1;
        }
    }
    tokens
}

/// Compresses one block to a self-contained payload (code tables + coded
/// tokens + EOB). The caller decides whether it beats storing the block raw.
pub(crate) fn compress_block(block: &[u8]) -> Vec<u8> {
    let len_buckets = length_buckets();
    let d_buckets = dist_buckets();
    let tokens = parse(block);

    let mut lit_freq = vec![0u64; LITLEN_ALPHABET];
    let mut dist_freq = vec![0u64; DIST_ALPHABET];
    lit_freq[EOB as usize] = 1;
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[257 + bucket_of(&len_buckets, len)] += 1;
                dist_freq[bucket_of(&d_buckets, dist)] += 1;
            }
        }
    }
    let lit_code = CanonicalCode::from_freqs(&lit_freq);
    let dist_code = CanonicalCode::from_freqs(&dist_freq);

    let mut w = BitWriter::with_capacity_bits(block.len() * 4);
    for &l in lit_code.lengths() {
        w.put_bits(l as u64, 4);
    }
    for &l in dist_code.lengths() {
        w.put_bits(l as u64, 4);
    }
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_code.encode_symbol(b as u32, &mut w),
            Token::Match { len, dist } => {
                let lb = bucket_of(&len_buckets, len);
                lit_code.encode_symbol(257 + lb as u32, &mut w);
                let (base, extra) = len_buckets[lb];
                w.put_bits((len - base) as u64, extra as u32);
                let db = bucket_of(&d_buckets, dist);
                dist_code.encode_symbol(db as u32, &mut w);
                let (dbase, dextra) = d_buckets[db];
                w.put_bits((dist - dbase) as u64, dextra as u32);
            }
        }
    }
    lit_code.encode_symbol(EOB, &mut w);
    w.into_bytes()
}

/// Decompresses one block payload; `raw_len` is the expected output size
/// from the container header.
pub(crate) fn decompress_block(payload: &[u8], raw_len: usize) -> Result<Vec<u8>, Error> {
    let len_buckets = length_buckets();
    let d_buckets = dist_buckets();
    let mut r = BitReader::new(payload);

    let mut lit_lengths = vec![0u8; LITLEN_ALPHABET];
    for l in lit_lengths.iter_mut() {
        *l = r.get_bits(4)? as u8;
    }
    let mut dist_lengths = vec![0u8; DIST_ALPHABET];
    for l in dist_lengths.iter_mut() {
        *l = r.get_bits(4)? as u8;
    }
    let lit_code = CanonicalCode::from_lengths(&lit_lengths);
    let dist_code = CanonicalCode::from_lengths(&dist_lengths);

    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    loop {
        let sym = lit_code.decode_symbol(&mut r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => break,
            _ => {
                let lb = (sym - 257) as usize;
                if lb >= len_buckets.len() {
                    return Err(Error::Corrupt("bad length symbol"));
                }
                let (base, extra) = len_buckets[lb];
                let len = base + r.get_bits(extra as u32)? as u32;
                let db = dist_code.decode_symbol(&mut r)? as usize;
                if db >= d_buckets.len() {
                    return Err(Error::Corrupt("bad distance symbol"));
                }
                let (dbase, dextra) = d_buckets[db];
                let dist = (dbase + r.get_bits(dextra as u32)? as u32) as usize;
                if dist == 0 || dist > out.len() {
                    return Err(Error::Corrupt("distance beyond output"));
                }
                if out.len() + len as usize > raw_len {
                    return Err(Error::Corrupt("block overruns declared length"));
                }
                // Overlapping copies are legal (dist < len): copy bytewise.
                let start = out.len() - dist;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
        if out.len() > raw_len {
            return Err(Error::Corrupt("block overruns declared length"));
        }
    }
    if out.len() != raw_len {
        return Err(Error::Corrupt("block length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_tables_cover_ranges() {
        let lb = length_buckets();
        assert_eq!(lb.len(), 28);
        for len in MIN_MATCH as u32..=MAX_MATCH as u32 {
            let b = bucket_of(&lb, len);
            let (base, extra) = lb[b];
            assert!(len >= base && len < base + (1 << extra), "len {len}");
        }
        let db = dist_buckets();
        assert_eq!(db.len(), 30);
        for dist in [1u32, 2, 4, 5, 100, 32768] {
            let b = bucket_of(&db, dist);
            let (base, extra) = db[b];
            assert!(dist >= base && dist < base + (1 << extra), "dist {dist}");
        }
    }

    #[test]
    fn block_roundtrip_various() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"a".to_vec(),
            b"aaaaaaaaaaaaaaaa".to_vec(),
            b"abcdabcdabcdabcd".to_vec(),
            (0..=255u8).collect(),
            b"overlap".iter().copied().cycle().take(1000).collect(),
        ];
        for data in cases {
            let payload = compress_block(&data);
            let back = decompress_block(&payload, data.len()).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." forces dist=1, len>dist overlapping copies.
        let data = vec![b'z'; 5000];
        let payload = compress_block(&data);
        assert!(payload.len() < 200);
        assert_eq!(decompress_block(&payload, data.len()).unwrap(), data);
    }

    #[test]
    fn long_range_matches() {
        // Repeat a 10 KiB chunk after 20 KiB of filler: distance ~ 30 KiB,
        // still within MAX_DIST.
        let chunk: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 251) as u8).collect();
        let filler: Vec<u8> = (0..20_000u32).map(|i| (i * 13 % 256) as u8).collect();
        let mut data = chunk.clone();
        data.extend_from_slice(&filler);
        data.extend_from_slice(&chunk);
        let payload = compress_block(&data);
        assert!(payload.len() < data.len());
        assert_eq!(decompress_block(&payload, data.len()).unwrap(), data);
    }

    #[test]
    fn declared_length_mismatch_is_error() {
        let data = b"hello hello hello".to_vec();
        let payload = compress_block(&data);
        assert!(decompress_block(&payload, data.len() + 1).is_err());
        assert!(decompress_block(&payload, data.len() - 1).is_err());
    }
}
