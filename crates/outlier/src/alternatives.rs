//! Classical outlier-coding alternatives the paper's §II surveys and
//! rejects: "record positions using bitmap coding, and ... handle
//! correction values using, for example, variable-length coding (e.g.,
//! universal codes)". Implemented here so the benchmark harness can put
//! numbers behind that design discussion (ablation extending Fig. 11).
//!
//! Both coders quantize the correction magnitude to `k = round(|corr|/t)`
//! (`k ≥ 1` since outliers exceed `t`), for a reconstruction error of at
//! most `t/2` — the same guarantee the SPECK-inspired coder provides.

use crate::coder::Outlier;
use sperr_bitstream::{BitReader, BitWriter, Error};

/// Elias-gamma encodes `v >= 1`: `floor(log2 v)` zero bits, then the
/// binary representation of `v` MSB-first.
fn gamma_encode(v: u64, out: &mut BitWriter) {
    debug_assert!(v >= 1);
    let bits = 64 - v.leading_zeros();
    for _ in 0..bits - 1 {
        out.put_bit(false);
    }
    for i in (0..bits).rev() {
        out.put_bit((v >> i) & 1 == 1);
    }
}

fn gamma_decode(input: &mut BitReader<'_>) -> Result<u64, Error> {
    let mut zeros = 0u32;
    while !input.get_bit()? {
        zeros += 1;
        if zeros > 63 {
            return Err(Error::Corrupt("gamma code too long"));
        }
    }
    let mut v = 1u64;
    for _ in 0..zeros {
        v = (v << 1) | input.get_bit()? as u64;
    }
    Ok(v)
}

fn quantize(corr: f64, t: f64) -> (bool, u64) {
    let k = (corr.abs() / t).round().max(1.0) as u64;
    (corr < 0.0, k)
}

fn reconstruct(negative: bool, k: u64, t: f64) -> f64 {
    let mag = k as f64 * t;
    if negative {
        -mag
    } else {
        mag
    }
}

/// Bitmap positions + gamma-coded magnitudes: one bit per data point
/// (outlier yes/no), then per outlier a sign bit and the gamma code of
/// its quantized magnitude. Positions cost `N` bits regardless of how few
/// outliers there are — the §II objection made concrete.
pub mod bitmap {
    use super::*;

    /// Encodes outliers over an array of length `n` with tolerance `t`.
    pub fn encode(outliers: &[Outlier], n: usize, t: f64) -> Vec<u8> {
        let mut mask = vec![false; n];
        for o in outliers {
            mask[o.pos] = true;
        }
        let mut w = BitWriter::with_capacity_bits(n + outliers.len() * 8);
        for &m in &mask {
            w.put_bit(m);
        }
        let mut sorted: Vec<&Outlier> = outliers.iter().collect();
        sorted.sort_by_key(|o| o.pos);
        for o in sorted {
            let (neg, k) = quantize(o.corr, t);
            w.put_bit(neg);
            gamma_encode(k, &mut w);
        }
        w.into_bytes()
    }

    /// Decodes; corrections are within `t/2` of the originals.
    pub fn decode(bytes: &[u8], n: usize, t: f64) -> Result<Vec<Outlier>, Error> {
        let mut r = BitReader::new(bytes);
        let mut positions = Vec::new();
        for pos in 0..n {
            if r.get_bit()? {
                positions.push(pos);
            }
        }
        let mut out = Vec::with_capacity(positions.len());
        for pos in positions {
            let neg = r.get_bit()?;
            let k = gamma_decode(&mut r)?;
            out.push(Outlier { pos, corr: reconstruct(neg, k, t) });
        }
        Ok(out)
    }
}

/// Gap coding: gamma-coded deltas between consecutive outlier positions
/// plus sign + gamma-coded magnitudes — the strong classical sparse
/// baseline (cost scales with the outlier count, not `N`).
pub mod gaps {
    use super::*;

    /// Encodes outliers over an array of length `n` with tolerance `t`.
    pub fn encode(outliers: &[Outlier], _n: usize, t: f64) -> Vec<u8> {
        let mut sorted: Vec<&Outlier> = outliers.iter().collect();
        sorted.sort_by_key(|o| o.pos);
        let mut w = BitWriter::new();
        gamma_encode(sorted.len() as u64 + 1, &mut w); // count (shifted: gamma needs >= 1)
        let mut prev = 0usize;
        for (i, o) in sorted.iter().enumerate() {
            let gap = if i == 0 { o.pos + 1 } else { o.pos - prev };
            gamma_encode(gap as u64, &mut w);
            prev = o.pos;
            let (neg, k) = quantize(o.corr, t);
            w.put_bit(neg);
            gamma_encode(k, &mut w);
        }
        w.into_bytes()
    }

    /// Decodes; corrections are within `t/2` of the originals.
    pub fn decode(bytes: &[u8], n: usize, t: f64) -> Result<Vec<Outlier>, Error> {
        let mut r = BitReader::new(bytes);
        let count = gamma_decode(&mut r)? as usize - 1;
        if count > n {
            return Err(Error::Corrupt("implausible outlier count"));
        }
        let mut out = Vec::with_capacity(count);
        let mut pos = 0usize;
        for i in 0..count {
            let gap = gamma_decode(&mut r)? as usize;
            pos = if i == 0 { gap - 1 } else { pos + gap };
            if pos >= n {
                return Err(Error::Corrupt("position overflow"));
            }
            let neg = r.get_bit()?;
            let k = gamma_decode(&mut r)?;
            out.push(Outlier { pos, corr: reconstruct(neg, k, t) });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, count: usize, t: f64) -> Vec<Outlier> {
        (0..count)
            .map(|i| Outlier {
                pos: (i * (n / count)) % n,
                corr: (t * (1.2 + (i % 9) as f64)) * if i % 2 == 0 { 1.0 } else { -1.0 },
            })
            .collect()
    }

    #[test]
    fn gamma_roundtrip() {
        let mut w = BitWriter::new();
        let values = [1u64, 2, 3, 7, 8, 100, 1 << 20, u64::MAX >> 1];
        for &v in &values {
            gamma_encode(v, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(gamma_decode(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn bitmap_roundtrip_within_half_t() {
        let t = 0.5;
        let n = 4096;
        let outliers = sample(n, 64, t);
        let bytes = bitmap::encode(&outliers, n, t);
        let dec = bitmap::decode(&bytes, n, t).unwrap();
        assert_eq!(dec.len(), outliers.len());
        let mut orig = outliers.clone();
        orig.sort_by_key(|o| o.pos);
        for (d, o) in dec.iter().zip(&orig) {
            assert_eq!(d.pos, o.pos);
            assert!((d.corr - o.corr).abs() <= t / 2.0 + 1e-12);
        }
    }

    #[test]
    fn gaps_roundtrip_within_half_t() {
        let t = 0.25;
        let n = 100_000;
        let outliers = sample(n, 200, t);
        let bytes = gaps::encode(&outliers, n, t);
        let dec = gaps::decode(&bytes, n, t).unwrap();
        assert_eq!(dec.len(), outliers.len());
        let mut orig = outliers.clone();
        orig.sort_by_key(|o| o.pos);
        for (d, o) in dec.iter().zip(&orig) {
            assert_eq!(d.pos, o.pos);
            assert!((d.corr - o.corr).abs() <= t / 2.0 + 1e-12);
        }
    }

    #[test]
    fn bitmap_cost_dominated_by_n_when_sparse() {
        let t = 1.0;
        let n = 65_536;
        let outliers = sample(n, 16, t); // very sparse
        let bytes = bitmap::encode(&outliers, n, t);
        // bitmap alone is n bits = n/8 bytes
        assert!(bytes.len() >= n / 8);
        let gap_bytes = gaps::encode(&outliers, n, t);
        assert!(
            gap_bytes.len() * 10 < bytes.len(),
            "gaps {} should crush bitmap {} when sparse",
            gap_bytes.len(),
            bytes.len()
        );
    }

    #[test]
    fn empty_lists() {
        let t = 1.0;
        assert!(gaps::decode(&gaps::encode(&[], 100, t), 100, t).unwrap().is_empty());
        assert!(bitmap::decode(&bitmap::encode(&[], 100, t), 100, t).unwrap().is_empty());
    }

    #[test]
    fn corrupt_input_no_panic() {
        let garbage = [0xFFu8; 40];
        let _ = bitmap::decode(&garbage, 64, 1.0);
        let _ = gaps::decode(&garbage, 64, 1.0);
        let _ = gaps::decode(&[], 64, 1.0);
    }
}
