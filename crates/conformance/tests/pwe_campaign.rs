//! Tier-2: the PWE-guarantee campaign — 200 randomized spiky fields,
//! tolerances swept across three decades, every codec held to its
//! documented error budget. A violation shrinks to a minimal reproducer
//! under `target/conformance-failures/` before failing the test.

use sperr_conformance::pwe::{make_case, run_campaign, CampaignConfig, DECADES};

#[test]
fn two_hundred_randomized_cases_hold_every_documented_bound() {
    let config = CampaignConfig::tier2(200);
    let report = run_campaign(&config);
    assert_eq!(report.cases, 200);
    assert!(
        report.clean(),
        "PWE campaign violations:\n{}",
        report.violations.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn campaign_sweeps_three_tolerance_decades_and_all_codecs() {
    // The acceptance bar is "≥200 cases across 3 tolerance decades"; make
    // the coverage claim itself testable rather than implicit.
    assert_eq!(DECADES.len(), 3);
    let seed = CampaignConfig::tier2(200).seed;
    let mut decades = std::collections::BTreeSet::new();
    let mut codecs = std::collections::BTreeSet::new();
    let mut shapes = std::collections::BTreeSet::new();
    for i in 0..200 {
        let c = make_case(i, seed);
        decades.insert(c.decade);
        codecs.insert(c.codec.tag());
        let [_, ny, nz] = c.field.dims;
        shapes.insert(match (ny, nz) {
            (1, 1) => 1,
            (_, 1) => 2,
            _ => 3,
        });
    }
    assert_eq!(decades.len(), 3, "campaign must span 3 tolerance decades");
    assert_eq!(codecs.len(), 5, "campaign must exercise all five codecs");
    assert_eq!(shapes, [1usize, 2, 3].into(), "campaign must mix 1D/2D/3D shapes");
}
