//! `sperr` — command-line front end for the SPERR reproduction.
//!
//! ```text
//! sperr compress   --input x.raw --output x.sperr --dims 384,384,256 --type f64 \
//!                  (--pwe T | --idx N | --bpp R | --psnr P) \
//!                  [--chunk 256,256,256] [--threads N] [--q-factor 1.5] [--no-lossless]
//! sperr decompress --input x.sperr --output y.raw --type f64 [--level L]
//! sperr info       --input x.sperr
//! sperr gen        --field miranda-pressure --dims 64,64,64 --output x.raw --type f64 [--seed S]
//! sperr eval       --original a.raw --reconstructed b.raw --dims 64,64,64 --type f64
//! ```

mod args;
mod rawio;

use args::{parse_type, Args, ScalarType};
use sperr_compress_api::Bound;
use sperr_core::{Sperr, SperrConfig};
use sperr_datagen::SyntheticField;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
sperr — lossy scientific data compression (SPERR reproduction)

USAGE:
  sperr compress   --input RAW --output SPERR --dims NX,NY[,NZ] --type f32|f64
                   (--pwe T | --idx N | --bpp R | --psnr P)
                   [--chunk CX,CY,CZ] [--threads N] [--q-factor F] [--no-lossless]
  sperr decompress --input SPERR --output RAW --type f32|f64 [--level L]
  sperr info       --input SPERR
  sperr gen        --field NAME --dims NX,NY[,NZ] --output RAW --type f32|f64 [--seed S]
  sperr eval       --original RAW --reconstructed RAW --dims NX,NY[,NZ] --type f32|f64

Bounds: --pwe is an absolute point-wise error tolerance; --idx N sets it to
range/2^N (paper Table I); --bpp targets a size in bits per point (no error
guarantee); --psnr targets an average error in dB.

Fields for gen: miranda-pressure miranda-viscosity miranda-vx miranda-density
s3d-ch4 s3d-temp s3d-vx nyx-dm nyx-vx qmcpack image2d";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(rest)?;
    if args.flag("help") {
        println!("{USAGE}");
        return Ok(());
    }
    if !args.positional().is_empty() {
        return Err(format!("unexpected argument: {}", args.positional()[0]));
    }
    match cmd.as_str() {
        "compress" => cmd_compress(&args),
        "decompress" => cmd_decompress(&args),
        "info" => cmd_info(&args),
        "gen" => cmd_gen(&args),
        "eval" => cmd_eval(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other}; run `sperr help`")),
    }
}

fn build_sperr(args: &Args) -> Result<Sperr, String> {
    let mut cfg = SperrConfig::default();
    if let Some(chunk) = args.opt_dims("chunk")? {
        cfg.chunk_dims = chunk;
    }
    if let Some(threads) = args.opt_usize("threads")? {
        cfg.num_threads = threads;
    }
    if let Some(qf) = args.opt_f64("q-factor")? {
        if qf <= 0.0 {
            return Err("--q-factor must be positive".into());
        }
        cfg.q_factor = qf;
    }
    if args.flag("no-lossless") {
        cfg.lossless = false;
    }
    Ok(Sperr::new(cfg))
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let input = Path::new(args.req("input")?).to_path_buf();
    let output = Path::new(args.req("output")?).to_path_buf();
    let dims = args.req_dims("dims")?;
    let ty = parse_type(args.req("type")?)?;
    let field = rawio::read_field(&input, dims, ty).map_err(|e| e.to_string())?;

    let bound = match (
        args.opt_f64("pwe")?,
        args.opt_usize("idx")?,
        args.opt_f64("bpp")?,
        args.opt_f64("psnr")?,
    ) {
        (Some(t), None, None, None) => Bound::Pwe(t),
        (None, Some(idx), None, None) => Bound::Pwe(field.tolerance_for_idx(idx as u32)),
        (None, None, Some(r), None) => Bound::Bpp(r),
        (None, None, None, Some(p)) => Bound::Psnr(p),
        _ => return Err("give exactly one of --pwe, --idx, --bpp, --psnr".into()),
    };

    let sperr = build_sperr(args)?;
    let (stream, stats) = sperr
        .compress_with_stats(&field, bound)
        .map_err(|e| e.to_string())?;
    std::fs::write(&output, &stream).map_err(|e| e.to_string())?;
    if !args.flag("quiet") {
        let raw = field.len() * match ty { ScalarType::F32 => 4, ScalarType::F64 => 8 };
        println!(
            "{} -> {}: {} -> {} bytes ({:.2}x, {:.3} bpp; speck {:.3} bpp, outliers {:.3} bpp / {})",
            input.display(),
            output.display(),
            raw,
            stream.len(),
            raw as f64 / stream.len() as f64,
            stats.bpp(),
            stats.speck_bpp(),
            stats.outlier_bpp(),
            stats.num_outliers,
        );
    }
    Ok(())
}

fn cmd_decompress(args: &Args) -> Result<(), String> {
    let input = Path::new(args.req("input")?).to_path_buf();
    let output = Path::new(args.req("output")?).to_path_buf();
    let ty = parse_type(args.req("type")?)?;
    let level = args.opt_usize("level")?.unwrap_or(0);
    let stream = std::fs::read(&input).map_err(|e| e.to_string())?;
    let sperr = build_sperr(args)?;
    let field = sperr
        .decompress_multires(&stream, level)
        .map_err(|e| e.to_string())?;
    rawio::write_field(&output, &field, ty).map_err(|e| e.to_string())?;
    if !args.flag("quiet") {
        println!(
            "{} -> {}: {}x{}x{} {:?}{}",
            input.display(),
            output.display(),
            field.dims[0],
            field.dims[1],
            field.dims[2],
            ty,
            if level > 0 { format!(" (resolution level {level})") } else { String::new() },
        );
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let input = Path::new(args.req("input")?).to_path_buf();
    let stream = std::fs::read(&input).map_err(|e| e.to_string())?;
    let sperr = Sperr::new(SperrConfig::default());
    let info = sperr.inspect(&stream).map_err(|e| e.to_string())?;
    println!("file:        {}", input.display());
    println!("stream:      {} bytes (lossless pass: {})", stream.len(), info.lossless);
    println!("dims:        {}x{}x{}", info.dims[0], info.dims[1], info.dims[2]);
    println!("chunks:      {} of {}x{}x{}", info.n_chunks, info.chunk_dims[0], info.chunk_dims[1], info.chunk_dims[2]);
    let (mode, unit) = match info.mode {
        sperr_core::Mode::Pwe => ("PWE-bounded", "tolerance"),
        sperr_core::Mode::Bpp => ("size-bounded", "bits per point"),
        sperr_core::Mode::Rmse => ("average-error", "PSNR dB"),
    };
    println!("mode:        {mode} ({unit} = {:.6e})", info.bound_value);
    println!("payloads:    speck {} B, outliers {} B", info.speck_bytes, info.outlier_bytes);
    let n: usize = info.dims.iter().product();
    println!("bitrate:     {:.4} bpp", stream.len() as f64 * 8.0 / n as f64);
    Ok(())
}

fn field_by_name(name: &str) -> Result<SyntheticField, String> {
    Ok(match name {
        "miranda-pressure" => SyntheticField::MirandaPressure,
        "miranda-viscosity" => SyntheticField::MirandaViscosity,
        "miranda-vx" => SyntheticField::MirandaVelocityX,
        "miranda-density" => SyntheticField::MirandaDensity,
        "s3d-ch4" => SyntheticField::S3dCh4,
        "s3d-temp" => SyntheticField::S3dTemperature,
        "s3d-vx" => SyntheticField::S3dVelocityX,
        "nyx-dm" => SyntheticField::NyxDarkMatterDensity,
        "nyx-vx" => SyntheticField::NyxVelocityX,
        "qmcpack" => SyntheticField::Qmcpack,
        "image2d" => SyntheticField::Image2d,
        _ => return Err(format!("unknown field {name}; run `sperr help`")),
    })
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let name = args.req("field")?;
    let dims = args.req_dims("dims")?;
    let output = Path::new(args.req("output")?).to_path_buf();
    let ty = parse_type(args.req("type")?)?;
    let seed = args.opt_usize("seed")?.unwrap_or(42) as u64;
    let field = field_by_name(name)?.generate(dims, seed);
    rawio::write_field(&output, &field, ty).map_err(|e| e.to_string())?;
    if !args.flag("quiet") {
        println!(
            "generated {name} {}x{}x{} (range {:.4e}) -> {}",
            dims[0],
            dims[1],
            dims[2],
            field.range(),
            output.display()
        );
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let dims = args.req_dims("dims")?;
    let ty = parse_type(args.req("type")?)?;
    let a = rawio::read_field(Path::new(args.req("original")?), dims, ty)
        .map_err(|e| e.to_string())?;
    let b = rawio::read_field(Path::new(args.req("reconstructed")?), dims, ty)
        .map_err(|e| e.to_string())?;
    println!("points:        {}", a.len());
    println!("range:         {:.6e}", a.range());
    println!("rmse:          {:.6e}", sperr_metrics::rmse(&a.data, &b.data));
    println!("max pwe:       {:.6e}", sperr_metrics::max_pwe(&a.data, &b.data));
    println!("psnr:          {:.3} dB", sperr_metrics::psnr(&a.data, &b.data));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_cli_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("sperr_cli_main_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        let packed = dir.join("x.sperr");
        let restored = dir.join("y.raw");

        run(&w(&["gen", "--field", "s3d-temp", "--dims", "24,24,16", "--output",
                 raw.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();
        run(&w(&["compress", "--input", raw.to_str().unwrap(), "--output",
                 packed.to_str().unwrap(), "--dims", "24,24,16", "--type", "f64",
                 "--idx", "15", "--quiet"]))
            .unwrap();
        run(&w(&["info", "--input", packed.to_str().unwrap()])).unwrap();
        run(&w(&["decompress", "--input", packed.to_str().unwrap(), "--output",
                 restored.to_str().unwrap(), "--type", "f64", "--quiet"]))
            .unwrap();

        let a = rawio::read_field(&raw, [24, 24, 16], ScalarType::F64).unwrap();
        let b = rawio::read_field(&restored, [24, 24, 16], ScalarType::F64).unwrap();
        let t = a.range() / f64::exp2(15.0);
        assert!(sperr_metrics::max_pwe(&a.data, &b.data) <= t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compress_requires_exactly_one_bound() {
        let dir = std::env::temp_dir().join("sperr_cli_bound_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("x.raw");
        run(&w(&["gen", "--field", "nyx-vx", "--dims", "8,8,8", "--output",
                 raw.to_str().unwrap(), "--type", "f32", "--quiet"]))
            .unwrap();
        let base = [
            "compress", "--input", raw.to_str().unwrap(), "--output",
            "/dev/null", "--dims", "8,8,8", "--type", "f32",
        ];
        // none
        assert!(run(&w(&base)).is_err());
        // two
        let mut two = base.to_vec();
        two.extend_from_slice(&["--pwe", "0.1", "--bpp", "2"]);
        assert!(run(&w(&two)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_field_errors() {
        assert!(run(&w(&["frobnicate"])).is_err());
        assert!(run(&w(&["gen", "--field", "nope", "--dims", "4,4,4",
                         "--output", "/dev/null", "--type", "f32"]))
            .is_err());
    }

    #[test]
    fn help_paths_succeed() {
        run(&w(&[])).unwrap();
        run(&w(&["help"])).unwrap();
        run(&w(&["compress", "--help"])).unwrap();
    }
}
