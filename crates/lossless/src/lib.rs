//! Lossless back end for the SPERR reproduction.
//!
//! The paper's pipeline concatenates the SPECK and outlier bitstreams and
//! "losslessly compressed by ZSTD" (§V). ZSTD itself is out of scope for a
//! from-scratch reproduction, so this crate provides the same pipeline
//! stage with a self-contained LZ77 + canonical-Huffman codec (see
//! DESIGN.md §3 for the substitution rationale: same role — squeezing
//! residual redundancy out of already-entropy-dense coder output — with a
//! somewhat lower ratio than ZSTD).
//!
//! The [`huffman`] module is exported on its own because the SZ-style
//! baseline (`sperr-sz-like`) uses Huffman coding of quantization bins,
//! exactly as SZ does (paper §VI-E).
//!
//! # Format (`SLZ1`)
//!
//! ```text
//! magic "SLZ1" | u64 raw_len | blocks...
//! block: u8 flags (bit0 = huffman-compressed, bit1 = last)
//!        u32 raw_len
//!        stored:     raw bytes
//!        compressed: u32 payload_len, payload (bit-packed code tables + symbols)
//! ```
//!
//! # Example
//!
//! ```
//! let data = b"abcabcabcabc hello hello hello".repeat(20);
//! let packed = sperr_lossless::compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(sperr_lossless::decompress(&packed).unwrap(), data);
//! ```

pub mod huffman;

mod decode;
mod lz77;

pub use decode::{decompress, DecodeError};

use sperr_bitstream::ByteWriter;

const MAGIC: &[u8; 4] = b"SLZ1";
const BLOCK_SIZE: usize = 128 * 1024;

/// Compresses `data`; never fails. Incompressible blocks are stored
/// verbatim, so expansion is bounded by a few bytes per 128 KiB block.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let _span = sperr_telemetry::span!("lossless.compress", data.len());
    sperr_telemetry::counter!("lossless.bytes_in", data.len());
    let mut out = ByteWriter::new();
    out.put_bytes(MAGIC);
    out.put_u64(data.len() as u64);
    if data.is_empty() {
        // Single empty stored block marked last.
        out.put_u8(0b10);
        out.put_u32(0);
        return out.into_bytes();
    }
    let mut offset = 0;
    while offset < data.len() {
        let end = (offset + BLOCK_SIZE).min(data.len());
        let block = &data[offset..end];
        let last = end == data.len();
        let payload = lz77::compress_block(block);
        if payload.len() + 4 < block.len() {
            out.put_u8(0b01 | if last { 0b10 } else { 0 });
            out.put_u32(block.len() as u32);
            out.put_u32(payload.len() as u32);
            out.put_bytes(&payload);
        } else {
            out.put_u8(if last { 0b10 } else { 0 });
            out.put_u32(block.len() as u32);
            out.put_bytes(block);
        }
        offset = end;
    }
    let packed = out.into_bytes();
    sperr_telemetry::counter!("lossless.bytes_out", packed.len());
    packed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let packed = compress(&[]);
        assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn tiny_roundtrip() {
        for data in [&b"a"[..], b"ab", b"abc", b"aaaa"] {
            let packed = compress(data);
            assert_eq!(decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"0123456789".repeat(10_000);
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 10,
            "ratio too poor: {} / {}",
            packed.len(),
            data.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_data_stored_with_bounded_expansion() {
        // Pseudo-random bytes: codec must fall back to stored blocks.
        let data: Vec<u8> = (0..300_000u64)
            .map(|i| (i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) >> 33)
                as u8)
            .collect();
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + 64, "expanded too much: {}", packed.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn multi_block_roundtrip() {
        // > BLOCK_SIZE so several blocks are produced, mixing stored and
        // compressed.
        let mut data = Vec::new();
        for i in 0..400_000u64 {
            if i % 3 == 0 {
                data.push((i % 251) as u8);
            } else {
                data.push(b'x');
            }
        }
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn text_like_data() {
        let data = b"The quick brown fox jumps over the lazy dog. ".repeat(2000);
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 4);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut packed = compress(b"hello world");
        packed[0] = b'X';
        assert!(decompress(&packed).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = b"some reasonably long input that will compress".repeat(100);
        let packed = compress(&data);
        for cut in [0, 3, 10, packed.len() / 2, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn corrupt_payload_never_panics() {
        let data = b"compressible compressible compressible".repeat(200);
        let mut packed = compress(&data);
        let mid = packed.len() / 2;
        packed[mid] ^= 0xFF;
        let _ = decompress(&packed); // any Result is fine; no panic
    }

    #[test]
    fn speck_like_bitstream_roundtrip() {
        // The real workload: dense, high-entropy coder output with some
        // structure (long zero runs from padding, repeated headers).
        let mut data = Vec::new();
        for chunk in 0..64 {
            data.extend_from_slice(&[0u8; 20]); // header-ish
            for i in 0..2048u64 {
                data.push(((i * 2654435761).wrapping_add(chunk) >> 13) as u8);
            }
            data.extend_from_slice(&[0u8; 37]);
        }
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }
}
